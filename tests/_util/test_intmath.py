"""Unit tests for repro._util.intmath."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util.intmath import (
    ceil_div,
    ceil_log2,
    ilog2,
    is_power_of_two,
    log2_real,
    next_power_of_two,
)


class TestIsPowerOfTwo:
    def test_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_non_powers(self):
        for x in (0, -1, -4, 3, 5, 6, 7, 9, 12, 1023):
            assert not is_power_of_two(x)


class TestIlog2:
    def test_exact_values(self):
        for k in range(20):
            assert ilog2(1 << k) == k

    @pytest.mark.parametrize("bad", [0, -2, 3, 6, 100])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ValueError):
            ilog2(bad)


class TestCeilLog2:
    def test_small_values(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        assert ceil_log2(4) == 2
        assert ceil_log2(5) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ceil_log2(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_defining_property(self, x):
        k = ceil_log2(x)
        assert 2**k >= x
        assert k == 0 or 2 ** (k - 1) < x


class TestNextPowerOfTwo:
    @given(st.integers(min_value=1, max_value=10**9))
    def test_is_power_and_minimal(self, x):
        p = next_power_of_two(x)
        assert is_power_of_two(p)
        assert p >= x
        assert p // 2 < x


class TestCeilDiv:
    @given(
        st.integers(min_value=-(10**9), max_value=10**9),
        st.integers(min_value=1, max_value=10**6),
    )
    def test_matches_math(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b)

    def test_rejects_bad_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(3, 0)


class TestLog2Real:
    def test_matches_math(self):
        assert log2_real(8.0) == 3.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log2_real(0.0)
        with pytest.raises(ValueError):
            log2_real(-1.0)
