"""Unit tests for the vectorized popcount tables."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro._util.popcount import POPCOUNT16, popcount_u32, popcount_u64


class TestTable:
    def test_size_and_extremes(self):
        assert POPCOUNT16.shape == (1 << 16,)
        assert POPCOUNT16[0] == 0
        assert POPCOUNT16[0xFFFF] == 16

    def test_spot_values(self):
        assert POPCOUNT16[0b1011] == 3
        assert POPCOUNT16[1 << 15] == 1


class TestPopcountU32:
    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=50))
    def test_matches_python_bit_count(self, values):
        arr = np.array(values, dtype=np.uint32)
        expected = np.array([v.bit_count() for v in values], dtype=np.uint8)
        assert (popcount_u32(arr) == expected).all()

    def test_empty(self):
        assert popcount_u32(np.array([], dtype=np.uint32)).shape == (0,)


class TestPopcountU64:
    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=50))
    def test_matches_python_bit_count(self, values):
        arr = np.array(values, dtype=np.uint64)
        expected = np.array([v.bit_count() for v in values], dtype=np.uint16)
        assert (popcount_u64(arr).astype(np.uint16) == expected).all()

    def test_all_ones(self):
        assert popcount_u64(np.array([2**64 - 1], dtype=np.uint64))[0] == 64
