"""Unit tests for argument validation helpers."""

import pytest

from repro._util.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
)


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int(3, "x") == 3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            check_positive_int(bad, "x")

    @pytest.mark.parametrize("bad", [1.5, "3", True])
    def test_rejects_non_int(self, bad):
        with pytest.raises(TypeError):
            check_positive_int(bad, "x")

    def test_error_names_parameter(self):
        with pytest.raises(ValueError, match="depth"):
            check_positive_int(-2, "depth")


class TestCheckPositive:
    def test_accepts(self):
        assert check_positive(0.5, "x") == 0.5

    @pytest.mark.parametrize("bad", [0.0, -0.1, float("nan")])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive(bad, "x")


class TestCheckFraction:
    def test_default_interval(self):
        assert check_fraction(1.0, "alpha") == 1.0
        assert check_fraction(0.25, "alpha") == 0.25

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "alpha")

    def test_inclusive_low(self):
        assert check_fraction(0.0, "alpha", inclusive_low=True) == 0.0

    def test_exclusive_high(self):
        with pytest.raises(ValueError):
            check_fraction(1.0, "alpha", inclusive_high=False)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_fraction(1.01, "alpha")
