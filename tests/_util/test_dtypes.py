"""Unit tests for the consolidated dtype-narrowing policy
(:mod:`repro._util.dtypes`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.dtypes import (
    WORD_BITS,
    WORD_DTYPE,
    count_dtype_for_degree,
    narrow_uint,
)


class TestWordLayout:
    def test_word_dtype_width_matches_word_bits(self):
        assert np.dtype(WORD_DTYPE).itemsize * 8 == WORD_BITS

    def test_word_dtype_is_unsigned(self):
        assert np.dtype(WORD_DTYPE).kind == "u"

    def test_bitset_layout_agrees(self):
        from repro.radio import bitset

        packed = bitset.pack_bool_matrix(np.ones((3, WORD_BITS + 1), dtype=bool))
        assert packed.dtype == WORD_DTYPE
        assert packed.shape == (3, 2)


class TestCountDtypeForDegree:
    @pytest.mark.parametrize(
        "degree,dtype",
        [
            (0, np.int8),
            (1, np.int8),
            (2**7 - 1, np.int8),
            (2**7, np.int16),
            (2**15 - 1, np.int16),
            (2**15, np.int32),
            (2**31 - 1, np.int32),
            (2**31, np.int64),
            (2**40, np.int64),
        ],
    )
    def test_boundaries(self, degree, dtype):
        assert count_dtype_for_degree(degree) is dtype

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            count_dtype_for_degree(-1)

    def test_counts_representable(self):
        for degree in (5, 200, 70_000):
            dtype = count_dtype_for_degree(degree)
            assert np.iinfo(dtype).max >= degree

    def test_network_uses_policy(self, q3):
        from repro.radio.network import RadioNetwork

        net = RadioNetwork(q3)
        counts = net.transmit_counts(np.ones(q3.n, dtype=bool))
        assert counts.dtype == count_dtype_for_degree(q3.max_degree)


class TestNarrowUint:
    @pytest.mark.parametrize(
        "max_value,dtype",
        [
            (0, np.uint8),
            (255, np.uint8),
            (256, np.uint16),
            (2**16 - 1, np.uint16),
            (2**16, np.uint32),
            (2**32, np.uint64),
        ],
    )
    def test_boundaries(self, max_value, dtype):
        out = narrow_uint(np.array([0, 1]), max_value)
        assert out.dtype == dtype

    def test_negative_bound_clamps_to_uint8(self):
        assert narrow_uint(np.array([0]), -5).dtype == np.uint8

    def test_values_preserved(self):
        values = np.array([0, 3, 65_000])
        out = narrow_uint(values, 65_535)
        assert out.dtype == np.uint16
        assert np.array_equal(out, values)

    def test_no_copy_when_already_narrow(self):
        values = np.array([1, 2], dtype=np.uint8)
        assert narrow_uint(values, 200) is values
