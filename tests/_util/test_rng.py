"""Unit tests for the seeding helpers."""

import numpy as np
import pytest

from repro._util.rng import as_rng, spawn_seeds


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_rng(42).integers(0, 1000, size=5)
        b = as_rng(42).integers(0, 1000, size=5)
        assert (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        gen = as_rng(np.int64(7))
        assert isinstance(gen, np.random.Generator)

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            as_rng("seed")


class TestSpawnSeeds:
    def test_deterministic_and_distinct(self):
        a = spawn_seeds(123, 10)
        b = spawn_seeds(123, 10)
        assert a == b
        assert len(set(a)) == 10

    def test_count_zero(self):
        assert spawn_seeds(0, 0) == []

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_independent_of_consumption_order(self):
        seeds = spawn_seeds(9, 4)
        streams = [np.random.default_rng(s).random() for s in seeds]
        assert len(set(streams)) == 4
