"""Radio collision-model semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import complete_graph, erdos_renyi, path_graph
from repro.radio import RadioNetwork


class TestStepSemantics:
    def test_single_transmitter_reaches_neighbors(self):
        net = RadioNetwork(path_graph(4))
        t = np.array([False, True, False, False])
        assert net.step(t).tolist() == [True, False, True, False]

    def test_collision_blocks_reception(self):
        net = RadioNetwork(path_graph(3))
        t = np.array([True, False, True])
        # Middle vertex hears two neighbours -> nothing.
        assert net.step(t).tolist() == [False, False, False]

    def test_transmitter_does_not_receive(self):
        net = RadioNetwork(path_graph(2))
        t = np.array([True, True])
        assert not net.step(t).any()

    def test_clique_collision(self):
        net = RadioNetwork(complete_graph(5))
        t = np.zeros(5, dtype=bool)
        t[[0, 1]] = True
        # Everyone else hears two transmitters.
        assert not net.step(t).any()

    def test_silence(self):
        net = RadioNetwork(complete_graph(4))
        assert not net.step(np.zeros(4, dtype=bool)).any()

    def test_input_validation(self):
        net = RadioNetwork(path_graph(3))
        with pytest.raises(ValueError):
            net.step(np.array([1, 0, 0]))  # not bool
        with pytest.raises(ValueError):
            net.step(np.array([True, False]))  # wrong length

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_naive_reference(self, seed):
        gen = np.random.default_rng(seed)
        g = erdos_renyi(12, 0.3, rng=gen)
        net = RadioNetwork(g)
        t = gen.random(12) < 0.4
        assert (net.step(t) == net.step_naive(t)).all()
