"""Protocol classes: transmit-set semantics, names, parameters."""

import numpy as np
import pytest

from repro.graphs import complete_graph, hypercube, path_graph
from repro.radio import (
    AlohaProtocol,
    DecayProtocol,
    FloodingProtocol,
    RadioNetwork,
    RoundRobinProtocol,
    run_broadcast,
)


def _informed_prefix(n, k):
    mask = np.zeros(n, dtype=bool)
    mask[:k] = True
    return mask


class TestFlooding:
    def test_transmits_exactly_informed(self):
        net = RadioNetwork(path_graph(5))
        proto = FloodingProtocol()
        proto.reset(net, 0, np.random.default_rng(0))
        informed = _informed_prefix(5, 3)
        assert (proto.transmitters(0, informed, net) == informed).all()

    def test_does_not_alias_informed(self):
        net = RadioNetwork(path_graph(4))
        proto = FloodingProtocol()
        proto.reset(net, 0, np.random.default_rng(0))
        informed = _informed_prefix(4, 2)
        out = proto.transmitters(0, informed, net)
        out[:] = False
        assert informed.sum() == 2  # caller's mask untouched


class TestRoundRobin:
    def test_single_slot_per_round(self):
        net = RadioNetwork(complete_graph(5))
        proto = RoundRobinProtocol()
        proto.reset(net, 0, np.random.default_rng(0))
        informed = np.ones(5, dtype=bool)
        for r in range(10):
            out = proto.transmitters(r, informed, net)
            assert out.sum() == 1
            assert out[r % 5]

    def test_silent_when_slot_uninformed(self):
        net = RadioNetwork(complete_graph(5))
        proto = RoundRobinProtocol()
        proto.reset(net, 0, np.random.default_rng(0))
        informed = _informed_prefix(5, 1)
        assert proto.transmitters(3, informed, net).sum() == 0


class TestDecay:
    def test_round_zero_is_flooding(self):
        # In round 0 of each phase, p = 1: everyone informed transmits.
        net = RadioNetwork(hypercube(3))
        proto = DecayProtocol(phase_length=4)
        proto.reset(net, 0, np.random.default_rng(1))
        informed = _informed_prefix(8, 5)
        out = proto.transmitters(0, informed, net)
        assert (out == informed).all()

    def test_probability_decays_within_phase(self):
        net = RadioNetwork(complete_graph(64))
        proto = DecayProtocol(phase_length=8)
        proto.reset(net, 0, np.random.default_rng(2))
        informed = np.ones(64, dtype=bool)
        counts = [
            int(proto.transmitters(r, informed, net).sum()) for r in range(8)
        ]
        # Strictly decreasing is too strong for a random draw; compare
        # the first round (p=1) against a late round (p=1/64).
        assert counts[0] == 64
        assert counts[7] <= counts[1]

    def test_default_phase_length(self):
        net = RadioNetwork(hypercube(4))
        proto = DecayProtocol()
        proto.reset(net, 0, np.random.default_rng(3))
        assert proto._k == 5  # ceil(log2(16)) + 1


class TestAloha:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AlohaProtocol(0.0)
        with pytest.raises(ValueError):
            AlohaProtocol(1.5)

    def test_p_one_is_flooding(self):
        net = RadioNetwork(path_graph(6))
        proto = AlohaProtocol(1.0)
        proto.reset(net, 0, np.random.default_rng(4))
        informed = _informed_prefix(6, 4)
        assert (proto.transmitters(0, informed, net) == informed).all()

    def test_completes_on_clique_with_good_p(self):
        g = complete_graph(16)
        res = run_broadcast(g, AlohaProtocol(1 / 16), source=0, seed=5)
        assert res.completed

    def test_name_encodes_p(self):
        assert AlohaProtocol(0.25).name == "aloha[p=0.25]"

    def test_subset_of_informed(self):
        net = RadioNetwork(complete_graph(10))
        proto = AlohaProtocol(0.7)
        proto.reset(net, 0, np.random.default_rng(6))
        informed = _informed_prefix(10, 4)
        out = proto.transmitters(0, informed, net)
        assert not (out & ~informed).any()
