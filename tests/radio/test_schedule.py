"""Static broadcast-schedule synthesis (the Section 4.2.1 application)."""

import math

import numpy as np
import pytest

from repro.graphs import (
    BipartiteGraph,
    core_graph,
    cplus_graph,
    grid_2d,
    hypercube,
    random_bipartite,
    random_regular,
)
from repro.radio import (
    StaticScheduleProtocol,
    run_broadcast,
    synthesize_broadcast_schedule,
    synthesize_layer_schedule,
)
from repro.spokesman import spokesman_recursive


class TestLayerSchedule:
    def test_covers_everything(self, tiny_bipartite):
        slots = synthesize_layer_schedule(tiny_bipartite)
        covered = np.zeros(tiny_bipartite.n_right, dtype=bool)
        for slot in slots:
            covered |= tiny_bipartite.uniquely_covered(slot)
        assert covered.all()

    @pytest.mark.parametrize("seed", range(8))
    def test_covers_random_instances(self, seed):
        gen = np.random.default_rng(seed)
        gs = random_bipartite(12, 30, 0.25, rng=gen)
        slots = synthesize_layer_schedule(gs)
        covered = ~(gs.right_degrees >= 1)
        for slot in slots:
            covered |= gs.uniquely_covered(slot)
        assert covered.all()

    @pytest.mark.parametrize("s", [8, 16, 32, 64])
    def test_core_graph_slot_count_logarithmic(self, s):
        # Each slot covers ≥ MG(δ)-fraction, so slots = O(log γ); on the
        # core graph that is O(log²s)-ish — assert a generous ceiling that
        # a linear-slot scheduler would blow through.
        gs = core_graph(s)
        slots = synthesize_layer_schedule(gs)
        assert len(slots) <= 4 * int(math.log2(2 * s)) ** 2

    def test_custom_algorithm(self, core8):
        slots = synthesize_layer_schedule(core8, algorithm=spokesman_recursive)
        covered = np.zeros(core8.n_right, dtype=bool)
        for slot in slots:
            covered |= core8.uniquely_covered(slot)
        assert covered.all()

    def test_isolated_rights_ignored(self):
        gs = BipartiteGraph(2, 3, [(0, 0), (1, 0)])
        slots = synthesize_layer_schedule(gs)
        assert len(slots) == 1

    def test_slot_cap_raises(self, core8):
        with pytest.raises(RuntimeError, match="exceeded"):
            synthesize_layer_schedule(core8, max_slots=1)


class TestBroadcastSchedule:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: hypercube(4),
            lambda: grid_2d(6, 6),
            lambda: cplus_graph(8),
            lambda: random_regular(48, 4, rng=7),
        ],
    )
    def test_verifies_on_graph(self, maker):
        g = maker()
        schedule = synthesize_broadcast_schedule(g, source=0)
        ok, informed = schedule.verify(g)
        assert ok, f"{informed.sum()}/{g.n} informed"

    def test_runner_agrees_with_verify(self):
        g = hypercube(3)
        schedule = synthesize_broadcast_schedule(g, source=0)
        res = run_broadcast(
            g, StaticScheduleProtocol(schedule), source=0,
            max_rounds=schedule.length + 1, seed=0,
        )
        assert res.completed
        assert res.rounds <= schedule.length

    def test_cplus_schedule_is_short(self):
        # Diameter 2 plus one halving slot: the schedule fixes the flooding
        # deadlock with 2 rounds.
        g = cplus_graph(10)
        schedule = synthesize_broadcast_schedule(g, source=0)
        assert schedule.length == 2

    def test_length_scales_with_diameter(self):
        short = synthesize_broadcast_schedule(grid_2d(4, 4), source=0)
        long = synthesize_broadcast_schedule(grid_2d(8, 8), source=0)
        assert long.length > short.length

    def test_requires_connected(self):
        from repro.graphs import Graph

        g = Graph(4, [(0, 1)])
        with pytest.raises(ValueError, match="connected"):
            synthesize_broadcast_schedule(g, source=0)

    def test_source_validation(self):
        with pytest.raises(ValueError):
            synthesize_broadcast_schedule(hypercube(3), source=100)

    def test_beats_decay_on_expander(self):
        from repro.radio import DecayProtocol

        g = random_regular(96, 6, rng=8)
        schedule = synthesize_broadcast_schedule(g, source=0)
        ok, _ = schedule.verify(g)
        assert ok
        decay = run_broadcast(g, DecayProtocol(), source=0, seed=9)
        assert schedule.length <= decay.rounds
