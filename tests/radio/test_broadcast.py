"""Broadcast runner and the distributed protocols."""

import numpy as np
import pytest

from repro.graphs import (
    complete_graph,
    cplus_graph,
    hypercube,
    path_graph,
)
from repro.radio import (
    DecayProtocol,
    FloodingProtocol,
    RoundRobinProtocol,
    run_broadcast,
)


class TestRunner:
    def test_path_flooding(self):
        # On a path, flooding works: one frontier vertex per side.
        res = run_broadcast(path_graph(6), FloodingProtocol(), source=0, seed=0)
        assert res.completed
        assert res.rounds == 5
        assert res.first_informed_round.tolist() == [0, 1, 2, 3, 4, 5]

    def test_informed_counts_monotone(self):
        res = run_broadcast(hypercube(4), DecayProtocol(), source=0, seed=1)
        assert (np.diff(res.informed_per_round) >= 0).all()
        assert res.completed

    def test_source_validation(self):
        with pytest.raises(ValueError):
            run_broadcast(path_graph(3), FloodingProtocol(), source=5, seed=0)

    def test_max_rounds_cap(self):
        g = cplus_graph(5)
        res = run_broadcast(g, FloodingProtocol(), source=0, max_rounds=10, seed=0)
        assert not res.completed
        assert res.rounds == 10

    def test_transmissions_counted(self):
        res = run_broadcast(path_graph(3), FloodingProtocol(), source=0, seed=0)
        # Round 1: {0} transmits; round 2: {0,1}.
        assert res.transmissions == 3

    def test_rounds_to_fraction(self):
        res = run_broadcast(path_graph(8), FloodingProtocol(), source=0, seed=0)
        assert res.rounds_to_fraction(0.5) <= res.rounds_to_fraction(1.0)
        assert res.rounds_to_fraction(1.0) == res.rounds


class TestFloodingDeadlock:
    def test_cplus_stalls_at_three(self):
        # The paper's opening example: flooding C+ dies after round one.
        g = cplus_graph(10)
        res = run_broadcast(g, FloodingProtocol(), source=0, max_rounds=60, seed=0)
        assert not res.completed
        assert res.informed_per_round[-1] == 3
        informed = set(np.flatnonzero(res.first_informed_round >= 0))
        assert informed == {0, 1, 2}


class TestDecay:
    def test_completes_on_cplus(self):
        g = cplus_graph(10)
        res = run_broadcast(g, DecayProtocol(), source=0, seed=3)
        assert res.completed

    def test_completes_on_clique(self):
        res = run_broadcast(complete_graph(16), DecayProtocol(), source=0, seed=4)
        assert res.completed

    def test_custom_phase_length(self):
        proto = DecayProtocol(phase_length=3)
        res = run_broadcast(hypercube(3), proto, source=0, seed=5)
        assert res.completed

    def test_seed_reproducibility(self):
        a = run_broadcast(hypercube(4), DecayProtocol(), source=0, seed=9)
        b = run_broadcast(hypercube(4), DecayProtocol(), source=0, seed=9)
        assert a.rounds == b.rounds
        assert (a.first_informed_round == b.first_informed_round).all()


class TestRoundRobin:
    def test_always_completes(self):
        for g in (cplus_graph(6), hypercube(3), complete_graph(7)):
            res = run_broadcast(g, RoundRobinProtocol(), source=0, seed=0)
            assert res.completed

    def test_collision_free(self):
        # At most one transmitter per round -> every round with a frontier
        # transmitter informs all its uninformed neighbours.
        g = complete_graph(6)
        res = run_broadcast(g, RoundRobinProtocol(), source=0, seed=0)
        assert res.completed
        assert res.rounds <= 6  # vertex 0 transmits in round 1... n
