"""Batched engine: seeded batch/loop equivalence and result invariants.

The contract under test: ``run_broadcast_batch(..., trials=T, seed=master)``
must be bit-for-bit identical to ``T`` standalone ``run_broadcast`` calls
seeded with ``spawn_seeds(master, T)`` — for natively vectorized protocols
and for legacy protocols riding the clone adapter alike.
"""

import numpy as np
import pytest

from repro._util import as_rng, spawn_seeds
from repro.graphs import cplus_graph, hypercube, path_graph
from repro.radio import (
    AlohaProtocol,
    BroadcastProtocol,
    DecayProtocol,
    FloodingProtocol,
    RoundRobinProtocol,
    SpokesmanBroadcastProtocol,
    run_broadcast,
    run_broadcast_batch,
)

TRIALS = 6
MASTER = 1234


class LegacyRandomProtocol(BroadcastProtocol):
    """Stateful, rng-consuming protocol with no batch override — exercises
    the default clone adapter."""

    name = "legacy-random"

    def reset(self, network, source, rng):
        super().reset(network, source, rng)
        self.calls = 0

    def transmitters(self, round_index, informed, network):
        self.calls += 1
        draw = self._rng.random(network.n) < 0.5
        return draw & informed


def _protocol_factories():
    return [
        FloodingProtocol,
        RoundRobinProtocol,
        DecayProtocol,
        lambda: AlohaProtocol(0.3),
        SpokesmanBroadcastProtocol,
        LegacyRandomProtocol,
    ]


def _assert_trial_equal(batch, t, single):
    bt = batch.trial(t)
    assert bt.rounds == single.rounds
    assert bt.completed == single.completed
    assert bt.transmissions == single.transmissions
    assert (bt.first_informed_round == single.first_informed_round).all()
    assert (bt.informed_per_round == single.informed_per_round).all()


class TestBatchLoopEquivalence:
    @pytest.mark.parametrize(
        "factory", _protocol_factories(),
        ids=["flooding", "round-robin", "decay", "aloha", "spokesman",
             "legacy-adapter"],
    )
    def test_seeded_batch_matches_seeded_loop(self, factory):
        g = hypercube(5)
        batch = run_broadcast_batch(g, factory(), trials=TRIALS, seed=MASTER)
        seeds = spawn_seeds(as_rng(MASTER), TRIALS)
        for t, seed in enumerate(seeds):
            single = run_broadcast(g, factory(), seed=seed)
            _assert_trial_equal(batch, t, single)

    def test_equivalence_with_incomplete_trials(self):
        # Flooding deadlocks on C+; capped runs must agree too.
        g = cplus_graph(8)
        batch = run_broadcast_batch(
            g, FloodingProtocol(), trials=4, seed=MASTER, max_rounds=20
        )
        assert not batch.completed.any()
        seeds = spawn_seeds(as_rng(MASTER), 4)
        for t, seed in enumerate(seeds):
            single = run_broadcast(
                g, FloodingProtocol(), seed=seed, max_rounds=20
            )
            _assert_trial_equal(batch, t, single)

    def test_batch_reproducible(self):
        g = hypercube(4)
        a = run_broadcast_batch(g, DecayProtocol(), trials=5, seed=7)
        b = run_broadcast_batch(g, DecayProtocol(), trials=5, seed=7)
        assert (a.rounds == b.rounds).all()
        assert (a.first_informed_round == b.first_informed_round).all()

    def test_trials_are_independent(self):
        batch = run_broadcast_batch(
            hypercube(5), DecayProtocol(), trials=16, seed=0
        )
        # Different streams -> not all trials take identical time.
        assert len(set(batch.rounds.tolist())) > 1

    def test_single_run_drives_the_passed_instance(self):
        # The classic contract: a T=1 run leaves its state on the protocol
        # object itself (no clone), so callers can introspect afterwards.
        proto = LegacyRandomProtocol()
        res = run_broadcast(hypercube(4), proto, seed=0)
        assert proto.calls == res.rounds

    def test_legacy_override_of_vectorized_builtin_is_honored(self):
        # Subclassing a natively vectorized protocol through the legacy
        # hook must route through the clone adapter, not the inherited
        # vectorized path.
        class EveryOtherRoundDecay(DecayProtocol):
            def transmitters(self, round_index, informed, network):
                if round_index % 2:
                    return np.zeros(network.n, dtype=bool)
                return super().transmitters(round_index, informed, network)

        g = hypercube(5)
        batch = run_broadcast_batch(
            g, EveryOtherRoundDecay(), trials=4, seed=MASTER
        )
        seeds = spawn_seeds(as_rng(MASTER), 4)
        for t, seed in enumerate(seeds):
            single = run_broadcast(g, EveryOtherRoundDecay(), seed=seed)
            _assert_trial_equal(batch, t, single)
        # Odd round indices are silent; transmissions in even round index
        # r land as first-informed round r + 1, so every non-source
        # arrival time is odd — proof the override actually ran.
        arrivals = batch.first_informed_round[1:, :]
        assert (arrivals[arrivals >= 0] % 2 == 1).all()

    def test_vectorized_protocol_without_select_trials(self):
        # A stateless vectorized protocol may ignore select_trials; the
        # base default must be a safe no-op when trials complete.
        class VectorFlood(BroadcastProtocol):
            name = "vector-flood"

            def reset_batch(self, network, source, rngs):
                pass

            def transmitters(self, round_index, informed, network):
                return informed.copy()

            def transmitters_batch(self, round_index, informed, network):
                return informed.copy()

        batch = run_broadcast_batch(path_graph(5), VectorFlood(), trials=3, seed=0)
        assert batch.completed.all()
        assert (batch.rounds == 4).all()


class TestBatchResultShapes:
    @pytest.fixture(scope="class")
    def batch(self):
        return run_broadcast_batch(
            hypercube(4), DecayProtocol(), trials=TRIALS, seed=3
        )

    def test_shapes(self, batch):
        n = 16
        assert batch.trials == TRIALS
        assert batch.rounds.shape == (TRIALS,)
        assert batch.completed.shape == (TRIALS,)
        assert batch.transmissions.shape == (TRIALS,)
        assert batch.first_informed_round.shape == (n, TRIALS)
        assert batch.informed_per_round.shape == (int(batch.rounds.max()), TRIALS)

    def test_dtypes(self, batch):
        assert batch.rounds.dtype == np.int64
        assert batch.completed.dtype == bool
        assert batch.transmissions.dtype == np.int64
        assert batch.first_informed_round.dtype == np.int64
        assert batch.informed_per_round.dtype == np.int64

    def test_informed_counts_monotone_per_trial(self, batch):
        assert (np.diff(batch.informed_per_round, axis=0) >= 0).all()

    def test_rows_past_completion_stay_full(self, batch):
        n = batch.first_informed_round.shape[0]
        for t in range(batch.trials):
            r = int(batch.rounds[t])
            assert (batch.informed_per_round[r:, t] == n).all()

    def test_aggregates(self, batch):
        assert batch.completion_rate == 1.0
        assert batch.mean_rounds == pytest.approx(batch.rounds.mean())
        qs = batch.round_quantiles((0.0, 0.5, 1.0))
        assert qs[0] == batch.rounds.min()
        assert qs[2] == batch.rounds.max()

    def test_trial_index_validation(self, batch):
        with pytest.raises(IndexError):
            batch.trial(TRIALS)

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            run_broadcast_batch(path_graph(4), FloodingProtocol(), trials=0)

    def test_trial_rngs_length_validation(self):
        with pytest.raises(ValueError):
            run_broadcast_batch(
                path_graph(4), FloodingProtocol(), trials=3, trial_rngs=[0, 1]
            )

    def test_source_validation(self):
        with pytest.raises(ValueError):
            run_broadcast_batch(
                path_graph(4), FloodingProtocol(), trials=2, source=9
            )


class TestBatchedStep:
    def test_matrix_step_matches_columnwise(self):
        from repro.radio import RadioNetwork

        g = hypercube(4)
        net = RadioNetwork(g)
        gen = np.random.default_rng(0)
        mat = gen.random((g.n, 7)) < 0.4
        out = net.step(mat)
        assert out.shape == mat.shape
        for t in range(7):
            assert (out[:, t] == net.step(mat[:, t])).all()

    def test_matrix_validation(self):
        from repro.radio import RadioNetwork

        net = RadioNetwork(path_graph(3))
        with pytest.raises(ValueError):
            net.step(np.zeros((4, 2), dtype=bool))
        with pytest.raises(ValueError):
            net.step(np.zeros((3, 2, 2), dtype=bool))
