"""Channel layer: classic equivalence proofs, erasure RNG discipline,
collision-detection feedback, and fault-schedule semantics.

The two anchor invariants the satellite tests pin down:

* ``ClassicCollision`` reproduces the legacy ``RadioNetwork.step`` outputs
  exactly — single-trial ``(n,)`` and batched ``(n, T)`` alike;
* ``ErasureChannel(p=0)`` is bit-for-bit identical to the classic channel
  across whole seeded broadcast runs.
"""

import numpy as np
import pytest

from repro._util import as_rng, spawn_seeds
from repro.graphs import Graph, hypercube, path_graph, random_regular
from repro.radio import (
    AdversarialJamming,
    ClassicCollision,
    CollisionBackoffProtocol,
    CollisionDetection,
    DecayProtocol,
    ErasureChannel,
    FaultSchedule,
    FloodingProtocol,
    RadioNetwork,
    make_channel,
    parse_fault_spec,
    run_broadcast,
    run_broadcast_batch,
)

MASTER = 424242


def _random_masks(n, trials, seed):
    gen = np.random.default_rng(seed)
    return gen.random((n, trials)) < 0.4


class TestClassicEquivalence:
    """ClassicCollision must be bit-for-bit the pre-channel engine."""

    def test_single_trial_matches_legacy_formula(self):
        g = hypercube(5)
        net = RadioNetwork(g)
        legacy = RadioNetwork(g, channel=ClassicCollision())
        for seed in range(5):
            mask = _random_masks(g.n, 1, seed)[:, 0]
            counts = g.adjacency @ mask.astype(np.int32)
            expected = (counts == 1) & ~mask
            assert (net.step(mask) == expected).all()
            assert (legacy.step(mask, round_index=seed) == expected).all()
            assert (net.step(mask) == net.step_naive(mask)).all()

    def test_batch_matches_legacy_formula(self):
        g = random_regular(64, 6, rng=0)
        net = RadioNetwork(g, channel=ClassicCollision())
        mat = _random_masks(g.n, 9, 3)
        out = net.step(mat, round_index=7)
        counts = g.adjacency @ mat.astype(np.int32)
        assert (out == ((counts == 1) & ~mat)).all()
        for t in range(mat.shape[1]):
            assert (out[:, t] == net.step(mat[:, t])).all()

    def test_seeded_run_matches_default_channel(self):
        g = hypercube(5)
        base = run_broadcast_batch(g, DecayProtocol(), trials=8, seed=MASTER)
        classic = run_broadcast_batch(
            g, DecayProtocol(), trials=8, seed=MASTER, channel=ClassicCollision()
        )
        assert (base.rounds == classic.rounds).all()
        assert (base.transmissions == classic.transmissions).all()
        assert (base.first_informed_round == classic.first_informed_round).all()
        assert (base.informed_per_round == classic.informed_per_round).all()


class TestErasureChannel:
    def test_p_zero_is_classic_bit_for_bit(self):
        g = hypercube(5)
        base = run_broadcast_batch(g, DecayProtocol(), trials=8, seed=MASTER)
        erased = run_broadcast_batch(
            g, DecayProtocol(), trials=8, seed=MASTER, channel=ErasureChannel(0.0)
        )
        assert (base.rounds == erased.rounds).all()
        assert (base.transmissions == erased.transmissions).all()
        assert (base.first_informed_round == erased.first_informed_round).all()
        single = run_broadcast(
            g,
            DecayProtocol(),
            seed=spawn_seeds(as_rng(MASTER), 8)[0],
            channel=ErasureChannel(0.0),
        )
        assert single.rounds == int(base.rounds[0])

    def test_batch_matches_seeded_loop(self):
        g = hypercube(5)
        batch = run_broadcast_batch(
            g, DecayProtocol(), trials=6, seed=MASTER, channel=ErasureChannel(0.25)
        )
        for t, seed in enumerate(spawn_seeds(as_rng(MASTER), 6)):
            single = run_broadcast(
                g, DecayProtocol(), seed=seed, channel=ErasureChannel(0.25)
            )
            assert single.rounds == int(batch.rounds[t])
            assert single.transmissions == int(batch.transmissions[t])
            assert (
                single.first_informed_round == batch.first_informed_round[:, t]
            ).all()

    def test_erasure_slows_broadcast(self):
        g = random_regular(128, 8, rng=0)
        clean = run_broadcast_batch(g, DecayProtocol(), trials=16, seed=1)
        lossy = run_broadcast_batch(
            g, DecayProtocol(), trials=16, seed=1, channel=ErasureChannel(0.4)
        )
        assert lossy.mean_rounds > clean.mean_rounds

    def test_p_one_delivers_nothing(self):
        g = path_graph(4)
        res = run_broadcast_batch(
            g,
            FloodingProtocol(),
            trials=2,
            seed=0,
            max_rounds=30,
            channel=ErasureChannel(1.0),
        )
        assert not res.completed.any()
        assert (res.first_informed_round[1:, :] == -1).all()

    def test_requires_reset_before_direct_step(self):
        net = RadioNetwork(path_graph(3), channel=ErasureChannel(0.5))
        with pytest.raises(RuntimeError, match="reset"):
            net.step(np.zeros(3, dtype=bool))

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            ErasureChannel(-0.1)
        with pytest.raises(ValueError):
            ErasureChannel(1.5)


class TestCollisionDetection:
    def test_reception_identical_for_blind_protocols(self):
        g = hypercube(5)
        base = run_broadcast_batch(g, DecayProtocol(), trials=8, seed=MASTER)
        cd = run_broadcast_batch(
            g, DecayProtocol(), trials=8, seed=MASTER, channel=CollisionDetection()
        )
        assert (base.rounds == cd.rounds).all()
        assert (base.first_informed_round == cd.first_informed_round).all()

    def test_feedback_marks_silent_collision_victims(self):
        # Star: both leaves transmit -> the centre is a collision victim.
        g = path_graph(3)  # 0 - 1 - 2; vertex 1 is the centre
        net = RadioNetwork(g, channel=CollisionDetection())
        mask = np.array([True, False, True])
        received = net.step(mask)
        assert not received.any()
        assert (net.channel.feedback == np.array([False, True, False])).all()

    def test_backoff_protocol_completes_and_matches_loop(self):
        g = hypercube(5)
        batch = run_broadcast_batch(
            g,
            CollisionBackoffProtocol(),
            trials=6,
            seed=MASTER,
            channel=CollisionDetection(),
            max_rounds=5000,
        )
        assert batch.completed.all()
        for t, seed in enumerate(spawn_seeds(as_rng(MASTER), 6)):
            single = run_broadcast(
                g,
                CollisionBackoffProtocol(),
                seed=seed,
                channel=CollisionDetection(),
                max_rounds=5000,
            )
            assert single.rounds == int(batch.rounds[t])
            assert (
                single.first_informed_round == batch.first_informed_round[:, t]
            ).all()


class TestFaultSchedule:
    def test_parse_round_windows_and_targets(self):
        sched = parse_fault_spec("jam@0-9:0,1,2;crash@5:7;down@3:0-1,2-3;up@8:0-1")
        assert sched.jam_windows == ((0, 9, (0, 1, 2)),)
        assert sched.crashes == ((5, (7,)),)
        assert sched.edge_events == (
            (3, False, ((0, 1), (2, 3))),
            (8, True, ((0, 1),)),
        )

    def test_parse_single_round_jam(self):
        sched = parse_fault_spec("jam@4:3")
        assert sched.jam_windows == ((4, 4, (3,)),)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_fault_spec("jam:broken")
        with pytest.raises(ValueError):
            parse_fault_spec("melt@3:1")
        with pytest.raises(ValueError):
            parse_fault_spec("jam@9-2:1")

    def test_masks(self):
        sched = parse_fault_spec("jam@2-3:1;crash@4:0")
        assert not sched.jammed_mask(1, 3).any()
        assert sched.jammed_mask(2, 3)[1]
        assert not sched.crashed_mask(3, 3).any()
        assert sched.crashed_mask(4, 3)[0]
        assert sched.ever_crashed_mask(3)[0]
        assert not FaultSchedule().jam_windows and FaultSchedule().is_empty


class TestAdversarialJamming:
    def test_jammed_vertices_hear_nothing_during_window(self):
        g = hypercube(5)
        neighbours = [1, 2, 4, 8, 16]
        channel = AdversarialJamming(
            FaultSchedule(jam_windows=((0, 5, tuple(neighbours)),))
        )
        res = run_broadcast_batch(
            g, DecayProtocol(), trials=4, seed=0, channel=channel, max_rounds=4000
        )
        assert res.completed.all()
        arrivals = res.first_informed_round[neighbours, :]
        assert arrivals.min() > 5

    def test_crashed_vertices_excluded_from_coverage_and_energy(self):
        g = hypercube(5)
        channel = AdversarialJamming(FaultSchedule(crashes=((0, (31,)),)))
        res = run_broadcast_batch(
            g, DecayProtocol(), trials=4, seed=0, channel=channel, max_rounds=4000
        )
        assert res.completed.all()
        assert (res.first_informed_round[31, :] == -1).all()
        # Crash the source itself in a flooding run: zero energy is spent.
        ch2 = AdversarialJamming(FaultSchedule(crashes=((0, (0,)),)))
        stuck = run_broadcast_batch(
            g, FloodingProtocol(), trials=2, seed=0, channel=ch2, max_rounds=20
        )
        assert (stuck.transmissions == 0).all()
        assert not stuck.completed.any()

    def test_edge_down_partitions_and_up_heals(self):
        g = path_graph(4)
        cut = run_broadcast_batch(
            g,
            FloodingProtocol(),
            trials=2,
            seed=0,
            channel=AdversarialJamming("down@0:2-3"),
            max_rounds=40,
        )
        assert not cut.completed.any()
        healed = run_broadcast_batch(
            g,
            FloodingProtocol(),
            trials=2,
            seed=0,
            channel=AdversarialJamming("down@0:2-3;up@10:2-3"),
            max_rounds=40,
        )
        assert healed.completed.all()
        assert (healed.first_informed_round[3, :] > 10).all()

    def test_empty_schedule_is_classic(self):
        g = hypercube(4)
        base = run_broadcast_batch(g, DecayProtocol(), trials=4, seed=MASTER)
        faulty = run_broadcast_batch(
            g,
            DecayProtocol(),
            trials=4,
            seed=MASTER,
            channel=AdversarialJamming(FaultSchedule()),
        )
        assert (base.rounds == faulty.rounds).all()
        assert (base.first_informed_round == faulty.first_informed_round).all()


class TestMakeChannel:
    def test_registry_names(self):
        assert isinstance(make_channel("classic"), ClassicCollision)
        assert isinstance(make_channel("collision-detection"), CollisionDetection)
        assert isinstance(make_channel("cd"), CollisionDetection)
        assert isinstance(make_channel("erasure", erasure_p=0.3), ErasureChannel)
        assert make_channel("erasure", erasure_p=0.3).p == 0.3
        jam = make_channel("jamming", faults="crash@1:0")
        assert isinstance(jam, AdversarialJamming)
        assert jam.schedule.crashes == ((1, (0,)),)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown channel"):
            make_channel("telepathy")


class TestFaultValidation:
    def test_out_of_range_vertices_rejected_at_reset(self):
        g = path_graph(4)
        for spec in ("jam@0-2:99", "crash@0:-1", "down@0:0-9"):
            with pytest.raises(ValueError, match="out of range"):
                run_broadcast_batch(
                    g,
                    FloodingProtocol(),
                    trials=2,
                    seed=0,
                    channel=AdversarialJamming(spec),
                    max_rounds=5,
                )

    def test_self_loop_edge_event_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            FaultSchedule(edge_events=((0, False, ((2, 2),)),)).validate(4)

    def test_up_events_past_dtype_bound_do_not_overflow(self):
        # Base star has hub degree 127 (int8 counts); up events raise it to
        # 257, where an int8 product would wrap 257 -> 1 and fabricate a
        # reception at the collided hub.
        hub_degree, total = 127, 257
        g = Graph(total + 1, [(0, v) for v in range(1, hub_degree + 1)])
        extra = ",".join(f"0-{v}" for v in range(hub_degree + 1, total + 1))
        channel = AdversarialJamming(parse_fault_spec(f"up@0:{extra}"))
        net = RadioNetwork(g, channel=channel)
        channel.reset(net, [0])
        transmitting = np.zeros(g.n, dtype=bool)
        transmitting[1:] = True
        received = net.step(transmitting, round_index=0)
        assert not received[0]
