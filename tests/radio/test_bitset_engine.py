"""Packed-bitset engine: dense equivalence, kernels, budget sharding.

The headline contract: for every supported channel and protocol the
``bitset`` backend of :func:`repro.radio.run_broadcast_batch` is
bit-for-bit identical to ``dense`` — same rounds, same per-trial
trajectories, same first-informed matrix, same energy totals.  The
property is pinned across all registered graph families, both packed
channels, and word-boundary trial counts, then the packed kernels and
the :class:`MemoryBudget` column sharder are unit-tested on their own.
"""

import numpy as np
import pytest

from repro._util import counter_coin_blocks, counter_coins, parse_byte_size
from repro.graphs import random_regular
from repro.graphs.graph import CSRAdjacency, Graph
from repro.radio import (
    DecayProtocol,
    FloodingProtocol,
    MemoryBudget,
    run_broadcast_batch,
)
from repro.radio.bitset import (
    TransmissionTally,
    exactly_one_words,
    full_mask_words,
    pack_bool_matrix,
    packed_counter_coins,
    unpack_words,
    word_column_counts,
    word_count,
)
from repro.radio.broadcast import _resolve_engine
from repro.radio.channel import ClassicCollision, CollisionDetection
from repro.radio.network import RadioNetwork
from repro.scenario import Scenario

RESULT_FIELDS = (
    "rounds",
    "completed",
    "informed_per_round",
    "first_informed_round",
    "transmissions",
)

#: One small instance of every registered graph family (13 at present —
#: the parametrization below asserts the list stays in sync with the
#: registry, so a newly registered family must join the equivalence net).
FAMILY_SPECS = {
    "chain": "chain(4, 2)",
    "chordal_cycle": "chordal_cycle(11)",
    "complete": "complete(24)",
    "cplus": "cplus(8)",
    "cycle": "cycle(25)",
    "erdos_renyi": "erdos_renyi(40, 0.1)",
    "grid": "grid(5)",
    "hypercube": "hypercube(4)",
    "margulis": "margulis(3)",
    "path": "path(20)",
    "random_regular": "random_regular(40, 4)",
    "star": "star(20)",
    "tree": "tree(3)",
}

#: Word-boundary trial counts: below/at/above one word, and multi-word.
BOUNDARY_TRIALS = (1, 63, 64, 65, 257)


def assert_batches_equal(a, b, context=""):
    for field in RESULT_FIELDS:
        assert np.array_equal(getattr(a, field), getattr(b, field)), (
            f"{context}: field {field} diverged between engines"
        )


def test_family_specs_cover_registry():
    from repro.scenario import GRAPHS

    assert sorted(FAMILY_SPECS) == GRAPHS.names()


@pytest.mark.parametrize("channel", ["classic", "erasure(0.3)"])
@pytest.mark.parametrize("family", sorted(FAMILY_SPECS))
def test_bitset_equals_dense_across_families(family, channel):
    for trials in BOUNDARY_TRIALS:
        spec = (
            f"{FAMILY_SPECS[family]} | decay | {channel} "
            f"| trials={trials} | seed=17"
        )
        dense = Scenario.from_string(f"{spec} | engine=dense").run()
        bitset = Scenario.from_string(f"{spec} | engine=bitset").run()
        assert_batches_equal(dense, bitset, f"{family}/{channel}/T={trials}")


@pytest.mark.parametrize(
    "graph",
    [
        Graph(1, []),  # single vertex, nothing to inform
        Graph(3, [(0, 1)]),  # isolated vertex 2
        Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)]),  # disconnected halves
        Graph(4, []),  # no edges at all
    ],
    ids=["n1", "isolated", "disconnected", "edgeless"],
)
def test_bitset_equals_dense_on_degenerate_graphs(graph):
    for proto in (DecayProtocol(), FloodingProtocol()):
        for trials in (1, 64, 65):
            dense = run_broadcast_batch(
                graph, proto, trials=trials, seed=5,
                max_rounds=64, engine="dense",
            )
            bitset = run_broadcast_batch(
                graph, proto, trials=trials, seed=5,
                max_rounds=64, engine="bitset",
            )
            assert_batches_equal(dense, bitset, f"degenerate n={graph.n}")
            if graph.n > 1:
                assert not dense.completed.any()


# ----------------------------------------------------------------------
# Packed kernels
# ----------------------------------------------------------------------


def test_word_count_and_full_mask():
    assert [word_count(t) for t in (0, 1, 63, 64, 65, 257)] == [0, 1, 1, 1, 2, 5]
    mask = full_mask_words(65)
    assert mask.shape == (2,)
    assert mask[0] == np.uint64(0xFFFFFFFFFFFFFFFF)
    assert mask[1] == np.uint64(1)
    assert full_mask_words(0).shape == (0,)
    with pytest.raises(ValueError, match="non-negative"):
        full_mask_words(-1)


@pytest.mark.parametrize("trials", BOUNDARY_TRIALS)
def test_pack_unpack_round_trip(trials):
    rng = np.random.default_rng(trials)
    mat = rng.random((37, trials)) < 0.4
    words = pack_bool_matrix(mat)
    assert words.shape == (37, word_count(trials))
    assert words.dtype == np.uint64
    assert np.array_equal(unpack_words(words, trials), mat)
    # Tail bits beyond `trials` must be zero (the running-mask invariant).
    tail = unpack_words(words, word_count(trials) * 64)[:, trials:]
    assert not tail.any()


def test_pack_bool_matrix_validates_shape():
    with pytest.raises(ValueError, match="bool matrix"):
        pack_bool_matrix(np.zeros(8, dtype=bool))
    with pytest.raises(ValueError, match="cannot unpack"):
        unpack_words(np.zeros((4, 1), dtype=np.uint64), 65)


@pytest.mark.parametrize("shape", [(64, 3), (1, 1), (130, 2)])
def test_word_column_counts_matches_unpacked_sum(shape):
    rng = np.random.default_rng(7)
    words = rng.integers(0, 2**63, size=shape, dtype=np.uint64)
    counts = word_column_counts(words)
    expect = unpack_words(words, shape[1] * 64).sum(axis=0)
    assert np.array_equal(counts, expect)
    assert word_column_counts(np.zeros((0, 2), dtype=np.uint64)).sum() == 0


@pytest.mark.parametrize("trials", (1, 64, 65, 130))
def test_packed_counter_coins_matches_dense_coins(trials):
    rng = np.random.default_rng(3)
    n = 57
    keys = rng.integers(0, 2**64, size=trials, dtype=np.uint64)
    for p in (0.0, 1e-9, 0.35, 0.999, 1.0):
        for rows in (None, rng.choice(n, size=19, replace=False)):
            for active in (None, rng.random(trials) < 0.6):
                packed = packed_counter_coins(
                    keys, 4, n, p, rows=rows, active=active
                )
                ref = counter_coins(keys, 4, n, p)
                if active is not None:
                    ref = ref & active[None, :]
                if rows is not None:
                    keep = np.zeros(n, dtype=bool)
                    keep[rows] = True
                    ref = ref & keep[:, None]
                assert np.array_equal(packed, pack_bool_matrix(ref)), (
                    f"p={p} rows={rows is not None} active={active is not None}"
                )


def test_counter_coin_blocks_matches_sliced_counter_coins():
    rng = np.random.default_rng(11)
    keys = rng.integers(0, 2**64, size=9, dtype=np.uint64)
    rows = rng.choice(100, size=41, replace=False)
    for p in (0.0, 0.4, 1.0):
        full = counter_coins(keys, 2, 100, p, rows=rows)
        rebuilt = np.empty_like(full)
        for start, chunk in counter_coin_blocks(
            keys, 2, 100, p, rows=rows, block=16
        ):
            rebuilt[start : start + chunk.shape[0]] = chunk
        assert np.array_equal(rebuilt, full), f"p={p}"


def test_transmission_tally_matches_direct_counts():
    rng = np.random.default_rng(13)
    tally = TransmissionTally()
    expect = np.zeros(64 * 2, dtype=np.int64)
    for _ in range(75):  # > one word of rounds → multi-plane carries
        layer = rng.integers(0, 2**63, size=(23, 2), dtype=np.uint64)
        tally.add(layer)
        expect += word_column_counts(layer)
    assert np.array_equal(tally.drain(128), expect)
    assert tally.drain(128) is None  # drained planes reset


@pytest.mark.parametrize("regular", [True, False], ids=["regular", "irregular"])
def test_exactly_one_words_matches_neighbor_counts(regular):
    rng = np.random.default_rng(5)
    if regular:
        graph = random_regular(48, 4, rng=2)
    else:
        graph = Graph(
            30, [(u, v) for u in range(30) for v in range(u + 1, 30)
                 if rng.random() < 0.15]
        )
    plan_kind = graph.csr.gather_plan()[0]
    assert plan_kind == ("regular" if regular else "general")
    network = RadioNetwork(graph)
    for trials in (1, 64, 129):
        mask = rng.random((graph.n, trials)) < 0.3
        words = pack_bool_matrix(mask)
        got = exactly_one_words(graph.csr, words)
        counts = network.transmit_counts(mask)
        assert np.array_equal(unpack_words(got, trials), counts == 1)


# ----------------------------------------------------------------------
# Memory budget sharding
# ----------------------------------------------------------------------


def test_memory_budget_max_trials():
    budget = MemoryBudget(10 * 1000 * 4)
    assert budget.max_trials(1000, "bitset") == 4
    assert budget.max_trials(1000, "dense") == 2
    assert MemoryBudget(1).max_trials(10**9) == 1  # always at least one
    with pytest.raises(ValueError, match=">= 1 byte"):
        MemoryBudget(0)


@pytest.mark.parametrize("engine", ["dense", "bitset"])
def test_memory_budget_sharding_is_bit_identical(engine):
    graph = random_regular(128, 4, rng=3)
    whole = run_broadcast_batch(
        graph, DecayProtocol(), trials=20, seed=9, engine=engine
    )
    budget = MemoryBudget(
        MemoryBudget._PER_TRIAL_NODE_BYTES[engine] * graph.n * 3
    )
    assert budget.max_trials(graph.n, engine) == 3  # 7 column shards
    sharded = run_broadcast_batch(
        graph, DecayProtocol(), trials=20, seed=9,
        engine=engine, memory_budget=budget,
    )
    assert_batches_equal(whole, sharded, f"{engine} budget sharding")


def test_memory_budget_accepts_plain_bytes():
    graph = random_regular(64, 4, rng=1)
    plain = run_broadcast_batch(
        graph, DecayProtocol(), trials=8, seed=2, engine="bitset",
        memory_budget=10 * graph.n * 2,
    )
    rich = run_broadcast_batch(
        graph, DecayProtocol(), trials=8, seed=2, engine="bitset",
        memory_budget=MemoryBudget(10 * graph.n * 2),
    )
    assert_batches_equal(plain, rich, "int vs MemoryBudget")
    with pytest.raises(TypeError, match="memory_budget"):
        run_broadcast_batch(
            graph, DecayProtocol(), trials=2, seed=2, memory_budget=1.5
        )


# ----------------------------------------------------------------------
# Engine selection
# ----------------------------------------------------------------------


def test_explicit_bitset_on_unsupported_channel_warns_and_runs_dense():
    graph = random_regular(48, 4, rng=0)
    with pytest.warns(RuntimeWarning, match="does not support"):
        forced = run_broadcast_batch(
            graph, DecayProtocol(), trials=6, seed=4,
            channel=CollisionDetection(), engine="bitset",
        )
    dense = run_broadcast_batch(
        graph, DecayProtocol(), trials=6, seed=4,
        channel=CollisionDetection(), engine="dense",
    )
    assert_batches_equal(forced, dense, "unsupported-channel fallback")


def test_resolve_engine_auto_rules():
    from repro.workload import AggregateWorkload, BroadcastWorkload

    proto = DecayProtocol()
    classic, detect = ClassicCollision(), CollisionDetection()
    bcast, agg = BroadcastWorkload(), AggregateWorkload()
    assert _resolve_engine("auto", proto, classic, 100_000, bcast) == "bitset"
    assert _resolve_engine("auto", proto, classic, 1_000, bcast) == "dense"
    assert _resolve_engine("auto", proto, detect, 100_000, bcast) == "dense"
    assert _resolve_engine("dense", proto, classic, 100_000, bcast) == "dense"
    # Value workloads fold per-cell payloads the packed engine cannot
    # represent: auto picks dense, explicit bitset warns and falls back.
    assert _resolve_engine("auto", proto, classic, 100_000, agg) == "dense"
    with pytest.warns(RuntimeWarning, match="falling back to dense"):
        assert (
            _resolve_engine("bitset", proto, classic, 100_000, agg) == "dense"
        )
    with pytest.raises(ValueError, match="engine must be one of"):
        _resolve_engine("gpu", proto, classic, 10, bcast)


def test_invalid_engine_value_rejected():
    graph = random_regular(16, 4, rng=0)
    with pytest.raises(ValueError, match="engine must be one of"):
        run_broadcast_batch(
            graph, DecayProtocol(), trials=2, seed=1, engine="sparse"
        )


# ----------------------------------------------------------------------
# Scenario / spec / CLI threading
# ----------------------------------------------------------------------


def test_scenario_engine_round_trip_and_default_omission():
    s = Scenario.from_string(
        "star(12) | decay | classic | trials=3 | seed=2 | engine=bitset"
    )
    assert s.engine == "bitset"
    assert "engine=bitset" in s.describe()
    assert Scenario.from_string(s.describe()) == s
    # Default engine stays out of describe() and to_dict() so pre-engine
    # scenario strings and cache keys are unchanged.
    auto = Scenario.from_string("star(12) | decay | classic | trials=3")
    assert auto.engine == "auto"
    assert "engine" not in auto.describe()
    assert "engine" not in auto.to_dict()
    with pytest.raises(ValueError, match="engine"):
        Scenario.from_string("star(12) | decay | classic | engine=warp")


def test_scenario_memory_budget_parses_byte_sizes():
    s = Scenario.from_string(
        "star(12) | decay | classic | trials=3 | memory_budget=1MiB"
    )
    assert s.memory_budget == 2**20
    assert parse_byte_size("2GiB") == 2 * 2**30
    assert parse_byte_size("512") == 512
    with pytest.raises(ValueError):
        parse_byte_size("twelve parsecs")


def test_cli_broadcast_engine_flag(capsys):
    from repro.cli import build_parser, main

    args = build_parser().parse_args(
        ["broadcast", "--scenario", "star(16) | decay", "--engine", "bitset"]
    )
    assert args.engine == "bitset"
    code = main(
        ["broadcast", "--scenario", "star(16) | decay | classic",
         "--trials", "4", "--seed", "3", "--engine", "bitset"]
    )
    assert code == 0
    assert "broadcast" in capsys.readouterr().out


# ----------------------------------------------------------------------
# CSR adjacency and direct-CSR samplers
# ----------------------------------------------------------------------


def test_csr_adjacency_views_and_narrow_dtypes():
    graph = random_regular(200, 6, rng=4)
    csr = graph.csr
    assert isinstance(csr, CSRAdjacency)
    assert csr.n == 200 and csr.nnz == 200 * 6
    assert csr.max_degree == 6
    assert csr.indices.dtype == np.uint8  # narrowest dtype for n=200
    degrees = np.diff(csr.indptr)
    assert (degrees == 6).all()
    assert np.array_equal(np.sort(csr.row(0)), np.sort(graph.neighbors(0)))


def test_graph_from_csr_round_trip_and_validation():
    g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    csr = g.csr
    again = Graph.from_csr(g.n, csr.indptr, csr.indices)
    assert again == g
    with pytest.raises(ValueError, match="indptr"):
        Graph.from_csr(3, np.array([0, 1]), np.array([1]))
    with pytest.raises(ValueError, match="out of range"):
        Graph.from_csr(2, np.array([0, 1, 2]), np.array([5, 0]))


def test_random_regular_builds_direct_csr_at_scale():
    graph = random_regular(5000, 4, rng=0)
    assert (graph.degrees == 4).all()
    assert graph.csr.gather_plan()[0] == "regular"
    with pytest.raises(ValueError, match="even"):
        random_regular(5, 3)
    with pytest.raises(ValueError, match="d < n"):
        random_regular(4, 5)


def test_margulis_expander_is_regular_csr():
    from repro.graphs import margulis_expander

    graph = margulis_expander(20)  # n = 400
    assert graph.n == 400
    assert graph.max_degree <= 8
    assert graph.is_connected()


class TestTelemetryKernels:
    """The restricted gather/scatter kernels the telemetry path leans on."""

    def _setup(self, n=200, d=6, w=2, seed=5):
        rng = np.random.default_rng(seed)
        graph = random_regular(n, d, rng=rng)
        words = rng.integers(0, 2**63, size=(n, w), dtype=np.uint64)
        return graph.csr, words

    @pytest.mark.parametrize("density", [0.0, 0.1, 0.5, 1.0])
    def test_any_neighbor_words_at_matches_full(self, density):
        from repro.radio.bitset import any_neighbor_words, any_neighbor_words_at

        csr, words = self._setup()
        rng = np.random.default_rng(1)
        rows = np.flatnonzero(rng.random(words.shape[0]) < density)
        full = any_neighbor_words(csr, words)
        assert np.array_equal(
            any_neighbor_words_at(csr, words, rows), full[rows]
        )

    def test_any_neighbor_words_at_single_word(self):
        from repro.radio.bitset import any_neighbor_words, any_neighbor_words_at

        csr, words = self._setup(w=1)
        rows = np.arange(0, words.shape[0], 3)
        assert np.array_equal(
            any_neighbor_words_at(csr, words, rows),
            any_neighbor_words(csr, words)[rows],
        )

    def test_any_neighbor_words_at_irregular_plan(self):
        from repro.radio.bitset import any_neighbor_words, any_neighbor_words_at
        from repro.graphs import cplus_graph

        csr = cplus_graph(9).csr  # irregular degrees: general gather plan
        rng = np.random.default_rng(2)
        words = rng.integers(0, 2**63, size=(10, 1), dtype=np.uint64)
        rows = np.array([0, 3, 7])
        assert np.array_equal(
            any_neighbor_words_at(csr, words, rows),
            any_neighbor_words(csr, words)[rows],
        )

    @pytest.mark.parametrize("w", [1, 3])
    def test_scatter_matches_pull_fold_on_covering_rows(self, w):
        from repro.radio.bitset import any_neighbor_words, scatter_neighbor_words

        csr, words = self._setup(w=w)
        # Sparse support: zero out most rows, push from the survivors.
        rng = np.random.default_rng(3)
        keep = rng.random(words.shape[0]) < 0.1
        words[~keep] = 0
        rows = np.flatnonzero(keep)
        assert np.array_equal(
            scatter_neighbor_words(csr, words, rows),
            any_neighbor_words(csr, words),
        )

    def test_scatter_empty_rows_is_zero(self):
        from repro.radio.bitset import scatter_neighbor_words

        csr, words = self._setup(w=1)
        out = scatter_neighbor_words(
            csr, words, np.empty(0, dtype=np.intp)
        )
        assert out.shape == words.shape and out.sum() == 0


class TestWordColumnCountsBincountPath:
    """word_column_counts picks a byte-bincount path above a row
    threshold; both paths must agree exactly."""

    @pytest.mark.parametrize("n", [2047, 2048, 2049, 5000])
    @pytest.mark.parametrize("w", [1, 2, 5])
    def test_paths_agree_around_threshold(self, n, w):
        rng = np.random.default_rng(11)
        words = rng.integers(0, 2**64, size=(n, w), dtype=np.uint64)
        counts = word_column_counts(words)
        expect = unpack_words(words, w * 64).sum(axis=0)
        assert np.array_equal(counts, expect)

    def test_large_all_ones_and_zeros(self):
        n = 4096
        ones = np.full((n, 1), np.uint64(2**64 - 1), dtype=np.uint64)
        assert (word_column_counts(ones) == n).all()
        assert word_column_counts(np.zeros((n, 1), dtype=np.uint64)).sum() == 0

    def test_non_contiguous_input(self):
        rng = np.random.default_rng(4)
        big = rng.integers(0, 2**64, size=(4096, 4), dtype=np.uint64)
        view = big[:, 1:3]  # non-contiguous column slice
        expect = unpack_words(np.ascontiguousarray(view), 128).sum(axis=0)
        assert np.array_equal(word_column_counts(view), expect)
