"""Centralized spokesman-aided broadcast."""


import numpy as np

from repro.graphs import complete_graph, cplus_graph, hypercube, random_regular
from repro.radio import (
    DecayProtocol,
    SpokesmanBroadcastProtocol,
    run_broadcast,
)
from repro.spokesman import spokesman_recursive


class TestSpokesmanBroadcast:
    def test_cplus_two_rounds(self):
        # Round 1: source informs {x, y}; round 2: scheduler picks one of
        # them alone and the whole clique hears it.
        g = cplus_graph(9)
        res = run_broadcast(g, SpokesmanBroadcastProtocol(), source=0, seed=0)
        assert res.completed
        assert res.rounds == 2

    def test_clique_two_rounds(self):
        res = run_broadcast(
            complete_graph(10), SpokesmanBroadcastProtocol(), source=0, seed=0
        )
        assert res.completed and res.rounds == 1

    def test_hypercube_fast(self):
        res = run_broadcast(
            hypercube(5), SpokesmanBroadcastProtocol(), source=0, seed=0
        )
        assert res.completed
        assert res.rounds <= 16

    def test_beats_decay_on_expander(self):
        g = random_regular(64, 6, rng=10)
        genie = run_broadcast(g, SpokesmanBroadcastProtocol(), source=0, seed=1)
        decay = run_broadcast(g, DecayProtocol(), source=0, seed=1)
        assert genie.completed and decay.completed
        assert genie.rounds <= decay.rounds

    def test_custom_algorithm(self):
        proto = SpokesmanBroadcastProtocol(algorithm=spokesman_recursive)
        assert "recursive" in proto.name
        res = run_broadcast(hypercube(4), proto, source=0, seed=2)
        assert res.completed

    def test_progress_every_round(self):
        # The genie never wastes a round while a frontier exists.
        g = random_regular(32, 4, rng=11)
        res = run_broadcast(g, SpokesmanBroadcastProtocol(), source=0, seed=3)
        assert res.completed
        gains = np.diff(np.concatenate([[1], res.informed_per_round]))
        assert (gains >= 1).all()
