"""Detailed broadcast tracing and collision accounting."""

import pytest

from repro.graphs import cplus_graph, hypercube, path_graph
from repro.radio import (
    DecayProtocol,
    FloodingProtocol,
    SpokesmanBroadcastProtocol,
    run_broadcast,
    run_broadcast_traced,
)


class TestTracedRunner:
    def test_agrees_with_plain_runner(self):
        g = hypercube(4)
        plain = run_broadcast(g, DecayProtocol(), source=0, seed=7)
        traced = run_broadcast_traced(g, DecayProtocol(), source=0, seed=7)
        assert traced.completed == plain.completed
        assert len(traced.rounds) == plain.rounds
        assert (
            traced.first_informed_round == plain.first_informed_round
        ).all()
        assert traced.total_transmissions == plain.transmissions

    def test_path_flooding_no_collisions(self):
        # One frontier vertex per side: flooding a path never collides at
        # the frontier... but interior nodes hear both neighbours.
        g = path_graph(5)
        trace = run_broadcast_traced(g, FloodingProtocol(), source=0, seed=0)
        assert trace.completed
        first = trace.rounds[0]
        assert first.transmitters == 1
        assert first.collision_victims == 0

    def test_cplus_flooding_collision_storm(self):
        # Round 2 on C+: {s0, x, y} all transmit; every clique vertex hears
        # x and y -> all collide, nobody new is informed.
        g = cplus_graph(8)
        trace = run_broadcast_traced(
            g, FloodingProtocol(), source=0, max_rounds=5, seed=0
        )
        assert not trace.completed
        second = trace.rounds[1]
        assert second.newly_informed == 0
        assert second.collision_victims == 8 - 2  # the uninformed clique part
        assert second.collision_rate == 1.0

    def test_spokesman_low_collisions_on_cplus(self):
        g = cplus_graph(8)
        trace = run_broadcast_traced(
            g, SpokesmanBroadcastProtocol(), source=0, seed=0
        )
        assert trace.completed
        assert trace.mean_collision_rate <= 0.5

    def test_round_record_fields(self):
        g = path_graph(3)
        trace = run_broadcast_traced(g, FloodingProtocol(), source=0, seed=0)
        r = trace.rounds[0]
        assert r.round_index == 1
        assert r.receptions == 1
        assert r.newly_informed == 1

    def test_collision_rate_zero_without_contact(self):
        from repro.radio.trace import RoundRecord

        r = RoundRecord(1, 0, 0, 0, 0)
        assert r.collision_rate == 0.0

    def test_source_validation(self):
        with pytest.raises(ValueError):
            run_broadcast_traced(path_graph(3), FloodingProtocol(), source=9)

    def test_totals(self):
        g = path_graph(4)
        trace = run_broadcast_traced(g, FloodingProtocol(), source=0, seed=0)
        assert trace.total_transmissions == sum(
            r.transmitters for r in trace.rounds
        )
        assert trace.total_collision_victims == sum(
            r.collision_victims for r in trace.rounds
        )
