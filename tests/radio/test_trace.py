"""Detailed broadcast tracing and collision accounting."""

import pytest

from repro.graphs import cplus_graph, hypercube, path_graph
from repro.radio import (
    DecayProtocol,
    FloodingProtocol,
    SpokesmanBroadcastProtocol,
    run_broadcast,
    run_broadcast_traced,
)


class TestTracedRunner:
    def test_agrees_with_plain_runner(self):
        g = hypercube(4)
        plain = run_broadcast(g, DecayProtocol(), source=0, seed=7)
        traced = run_broadcast_traced(g, DecayProtocol(), source=0, seed=7)
        assert traced.completed == plain.completed
        assert len(traced.rounds) == plain.rounds
        assert (
            traced.first_informed_round == plain.first_informed_round
        ).all()
        assert traced.total_transmissions == plain.transmissions

    def test_path_flooding_no_collisions(self):
        # One frontier vertex per side: flooding a path never collides at
        # the frontier... but interior nodes hear both neighbours.
        g = path_graph(5)
        trace = run_broadcast_traced(g, FloodingProtocol(), source=0, seed=0)
        assert trace.completed
        first = trace.rounds[0]
        assert first.transmitters == 1
        assert first.collision_victims == 0

    def test_cplus_flooding_collision_storm(self):
        # Round 2 on C+: {s0, x, y} all transmit; every clique vertex hears
        # x and y -> all collide, nobody new is informed.
        g = cplus_graph(8)
        trace = run_broadcast_traced(
            g, FloodingProtocol(), source=0, max_rounds=5, seed=0
        )
        assert not trace.completed
        second = trace.rounds[1]
        assert second.newly_informed == 0
        assert second.collision_victims == 8 - 2  # the uninformed clique part
        assert second.collision_rate == 1.0

    def test_spokesman_low_collisions_on_cplus(self):
        g = cplus_graph(8)
        trace = run_broadcast_traced(
            g, SpokesmanBroadcastProtocol(), source=0, seed=0
        )
        assert trace.completed
        assert trace.mean_collision_rate <= 0.5

    def test_round_record_fields(self):
        g = path_graph(3)
        trace = run_broadcast_traced(g, FloodingProtocol(), source=0, seed=0)
        r = trace.rounds[0]
        assert r.round_index == 1
        assert r.receptions == 1
        assert r.newly_informed == 1

    def test_collision_rate_zero_without_contact(self):
        from repro.radio.trace import RoundRecord

        r = RoundRecord(1, 0, 0, 0, 0)
        assert r.collision_rate == 0.0

    def test_source_validation(self):
        with pytest.raises(ValueError):
            run_broadcast_traced(path_graph(3), FloodingProtocol(), source=9)

    def test_totals(self):
        g = path_graph(4)
        trace = run_broadcast_traced(g, FloodingProtocol(), source=0, seed=0)
        assert trace.total_transmissions == sum(
            r.transmitters for r in trace.rounds
        )
        assert trace.total_collision_victims == sum(
            r.collision_victims for r in trace.rounds
        )


def _reference_flooding_trace(graph, source, max_rounds=64):
    """The legacy serial tracer, re-derived: a pure-Python round loop with
    Section 1.1 semantics (receive iff silent with exactly one transmitting
    neighbour).  Flooding is deterministic, so this oracle reproduces the
    engine's schedule without sharing any RNG machinery with it."""
    neighbors = [set() for _ in range(graph.n)]
    for u, v in graph.edges():
        neighbors[int(u)].add(int(v))
        neighbors[int(v)].add(int(u))
    informed = {source}
    first = {source: 0}
    rounds = []
    r = 0
    while len(informed) < graph.n and r < max_rounds:
        r += 1
        tx = set(informed)
        heard = {
            v: len(neighbors[v] & tx) for v in range(graph.n) if v not in tx
        }
        received = {v for v, c in heard.items() if c == 1}
        victims = sum(1 for c in heard.values() if c >= 2)
        newly = received - informed
        wasted = sum(1 for u in tx if not (neighbors[u] & received))
        rounds.append(
            dict(
                transmitters=len(tx),
                receptions=len(received),
                collision_victims=victims,
                newly_informed=len(newly),
                wasted_transmissions=wasted,
            )
        )
        for v in newly:
            first[v] = r
        informed |= newly
    return rounds, informed, first


class TestLegacyTracerEquivalence:
    """The batched T=1 view must agree, field for field, with a serial
    reference loop — the contract that let the old per-round tracer be
    deleted in favour of the telemetry engine."""

    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: path_graph(7),
            lambda: hypercube(4),
            lambda: cplus_graph(6),
        ],
    )
    def test_flooding_matches_reference_loop(self, make_graph):
        g = make_graph()
        trace = run_broadcast_traced(
            g, FloodingProtocol(), source=0, seed=0, max_rounds=64
        )
        ref_rounds, ref_informed, ref_first = _reference_flooding_trace(
            g, source=0
        )
        assert len(trace.rounds) == len(ref_rounds)
        for got, want in zip(trace.rounds, ref_rounds):
            for field, value in want.items():
                assert getattr(got, field) == value, (field, got.round_index)
        assert trace.completed == (len(ref_informed) == g.n)
        for v, r in ref_first.items():
            assert trace.first_informed_round[v] == r

    def test_path_flooding_wasted_anatomy(self):
        # path 0-1-2-3-4 from 0: each round the trailing transmitters
        # reach only other transmitters, so exactly the frontier's parent
        # chain is wasted: round 1 wastes nothing, later rounds waste all
        # but the frontier vertex.
        trace = run_broadcast_traced(
            path_graph(5), FloodingProtocol(), source=0, seed=0
        )
        wasted = [r.wasted_transmissions for r in trace.rounds]
        assert wasted == [0, 1, 2, 3]
        assert trace.total_wasted_transmissions == 6

    def test_erasure_trace_agrees_with_plain_runner(self):
        from repro.radio import run_broadcast
        from repro.radio.channel import ErasureChannel

        g = hypercube(4)
        kw = dict(source=0, seed=11, channel=ErasureChannel(0.3))
        plain = run_broadcast(g, DecayProtocol(), **kw)
        trace = run_broadcast_traced(g, DecayProtocol(), **kw)
        assert trace.completed == plain.completed
        assert len(trace.rounds) == plain.rounds
        assert (
            trace.first_informed_round == plain.first_informed_round
        ).all()
        assert trace.total_transmissions == plain.transmissions
        for r in trace.rounds:
            assert r.wasted_transmissions <= r.transmitters
            assert r.newly_informed <= r.receptions

    def test_channel_feedback_branch_traced(self):
        from repro.radio import run_broadcast
        from repro.radio.channel import CollisionDetection
        from repro.radio.protocols import CollisionBackoffProtocol

        g = hypercube(4)
        kw = dict(source=0, seed=5, channel=CollisionDetection())
        plain = run_broadcast(g, CollisionBackoffProtocol(), **kw)
        trace = run_broadcast_traced(g, CollisionBackoffProtocol(), **kw)
        assert trace.completed == plain.completed
        assert len(trace.rounds) == plain.rounds
        assert trace.total_transmissions == plain.transmissions
        assert (
            trace.first_informed_round == plain.first_informed_round
        ).all()
