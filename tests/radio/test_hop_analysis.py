"""Section 5 per-hop concentration study."""

import pytest

from repro.radio import DecayProtocol, hop_time_study


class TestHopTimeStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return hop_time_study(8, 4, DecayProtocol, repetitions=6, seed=1)

    def test_shapes(self, study):
        assert study.hop_times.shape == (6, 4)
        assert study.totals.shape == (6,)

    def test_totals_consistent(self, study):
        assert (study.totals == study.hop_times.sum(axis=1)).all()

    def test_hops_positive(self, study):
        assert (study.hop_times > 0).all()

    def test_hop_mean_scales_with_log(self, study):
        # Each hop costs Ω(log 2s) = Ω(4); the Decay constant puts the mean
        # clearly above 1 round and below a huge multiple.
        assert 2.0 <= study.hop_mean <= 40.0

    def test_reproducible(self):
        a = hop_time_study(8, 3, DecayProtocol, repetitions=4, seed=9)
        b = hop_time_study(8, 3, DecayProtocol, repetitions=4, seed=9)
        assert (a.hop_times == b.hop_times).all()

    def test_autocorrelation_small(self):
        study = hop_time_study(8, 6, DecayProtocol, repetitions=8, seed=2)
        # Independent hops -> autocorrelation near 0 (generous tolerance
        # for an 8x5 sample).
        assert abs(study.hop_autocorrelation()) < 0.6

    def test_concentration_improves_with_layers(self):
        short = hop_time_study(8, 2, DecayProtocol, repetitions=8, seed=3)
        long = hop_time_study(8, 8, DecayProtocol, repetitions=8, seed=3)
        # Sums of more independent hops concentrate (Chernoff direction);
        # allow slack for the small sample.
        assert long.total_relative_spread <= short.total_relative_spread + 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            hop_time_study(8, 2, DecayProtocol, repetitions=1, seed=0)
        with pytest.raises(ValueError):
            hop_time_study(8, 2, DecayProtocol, repetitions=6, seed=0,
                           trials_per_chain=0)
        with pytest.raises(ValueError):
            hop_time_study(8, 2, DecayProtocol, repetitions=5, seed=0,
                           trials_per_chain=2)

    def test_batched_chains(self):
        study = hop_time_study(8, 3, DecayProtocol, repetitions=8, seed=4,
                               trials_per_chain=4)
        assert study.hop_times.shape == (8, 3)
        assert (study.totals == study.hop_times.sum(axis=1)).all()
        assert (study.hop_times > 0).all()

    def test_batched_reproducible(self):
        a = hop_time_study(8, 3, DecayProtocol, repetitions=6, seed=9,
                           trials_per_chain=3)
        b = hop_time_study(8, 3, DecayProtocol, repetitions=6, seed=9,
                           trials_per_chain=3)
        assert (a.hop_times == b.hop_times).all()
