"""Section 5 lower-bound experiment drivers."""

import collections

import numpy as np
import pytest

from repro.graphs import core_graph_layout
from repro.radio import (
    DecayProtocol,
    SpokesmanBroadcastProtocol,
    measure_chain_broadcast,
    rooted_core_graph,
    run_broadcast,
)


class TestRootedCoreGraph:
    def test_structure(self):
        g, root, n_ids = rooted_core_graph(8)
        layout = core_graph_layout(8)
        assert g.n == 1 + 8 + layout.n_right
        assert root == 0
        assert set(g.neighbors(root).tolist()) == set(range(1, 9))
        assert n_ids.size == layout.n_right

    @pytest.mark.parametrize("s", [8, 16])
    def test_corollary_51_cap_under_genie(self, s):
        # Even a full-knowledge scheduler informs ≤ 2s new N-vertices per
        # round (Lemma 4.4(5) in action).
        g, root, n_ids = rooted_core_graph(s)
        res = run_broadcast(g, SpokesmanBroadcastProtocol(), source=root, seed=0)
        assert res.completed
        rounds = res.first_informed_round[n_ids]
        per_round = collections.Counter(rounds.tolist())
        assert max(per_round.values()) <= 2 * s

    @pytest.mark.parametrize("s", [8, 16])
    def test_corollary_51_round_floor(self, s):
        # Reaching a 2i/log(2s) fraction of N takes ≥ 1 + i rounds.
        g, root, n_ids = rooted_core_graph(s)
        res = run_broadcast(g, SpokesmanBroadcastProtocol(), source=root, seed=0)
        log2s = int(np.log2(2 * s))
        n_total = n_ids.size
        rounds_in_n = np.sort(res.first_informed_round[n_ids])
        for i in range(0, log2s // 2 + 1):
            target = 2 * i / log2s * n_total
            if target < 1:
                continue
            k = int(np.ceil(target))
            reach_round = rounds_in_n[k - 1]
            assert reach_round >= 1 + i - 1e-9, (s, i, reach_round)


class TestChainMeasurement:
    def test_portal_times_increasing(self):
        m = measure_chain_broadcast(8, 4, DecayProtocol(), seed=1, chain_seed=2)
        assert m.completed
        times = m.portal_rounds
        assert (np.diff(times) > 0).all()

    def test_per_hop_rounds_positive(self):
        m = measure_chain_broadcast(8, 4, DecayProtocol(), seed=3, chain_seed=4)
        assert (m.per_hop_rounds > 0).all()
        assert m.per_hop_rounds.sum() == m.portal_rounds[-1]

    def test_km_bound_formula(self):
        m = measure_chain_broadcast(4, 2, DecayProtocol(), seed=5, chain_seed=6)
        d = m.diameter_claim
        assert m.km_bound == pytest.approx(d * np.log2(m.n / d))

    def test_genie_respects_portal_order(self):
        m = measure_chain_broadcast(
            8, 3, SpokesmanBroadcastProtocol(), seed=7, chain_seed=8
        )
        assert m.completed
        assert (np.diff(m.portal_rounds) > 0).all()

    def test_rounds_grow_with_layers(self):
        short = measure_chain_broadcast(8, 2, DecayProtocol(), seed=9, chain_seed=10)
        long = measure_chain_broadcast(8, 6, DecayProtocol(), seed=9, chain_seed=10)
        assert long.rounds > short.rounds
