"""ExpansionSpec — the measurement-side declarative spec layer."""

import pickle

import numpy as np
import pytest

from repro.expansion import (
    ESTIMATORS,
    ExpansionSpec,
    as_expansion_spec,
    wireless_expansion_exact,
    wireless_expansion_sampled,
)
from repro.graphs import hypercube, random_regular


class TestSpecViews:
    @pytest.mark.parametrize("name", sorted(ESTIMATORS))
    def test_bare_names_round_trip(self, name):
        spec = ExpansionSpec.from_string(name)
        assert spec.estimator == name
        assert ExpansionSpec.from_string(spec.describe()) == spec
        assert ExpansionSpec.from_dict(spec.to_dict()) == spec
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_kwargs_round_trip(self):
        spec = ExpansionSpec.from_string("sampled(samples=200, alpha=0.4)")
        assert spec.samples == 200 and spec.alpha == 0.4
        assert spec.describe() == "sampled(alpha=0.4, samples=200)"
        assert ExpansionSpec.from_string(spec.describe()) == spec

    def test_to_dict_carries_only_consumed_fields(self):
        exact = ExpansionSpec.from_string("exact")
        assert set(exact.to_dict()) == {"estimator", "alpha", "max_set_bits"}
        sampled = ExpansionSpec.from_string("sampled")
        assert "samples" in sampled.to_dict()

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ValueError, match="unknown expansion estimator"):
            ExpansionSpec.from_string("magic")

    def test_positional_args_rejected(self):
        with pytest.raises(ValueError, match="keyword arguments only"):
            ExpansionSpec.from_string("sampled(200)")

    def test_unconsumed_kwarg_rejected(self):
        with pytest.raises(ValueError, match="does not take"):
            ExpansionSpec.from_string("exact(samples=50)")

    def test_field_domains_validated(self):
        with pytest.raises(ValueError, match="alpha"):
            ExpansionSpec(alpha=1.5)
        with pytest.raises(ValueError, match="samples"):
            ExpansionSpec(samples=-1)
        with pytest.raises(ValueError, match="max_set_bits"):
            ExpansionSpec(max_set_bits=0)

    def test_as_expansion_spec_coercions(self):
        spec = ExpansionSpec.from_string("portfolio")
        assert as_expansion_spec(spec) is spec
        assert as_expansion_spec("portfolio") == spec
        assert as_expansion_spec(spec.to_dict()) == spec
        with pytest.raises(TypeError):
            as_expansion_spec(42)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown expansion-spec"):
            ExpansionSpec.from_dict({"estimator": "sampled", "bogus": 1})


class TestEstimate:
    def test_exact_matches_direct_call(self):
        g = hypercube(4)
        est = ExpansionSpec.from_string("exact(max_set_bits=16)").estimate(g)
        direct = wireless_expansion_exact(g, 0.5, max_bits=16)
        assert est.value == direct[0]
        assert est.bound == "exact"
        assert np.array_equal(est.subset, direct[1])
        assert est.candidates > 0

    def test_sampled_matches_direct_call(self):
        g = random_regular(40, 4, rng=0)
        spec = ExpansionSpec.from_string("sampled(samples=25)")
        est = spec.estimate(g, rng=3)
        direct = wireless_expansion_sampled(g, 0.5, samples=25, rng=3)
        assert est.value == direct[0]
        assert est.bound == "upper"
        assert np.array_equal(est.subset, direct[1])

    def test_sampled_upper_bounds_exact(self):
        g = hypercube(4)
        exact = ExpansionSpec.from_string("exact(max_set_bits=16)").estimate(g)
        sampled = ExpansionSpec.from_string("sampled(samples=40)").estimate(
            g, rng=1
        )
        assert sampled.value >= exact.value - 1e-12

    def test_portfolio_lower_bounds_sampled(self):
        # Portfolio scores the *same* candidate sequence with certified
        # per-set lower bounds, so its minimum cannot exceed sampled's.
        g = random_regular(60, 6, rng=2)
        sampled = ExpansionSpec.from_string("sampled(samples=30)").estimate(
            g, rng=5
        )
        portfolio = ExpansionSpec.from_string("portfolio(samples=30)").estimate(
            g, rng=5
        )
        # Per-set payoffs lower-bound each set's expansion, so the minimum
        # lower-bounds the candidate minimum (sampled's value on the same
        # candidate sequence) — hence the tag, which deliberately does NOT
        # claim a bound on beta_w itself.
        assert portfolio.bound == "candidate-lower"
        assert portfolio.value <= sampled.value + 1e-12

    def test_portfolio_deterministic_given_seed(self):
        g = random_regular(40, 4, rng=1)
        spec = ExpansionSpec.from_string("portfolio(samples=15)")
        a = spec.estimate(g, rng=7)
        b = spec.estimate(g, rng=7)
        assert a.value == b.value
        assert np.array_equal(a.subset, b.subset)

    def test_portfolio_batch_skips_out_of_cap_sets(self):
        from repro.spokesman import wireless_lower_bounds_of_sets

        g = hypercube(4)
        values = wireless_lower_bounds_of_sets(
            g, [np.arange(6), np.array([0, 1]), np.array([], dtype=np.int64)],
            size_cap=4,
        )
        assert values[0] == np.inf  # wider than the cap
        assert np.isfinite(values[1])
        assert values[2] == np.inf  # empty set

    def test_portfolio_parallel_identical(self):
        from repro.runtime import ParallelExecutor

        g = random_regular(40, 4, rng=1)
        spec = ExpansionSpec.from_string("portfolio(samples=15)")
        serial = spec.estimate(g, rng=7)
        parallel = spec.estimate(g, rng=7, executor=ParallelExecutor(3))
        assert serial.value == parallel.value
        assert np.array_equal(serial.subset, parallel.subset)


class TestExpansionSummaryTask:
    def test_summary_shape(self):
        from repro.scenario import expansion_summary

        out = expansion_summary("hypercube(4)", "sampled(samples=10)", seed=3)
        assert out["n"] == 16
        assert out["graph"] == "hypercube(4)"
        assert out["expansion"] == "sampled(samples=10)"
        assert out["bound"] == "upper"
        assert out["seed"] == 3
        assert out["beta_w"] >= 0
        assert out["subset_size"] >= 1
        assert out["candidates"] > 0

    def test_randomized_graph_seed_split_matches_scenario(self):
        from repro._util import spawn_seeds
        from repro.scenario import GraphSpec, expansion_summary

        # The graph-construction child must be the same one Scenario.run
        # would derive, so expansion and broadcast measurements of one
        # (spec, seed) pair see the same instance.
        out = expansion_summary("random_regular(24, 4)", "sampled(samples=5)",
                                seed=11)
        _, graph_seed = spawn_seeds(11, 2)
        built = GraphSpec.make("random_regular", 24, 4).build(seed=graph_seed)
        assert out["n"] == built.graph.n

    def test_deterministic_and_cacheable(self, tmp_path):
        from repro.runtime import ResultStore
        from repro.scenario import GraphSpec, expansion_summary

        gspec = GraphSpec.make("hypercube", 4)
        espec = "sampled(samples=10)"
        store = ResultStore(tmp_path)
        key = store.expansion_key(gspec, as_spec(espec), seed=2)
        first = expansion_summary(gspec, espec, seed=2)
        store.put(key, first)
        replay = store.get(key)
        assert replay == first
        assert store.hits == 1 and store.misses == 0

    def test_expansion_key_is_spec_equal(self):
        from repro.runtime import expansion_key
        from repro.scenario import GraphSpec

        a = expansion_key(
            GraphSpec.make("hypercube", 4), as_spec("sampled"), seed=0
        )
        b = expansion_key(
            GraphSpec.from_string("hypercube(4)"),
            as_spec("sampled(samples=100)"),  # explicit default
            seed=0,
        )
        assert a == b
        c = expansion_key(
            GraphSpec.make("hypercube", 4), as_spec("sampled"), seed=1
        )
        assert a != c

    def test_bad_graph_fails_fast(self):
        from repro.scenario import expansion_summary

        with pytest.raises(ValueError, match="bad graph spec"):
            expansion_summary("erdos_renyi(10, 1.5)", "sampled", seed=0)

    def test_runtime_point_wrapper(self):
        from repro.runtime.tasks import wireless_expansion_point
        from repro.scenario import expansion_summary

        assert wireless_expansion_point(
            "hypercube(4)", expansion="sampled(samples=5)", seed=1
        ) == expansion_summary("hypercube(4)", "sampled(samples=5)", seed=1)


def as_spec(text):
    return ExpansionSpec.from_string(text)
