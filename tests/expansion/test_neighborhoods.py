"""The naive reference operators themselves (fixed-value sanity)."""

import pytest

from repro.expansion import (
    naive_bipartite_cover,
    naive_bipartite_unique_cover,
    naive_gamma,
    naive_gamma_minus,
    naive_gamma_one,
    naive_gamma_one_s_excluding,
    naive_gamma_s_excluding,
)


class TestGraphOperators:
    def test_gamma(self, triangle_with_tail):
        assert naive_gamma(triangle_with_tail, [2]) == {0, 1, 3}
        assert naive_gamma(triangle_with_tail, [0, 1]) == {0, 1, 2}

    def test_gamma_minus(self, triangle_with_tail):
        assert naive_gamma_minus(triangle_with_tail, [0, 1]) == {2}
        assert naive_gamma_minus(triangle_with_tail, []) == set()

    def test_gamma_one(self, triangle_with_tail):
        assert naive_gamma_one(triangle_with_tail, [0, 1]) == set()
        assert naive_gamma_one(triangle_with_tail, [0]) == {1, 2}

    def test_gamma_s_excluding(self, triangle_with_tail):
        assert naive_gamma_s_excluding(triangle_with_tail, [0, 1], [1]) == {2}

    def test_gamma_one_s_excluding(self, triangle_with_tail):
        # Vertex 2 has both 0 and 3 in S' -> collision, empty payoff.
        assert naive_gamma_one_s_excluding(
            triangle_with_tail, [0, 1, 3], [0, 3]
        ) == set()
        # Shrinking S' to {0} makes 2 uniquely covered.
        assert naive_gamma_one_s_excluding(
            triangle_with_tail, [0, 1], [0]
        ) == {2}

    def test_subset_violation_raises(self, triangle_with_tail):
        with pytest.raises(ValueError):
            naive_gamma_s_excluding(triangle_with_tail, [0], [1])
        with pytest.raises(ValueError):
            naive_gamma_one_s_excluding(triangle_with_tail, [0], [1])


class TestBipartiteOperators:
    def test_cover(self, tiny_bipartite):
        assert naive_bipartite_cover(tiny_bipartite, [0]) == {0, 1}
        assert naive_bipartite_cover(tiny_bipartite, []) == set()

    def test_unique_cover(self, tiny_bipartite):
        assert naive_bipartite_unique_cover(tiny_bipartite, [0, 1]) == {0, 2}
        assert naive_bipartite_unique_cover(tiny_bipartite, [2, 3]) == {2, 3}
