"""Per-size expansion profiles."""

import itertools

import numpy as np
import pytest

from repro.expansion import (
    bipartite_left_profiles,
    expansion_profiles,
    unique_expansion_of_set,
    expansion_of_set,
    wireless_expansion_of_set_exact,
    wireless_profile,
)
from repro.graphs import (
    core_graph,
    cplus_graph,
    cycle_graph,
    erdos_renyi,
    gbad,
)


class TestGraphProfiles:
    def test_matches_brute_force(self):
        g = erdos_renyi(8, 0.4, rng=23)
        prof = expansion_profiles(g)
        for k in (1, 2, 3, 4):
            brute_ord = min(
                expansion_of_set(g, list(sub))
                for sub in itertools.combinations(range(8), k)
            )
            brute_uni = min(
                unique_expansion_of_set(g, list(sub))
                for sub in itertools.combinations(range(8), k)
            )
            assert prof.ordinary[k - 1] == pytest.approx(brute_ord)
            assert prof.unique[k - 1] == pytest.approx(brute_uni)

    def test_cplus_unique_crashes_at_three(self):
        g = cplus_graph(6)
        prof = expansion_profiles(g)
        assert prof.unique[0] > 0  # singletons are fine
        assert prof.unique[2] == 0.0  # k = 3: {s0, x, y}

    def test_cycle_profile_values(self):
        prof = expansion_profiles(cycle_graph(8))
        # Arcs are worst: β(k) = 2/k for k <= 6... until alternation wins.
        assert prof.ordinary[0] == 2.0
        assert prof.ordinary[3] == pytest.approx(0.5)

    def test_unique_never_exceeds_ordinary(self):
        g = erdos_renyi(9, 0.35, rng=24)
        prof = expansion_profiles(g)
        assert (prof.unique <= prof.ordinary + 1e-12).all()

    def test_size_range(self):
        prof = expansion_profiles(cycle_graph(5))
        assert prof.size_range().tolist() == [1, 2, 3, 4, 5]


class TestWirelessProfile:
    def test_sandwiched_between_curves(self):
        g = erdos_renyi(8, 0.4, rng=25)
        prof = expansion_profiles(g)
        bw = wireless_profile(g)
        assert (prof.unique - 1e-12 <= bw).all()
        assert (bw <= prof.ordinary + 1e-12).all()

    def test_matches_per_set_minimum(self):
        g = erdos_renyi(7, 0.45, rng=26)
        bw = wireless_profile(g)
        for k in (1, 2, 3):
            brute = min(
                wireless_expansion_of_set_exact(g, list(sub))[0]
                for sub in itertools.combinations(range(7), k)
            )
            assert bw[k - 1] == pytest.approx(brute)

    def test_cplus_wireless_survives_at_three(self):
        g = cplus_graph(6)
        bw = wireless_profile(g)
        assert bw[2] > 0  # wireless stays positive where unique dies

    def test_size_cap(self):
        with pytest.raises(ValueError):
            wireless_profile(cycle_graph(14), max_bits=13)


class TestBipartiteProfiles:
    def test_core_graph_curves(self):
        gs = core_graph(8)
        prof = bipartite_left_profiles(gs)
        # Lemma 4.4(4): coverage ratio >= log 2s at every size.
        assert (prof.coverage >= np.log2(16) - 1e-9).all()
        # Lemma 4.4(5): best unique coverage <= 2s at every size.
        assert (prof.best_unique <= 16).all()
        # Singletons uniquely cover their whole 2s−1 neighbourhood.
        assert prof.best_unique[0] == 15

    def test_gbad_full_size_unique(self):
        s, delta, beta = 6, 4, 3
        gs = gbad(s, delta, beta)
        prof = bipartite_left_profiles(gs)
        # At k = s the worst (= only) set has ratio exactly 2β − Δ.
        assert prof.unique[s - 1] == pytest.approx(2 * beta - delta)

    def test_consistency_with_tiny(self, tiny_bipartite):
        prof = bipartite_left_profiles(tiny_bipartite)
        assert prof.coverage.shape == (4,)
        # k = 1: worst singleton covers 1 vertex (left 3).
        assert prof.coverage[0] == 1.0
