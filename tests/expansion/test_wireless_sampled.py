"""Sampled (adversarial) wireless-expansion estimator."""

import pytest

from repro.expansion import (
    wireless_expansion_exact,
    wireless_expansion_of_set_exact,
    wireless_expansion_sampled,
)
from repro.graphs import cycle_graph, erdos_renyi, hypercube


class TestWirelessSampled:
    def test_upper_bounds_exact(self):
        for seed in range(4):
            g = erdos_renyi(9, 0.4, rng=seed)
            exact, _ = wireless_expansion_exact(g, 0.5)
            sampled, _ = wireless_expansion_sampled(g, 0.5, samples=60, rng=seed)
            assert sampled >= exact - 1e-9

    def test_witness_consistency(self):
        g = hypercube(4)
        value, witness = wireless_expansion_sampled(g, 0.5, samples=40, rng=1)
        per_set, _ = wireless_expansion_of_set_exact(g, witness)
        assert per_set == pytest.approx(value)

    def test_balls_on_cycle(self):
        # Arcs are the minimizing sets on a cycle; BFS balls find them.
        g = cycle_graph(14)
        value, witness = wireless_expansion_sampled(
            g, 0.5, samples=0, rng=2, include_balls=True
        )
        # Arc of 7: best S' = two endpoints -> 2/7.
        assert value == pytest.approx(2 / 7)

    def test_respects_size_cap(self):
        g = cycle_graph(30)
        value, witness = wireless_expansion_sampled(
            g, 0.5, samples=20, rng=3, max_set_bits=6
        )
        assert witness.size <= 6

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            wireless_expansion_sampled(cycle_graph(8), 0.01, rng=0)
