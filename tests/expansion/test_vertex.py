"""Ordinary vertex expansion analyzers."""

import itertools

import numpy as np
import pytest

from repro.expansion import (
    bipartite_expansion_exact,
    expansion_of_set,
    vertex_expansion_exact,
    vertex_expansion_sampled,
)
from repro.graphs import (
    complete_graph,
    core_graph,
    cycle_graph,
    erdos_renyi,
    hypercube,
)


class TestExpansionOfSet:
    def test_fixed_values(self, triangle_with_tail):
        assert expansion_of_set(triangle_with_tail, [0]) == 2.0
        assert expansion_of_set(triangle_with_tail, [0, 1]) == 0.5
        assert expansion_of_set(triangle_with_tail, [3]) == 1.0

    def test_empty_raises(self, triangle_with_tail):
        with pytest.raises(ValueError):
            expansion_of_set(triangle_with_tail, [])


class TestVertexExpansionExact:
    def test_complete_graph(self):
        # K_6, α = 0.5: any S with |S| ≤ 3 sees all other 6−|S| vertices.
        beta, witness = vertex_expansion_exact(complete_graph(6), 0.5)
        assert beta == pytest.approx(1.0)  # |S| = 3 -> 3/3
        assert witness.size == 3

    def test_cycle(self):
        beta, witness = vertex_expansion_exact(cycle_graph(10), 0.5)
        # Worst set: arc of 5 consecutive vertices -> 2/5.
        assert beta == pytest.approx(0.4)

    def test_matches_brute_force(self):
        g = erdos_renyi(9, 0.35, rng=5)
        beta, _ = vertex_expansion_exact(g, 0.5)
        limit = 4
        brute = min(
            expansion_of_set(g, list(sub))
            for k in range(1, limit + 1)
            for sub in itertools.combinations(range(9), k)
        )
        assert beta == pytest.approx(brute)

    def test_witness_achieves(self):
        g = hypercube(3)
        beta, witness = vertex_expansion_exact(g, 0.5)
        assert expansion_of_set(g, witness) == pytest.approx(beta)

    def test_alpha_too_small(self):
        with pytest.raises(ValueError):
            vertex_expansion_exact(cycle_graph(5), 0.1)


class TestVertexExpansionSampled:
    def test_upper_bounds_exact(self):
        g = hypercube(4)
        exact, _ = vertex_expansion_exact(g, 0.5)
        sampled, _ = vertex_expansion_sampled(g, 0.5, samples=100, rng=1)
        assert sampled >= exact - 1e-9

    def test_balls_find_cycle_minimum(self):
        # BFS balls are arcs on a cycle; on C14 with α = 0.5 the radius-3
        # ball (7 vertices, 2 external neighbours) is the exact optimum.
        g = cycle_graph(14)
        sampled, witness = vertex_expansion_sampled(g, 0.5, samples=0, rng=1)
        assert sampled == pytest.approx(2 / 7)

    def test_witness_consistency(self):
        g = cycle_graph(9)
        value, witness = vertex_expansion_sampled(g, 0.5, samples=50, rng=2)
        assert expansion_of_set(g, witness) == pytest.approx(value)


class TestBipartiteExpansionExact:
    def test_core_graph_expansion(self):
        # Lemma 4.4(4): β = log 2s exactly.
        for s in (2, 4, 8):
            beta, witness = bipartite_expansion_exact(core_graph(s))
            assert beta == pytest.approx(np.log2(2 * s))
            assert witness.size == s

    def test_respects_alpha(self, tiny_bipartite):
        full, _ = bipartite_expansion_exact(tiny_bipartite, 1.0)
        singles, _ = bipartite_expansion_exact(tiny_bipartite, 0.25)
        # Restricting to singletons can only raise the minimum ratio.
        assert singles >= full
        assert singles == 1.0  # min left degree is 1
