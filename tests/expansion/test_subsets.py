"""The all-subsets enumeration kernels vs naive references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expansion import (
    bipartite_subset_profile,
    graph_subset_profile,
    naive_bipartite_cover,
    naive_bipartite_unique_cover,
    naive_gamma_minus,
    naive_gamma_one,
)
from repro.graphs import BipartiteGraph, Graph, random_bipartite, erdos_renyi


class TestBipartiteProfile:
    def test_fixed_graph(self, tiny_bipartite):
        prof = bipartite_subset_profile(tiny_bipartite)
        assert prof.cover_counts.shape == (16,)
        assert prof.cover_counts[0] == 0 and prof.unique_counts[0] == 0
        # Full subset {0,1,2,3}.
        full = 0b1111
        assert prof.cover_counts[full] == 5
        assert prof.sizes[full] == 4

    def test_isolated_right_vertices_never_covered(self):
        g = BipartiteGraph(2, 3, [(0, 0), (1, 0)])
        prof = bipartite_subset_profile(g)
        assert prof.cover_counts[0b11] == 1
        assert prof.unique_counts[0b11] == 0
        assert prof.unique_counts[0b01] == 1

    def test_rejects_wide_left(self):
        g = BipartiteGraph(23, 1, [(i, 0) for i in range(23)])
        with pytest.raises(ValueError, match="<= 22"):
            bipartite_subset_profile(g)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_cross_check(self, seed):
        gen = np.random.default_rng(seed)
        gs = random_bipartite(6, 9, 0.35, rng=gen)
        prof = bipartite_subset_profile(gs)
        x = int(gen.integers(0, 1 << 6))
        sub = [i for i in range(6) if (x >> i) & 1]
        assert prof.cover_counts[x] == len(naive_bipartite_cover(gs, sub))
        assert prof.unique_counts[x] == len(naive_bipartite_unique_cover(gs, sub))


class TestGraphProfile:
    def test_fixed_graph(self, triangle_with_tail):
        prof = graph_subset_profile(triangle_with_tail)
        x = 0b0011  # {0, 1}
        assert prof.gamma_minus_counts[x] == 1
        assert prof.gamma_one_counts[x] == 0
        assert prof.sizes[x] == 2

    def test_once_many_masks(self, triangle_with_tail):
        prof = graph_subset_profile(triangle_with_tail)
        x = 0b0100  # {2}: neighbours 0,1,3 each covered once
        assert int(prof.once[x]) == 0b1011
        assert int(prof.many[x]) == 0

    def test_rejects_large(self):
        g = Graph(21, [(i, i + 1) for i in range(20)])
        with pytest.raises(ValueError):
            graph_subset_profile(g, max_bits=20)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_cross_check(self, seed):
        gen = np.random.default_rng(seed)
        g = erdos_renyi(8, 0.3, rng=gen)
        prof = graph_subset_profile(g)
        x = int(gen.integers(0, 1 << 8))
        sub = [i for i in range(8) if (x >> i) & 1]
        assert prof.gamma_minus_counts[x] == len(naive_gamma_minus(g, sub))
        assert prof.gamma_one_counts[x] == len(naive_gamma_one(g, sub))
