"""Lemma A.18 / Corollaries A.4, A.14: the δ̄ machinery."""

import math

import numpy as np
import pytest

from repro.expansion import (
    vertex_expansion_exact,
    wireless_expansion_exact,
)
from repro.expansion.delta_bar import (
    boundary_average_degree,
    delta_bar_exact,
    delta_bar_sampled,
    lemma_a18_floor,
)
from repro.graphs import cycle_graph, erdos_renyi, hypercube


class TestBoundaryAverageDegree:
    def test_fixed_values(self, triangle_with_tail):
        # S = {0}: N = {1, 2}, each with one edge back.
        assert boundary_average_degree(triangle_with_tail, [0]) == 1.0
        # S = {0, 1}: N = {2} with two edges back.
        assert boundary_average_degree(triangle_with_tail, [0, 1]) == 2.0

    def test_empty_raises(self, triangle_with_tail):
        with pytest.raises(ValueError):
            boundary_average_degree(triangle_with_tail, [])

    def test_no_boundary_raises(self, triangle_with_tail):
        with pytest.raises(ValueError):
            boundary_average_degree(triangle_with_tail, [0, 1, 2, 3])


class TestDeltaBar:
    def test_exact_dominates_every_set(self):
        g = erdos_renyi(8, 0.4, rng=31)
        bar, witness = delta_bar_exact(g, 0.5)
        assert boundary_average_degree(g, witness) == pytest.approx(bar)
        gen = np.random.default_rng(0)
        for _ in range(20):
            size = int(gen.integers(1, 5))
            subset = gen.choice(8, size=size, replace=False)
            try:
                val = boundary_average_degree(g, subset)
            except ValueError:
                continue
            assert val <= bar + 1e-9

    def test_sampled_lower_bounds_exact(self):
        g = erdos_renyi(9, 0.35, rng=32)
        bar, _ = delta_bar_exact(g, 0.5)
        sampled, _ = delta_bar_sampled(g, 0.5, samples=100, rng=33)
        assert sampled <= bar + 1e-9

    def test_cycle_delta_bar(self):
        # On a cycle every boundary vertex has exactly one edge back for
        # arcs, two for "sandwiched" neighbours; δ̄ = 2 via S = {0, 2}.
        bar, _ = delta_bar_exact(cycle_graph(8), 0.5)
        assert bar == pytest.approx(2.0)

    def test_size_cap(self):
        with pytest.raises(ValueError):
            delta_bar_exact(cycle_graph(18), 0.5, max_bits=16)


class TestLemmaA18:
    @pytest.mark.parametrize("seed", range(5))
    def test_floor_holds_exactly(self, seed):
        """βw ≥ β·MG(δ̄) — all three quantities exact on small graphs."""
        g = erdos_renyi(9, 0.4, rng=seed)
        try:
            bar, _ = delta_bar_exact(g, 0.5)
        except ValueError:
            return
        beta, _ = vertex_expansion_exact(g, 0.5)
        bw, _ = wireless_expansion_exact(g, 0.5)
        assert bw >= lemma_a18_floor(beta, bar) - 1e-9

    def test_corollary_a14_form(self):
        """βw ≥ β/(9·log₂ 2δ̄) also holds (the weaker explicit corollary)."""
        g = hypercube(3)
        bar, _ = delta_bar_exact(g, 0.5)
        beta, _ = vertex_expansion_exact(g, 0.5)
        bw, _ = wireless_expansion_exact(g, 0.5)
        assert bw >= beta / (9 * math.log2(2 * bar)) - 1e-9
