"""Wireless expansion analyzers (the paper's central quantity)."""

import itertools

import numpy as np
import pytest

from repro.expansion import (
    max_unique_coverage_exact,
    unique_expansion_exact,
    vertex_expansion_exact,
    wireless_expansion_exact,
    wireless_expansion_of_set_exact,
)
from repro.graphs import (
    complete_graph,
    core_graph,
    core_graph_max_unique_coverage,
    cycle_graph,
    erdos_renyi,
    gbad,
)


class TestMaxUniqueCoverageExact:
    def test_fixed_graph(self, tiny_bipartite):
        best, witness = max_unique_coverage_exact(tiny_bipartite)
        assert best == tiny_bipartite.unique_cover_count(witness)
        # Brute-force confirmation.
        brute = max(
            tiny_bipartite.unique_cover_count(np.array(sub))
            for k in range(5)
            for sub in itertools.combinations(range(4), k)
        )
        assert best == brute

    def test_core_graphs_match_dp(self):
        for s in (2, 4, 8, 16):
            best, _ = max_unique_coverage_exact(core_graph(s))
            assert best == core_graph_max_unique_coverage(s)

    def test_gbad_alternation(self):
        g = gbad(6, 4, 2)  # βu = 0 but wireless stays Δ/2
        best, witness = max_unique_coverage_exact(g)
        assert best >= 6 * 2  # ≥ (Δ/2)·s
        assert g.unique_cover_count(witness) == best


class TestWirelessOfSet:
    def test_cycle_arc(self):
        g = cycle_graph(10)
        # S = arc of 4; best S' is the two endpoints -> 2 unique outside.
        ratio, witness = wireless_expansion_of_set_exact(g, [0, 1, 2, 3])
        assert ratio == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            wireless_expansion_of_set_exact(cycle_graph(5), [])

    def test_witness_in_original_ids(self):
        g = cycle_graph(10)
        _, witness = wireless_expansion_of_set_exact(g, [4, 5, 6])
        assert set(witness.tolist()) <= {4, 5, 6}


class TestWirelessExpansionExact:
    def test_observation_21_sandwich(self):
        # β ≥ βw ≥ βu at equal α, exact (Observation 2.1).
        for seed in range(6):
            g = erdos_renyi(9, 0.4, rng=seed)
            b, _ = vertex_expansion_exact(g, 0.5)
            bw, _ = wireless_expansion_exact(g, 0.5)
            bu, _ = unique_expansion_exact(g, 0.5)
            assert b + 1e-12 >= bw >= bu - 1e-12

    def test_complete_graph(self):
        # K_6, |S| ≤ 3: selecting one vertex uniquely covers all outside.
        bw, _ = wireless_expansion_exact(complete_graph(6), 0.5)
        assert bw == pytest.approx(1.0)  # worst S has size 3 -> 3/3

    def test_matches_per_set_computation(self):
        g = erdos_renyi(8, 0.35, rng=13)
        bw, witness = wireless_expansion_exact(g, 0.5)
        per_set, _ = wireless_expansion_of_set_exact(g, witness)
        assert per_set == pytest.approx(bw)

    def test_brute_force_tiny(self):
        g = erdos_renyi(7, 0.4, rng=3)
        bw, _ = wireless_expansion_exact(g, 0.5)
        limit = 3
        brute = min(
            wireless_expansion_of_set_exact(g, list(sub))[0]
            for k in range(1, limit + 1)
            for sub in itertools.combinations(range(7), k)
        )
        assert bw == pytest.approx(brute)

    def test_size_cap(self):
        g = cycle_graph(16)
        with pytest.raises(ValueError):
            wireless_expansion_exact(g, 0.5, max_bits=14)
