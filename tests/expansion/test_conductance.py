"""Edge conductance and Cheeger bounds."""

import itertools

import pytest

from repro.expansion import (
    cheeger_bounds,
    edge_conductance_exact,
    edge_conductance_of_set,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    hypercube,
    random_regular,
    star_graph,
)


class TestPerSet:
    def test_fixed_values(self):
        g = cycle_graph(8)
        assert edge_conductance_of_set(g, [0, 1, 2]) == pytest.approx(2 / 3)
        assert edge_conductance_of_set(g, [0]) == 2.0

    def test_size_validation(self):
        g = cycle_graph(8)
        with pytest.raises(ValueError):
            edge_conductance_of_set(g, [])
        with pytest.raises(ValueError):
            edge_conductance_of_set(g, [0, 1, 2, 3, 4])  # > n/2


class TestExact:
    def test_cycle(self):
        h, witness = edge_conductance_exact(cycle_graph(10))
        assert h == pytest.approx(2 / 5)  # arc of half the cycle
        assert witness.size == 5

    def test_complete_graph(self):
        # K_6: |e(S, S̄)| = |S|(6 − |S|); minimized ratio at |S| = 3 -> 3.
        h, _ = edge_conductance_exact(complete_graph(6))
        assert h == pytest.approx(3.0)

    def test_hypercube(self):
        # Q_d: dimension cut gives h = 1 (known extremal).
        h, _ = edge_conductance_exact(hypercube(3))
        assert h == pytest.approx(1.0)

    def test_matches_brute_force(self):
        g = erdos_renyi(9, 0.4, rng=17)
        h, _ = edge_conductance_exact(g)
        brute = min(
            edge_conductance_of_set(g, list(sub))
            for k in range(1, 5)
            for sub in itertools.combinations(range(9), k)
        )
        assert h == pytest.approx(brute)

    def test_witness_achieves(self):
        g = erdos_renyi(8, 0.5, rng=18)
        h, witness = edge_conductance_exact(g)
        assert edge_conductance_of_set(g, witness) == pytest.approx(h)

    def test_tiny_validation(self):
        from repro.graphs import Graph

        with pytest.raises(ValueError):
            edge_conductance_exact(Graph(1, []))


class TestCheeger:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: hypercube(3),
            lambda: hypercube(4),
            lambda: complete_graph(8),
            lambda: cycle_graph(12),
            lambda: random_regular(14, 4, rng=19),
        ],
    )
    def test_sandwich_holds(self, maker):
        g = maker()
        lower, upper = cheeger_bounds(g)
        h, _ = edge_conductance_exact(g)
        assert lower - 1e-9 <= h <= upper + 1e-9

    def test_requires_regular(self):
        with pytest.raises(ValueError):
            cheeger_bounds(star_graph(5))
