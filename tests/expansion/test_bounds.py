"""The closed-form bound formulas of repro.expansion.bounds."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expansion import (
    OPTIMAL_DEGREE_CLASS_BASE,
    OPTIMAL_DEGREE_CLASS_CONSTANT,
    corollary51_min_rounds,
    corollary_a15_guarantee,
    decay_success_lower_bound,
    degree_class_guarantee,
    kushilevitz_mansour_lower_bound,
    lemma31_expansion_bound,
    lemma32_unique_lower_bound,
    lemma42_shape,
    lemma43_shape,
    lemma_a1_guarantee,
    lemma_a3_guarantee,
    lemma_a5_class_guarantee,
    lemma_a8_guarantee,
    lemma_a13_guarantee,
    mg_bound,
    spokesman_cw_guarantee,
    theorem11_shape,
    unique_success_probability,
)


class TestSection3Bounds:
    def test_lemma31(self):
        assert lemma31_expansion_bound(4, 2.0, 0.5, 1.0) == pytest.approx(
            0.75 + 0.25
        )
        with pytest.raises(ValueError):
            lemma31_expansion_bound(0, 1.0, 0.5, 1.0)

    def test_lemma32(self):
        assert lemma32_unique_lower_bound(3, 4) == 2
        assert lemma32_unique_lower_bound(2, 4) == 0


class TestSamplingBounds:
    def test_unique_probability_peak(self):
        # d·p·(1−p)^{d−1} is maximized near p = 1/d.
        assert unique_success_probability(1, 1.0) == 1.0
        assert unique_success_probability(4, 0.25) == pytest.approx(
            4 * 0.25 * 0.75**3
        )
        with pytest.raises(ValueError):
            unique_success_probability(0, 0.5)
        with pytest.raises(ValueError):
            unique_success_probability(3, 1.5)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 18))
    def test_decay_scale_beats_e_minus_3(self, j):
        # Lemma 4.2: for deg in [2^j, 2^{j+1}), p = 2^{-j} gives ≥ e^{-3}.
        p = 2.0 ** (-j)
        floor = decay_success_lower_bound()
        for d in {2**j, 2 ** (j + 1) - 1}:
            assert unique_success_probability(d, p) >= floor

    def test_lemma42_shape(self):
        assert lemma42_shape(2.0, 16) == pytest.approx(2 / math.log2(16))
        with pytest.raises(ValueError):
            lemma42_shape(0.5, 16)

    def test_lemma43_shape(self):
        assert lemma43_shape(0.5, 16) == pytest.approx(0.5 / 4)
        with pytest.raises(ValueError):
            lemma43_shape(0.01, 16)  # below 1/Δ

    def test_theorem11_shape_dispatch(self):
        # β ≥ 1: min is Δ/β; β < 1: min is Δ·β.
        assert theorem11_shape(2.0, 16) == pytest.approx(lemma42_shape(2.0, 16))
        assert theorem11_shape(0.5, 16) == pytest.approx(lemma43_shape(0.5, 16))

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=0.1, max_value=8.0),
        st.integers(min_value=8, max_value=512),
    )
    def test_theorem11_shape_positive(self, beta, delta):
        if beta < 1 / delta:
            return
        assert theorem11_shape(beta, delta) > 0


class TestSection5Bounds:
    def test_corollary51(self):
        assert corollary51_min_rounds(0, 8) == 1
        assert corollary51_min_rounds(2, 8) == 3
        with pytest.raises(ValueError):
            corollary51_min_rounds(5, 8)  # beyond log(2s)/2

    def test_km_bound(self):
        assert kushilevitz_mansour_lower_bound(4, 64) == pytest.approx(16.0)
        with pytest.raises(ValueError):
            kushilevitz_mansour_lower_bound(64, 64)


class TestAppendixBounds:
    def test_naive(self):
        assert lemma_a1_guarantee(40, 8) == 5.0
        with pytest.raises(ValueError):
            lemma_a1_guarantee(40, 0)

    def test_partition(self):
        assert lemma_a3_guarantee(80, 2.0) == 5.0

    def test_recursive(self):
        assert lemma_a13_guarantee(90, 2.0) == pytest.approx(90 / 18)

    def test_a15_piecewise(self):
        assert corollary_a15_guarantee(100, 1.5) == 5.0  # δ < 2 -> γ/20
        assert corollary_a15_guarantee(100, 2.0) == 5.0  # min hits γ/20
        big = corollary_a15_guarantee(100, 1000.0)
        assert big == pytest.approx(100 / (9 * math.log2(1000)))

    def test_degree_class_constants(self):
        # The paper states c* ≈ 3.59112, value ≈ 0.20087.
        assert OPTIMAL_DEGREE_CLASS_BASE == pytest.approx(3.59112, abs=1e-3)
        assert OPTIMAL_DEGREE_CLASS_CONSTANT == pytest.approx(0.20087, abs=1e-4)

    def test_class_guarantee(self):
        assert lemma_a5_class_guarantee(18, 2.0) == 3.0
        with pytest.raises(ValueError):
            lemma_a5_class_guarantee(18, 1.0)

    def test_degree_class_guarantee_optimal_c(self):
        val = degree_class_guarantee(100, 16.0)
        assert val == pytest.approx(
            100 * OPTIMAL_DEGREE_CLASS_CONSTANT / math.log2(16)
        )

    def test_a8(self):
        val = lemma_a8_guarantee(100, 4.0, 2.0, 2.0)
        assert val == pytest.approx(0.5 * 100 / (2 * 3 * math.log2(8)))
        with pytest.raises(ValueError):
            lemma_a8_guarantee(100, 4.0, 1.0, 2.0)


class TestMG:
    def test_small_degree_floor(self):
        # δ < 2: the 1/20 floor dominates the first component.
        assert mg_bound(1.0) >= 1 / 20

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=1.0, max_value=10_000.0))
    def test_dominates_components(self, x):
        val = mg_bound(x)
        assert val >= 1 / (9 * math.log2(2 * x)) - 1e-12
        if x >= 2:
            assert val >= min(1 / (9 * math.log2(x)), 1 / 20) - 1e-12

    def test_monotone_decreasing_eventually(self):
        xs = [2, 8, 64, 1024]
        vals = [mg_bound(float(x)) for x in xs]
        assert all(a >= b - 1e-12 for a, b in zip(vals, vals[1:]))

    def test_rejects_below_one(self):
        with pytest.raises(ValueError):
            mg_bound(0.5)

    def test_cw_guarantee(self):
        assert spokesman_cw_guarantee(64, 8) == pytest.approx(64 / 3)
        with pytest.raises(ValueError):
            spokesman_cw_guarantee(64, 2)
