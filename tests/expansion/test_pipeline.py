"""Batched expansion pipeline ≡ legacy serial estimator, bit for bit."""

import numpy as np
import pytest

from repro.expansion import (
    enumerate_candidates,
    evaluate_candidates,
    max_unique_coverage_lattice,
    wireless_expansion_exact,
    wireless_expansion_of_set_exact,
    wireless_expansion_sampled,
    wireless_expansion_sampled_serial,
)
from repro.expansion.pipeline import select_minimum
from repro.expansion.wireless import _wireless_expansion_exact_walk
from repro.graphs import (
    cycle_graph,
    erdos_renyi,
    hypercube,
    random_regular,
    star_graph,
)
from repro.graphs.graph import Graph


def _assert_same(batched, serial):
    assert batched[0] == serial[0]
    assert np.array_equal(batched[1], serial[1])


class TestBatchedEqualsSerial:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed):
        g = erdos_renyi(30, 0.2, rng=seed)
        _assert_same(
            wireless_expansion_sampled(g, 0.5, samples=25, rng=seed),
            wireless_expansion_sampled_serial(g, 0.5, samples=25, rng=seed),
        )

    def test_regular_expander_no_balls(self):
        g = random_regular(64, 6, rng=0)
        _assert_same(
            wireless_expansion_sampled(
                g, 0.5, samples=40, rng=3, include_balls=False
            ),
            wireless_expansion_sampled_serial(
                g, 0.5, samples=40, rng=3, include_balls=False
            ),
        )

    @pytest.mark.parametrize("graph_fn", [cycle_graph, star_graph])
    def test_structured_families(self, graph_fn):
        g = graph_fn(15)
        _assert_same(
            wireless_expansion_sampled(g, 0.5, samples=20, rng=1),
            wireless_expansion_sampled_serial(g, 0.5, samples=20, rng=1),
        )

    def test_size_cap_respected(self):
        g = cycle_graph(30)
        batched = wireless_expansion_sampled(
            g, 0.5, samples=20, rng=3, max_set_bits=6
        )
        _assert_same(
            batched,
            wireless_expansion_sampled_serial(
                g, 0.5, samples=20, rng=3, max_set_bits=6
            ),
        )
        assert batched[1].size <= 6

    def test_parallel_sharding_identical(self):
        from repro.runtime import ParallelExecutor

        g = random_regular(48, 4, rng=1)
        serial = wireless_expansion_sampled(g, 0.5, samples=30, rng=2)
        parallel = wireless_expansion_sampled(
            g, 0.5, samples=30, rng=2, executor=ParallelExecutor(3)
        )
        _assert_same(parallel, serial)

    def test_int_executor_accepted(self):
        g = hypercube(4)
        _assert_same(
            wireless_expansion_sampled(g, 0.5, samples=10, rng=0, executor=2),
            wireless_expansion_sampled_serial(g, 0.5, samples=10, rng=0),
        )


class TestDegenerateGraphs:
    def test_isolated_vertex(self):
        # Vertex 5 is isolated: candidate sets containing it have an
        # empty boundary contribution; a set of only isolated vertices
        # has wireless expansion 0.
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4)])
        for seed in range(4):
            _assert_same(
                wireless_expansion_sampled(g, 0.5, samples=15, rng=seed),
                wireless_expansion_sampled_serial(g, 0.5, samples=15, rng=seed),
            )
        value, _ = wireless_expansion_sampled(g, 0.5, samples=40, rng=0)
        assert value == 0.0  # {5} alone certifies βw = 0

    def test_disconnected_graph(self):
        g = Graph(9, [(0, 1), (1, 2), (3, 4), (4, 5), (5, 3), (6, 7)])
        for seed in range(4):
            _assert_same(
                wireless_expansion_sampled(g, 0.5, samples=15, rng=seed),
                wireless_expansion_sampled_serial(g, 0.5, samples=15, rng=seed),
            )

    def test_alpha_admitting_no_sets(self):
        g = cycle_graph(8)
        with pytest.raises(ValueError, match="admits no non-empty subsets"):
            wireless_expansion_sampled(g, 0.01, rng=0)
        with pytest.raises(ValueError, match="admits no non-empty subsets"):
            wireless_expansion_sampled_serial(g, 0.01, rng=0)
        with pytest.raises(ValueError, match="admits no non-empty subsets"):
            enumerate_candidates(g, alpha=0.01, rng=0)

    def test_no_candidates_at_all(self):
        g = cycle_graph(8)
        batched = wireless_expansion_sampled(
            g, 0.5, samples=0, rng=0, include_balls=False
        )
        serial = wireless_expansion_sampled_serial(
            g, 0.5, samples=0, rng=0, include_balls=False
        )
        _assert_same(batched, serial)
        assert batched[0] == np.inf


class TestLatticeKernel:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_per_set_exact(self, seed):
        # The lattice DP must reproduce the bipartite-profile optimum for
        # arbitrary candidate sets.
        g = erdos_renyi(20, 0.25, rng=seed)
        gen = np.random.default_rng(seed)
        cand = gen.choice(20, size=int(gen.integers(1, 9)), replace=False)
        values = evaluate_candidates(g, [cand], size_cap=10)
        expected, _ = wireless_expansion_of_set_exact(g, cand)
        assert values[0] == expected

    def test_empty_masks(self):
        assert max_unique_coverage_lattice(3, np.array([], dtype=np.uint64),
                                           np.array([], dtype=np.int64)) == 0

    def test_singleton_and_multi_mix(self):
        # masks over 3 candidate bits: two singletons (weights 2, 5) and
        # one pair-mask {0,1} (weight 3).  Best S' = {0}: 2 + 3 unique.
        masks = np.array([0b001, 0b010, 0b011], dtype=np.uint64)
        weights = np.array([2, 5, 3], dtype=np.int64)
        # S'={1}: 5+3=8; S'={0}: 2+3=5; S'={0,1}: 2+5=7; S'={0,1,2}: 7.
        assert max_unique_coverage_lattice(3, masks, weights) == 8

    def test_select_minimum_tie_keeps_first(self):
        candidates = [np.array([1]), np.array([2]), np.array([3])]
        values = np.array([0.5, 0.25, 0.25])
        value, subset = select_minimum(values, candidates)
        assert value == 0.25
        assert np.array_equal(subset, np.array([2]))


class TestVectorizedExact:
    def test_size_guard_and_alpha_guard(self):
        g = cycle_graph(16)
        with pytest.raises(ValueError, match="supports n <="):
            wireless_expansion_exact(g, 0.5, max_bits=14)
        with pytest.raises(ValueError, match="supports n <="):
            _wireless_expansion_exact_walk(g, 0.5, max_bits=14)
        with pytest.raises(ValueError, match="admits no non-empty"):
            wireless_expansion_exact(cycle_graph(8), 0.01)
        with pytest.raises(ValueError, match="admits no non-empty"):
            _wireless_expansion_exact_walk(cycle_graph(8), 0.01)

    def test_serial_sampled_skips_oversized_ball_seeds(self):
        # The serial reference's consider() guard: candidate sets wider
        # than the cap contribute nothing on either path.
        g = star_graph(12)  # radius-1 ball of the centre is the whole graph
        _assert_same(
            wireless_expansion_sampled(g, 1.0, samples=5, rng=0,
                                       max_set_bits=4),
            wireless_expansion_sampled_serial(g, 1.0, samples=5, rng=0,
                                              max_set_bits=4),
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_submask_walk(self, seed):
        g = erdos_renyi(9, 0.4, rng=seed)
        vec = wireless_expansion_exact(g, 0.5)
        walk = _wireless_expansion_exact_walk(g, 0.5)
        assert vec[0] == walk[0]
        assert np.array_equal(vec[1], walk[1])

    @pytest.mark.parametrize("alpha", [0.25, 0.5, 1.0])
    def test_alpha_sweep(self, alpha):
        g = erdos_renyi(8, 0.35, rng=11)
        vec = wireless_expansion_exact(g, alpha)
        walk = _wireless_expansion_exact_walk(g, alpha)
        assert vec[0] == walk[0]
        assert np.array_equal(vec[1], walk[1])

    def test_disconnected_with_isolated_vertex(self):
        g = Graph(8, [(0, 1), (1, 2), (3, 4), (5, 6)])
        vec = wireless_expansion_exact(g, 0.5)
        walk = _wireless_expansion_exact_walk(g, 0.5)
        assert vec[0] == walk[0] == 0.0  # any set containing vertex 7
        assert np.array_equal(vec[1], walk[1])
