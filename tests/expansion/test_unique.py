"""Unique-neighbour expansion analyzers and Section 3 relations."""

import itertools

import numpy as np
import pytest

from repro.expansion import (
    bipartite_unique_expansion_exact,
    lemma32_unique_lower_bound,
    unique_expansion_exact,
    unique_expansion_of_set,
    vertex_expansion_exact,
)
from repro.graphs import complete_graph, cycle_graph, erdos_renyi, gbad, hypercube


class TestUniqueExpansionOfSet:
    def test_fixed_values(self, triangle_with_tail):
        assert unique_expansion_of_set(triangle_with_tail, [0]) == 2.0
        assert unique_expansion_of_set(triangle_with_tail, [0, 1]) == 0.0

    def test_empty_raises(self, triangle_with_tail):
        with pytest.raises(ValueError):
            unique_expansion_of_set(triangle_with_tail, [])


class TestUniqueExpansionExact:
    def test_cycle(self):
        # The alternating set {0,2,4,6,8} on C10 gives every outside vertex
        # two S-neighbours, so βu = 0 — while arcs would give 2/|S|.
        beta_u, witness = unique_expansion_exact(cycle_graph(10), 0.5)
        assert beta_u == 0.0
        assert witness.size == 5

    def test_matches_brute_force(self):
        g = erdos_renyi(9, 0.4, rng=8)
        bu, _ = unique_expansion_exact(g, 0.5)
        brute = min(
            unique_expansion_of_set(g, list(sub))
            for k in range(1, 5)
            for sub in itertools.combinations(range(9), k)
        )
        assert bu == pytest.approx(brute)

    def test_never_exceeds_ordinary(self):
        for seed in range(5):
            g = erdos_renyi(8, 0.4, rng=seed)
            b, _ = vertex_expansion_exact(g, 0.5)
            bu, _ = unique_expansion_exact(g, 0.5)
            assert bu <= b + 1e-12


class TestLemma32:
    def test_bound_formula(self):
        assert lemma32_unique_lower_bound(3.0, 4) == 2.0
        assert lemma32_unique_lower_bound(2.0, 4) == 0.0

    @pytest.mark.parametrize("n", [6, 8])
    def test_holds_exactly_on_small_graphs(self, n):
        # βu ≥ 2β − Δ for every graph (Lemma 3.2), exact check.
        for seed in range(4):
            g = erdos_renyi(n, 0.5, rng=seed)
            if g.max_degree == 0:
                continue
            b, _ = vertex_expansion_exact(g, 0.5)
            bu, _ = unique_expansion_exact(g, 0.5)
            assert bu >= 2 * b - g.max_degree - 1e-9

    def test_complete_graph_tightness(self):
        # K_n with α = 1/n (singletons): β = βu = n−1 = Δ; bound 2β−Δ = β.
        g = complete_graph(6)
        b, _ = vertex_expansion_exact(g, 1 / 6)
        bu, _ = unique_expansion_exact(g, 1 / 6)
        assert bu == pytest.approx(2 * b - g.max_degree)


class TestBipartiteUniqueExact:
    def test_gbad_attains_lemma33(self):
        g = gbad(5, 4, 3)
        bu, _ = bipartite_unique_expansion_exact(g)
        assert bu == pytest.approx(2.0)

    def test_hypercube_boundary(self):
        # Sanity: every subset of Q3's boundary bipartite graph has unique
        # expansion ≥ 0 and the minimum is attained by the full set or less.
        g = hypercube(3)
        gs, _, _ = g.boundary_bipartite(np.array([0, 3, 5, 6]))
        bu, witness = bipartite_unique_expansion_exact(gs)
        assert bu >= 0.0
        assert witness.size >= 1
