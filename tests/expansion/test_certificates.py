"""Certified wireless-expansion intervals."""

import numpy as np
import pytest

from repro.expansion import (
    WirelessCertificate,
    wireless_certificate,
    wireless_expansion_of_set_exact,
)
from repro.graphs import cycle_graph, hypercube, random_regular


class TestExactPath:
    def test_small_set_is_exact(self):
        g = cycle_graph(12)
        cert = wireless_certificate(g, [0, 1, 2, 3], rng=0)
        assert cert.exact
        assert cert.lower == cert.upper
        exact, _ = wireless_expansion_of_set_exact(g, [0, 1, 2, 3])
        assert cert.lower == pytest.approx(exact)
        assert cert.gap == 1.0

    def test_witness_achieves_lower(self):
        g = hypercube(4)
        subset = np.arange(5)
        cert = wireless_certificate(g, subset, rng=1)
        payoff = int(g.gamma_one_s_excluding(subset, cert.witness).sum())
        assert payoff / 5 == pytest.approx(cert.lower)


class TestPortfolioPath:
    def test_large_set_interval(self):
        g = random_regular(128, 6, rng=2)
        gen = np.random.default_rng(3)
        subset = np.sort(gen.choice(128, size=40, replace=False))
        cert = wireless_certificate(g, subset, rng=4, exact_bits=20)
        assert not cert.exact
        assert cert.lower <= cert.upper + 1e-9
        assert cert.lower > 0
        assert "portfolio" in cert.lower_method
        assert cert.upper_method == "ordinary-expansion"

    def test_gap_definition(self):
        cert = WirelessCertificate(
            set_size=4, lower=1.0, upper=2.0, lower_method="x",
            upper_method="y", exact=False, witness=np.array([0]),
        )
        assert cert.gap == 2.0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            WirelessCertificate(
                set_size=4, lower=3.0, upper=2.0, lower_method="x",
                upper_method="y", exact=False, witness=np.array([0]),
            )

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            wireless_certificate(cycle_graph(5), [], rng=0)
