"""Spectral toolbox and Lemma 3.1."""

import numpy as np
import pytest

from repro.expansion import (
    adjacency_spectrum,
    alon_spencer_cut_lower_bound,
    cut_edges,
    lemma31_verify,
    regular_degree,
    second_eigenvalue,
    spectral_gap,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    hypercube,
    random_regular,
    star_graph,
)


class TestSpectrum:
    def test_complete_graph_spectrum(self):
        spec = adjacency_spectrum(complete_graph(5))
        assert spec[0] == pytest.approx(4.0)
        assert spec[1:] == pytest.approx(-np.ones(4))

    def test_cycle_second_eigenvalue(self):
        lam = second_eigenvalue(cycle_graph(6))
        assert lam == pytest.approx(2 * np.cos(2 * np.pi / 6))

    def test_hypercube_spectrum(self):
        # Q_d eigenvalues are d − 2k with multiplicity C(d, k).
        spec = adjacency_spectrum(hypercube(3))
        assert sorted(np.round(spec).astype(int).tolist()) == sorted(
            [3, 1, 1, 1, -1, -1, -1, -3]
        )

    def test_descending_order(self):
        spec = adjacency_spectrum(random_regular(20, 3, rng=0))
        assert (np.diff(spec) <= 1e-9).all()


class TestRegularity:
    def test_regular_degree(self, q3):
        assert regular_degree(q3) == 3

    def test_non_regular_raises(self):
        with pytest.raises(ValueError, match="not regular"):
            regular_degree(star_graph(5))

    def test_spectral_gap_positive_for_connected(self):
        assert spectral_gap(hypercube(3)) == pytest.approx(2.0)
        assert spectral_gap(complete_graph(6)) == pytest.approx(6.0)


class TestMixing:
    def test_cut_edges(self, q3):
        assert cut_edges(q3, [0, 1, 2, 3]) == 4

    def test_alon_spencer_bound_holds(self):
        # Check e(A, B) ≥ (d − λ)|A||B|/n over many bipartitions.
        g = random_regular(24, 4, rng=7)
        d = regular_degree(g)
        lam = second_eigenvalue(g)
        gen = np.random.default_rng(0)
        for _ in range(25):
            size = int(gen.integers(1, 23))
            subset = gen.choice(24, size=size, replace=False)
            lower = alon_spencer_cut_lower_bound(d, lam, size, 24 - size, 24)
            assert cut_edges(g, subset) >= lower - 1e-9

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            alon_spencer_cut_lower_bound(3, 1.0, 2, 3, 6)


class TestLemma31:
    @pytest.mark.parametrize("maker,alpha", [
        (lambda: hypercube(3), 0.5),
        (lambda: complete_graph(8), 0.25),
        (lambda: random_regular(12, 3, rng=5), 0.5),
        (lambda: random_regular(10, 4, rng=6), 0.3),
    ])
    def test_holds_exactly(self, maker, alpha):
        report = lemma31_verify(maker(), alpha)
        assert report.holds, report

    def test_report_fields(self, q3):
        report = lemma31_verify(q3, 0.5)
        assert report.d == 3
        assert report.beta_ordinary >= report.beta_unique
        assert report.claimed_lower_bound <= report.beta_ordinary + 1e-9
