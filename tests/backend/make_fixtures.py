"""Regenerate the pinned numpy-path fixtures (``fixtures/pinned.json``).

The fixtures freeze the engine's observable outputs — per-trial rounds,
completion, transmissions, and content digests of every result matrix —
for a spread of scenarios at fixed seeds.  They were generated *before*
the array-backend refactor landed, so ``tests/backend/test_pinned_fixtures.py``
certifies that the numpy path through the backend shim is bit-for-bit the
pre-refactor engine.

Run from the repo root to regenerate (only do this when an intentional,
documented engine-semantics change lands)::

    PYTHONPATH=src python tests/backend/make_fixtures.py
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

#: The pinned configurations: diverse enough to cross every routed kernel —
#: both engines, all four channels, all four workloads, trial compaction,
#: word-boundary trial counts, and the memory-budget column sharder.
SCENARIOS = (
    "chain(4, 3) | decay | classic | trials=8 | seed=7",
    "hypercube(6) | decay | erasure(0.2) | trials=8 | seed=3",
    "cplus(16) | collision-backoff | cd | trials=6 | seed=5 | max_rounds=64",
    'hypercube(5) | decay | jamming("jam@0-4:0,1;crash@2:3") | trials=4 | seed=4',
    "margulis(3) | decay | classic | gossip(k=4) | trials=8 | seed=2",
    "chain(4, 2) | decay | classic | aggregate(op=count) | trials=8 | seed=1",
    "chain(4, 2) | decay | classic | pipeline(m=3) | trials=4 | seed=9",
    "hypercube(6) | decay | classic | trials=70 | seed=6 | engine=bitset",
    "hypercube(6) | decay | erasure(0.1) | trials=66 | seed=8 | engine=bitset",
    "random_regular(64, 6) | decay | classic | trials=16 | seed=11 "
    "| memory_budget=65536",
    "grid(6) | flooding | classic | trials=4 | seed=0 | max_rounds=32 "
    "| telemetry=on",
)

#: Expansion-pipeline pins: (graph spec, estimator spec, seed).
EXPANSIONS = (
    ("margulis(4)", "sampled(samples=30)", 1),
    ("hypercube(4)", "sampled(samples=20)", 3),
)

FIXTURE_PATH = os.path.join(os.path.dirname(__file__), "fixtures", "pinned.json")


def digest(arr) -> dict:
    """Content digest of an array: dtype, shape, and the sha256 of its
    C-contiguous little-endian bytes."""
    arr = np.ascontiguousarray(arr)
    canon = arr.astype(arr.dtype.newbyteorder("<"), copy=False)
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "sha256": hashlib.sha256(
            np.ascontiguousarray(canon).tobytes()
        ).hexdigest(),
    }


def batch_record(batch) -> dict:
    """The pinned view of one BatchBroadcastResult."""
    return {
        "rounds": [int(r) for r in batch.rounds],
        "completed": [bool(c) for c in batch.completed],
        "transmissions": [int(t) for t in batch.transmissions],
        "informed_per_round": digest(batch.informed_per_round),
        "first_informed_round": digest(batch.first_informed_round),
        "extras": {k: digest(v) for k, v in sorted(batch.extras.items())},
    }


def expansion_record(graph: str, expansion: str, seed: int) -> dict:
    from repro.scenario.tasks import expansion_summary

    out = expansion_summary(graph, expansion=expansion, seed=seed)
    return {
        "beta_w": out["beta_w"],
        "bound": out["bound"],
        "subset_size": out["subset_size"],
        "candidates": out["candidates"],
    }


def build() -> dict:
    from repro.scenario import Scenario

    return {
        "scenarios": {
            spec: batch_record(Scenario.from_string(spec).run())
            for spec in SCENARIOS
        },
        "expansions": {
            f"{graph} :: {expansion} :: seed={seed}": expansion_record(
                graph, expansion, seed
            )
            for graph, expansion, seed in EXPANSIONS
        },
    }


def main() -> None:
    payload = build()
    with open(FIXTURE_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {FIXTURE_PATH}")


if __name__ == "__main__":
    main()
