"""Bit-for-bit certification of the numpy path through the backend shim.

``fixtures/pinned.json`` was generated *before* the array-backend
refactor routed the dense engine, workloads, and expansion pipeline
through :mod:`repro.backend`.  Replaying every pinned scenario and
expansion measurement against those digests proves the refactored numpy
path is byte-identical to the pre-backend engine — the shim's core
contract (zero new tolerance on the host path).
"""

from __future__ import annotations

import json

import pytest

from make_fixtures import (  # sibling module; pytest adds this dir to sys.path
    EXPANSIONS,
    FIXTURE_PATH,
    SCENARIOS,
    batch_record,
    expansion_record,
)


@pytest.fixture(scope="module")
def pinned() -> dict:
    with open(FIXTURE_PATH, encoding="utf-8") as fh:
        return json.load(fh)


def test_fixture_file_covers_every_pin(pinned):
    assert set(pinned["scenarios"]) == set(SCENARIOS)
    assert set(pinned["expansions"]) == {
        f"{graph} :: {expansion} :: seed={seed}"
        for graph, expansion, seed in EXPANSIONS
    }


@pytest.mark.parametrize("spec", SCENARIOS)
def test_scenario_matches_pre_backend_digest(pinned, spec):
    from repro.scenario import Scenario

    assert batch_record(Scenario.from_string(spec).run()) == (
        pinned["scenarios"][spec]
    )


@pytest.mark.parametrize("graph,expansion,seed", EXPANSIONS)
def test_expansion_matches_pre_backend_digest(pinned, graph, expansion, seed):
    key = f"{graph} :: {expansion} :: seed={seed}"
    assert expansion_record(graph, expansion, seed) == pinned["expansions"][key]
