"""Unit tests for the :mod:`repro.backend` shim itself.

The host backend's identity contract, the resolution rules (``None`` /
name / instance / graceful ImportError fallback), the picklable ``spec``
string, and the scenario/engine selection plumbing — everything that
does not need an accelerator library installed.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.backend import (
    BACKEND_NAMES,
    HOST,
    ArrayBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.graphs import hypercube


# ----------------------------------------------------------------------
# Host backend: literal identity over numpy
# ----------------------------------------------------------------------
class TestHostBackend:
    def test_xp_is_numpy_itself(self):
        assert HOST.xp is np

    def test_flags(self):
        assert HOST.name == "numpy"
        assert HOST.device == "cpu"
        assert HOST.is_host is True
        assert HOST.spec == "numpy"

    def test_asarray_is_identity_on_ndarray(self):
        arr = np.arange(5)
        assert HOST.asarray(arr) is arr

    def test_to_numpy_is_identity_on_ndarray(self):
        arr = np.arange(5)
        assert HOST.to_numpy(arr) is arr

    def test_astype_maps_dtype(self):
        out = HOST.astype(np.arange(4), np.int8)
        assert out.dtype == np.int8

    def test_kernel_ops_match_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, size=(4, 3))
        b = rng.integers(0, 5, size=(3, 2))
        assert np.array_equal(HOST.matmul(a, b), a @ b)
        assert HOST.count_nonzero(a) == np.count_nonzero(a)
        table = np.arange(10) * 7
        idx = np.array([[1, 3], [2, 0]])
        assert np.array_equal(HOST.take(table, idx), np.take(table, idx))
        m = a > 2
        assert np.array_equal(HOST.where(m, a, 0), np.where(m, a, 0))
        assert np.array_equal(HOST.maximum(a, 3), np.maximum(a, 3))
        assert np.array_equal(HOST.ones_like(a), np.ones_like(a))

    def test_is_bool(self):
        assert HOST.is_bool(np.zeros(3, dtype=bool))
        assert not HOST.is_bool(np.zeros(3, dtype=np.int8))

    def test_adjacency_operator_is_pre_backend_expression(self):
        g = hypercube(3)
        op = HOST.adjacency_operator(g, np.int8)
        expected = g.adjacency.astype(np.int8, copy=False)
        assert op.dtype == np.int8
        assert (op != expected).nnz == 0

    def test_neighbor_counts_matches_direct_product(self):
        g = hypercube(3)
        op = HOST.adjacency_operator(g, np.int8)
        transmitting = np.zeros((g.n, 4), dtype=bool)
        transmitting[::2, :] = True
        got = HOST.neighbor_counts(op, transmitting)
        want = g.adjacency.astype(np.int8) @ transmitting.astype(np.int8)
        assert np.array_equal(got, want)

    def test_value_matmul_preserves_int64_upcast(self):
        g = hypercube(3)
        op = HOST.value_operator(g)
        values = np.arange(g.n, dtype=np.int64)[:, None] * (1 << 40)
        got = HOST.value_matmul(op, values)
        assert got.dtype == np.int64
        assert np.array_equal(got, g.adjacency.astype(np.int64) @ values)

    def test_synchronize_is_noop(self):
        HOST.synchronize()


# ----------------------------------------------------------------------
# Resolution rules
# ----------------------------------------------------------------------
class TestResolution:
    def test_none_is_host_singleton(self):
        assert resolve_backend(None) is HOST

    def test_numpy_name_is_host_singleton(self):
        assert resolve_backend("numpy") is HOST
        assert get_backend("numpy") is HOST
        assert get_backend("  NumPy ") is HOST

    def test_instance_passthrough(self):
        other = NumpyBackend()
        assert resolve_backend(other) is other

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("cupy")

    def test_registry_names(self):
        assert set(BACKEND_NAMES) == {"numpy", "torch"}
        avail = available_backends()
        assert avail["numpy"] is True
        assert set(avail) == set(BACKEND_NAMES)

    def test_missing_library_falls_back_with_one_warning(self):
        if available_backends()["torch"]:
            pytest.skip("torch installed; fallback path not reachable")
        with pytest.warns(RuntimeWarning, match="falling back to numpy") as rec:
            backend = resolve_backend("torch")
        assert backend is HOST
        assert len(rec) == 1

    def test_spec_string_roundtrip(self):
        assert HOST.spec == "numpy"
        assert resolve_backend(HOST.spec) is HOST


# ----------------------------------------------------------------------
# A non-host stand-in: numpy semantics behind the accelerator code paths.
# ----------------------------------------------------------------------
class MirrorBackend(NumpyBackend):
    """Numpy with ``is_host=False`` — forces every device-transfer branch
    (the dense loop's ``to_numpy``/``asarray`` boundaries, the jamming
    channel's out-of-place deaf mask, the expansion pipeline's operator
    path) while staying bit-for-bit numpy, so the non-host plumbing is
    testable without an accelerator installed."""

    name = "numpy"
    is_host = False


MIRROR = MirrorBackend()


class TestEngineSelection:
    def test_auto_prefers_dense_off_host(self):
        from repro.radio.broadcast import run_broadcast_batch
        from repro.radio.protocols import DecayProtocol

        g = hypercube(6)
        host = run_broadcast_batch(g, DecayProtocol(), trials=80, seed=3)
        mirrored = run_broadcast_batch(
            g, DecayProtocol(), trials=80, seed=3, backend=MIRROR
        )
        assert np.array_equal(host.rounds, mirrored.rounds)
        assert np.array_equal(host.completed, mirrored.completed)
        assert np.array_equal(host.transmissions, mirrored.transmissions)

    def test_explicit_bitset_off_host_warns_and_runs_host_bitset(self):
        from repro.radio.broadcast import run_broadcast_batch
        from repro.radio.protocols import DecayProtocol

        g = hypercube(5)
        with pytest.warns(RuntimeWarning, match="bitset engine is numpy-only"):
            got = run_broadcast_batch(
                g, DecayProtocol(), trials=8, seed=1, engine="bitset",
                backend=MIRROR,
            )
        want = run_broadcast_batch(
            g, DecayProtocol(), trials=8, seed=1, engine="bitset"
        )
        assert np.array_equal(got.rounds, want.rounds)

    def test_result_arrays_are_host_numpy(self):
        from repro.radio.broadcast import run_broadcast_batch
        from repro.radio.protocols import DecayProtocol

        g = hypercube(4)
        batch = run_broadcast_batch(g, DecayProtocol(), trials=6, seed=0, backend=MIRROR)
        for arr in (
            batch.rounds,
            batch.completed,
            batch.transmissions,
            batch.informed_per_round,
            batch.first_informed_round,
        ):
            assert isinstance(arr, np.ndarray)


# ----------------------------------------------------------------------
# Scenario / CLI threading
# ----------------------------------------------------------------------
class TestScenarioThreading:
    def test_backend_segment_parses(self):
        from repro.scenario import Scenario

        s = Scenario.from_string("hypercube(4) | decay | backend=torch")
        assert s.backend == "torch"
        assert "backend=torch" in s.describe()

    def test_device_suffix_accepted(self):
        from repro.scenario import Scenario

        s = Scenario.from_string("hypercube(4) | decay | backend=torch:cuda")
        assert s.backend == "torch:cuda"

    def test_unknown_backend_rejected(self):
        from repro.scenario import Scenario

        with pytest.raises(ValueError, match="backend"):
            Scenario.from_string("hypercube(4) | decay | backend=jax")

    def test_default_backend_keeps_pre_backend_cache_keys(self):
        from repro.scenario import Scenario

        s = Scenario.from_string("hypercube(4) | decay | trials=4")
        assert s.backend == "numpy"
        assert "backend" not in s.to_dict()
        assert "backend" not in s.describe()

    def test_non_default_backend_changes_cache_identity(self):
        from repro.scenario import Scenario

        s = Scenario.from_string("hypercube(4) | decay | backend=torch")
        assert s.to_dict()["backend"] == "torch"

    def test_run_falls_back_with_single_warning_when_torch_missing(self):
        if available_backends()["torch"]:
            pytest.skip("torch installed; fallback path not reachable")
        from repro.scenario import Scenario

        s = Scenario.from_string(
            "hypercube(10) | decay | backend=torch | trials=2"
        )
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            batch = s.run()
        fallback = [
            w for w in rec if issubclass(w.category, RuntimeWarning)
            and "falling back to numpy" in str(w.message)
        ]
        assert len(fallback) == 1
        want = Scenario.from_string("hypercube(10) | decay | trials=2").run()
        assert np.array_equal(batch.rounds, want.rounds)

    def test_cli_backend_flag_is_sugar_for_override(self, capsys):
        from repro.cli import main

        rc = main([
            "broadcast", "--scenario", "hypercube(4) | decay | trials=2",
            "--reps", "1", "--backend", "numpy",
        ])
        assert rc == 0
        assert "scenario broadcast" in capsys.readouterr().out

    def test_cli_rejects_unknown_backend(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([
                "broadcast", "--scenario", "hypercube(4) | decay | trials=2",
                "--reps", "1", "--backend", "jax",
            ])


class TestAbstractContract:
    def test_cannot_instantiate_abstract(self):
        with pytest.raises(TypeError):
            ArrayBackend()  # type: ignore[abstract]

    def test_spec_includes_non_cpu_device(self):
        class Fake(NumpyBackend):
            device = "cuda"

        assert Fake().spec == "numpy:cuda"
