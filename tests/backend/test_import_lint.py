"""The backend import lint must hold on the tree as committed.

Runs ``tools/lint_backend_imports.py`` exactly as the CI lint job does,
plus unit checks of its AST detector on synthetic modules.
"""

from __future__ import annotations

import ast
import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOL = REPO_ROOT / "tools" / "lint_backend_imports.py"


def load_tool():
    spec = importlib.util.spec_from_file_location("lint_backend_imports", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_tree_passes_lint():
    proc = subprocess.run(
        [sys.executable, str(TOOL)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "backend import lint: OK" in proc.stdout


def test_detector_catches_every_spelling():
    tool = load_tool()
    source = (
        "import numpy\n"
        "import numpy as np\n"
        "import numpy.random\n"
        "from numpy import array\n"
        "from numpy.linalg import norm\n"
        "def f():\n"
        "    import numpy as np2\n"
    )
    hits = list(tool.numpy_imports(ast.parse(source)))
    assert len(hits) == 6


def test_detector_ignores_shim_spelling():
    tool = load_tool()
    source = (
        "from repro.backend import HOST\n"
        "np = HOST.xp\n"
        "import scipy.sparse\n"
        "from repro._util import dtypes\n"
    )
    assert list(tool.numpy_imports(ast.parse(source))) == []


def test_routed_hot_modules_are_not_allowlisted():
    tool = load_tool()
    allow = tool.read_allowlist()
    for routed in (
        "src/repro/radio/network.py",
        "src/repro/radio/broadcast.py",
        "src/repro/workload/zoo.py",
        "src/repro/expansion/pipeline.py",
    ):
        assert routed not in allow, f"{routed} must stay routed"
