"""Seeded equivalence of every routed kernel across array backends.

Each registered backend runs the same seeded scenarios as the numpy
host; counter-based randomness is always drawn host-side, so per-trial
coin streams are identical and the observable outcomes (rounds,
completion, transmissions, expansion ratios) must agree.  The numpy host
path is bit-for-bit by construction; torch-cpu's integer embeddings are
exact within their documented bounds (float32 counts below ``2**24``,
float64 values below ``2**53``), so its outcomes match exactly too.

Backends whose library is not installed are skipped here and exercised
by the CI ``backend-smoke`` job, which installs torch CPU wheels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import available_backends, get_backend
from repro.graphs import hypercube, margulis_expander
from repro.radio.broadcast import run_broadcast_batch
from repro.radio.channel import (
    AdversarialJamming,
    ClassicCollision,
    CollisionDetection,
    ErasureChannel,
    FaultSchedule,
)
from repro.radio.protocols import DecayProtocol

AVAILABLE = available_backends()
BACKENDS = pytest.mark.parametrize(
    "backend_name",
    [
        pytest.param(
            name,
            marks=()
            if AVAILABLE[name]
            else pytest.mark.skip(reason=f"{name} not installed"),
        )
        for name in sorted(AVAILABLE)
    ],
)

CHANNELS = {
    "classic": lambda: ClassicCollision(),
    "cd": lambda: CollisionDetection(),
    "erasure": lambda: ErasureChannel(0.2),
    "jamming": lambda: AdversarialJamming(
        FaultSchedule(
            jam_windows=((0, 4, (0, 1)),), crashes=((2, (3,)),)
        )
    ),
}


def outcomes(batch) -> tuple:
    return (
        batch.rounds.tolist(),
        batch.completed.tolist(),
        batch.transmissions.tolist(),
        batch.informed_per_round.tolist(),
        batch.first_informed_round.tolist(),
    )


@BACKENDS
@pytest.mark.parametrize("channel_name", sorted(CHANNELS))
def test_channels_match_host(backend_name, channel_name):
    g = hypercube(5)
    host = run_broadcast_batch(
        g, DecayProtocol(), trials=16, seed=11, channel=CHANNELS[channel_name]()
    )
    other = run_broadcast_batch(
        g,
        DecayProtocol(),
        trials=16,
        seed=11,
        channel=CHANNELS[channel_name](),
        backend=get_backend(backend_name),
    )
    assert outcomes(other) == outcomes(host)


@BACKENDS
@pytest.mark.parametrize(
    "workload", ["gossip(k=3)", "aggregate(op=max)", "pipeline(m=3)"]
)
def test_value_workloads_match_host(backend_name, workload):
    from repro.scenario import Scenario

    base = f"margulis(3) | decay | classic | {workload} | trials=8 | seed=5"
    host = Scenario.from_string(base).run()
    other = Scenario.from_string(f"{base} | backend={backend_name}").run()
    assert outcomes(other) == outcomes(host)
    assert set(other.extras) == set(host.extras)
    for key in host.extras:
        assert np.array_equal(other.extras[key], host.extras[key]), key


@BACKENDS
def test_trial_compaction_matches_host(backend_name):
    g = hypercube(6)
    host = run_broadcast_batch(
        g, DecayProtocol(), trials=40, seed=2, channel=ErasureChannel(0.3)
    )
    other = run_broadcast_batch(
        g,
        DecayProtocol(),
        trials=40,
        seed=2,
        channel=ErasureChannel(0.3),
        backend=get_backend(backend_name),
    )
    assert outcomes(other) == outcomes(host)


@BACKENDS
def test_memory_budget_sharding_matches_host(backend_name):
    from repro.radio.broadcast import MemoryBudget

    g = hypercube(6)
    host = run_broadcast_batch(g, DecayProtocol(), trials=24, seed=9)
    other = run_broadcast_batch(
        g,
        DecayProtocol(),
        trials=24,
        seed=9,
        memory_budget=MemoryBudget(65536),
        backend=get_backend(backend_name),
    )
    assert outcomes(other) == outcomes(host)


@BACKENDS
def test_expansion_pipeline_matches_host(backend_name):
    from repro.expansion.pipeline import evaluate_candidate_shard

    g = margulis_expander(4)
    rng = np.random.default_rng(7)
    candidates = [
        np.flatnonzero(rng.random(g.n) < 0.3) for _ in range(6)
    ]
    candidates = [c for c in candidates if c.size]
    host = evaluate_candidate_shard(g, candidates, size_cap=g.n // 2)
    other = evaluate_candidate_shard(
        g, candidates, size_cap=g.n // 2, backend=get_backend(backend_name)
    )
    assert np.array_equal(other, host)


@BACKENDS
def test_lattice_dp_matches_host(backend_name):
    from repro.expansion.pipeline import max_unique_coverage_lattice

    rng = np.random.default_rng(3)
    masks = np.unique(rng.integers(1, 1 << 10, size=16, dtype=np.int64))
    weights = rng.integers(1, 50, size=masks.size).astype(np.int64)
    host = max_unique_coverage_lattice(10, masks, weights)
    other = max_unique_coverage_lattice(
        10, masks, weights, backend=get_backend(backend_name)
    )
    assert other == host
