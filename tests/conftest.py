"""Shared fixtures for the repro test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    BipartiteGraph,
    Graph,
    core_graph,
    cplus_graph,
    erdos_renyi,
    gbad,
    hypercube,
    random_bipartite,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def tiny_bipartite() -> BipartiteGraph:
    """A fixed 4x5 bipartite graph used across kernel tests.

    Left 0: {0,1}; left 1: {1,2}; left 2: {2,3,4}; left 3: {4}.
    """
    return BipartiteGraph(
        4, 5, [(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 3), (2, 4), (3, 4)]
    )


@pytest.fixture
def triangle_with_tail() -> Graph:
    """Triangle 0-1-2 plus a tail 2-3; small but not vertex-transitive."""
    return Graph(4, [(0, 1), (1, 2), (0, 2), (2, 3)])


@pytest.fixture
def q3() -> Graph:
    """The 3-dimensional hypercube (8 vertices, 3-regular)."""
    return hypercube(3)


@pytest.fixture
def core8() -> BipartiteGraph:
    """Core graph with s = 8."""
    return core_graph(8)


@pytest.fixture
def gbad_643() -> BipartiteGraph:
    """Gbad with s=6, Δ=4, β=3 (βu = 2)."""
    return gbad(6, 4, 3)


@pytest.fixture
def cplus6() -> Graph:
    """C⁺ with a 6-clique."""
    return cplus_graph(6)


def random_graph_cases(seed: int, count: int, n: int = 9, p: float = 0.35):
    """Deterministic list of small random graphs for loops inside tests."""
    gen = np.random.default_rng(seed)
    return [erdos_renyi(n, p, rng=gen) for _ in range(count)]


def random_bipartite_cases(
    seed: int, count: int, n_left: int = 7, n_right: int = 11, p: float = 0.3
):
    """Deterministic list of small random bipartite graphs."""
    gen = np.random.default_rng(seed)
    return [random_bipartite(n_left, n_right, p, rng=gen) for _ in range(count)]
