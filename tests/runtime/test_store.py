"""Content-addressed result store: keys, round trips, corruption recovery."""

import json
import os

import numpy as np
import pytest

from repro.analysis import run_sweep
from repro.radio import ChannelSpec, DecayProtocol
from repro.radio.lower_bound import measure_chain_broadcast_batch
from repro.runtime import ResultStore, canonical_dumps, task_key


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "cache", salt="test-salt")


def named_task(x, seed):
    return x + seed


class TestTaskKey:
    def test_stable_across_dict_order(self):
        a = task_key("m.f", {"a": 1, "b": 2}, 3, "s")
        b = task_key("m.f", {"b": 2, "a": 1}, 3, "s")
        assert a == b

    def test_sensitive_to_every_component(self):
        base = task_key("m.f", {"a": 1}, 3, "s")
        assert task_key("m.g", {"a": 1}, 3, "s") != base
        assert task_key("m.f", {"a": 2}, 3, "s") != base
        assert task_key("m.f", {"a": 1}, 4, "s") != base
        assert task_key("m.f", {"a": 1}, 3, "other") != base

    def test_seed_lists_address_batches(self):
        assert task_key("m.f", {}, [1, 2], "s") != task_key("m.f", {}, [2, 1], "s")
        assert task_key("m.f", {}, [3], "s") != task_key("m.f", {}, 3, "s")

    def test_callable_resolved_to_qualname(self):
        assert task_key(named_task, {}, 0, "s") == task_key(
            f"{named_task.__module__}.named_task", {}, 0, "s"
        )

    def test_lambda_rejected(self):
        with pytest.raises(ValueError, match="stable import path"):
            task_key(lambda x: x, {}, 0, "s")

    def test_dataclass_and_array_params_are_addressable(self):
        spec = ChannelSpec("erasure", 0.2)
        arr = np.arange(4)
        key = task_key("m.f", {"channel": spec, "mask": arr}, 0, "s")
        assert key == task_key("m.f", {"channel": spec, "mask": arr.copy()}, 0, "s")
        assert key != task_key(
            "m.f", {"channel": ChannelSpec("erasure", 0.3), "mask": arr}, 0, "s"
        )

    def test_unaddressable_params_raise(self):
        with pytest.raises(TypeError, match="cannot persist"):
            canonical_dumps({"fn": object()})


class TestRoundTrip:
    def test_plain_payload(self, store):
        value = {"rounds": [1, 2, 3], "mean": 2.0, "tag": ("a", 1), "none": None}
        store.put("k" * 64, value)
        got = store.get("k" * 64)
        assert got == value
        assert isinstance(got["tag"], tuple)

    def test_numpy_and_dataclass_payload(self, store):
        m = measure_chain_broadcast_batch(
            4, 2, DecayProtocol(), trials=3, seed=0, chain_seed=1
        )
        key = store.key("repro.radio.lower_bound.measure_chain_broadcast_batch",
                        {"s": 4, "layers": 2}, 0)
        store.put(key, m)
        got = store.get(key)
        assert type(got) is type(m)
        assert got.s == m.s and got.trials == m.trials
        np.testing.assert_array_equal(got.rounds, m.rounds)
        assert got.rounds.dtype == m.rounds.dtype
        np.testing.assert_array_equal(got.portal_rounds, m.portal_rounds)

    def test_numpy_scalars_keep_dtype(self, store):
        store.put("s" * 64, {"x": np.int64(7), "y": np.float64(0.5)})
        got = store.get("s" * 64)
        assert got["x"] == 7 and got["x"].dtype == np.int64
        assert got["y"] == 0.5

    def test_miss_counts_and_raises(self, store):
        with pytest.raises(KeyError):
            store.get("0" * 64)
        assert (store.hits, store.misses) == (0, 1)
        store.put("0" * 64, 1)
        assert store.get("0" * 64) == 1
        assert (store.hits, store.misses) == (1, 1)


class TestCorruptionRecovery:
    def _entry_path(self, store, key):
        return os.path.join(store.objects_dir, key[:2], key + ".json")

    def test_truncated_json_is_a_miss_and_discarded(self, store):
        key = "a" * 64
        store.put(key, {"v": 1})
        with open(self._entry_path(store, key), "w") as fh:
            fh.write('{"key": "a')
        with pytest.raises(KeyError):
            store.get(key)
        assert not os.path.exists(self._entry_path(store, key))
        store.put(key, {"v": 2})  # recomputation re-populates cleanly
        assert store.get(key) == {"v": 2}

    def test_key_mismatch_is_a_miss(self, store):
        key, other = "b" * 64, "c" * 64
        store.put(key, {"v": 1})
        payload = open(self._entry_path(store, key)).read()
        os.makedirs(os.path.dirname(self._entry_path(store, other)), exist_ok=True)
        with open(self._entry_path(store, other), "w") as fh:
            fh.write(payload)  # entry stored under a foreign address
        with pytest.raises(KeyError):
            store.get(other)

    def test_missing_npz_sidecar_is_a_miss(self, store):
        key = "d" * 64
        store.put(key, {"arr": np.arange(5)})
        os.unlink(os.path.join(store.objects_dir, key[:2], key + ".npz"))
        with pytest.raises(KeyError):
            store.get(key)
        # The orphaned JSON document was discarded, not left to rot.
        assert not os.path.exists(self._entry_path(store, key))
        assert not store.contains(key)


class TestCrashMidWrite:
    """A writer killed at any point of ``put`` must never corrupt what a
    concurrent reader (or the next writer) sees — the multi-process
    safety contract the experiment service's workers rely on."""

    def _shard_dir(self, store, key):
        return os.path.join(store.objects_dir, key[:2])

    def test_orphaned_tmp_is_invisible_to_readers(self, store):
        key = "e" * 64
        store.put(key, {"arr": np.arange(4)})
        # A writer killed between mkstemp and os.replace leaves exactly
        # this: garbage under a .tmp name next to real entries.
        for name in ("deadbeef.tmp", "deadbeef.tmp.npz"):
            with open(os.path.join(self._shard_dir(store, key), name), "wb") as fh:
                fh.write(b'{"key": "partial')
        assert store.contains(key)
        np.testing.assert_array_equal(store.get(key)["arr"], np.arange(4))
        assert store.stats().entries == 1  # tmp junk is not an entry

    def test_sweep_removes_stale_tmp_but_not_fresh(self, store):
        key = "f" * 64
        store.put(key, 1)
        shard = self._shard_dir(store, key)
        stale = os.path.join(shard, "stale.tmp")
        fresh = os.path.join(shard, "fresh.tmp")
        for path in (stale, fresh):
            with open(path, "wb") as fh:
                fh.write(b"x")
        os.utime(stale, (0, 0))  # crashed long ago
        assert store.sweep_tmp() == 1
        assert not os.path.exists(stale)
        assert os.path.exists(fresh)  # could be a live writer's in-flight put
        assert store.sweep_tmp(max_age_seconds=0) == 1
        assert not os.path.exists(fresh)
        assert store.get(key) == 1  # real entries untouched throughout

    def test_crash_between_sidecar_and_document_is_a_miss(self, store):
        # put() lands the .npz sidecar before the .json document, so this
        # is the only observable intermediate state: sidecar present,
        # document absent.  It must read as a clean miss and heal on re-put.
        key = "9" * 64
        store.put(key, {"arr": np.arange(3)})
        os.unlink(os.path.join(self._shard_dir(store, key), key + ".json"))
        assert not store.contains(key)
        with pytest.raises(KeyError):
            store.get(key)
        store.put(key, {"arr": np.arange(3)})
        np.testing.assert_array_equal(store.get(key)["arr"], np.arange(3))

    def test_interrupted_put_cleans_its_tmp(self, store, monkeypatch):
        # A *graceful* failure mid-write (exception, not SIGKILL) must not
        # even leak the tmp file.
        calls = {"n": 0}
        real_replace = os.replace

        def failing_replace(src, dst):
            calls["n"] += 1
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError, match="disk full"):
            store.put("8" * 64, {"v": 1})
        monkeypatch.setattr(os, "replace", real_replace)
        assert calls["n"] == 1
        shard = self._shard_dir(store, "8" * 64)
        leftovers = [n for n in os.listdir(shard) if ".tmp" in n]
        assert leftovers == []
        assert not store.contains("8" * 64)


class TestStoreManagement:
    def test_stats_and_clear(self, store):
        for i in range(3):
            store.put(f"{i}" * 64, {"i": i, "arr": np.arange(4)})
        st = store.stats()
        assert st.entries == 3 and st.bytes > 0
        removed = store.clear()
        assert removed.entries == 3
        assert store.stats().entries == 0

    def test_drop_selected_keys(self, store):
        keys = [f"{i}" * 64 for i in range(4)]
        for k in keys:
            store.put(k, 0)
        assert store.drop(keys[:2]) == 2
        assert not store.contains(keys[0]) and store.contains(keys[3])

    def test_salt_partitions_the_address_space(self, tmp_path):
        a = ResultStore(tmp_path, salt="v1")
        b = ResultStore(tmp_path, salt="v2")
        assert a.key("m.f", {}, 0) != b.key("m.f", {}, 0)


class TestCachedSweep:
    def test_warm_run_replays_without_evaluating(self, store):
        calls = []

        def fn(a, seed):
            calls.append((a, seed))
            return a * 10

        kw = dict(seed=3, repetitions=2)
        reference = run_sweep({"a": [1, 2]}, fn, **kw)
        cold = run_sweep({"a": [1, 2]}, fn, **kw, cache=store)
        assert len(calls) == 2 * len(reference)
        warm = run_sweep({"a": [1, 2]}, fn, **kw, cache=store)
        assert len(calls) == 2 * len(reference)  # no new evaluations
        assert cold == warm == reference
        assert store.misses == 4 and store.hits == 4

    def test_corrupted_entry_recomputed_alone(self, store):
        calls = []

        def fn(a, seed):
            calls.append(a)
            return a

        kw = dict(seed=3, repetitions=1)
        run_sweep({"a": [1, 2, 3]}, fn, **kw, cache=store)
        # Corrupt one of the three entries on disk.
        victim = os.listdir(store.objects_dir)[0]
        shard = os.path.join(store.objects_dir, victim)
        with open(os.path.join(shard, os.listdir(shard)[0]), "w") as fh:
            fh.write("garbage")
        calls.clear()
        again = run_sweep({"a": [1, 2, 3]}, fn, **kw, cache=store)
        assert len(calls) == 1  # only the corrupted task re-ran
        assert [p.result for p in again] == [1, 2, 3]

    def test_cache_accepts_plain_path(self, tmp_path):
        def fn(a, seed):
            return a

        root = tmp_path / "bypath"
        run_sweep({"a": [5]}, fn, seed=0, cache=root)
        assert any(
            name.endswith(".json")
            for _, _, files in os.walk(root)
            for name in files
        )

    def test_unaddressable_static_params_error(self, store):
        with pytest.raises(TypeError, match="content-addressable"):
            run_sweep(
                {"a": [1]},
                named_task,
                seed=0,
                static_params={"factory": lambda: 1},
                cache=store,
            )

    def test_batch_results_cached_per_point(self, store):
        def batch(a, seeds):
            return [a + s for s in seeds]

        kw = dict(seed=1, repetitions=3)
        cold = run_sweep({"a": [1, 2]}, batch_fn=batch, **kw, cache=store)
        assert store.misses == 2  # one task (and entry) per grid point
        warm = run_sweep({"a": [1, 2]}, batch_fn=batch, **kw, cache=store)
        assert store.hits == 2
        assert cold == warm

    def test_sidecar_json_is_plain(self, tmp_path):
        from repro.runtime import write_json_payload

        path = tmp_path / "out.json"
        write_json_payload(
            path, {"arr": np.arange(3), "x": np.int64(2), "t": (1, 2)}
        )
        data = json.loads(path.read_text())
        assert data == {"arr": [0, 1, 2], "x": 2, "t": [1, 2]}
