"""Executor layer: serial/parallel interchangeability, bit for bit."""

import pytest

from repro.analysis import run_sweep
from repro.runtime import (
    ParallelExecutor,
    SerialExecutor,
    as_executor,
    default_jobs,
)
from repro.runtime.tasks import chain_broadcast_point

# Tiny but real workload shared by the equivalence tests: 4 grid points
# x 2 reps = 8 tasks of batched chain broadcast.
SPACE = {"s": [2, 4], "layers": [2, 3]}
SWEEP_KW = dict(seed=7, repetitions=2, static_params={"trials": 2})


def double(x, seed):
    """Module-level (hence picklable) toy task."""
    return (x * 2, seed)


class TestSerialExecutor:
    def test_map_preserves_order(self):
        calls = [{"x": i, "seed": i * 10} for i in range(5)]
        assert SerialExecutor().map(double, calls) == [
            (2 * i, 10 * i) for i in range(5)
        ]

    def test_imap_yields_in_order(self):
        pairs = list(SerialExecutor().imap(double, [{"x": 1, "seed": 0}]))
        assert pairs == [(0, (2, 0))]


class TestParallelExecutor:
    def test_map_matches_serial_in_order(self):
        calls = [{"x": i, "seed": i} for i in range(6)]
        assert ParallelExecutor(2).map(double, calls) == SerialExecutor().map(
            double, calls
        )

    def test_jobs_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            ParallelExecutor(0)

    def test_single_job_runs_inline(self):
        # jobs=1 must not pay for a pool (and must accept non-picklable fns).
        assert ParallelExecutor(1).map(lambda x, seed: x, [{"x": 3, "seed": 0}]) == [3]

    def test_worker_exception_propagates(self):
        # s=3 violates the power-of-two contract inside the worker.
        with pytest.raises(ValueError, match="power of two"):
            ParallelExecutor(2).map(
                chain_broadcast_point,
                [{"s": 3, "layers": 2, "seed": 0}, {"s": 4, "layers": 2, "seed": 1}],
            )


class TestAsExecutor:
    def test_coercions(self):
        assert isinstance(as_executor(None), SerialExecutor)
        assert isinstance(as_executor(1), SerialExecutor)
        par = as_executor(3)
        assert isinstance(par, ParallelExecutor) and par.jobs == 3
        ex = SerialExecutor()
        assert as_executor(ex) is ex

    def test_rejects_junk(self):
        with pytest.raises(TypeError, match="executor"):
            as_executor("four")

    def test_default_jobs_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert default_jobs() == 7
        assert default_jobs(fallback=1) == 7  # env wins over the fallback
        assert as_executor(None).jobs == 1  # None is always inline serial

    def test_default_jobs_fallback_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs(fallback=1) == 1

    def test_default_jobs_rejects_non_numeric_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "auto")
        with pytest.raises(ValueError, match="REPRO_JOBS must be an integer"):
            default_jobs()


class TestParallelSerialEquivalence:
    """The tentpole contract: identical SweepPoint lists, identical order."""

    def test_run_sweep_identical_across_executors(self):
        serial = run_sweep(SPACE, chain_broadcast_point, **SWEEP_KW)
        inline = run_sweep(
            SPACE, chain_broadcast_point, **SWEEP_KW, executor=SerialExecutor()
        )
        parallel = run_sweep(
            SPACE, chain_broadcast_point, **SWEEP_KW, executor=ParallelExecutor(2)
        )
        assert serial == inline == parallel
        # Order is the grid x repetition schedule, not completion order.
        assert [p.params for p in parallel] == [p.params for p in serial]
        assert [p.seed for p in parallel] == [p.seed for p in serial]

    def test_executor_accepts_int_jobs(self):
        assert run_sweep(
            SPACE, chain_broadcast_point, **SWEEP_KW, executor=2
        ) == run_sweep(SPACE, chain_broadcast_point, **SWEEP_KW)

    def test_batch_mode_through_executor(self):
        def batch(a, seeds):
            return [(a, s) for s in seeds]

        reference = run_sweep({"a": [1, 2]}, seed=5, repetitions=3, batch_fn=batch)
        routed = run_sweep(
            {"a": [1, 2]},
            seed=5,
            repetitions=3,
            batch_fn=batch,
            executor=SerialExecutor(),
        )
        assert routed == reference

    def test_batch_mode_wrong_count_rejected(self):
        with pytest.raises(ValueError, match="results for"):
            run_sweep(
                {"a": [1]},
                seed=0,
                repetitions=2,
                batch_fn=lambda a, seeds: [0],
                executor=SerialExecutor(),
            )
