"""Sweep manifests: identity, persistence, resume-from-partial."""

import pytest

from repro.analysis import run_sweep
from repro.runtime import ResultStore, SweepManifest, plan_sweep
from repro.runtime.tasks import chain_broadcast_point

SPACE = {"s": [2, 4], "layers": [2, 3]}
KW = dict(seed=7, repetitions=2, static_params={"trials": 2})


def toy(a, seed):
    return (a, seed)


FRAGILE_CALLS: list = []
FRAGILE_EXPLODE_AT: list = [None]


def fragile_task(a, seed):
    FRAGILE_CALLS.append(a)
    if FRAGILE_EXPLODE_AT[0] is not None and len(FRAGILE_CALLS) == FRAGILE_EXPLODE_AT[0]:
        raise KeyboardInterrupt
    return a


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "cache", salt="test-salt")


class TestPlanAndIdentity:
    def test_plan_matches_run(self, store):
        manifest = plan_sweep(SPACE, chain_broadcast_point, **KW, store=store)
        assert manifest.task_count == 8  # 4 points x 2 reps, fn mode
        assert manifest.pending(store) == list(range(8))
        run_sweep(SPACE, chain_broadcast_point, **KW, cache=store)
        assert manifest.pending(store) == []
        assert manifest.progress(store) == (8, 8)

    def test_sweep_id_is_deterministic(self, store):
        a = plan_sweep(SPACE, chain_broadcast_point, **KW, store=store)
        b = plan_sweep(SPACE, chain_broadcast_point, **KW, store=store)
        assert a.sweep_id == b.sweep_id and a.keys == b.keys

    def test_sweep_id_sensitive_to_definition(self, store):
        base = plan_sweep(SPACE, chain_broadcast_point, **KW, store=store)
        other_seed = plan_sweep(
            SPACE, chain_broadcast_point,
            seed=8, repetitions=2, static_params={"trials": 2}, store=store)
        other_space = plan_sweep(
            {"s": [2], "layers": [2, 3]}, chain_broadcast_point, **KW, store=store)
        assert len({base.sweep_id, other_seed.sweep_id, other_space.sweep_id}) == 3

    def test_batch_mode_one_task_per_point(self):
        manifest = plan_sweep(
            {"a": [1, 2, 3]}, batch_fn=toy, seed=0, repetitions=4)
        assert manifest.mode == "batch"
        assert manifest.task_count == 3
        assert len(manifest.seeds) == 12

    def test_exactly_one_evaluator(self):
        with pytest.raises(ValueError, match="exactly one"):
            plan_sweep({"a": [1]}, seed=0)

    def test_stateful_generator_seed_rejected(self):
        # Planning would consume the generator, so the subsequent run
        # could never derive the planned seeds.
        import numpy as np

        with pytest.raises(TypeError, match="reusable seed"):
            plan_sweep({"a": [1]}, toy, seed=np.random.default_rng(0))

    def test_legacy_rng_kwarg_removed(self):
        with pytest.raises(TypeError, match="rng"):
            plan_sweep({"a": [1]}, toy, rng=0)


class TestPersistence:
    def test_roundtrip_preserves_identity(self, store):
        manifest = plan_sweep(SPACE, chain_broadcast_point, **KW, store=store)
        manifest.save(store)
        loaded = SweepManifest.load(store, manifest.sweep_id)
        assert loaded == manifest
        assert loaded.sweep_id == manifest.sweep_id
        assert SweepManifest.list_ids(store) == [manifest.sweep_id]

    def test_run_sweep_saves_manifest_up_front(self, store):
        def boom(a, seed):
            raise RuntimeError("die before any task completes")

        with pytest.raises(RuntimeError):
            run_sweep({"a": [1]}, boom, seed=0, cache=store)
        # The crashed run still left its ledger behind for resume tooling.
        assert len(SweepManifest.list_ids(store)) == 1


class TestResume:
    def test_resume_from_partial_cache(self, store):
        evaluated = []

        def fn(a, seed):
            evaluated.append(a)
            return a * 10

        kw = dict(seed=3, repetitions=2)
        reference = run_sweep({"a": [1, 2, 3]}, fn, **kw, cache=store)
        manifest = plan_sweep({"a": [1, 2, 3]}, fn, **kw, store=store)
        # Simulate an interrupted run: drop two of the six task results.
        store.drop([manifest.keys[1], manifest.keys[4]])
        assert manifest.progress(store) == (4, 6)
        evaluated.clear()
        resumed = run_sweep({"a": [1, 2, 3]}, fn, **kw, cache=store)
        assert len(evaluated) == 2  # only the missing tasks re-ran
        assert resumed == reference
        assert manifest.pending(store) == []

    def test_interrupted_run_persists_completed_prefix(self, store):
        # fragile_task keeps one importable identity across both runs; the
        # first run dies after two completed tasks, the second resumes.
        FRAGILE_CALLS.clear()
        FRAGILE_EXPLODE_AT[0] = 3
        kw = dict(seed=5, repetitions=1)
        with pytest.raises(KeyboardInterrupt):
            run_sweep({"a": [1, 2, 3, 4]}, fragile_task, **kw, cache=store)
        manifest = plan_sweep({"a": [1, 2, 3, 4]}, fragile_task, **kw, store=store)
        done, total = manifest.progress(store)
        assert (done, total) == (2, 4)  # results landed as tasks completed
        FRAGILE_CALLS.clear()
        FRAGILE_EXPLODE_AT[0] = None
        resumed = run_sweep({"a": [1, 2, 3, 4]}, fragile_task, **kw, cache=store)
        assert FRAGILE_CALLS == [3, 4]
        assert [p.result for p in resumed] == [1, 2, 3, 4]

    def test_resume_ignores_foreign_entries(self, store):
        def fn(a, seed):
            return a

        run_sweep({"a": [1, 2]}, fn, seed=0, cache=store)
        other = run_sweep({"a": [9]}, fn, seed=0, cache=store)
        again = run_sweep({"a": [9]}, fn, seed=0, cache=store)
        assert again == other
