"""CLI runtime verbs: ``repro sweep``, ``repro cache``, ``repro run``."""

import os
import subprocess

import pytest

from repro.analysis import get_experiment, run_experiment
from repro.analysis.experiments import default_benchmarks_dir
from repro.cli import build_parser, main


def table_rows(out):
    """The rendered table rows of a CLI capture (pipe-delimited lines)."""
    return [ln for ln in out.splitlines() if ln.count("|") >= 3]


class TestSweepVerb:
    def test_fresh_then_resume_is_pure_replay(self, tmp_path, capsys):
        argv = ["sweep", "--s-values", "2", "--layers", "2,3", "--reps", "2",
                "--trials", "2", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "fresh run, 4 tasks" in first
        assert "cache: 0 hits, 4 misses" in first
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "resuming, 4/4 tasks already cached" in second
        assert "cache: 4 hits, 0 misses" in second
        # The tables themselves agree line for line (replay == recompute).
        assert table_rows(first) == table_rows(second)

    def test_fresh_run_drops_stale_entries(self, tmp_path, capsys):
        argv = ["sweep", "--s-values", "2", "--layers", "2", "--reps", "1",
                "--trials", "2", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0  # no --resume: recompute, dropping the cache
        out = capsys.readouterr().out
        assert "stale cache entries dropped" in out
        assert "cache: 0 hits, 1 misses" in out

    def test_jobs_flag_matches_serial(self, tmp_path, capsys):
        base = ["sweep", "--s-values", "2,4", "--layers", "2", "--reps", "2",
                "--trials", "2"]
        assert main(base + ["--cache-dir", str(tmp_path / "a")]) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--cache-dir", str(tmp_path / "b"), "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert table_rows(serial) == table_rows(parallel)


class TestCacheVerb:
    def test_stats_and_clear(self, tmp_path, capsys):
        main(["sweep", "--s-values", "2", "--layers", "2", "--reps", "1",
              "--trials", "2", "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries:   1" in out
        assert "1/1 tasks complete" in out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "cleared 1 cached results" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "entries:   0" in capsys.readouterr().out

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])


class TestRunVerb:
    def test_registry_lookup(self):
        assert get_experiment("e16").bench_file == "bench_runtime_scaling.py"
        with pytest.raises(ValueError, match="unknown experiment"):
            get_experiment("E99")

    def test_run_experiment_builds_pytest_invocation(self, monkeypatch):
        captured = {}

        def fake_run(cmd, env=None, capture_output=False, text=False):
            captured.update(cmd=cmd, env=env)
            return subprocess.CompletedProcess(cmd, 0)

        monkeypatch.setattr(subprocess, "run", fake_run)
        proc = run_experiment("E16", jobs=4, smoke=True)
        assert proc.returncode == 0
        assert captured["cmd"][1:4] == ["-m", "pytest",
                                        default_benchmarks_dir() + "/bench_runtime_scaling.py"]
        assert captured["env"]["REPRO_JOBS"] == "4"
        assert captured["env"]["REPRO_BENCH_SMOKE"] == "1"
        # The injected entry must be the src/ dir itself (so `import
        # repro` works in the subprocess), not the package dir inside it.
        injected = captured["env"]["PYTHONPATH"].split(os.pathsep)[0]
        assert injected.endswith(os.sep + "src")
        assert os.path.isdir(os.path.join(injected, "repro"))

    def test_run_experiment_inherits_smoke_when_unset(self, monkeypatch):
        captured = {}

        def fake_run(cmd, env=None, capture_output=False, text=False):
            captured.update(env=env)
            return subprocess.CompletedProcess(cmd, 0)

        monkeypatch.setattr(subprocess, "run", fake_run)
        monkeypatch.delenv("REPRO_BENCH_SMOKE", raising=False)
        run_experiment("E1")
        assert "REPRO_BENCH_SMOKE" not in captured["env"]

    def test_cli_run_verb_propagates_return_code(self, monkeypatch):
        monkeypatch.setattr(
            "repro.analysis.experiments.run_experiment",
            lambda *a, **k: subprocess.CompletedProcess([], 3),
            raising=False,
        )
        # main() resolves run_experiment lazily from repro.analysis.
        monkeypatch.setattr(
            "repro.analysis.run_experiment",
            lambda *a, **k: subprocess.CompletedProcess([], 3),
        )
        assert main(["run", "E16", "--smoke"]) == 3

    def test_missing_bench_dir_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="bench file"):
            run_experiment("E16", benchmarks_dir=str(tmp_path))
