"""The observability CLI verbs: trace, obs summary, --trace-out, cache stats."""

import json

from repro.cli import main
from repro.obs.tracing import read_jsonl


class TestTraceCommand:
    def test_default_chain_trace(self, capsys):
        assert main(["trace", "--s", "4", "--layers", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "collision trace:" in out
        for col in ("round", "tx", "recv", "victims", "newly", "wasted"):
            assert col in out
        assert "totals:" in out
        assert "mean collision rate" in out

    def test_scenario_override_forces_telemetry(self, capsys):
        assert main([
            "trace", "--scenario",
            "hypercube(4) | decay | trials=8 | seed=2 | engine=bitset",
        ]) == 0
        out = capsys.readouterr().out
        # telemetry was forced on without the spec naming it
        assert "collision trace:" in out
        assert "completion 100%" in out

    def test_long_trace_elided(self, capsys):
        # Flooding on C⁺ stalls forever; a 64-round cap yields 64 rows,
        # which the table elides to keep the anatomy readable.
        assert main([
            "trace", "--scenario",
            "cplus(8) | flooding | trials=4 | seed=0 | max_rounds=64",
        ]) == 0
        out = capsys.readouterr().out
        assert "rounds elided" in out
        assert "completion 0%" in out

    def test_trace_out_sidecar(self, tmp_path, capsys):
        sink = tmp_path / "trace.jsonl"
        assert main([
            "trace", "--s", "4", "--layers", "2", "--seed", "3",
            "--trace-out", str(sink),
        ]) == 0
        capsys.readouterr()
        events = read_jsonl(sink)
        kinds = {e.get("kind") for e in events}
        assert "telemetry" in kinds
        assert "span" in kinds
        tel_events = [e for e in events if e.get("kind") == "telemetry"]
        assert all("collision_rate" in e for e in tel_events)


class TestObsSummary:
    def test_summarizes_trace_out(self, tmp_path, capsys):
        sink = tmp_path / "trace.jsonl"
        assert main([
            "trace", "--s", "4", "--layers", "2", "--seed", "3",
            "--trace-out", str(sink),
        ]) == 0
        capsys.readouterr()
        assert main(["obs", "summary", str(sink)]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out
        assert "telemetry" in out

    def test_missing_file_fails_cleanly(self, tmp_path):
        import pytest

        with pytest.raises(SystemExit):
            main(["obs", "summary", str(tmp_path / "absent.jsonl")])

    def test_garbage_file_fails_cleanly(self, tmp_path):
        import pytest

        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(SystemExit):
            main(["obs", "summary", str(bad)])


class TestCacheStats:
    def test_stats_shows_live_counters(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        # A cached sweep populates the store, then stats reads it back in
        # the same process, so the live counter line is nonzero.
        assert main([
            "sweep", "--s-values", "4", "--layers", "2", "--reps", "1",
            "--trials", "2", "--cache-dir", str(cache),
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "cache root:" in out
        assert "entries:" in out
        assert "live:" in out and "hits" in out
        assert "sweep" in out

    def test_sweep_replay_reports_time_saved(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        args = ["sweep", "--s-values", "4", "--layers", "2", "--reps", "1",
                "--trials", "2", "--cache-dir", str(cache)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "replay saved" in out


class TestTelemetryScenarioRoundTrip:
    def test_scenarios_show_telemetry_on(self, capsys):
        assert main([
            "scenarios", "show",
            "hypercube(4) | decay | trials=8 | telemetry=on",
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry=on" in out
        canonical = next(
            line for line in out.splitlines() if line.startswith("canonical:")
        )
        payload = json.loads(canonical.split(":", 1)[1])
        assert payload["telemetry"] is True

    def test_scenarios_show_off_omits_telemetry(self, capsys):
        assert main(["scenarios", "show", "hypercube(4) | decay | trials=8"]) == 0
        out = capsys.readouterr().out
        assert "telemetry" not in out
