"""Runtime tracing: spans, sinks, executor walls, cache counters."""

import math

import numpy as np
import pytest

from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.tracing import (
    Span,
    TraceRecorder,
    active_recorder,
    format_summary,
    maybe_span,
    read_jsonl,
    recording,
    summarize_events,
    traced,
    write_jsonl,
)
from repro.runtime import ResultStore, SweepManifest
from repro.runtime.executor import ParallelExecutor, SerialExecutor
from repro.scenario import Scenario
from repro.scenario.sweep import ScenarioSweep


class TestRecorder:
    def test_span_nesting_paths(self):
        rec = TraceRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        spans = rec.spans()
        # Inner closes (and records) first; paths carry the stack.
        assert [s.path for s in spans] == ["outer/inner", "outer"]
        assert all(s.duration >= 0 for s in spans)

    def test_span_closes_on_exception(self):
        rec = TraceRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("boom"):
                raise RuntimeError("x")
        assert [s.name for s in rec.spans()] == ["boom"]

    def test_span_event_round_trip(self):
        rec = TraceRecorder()
        with rec.span("s", scenario="spec"):
            pass
        span = Span.from_event(rec.events[0])
        assert span.name == "s"
        assert span.meta == {"scenario": "spec"}

    def test_counter_events(self):
        rec = TraceRecorder()
        rec.counter("cache.hit")
        rec.counter("cache.hit", 2.0)
        summary = summarize_events(rec.events)
        assert summary["counters"]["cache.hit"] == 3.0

    def test_recording_installs_and_restores(self):
        assert active_recorder() is None
        with recording() as rec:
            assert active_recorder() is rec
            with recording() as inner:
                assert active_recorder() is inner
            assert active_recorder() is rec
        assert active_recorder() is None

    def test_recording_sink_written_on_error(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        with pytest.raises(ValueError):
            with recording(sink=sink) as rec:
                with rec.span("doomed"):
                    raise ValueError("x")
        events = read_jsonl(sink)
        assert [e["name"] for e in events] == ["doomed"]

    def test_maybe_span_no_op_without_recorder(self):
        with maybe_span("free"):
            pass  # must not raise, must not record anywhere

    def test_traced_decorator(self):
        @traced("unit.fn")
        def fn(x):
            return x + 1

        assert fn(1) == 2  # no recorder: plain call
        with recording() as rec:
            assert fn(2) == 3
        assert [s.name for s in rec.spans()] == ["unit.fn"]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = [
            {"kind": "counter", "name": "c", "value": 1.0},
            {"kind": "telemetry", "round": 1, "receptions": 3,
             "collision_victims": 1, "collision_rate": 0.25},
        ]
        write_jsonl(path, events)
        assert read_jsonl(path) == events


class TestSummarize:
    def test_summary_sections(self):
        rec = TraceRecorder()
        with rec.span("task"):
            pass
        with rec.span("engine.run"):
            pass
        rec.counter("cache.hit", 3)
        rec.counter("cache.miss", 1)
        rec.record({"kind": "telemetry", "round": 1, "transmitters": 5,
                    "receptions": 4, "collision_victims": 1,
                    "newly_informed": 4, "wasted_transmissions": 1,
                    "collision_rate": 0.2})
        summary = summarize_events(rec.events)
        assert summary["spans"]["task"]["count"] == 1
        assert summary["tasks"]["count"] == 1
        assert summary["tasks"]["p50"] <= summary["tasks"]["p99"]
        assert summary["cache_hit_rate"] == 0.75
        assert summary["telemetry"]["rounds"] == 1
        assert summary["telemetry"]["collision_rate"] == 0.2
        text = format_summary(summary)
        for needle in ("spans:", "task", "cache", "telemetry"):
            assert needle in text

    def test_empty_summary(self):
        assert summarize_events([]) == {"spans": {}, "counters": {}}
        assert format_summary(summarize_events([])) == "(empty trace)" or \
            isinstance(format_summary(summarize_events([])), str)


def _double(x):
    return 2 * x


class TestExecutorWalls:
    def test_serial_imap_timed(self):
        ex = SerialExecutor()
        out = list(ex.imap_timed(_double, [{"x": 1}, {"x": 2}]))
        assert [(i, r) for i, r, _ in out] == [(0, 2), (1, 4)]
        assert all(t >= 0 and not math.isnan(t) for _, _, t in out)

    def test_parallel_imap_timed_and_merged_spans(self):
        ex = ParallelExecutor(jobs=2)
        with recording() as rec:
            out = sorted(ex.imap_timed(_double, [{"x": i} for i in range(4)]))
        assert [r for _, r, _ in out] == [0, 2, 4, 6]
        assert all(t >= 0 and not math.isnan(t) for _, _, t in out)
        # Each worker task ran under a "task" span shipped back at join.
        task_spans = [s for s in rec.spans() if s.name == "task"]
        assert len(task_spans) == 4

    def test_serial_task_spans_under_recording(self):
        with recording() as rec:
            list(SerialExecutor().imap_timed(_double, [{"x": 1}]))
        assert [s.name for s in rec.spans()] == ["task"]


class TestMetricsRegistry:
    def test_incr_get_snapshot_reset(self):
        reg = MetricsRegistry()
        reg.incr("a")
        reg.incr("a", 2.5)
        assert reg.get("a") == 3.5
        assert reg.get("absent") == 0.0
        assert reg.snapshot() == {"a": 3.5}
        reg.reset()
        assert reg.snapshot() == {}


class TestStoreCounters:
    def test_live_hit_miss_latency(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        before = METRICS.get("cache.hits"), METRICS.get("cache.misses")
        with pytest.raises(KeyError):
            store.get("nope")
        store.put("k", {"v": 1})
        assert store.get("k") == {"v": 1}
        assert (store.hits, store.misses) == (1, 1)
        assert store.get_seconds > 0
        assert store.put_seconds > 0
        assert METRICS.get("cache.hits") == before[0] + 1
        assert METRICS.get("cache.misses") == before[1] + 1
        st = store.stats()
        assert (st.hits, st.misses) == (1, 1)

    def test_cache_spans_under_recording(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        with recording() as rec:
            store.put("k", 1)
            store.get("k")
        names = [s.name for s in rec.spans()]
        assert "cache.put" in names and "cache.get" in names
        counters = summarize_events(rec.events)["counters"]
        assert counters.get("cache.hit") == 1.0

    def test_record_time_saved(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        before = METRICS.get("cache.time_saved_seconds")
        store.record_time_saved(2.5)
        assert store.time_saved == 2.5
        assert METRICS.get("cache.time_saved_seconds") == before + 2.5


class TestSweepWalls:
    def _sweep(self):
        return ScenarioSweep(
            "hypercube(3) | decay | trials=4 | seed=1",
            {"trials": [2, 4]},
        )

    def test_manifest_records_walls_and_replay_credits(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        sweep = self._sweep()
        first = sweep.run(cache=store)
        manifest = SweepManifest.load(
            store, sweep.manifest(store).sweep_id
        )
        assert manifest.walls is not None
        assert len(manifest.walls) == 2
        assert all(w is not None and w >= 0 for w in manifest.walls)
        # Replay: identical results, and the skipped compute is credited.
        saved_before = store.time_saved
        again = sweep.run(cache=store)
        assert [p.result for p in again] == [p.result for p in first]
        assert store.time_saved > saved_before

    def test_walls_do_not_change_sweep_identity(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        manifest = self._sweep().manifest(store)
        with_walls = manifest.with_walls([1.0, 2.0])
        assert with_walls.sweep_id == manifest.sweep_id
        assert with_walls.walls == [1.0, 2.0]
        with pytest.raises(ValueError):
            manifest.with_walls([1.0])

    def test_walls_survive_save_load(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        manifest = self._sweep().manifest(store).with_walls([0.5, None])
        manifest.save(store)
        loaded = SweepManifest.load(store, manifest.sweep_id)
        assert loaded.walls == [0.5, None]


class TestScenarioSpans:
    def test_scenario_run_emits_engine_span(self):
        sc = Scenario.from_string("hypercube(3) | decay | trials=4 | seed=1")
        with recording() as rec:
            batch = sc.run()
        assert batch.trials == 4
        names = [s.name for s in rec.spans()]
        assert "engine.run" in names

    def test_expansion_pipeline_traced(self):
        from repro.scenario.tasks import expansion_summary

        with recording() as rec:
            summary = expansion_summary("hypercube(3)", seed=0)
        assert "beta_w" in summary or summary  # summary shape is pipeline's
        assert any("expansion" in s.name for s in rec.spans())
