"""Batched collision telemetry: engine equivalence and the no-op contract."""

import numpy as np
import pytest

from repro.graphs import (
    cplus_graph,
    broadcast_chain,
    hypercube,
    path_graph,
    random_regular,
)
from repro.obs.telemetry import (
    TELEMETRY_FIELDS,
    TELEMETRY_PREFIX,
    RoundTelemetry,
    TelemetryAccumulator,
    telemetry_events,
)
from repro.radio import DecayProtocol, FloodingProtocol, run_broadcast_batch
from repro.radio.broadcast import merge_batches
from repro.radio.channel import ErasureChannel
from repro.scenario import Scenario

SEED = 13

#: Word-boundary trial counts: below/at/above one 64-bit word, plus the
#: serial T=1 view and a 5-word workload with a ragged final word.
WORD_EDGE_TRIALS = (1, 63, 64, 65, 257)

FAMILIES = (
    ("random_regular", lambda: random_regular(64, 6, rng=0)),
    ("chain", lambda: broadcast_chain(4, 2).graph),
    ("cplus", lambda: cplus_graph(8)),
)

CHANNELS = (
    ("classic", lambda: None),
    ("erasure", lambda: ErasureChannel(0.2)),
)


def _telemetry_extras(batch):
    return {
        k: v for k, v in batch.extras.items() if k.startswith(TELEMETRY_PREFIX)
    }


class TestEngineEquivalence:
    @pytest.mark.parametrize("family", [f[0] for f in FAMILIES])
    @pytest.mark.parametrize("channel", [c[0] for c in CHANNELS])
    @pytest.mark.parametrize("trials", WORD_EDGE_TRIALS)
    def test_dense_bitset_identical(self, family, channel, trials):
        graph = dict(FAMILIES)[family]()
        ch = dict(CHANNELS)[channel]()
        kw = dict(trials=trials, seed=SEED, channel=ch, telemetry=True)
        dense = run_broadcast_batch(
            graph, DecayProtocol(), engine="dense", **kw
        )
        bitset = run_broadcast_batch(
            graph, DecayProtocol(), engine="bitset", **kw
        )
        d_tel, b_tel = _telemetry_extras(dense), _telemetry_extras(bitset)
        assert set(d_tel) == set(b_tel) == {
            TELEMETRY_PREFIX + name for name in TELEMETRY_FIELDS
        }
        for key in d_tel:
            assert np.array_equal(d_tel[key], b_tel[key]), key
        assert np.array_equal(dense.transmissions, bitset.transmissions)

    def test_flooding_telemetry_identical(self):
        graph = hypercube(5)
        kw = dict(trials=64, seed=SEED, telemetry=True)
        dense = run_broadcast_batch(
            graph, FloodingProtocol(), engine="dense", **kw
        )
        bitset = run_broadcast_batch(
            graph, FloodingProtocol(), engine="bitset", **kw
        )
        for key, val in _telemetry_extras(dense).items():
            assert np.array_equal(val, bitset.extras[key]), key


class TestNoOpWhenOff:
    @pytest.mark.parametrize("engine", ["dense", "bitset"])
    def test_off_is_bit_for_bit_baseline(self, engine):
        graph = random_regular(128, 8, rng=1)
        kw = dict(trials=32, seed=SEED, engine=engine)
        off = run_broadcast_batch(graph, DecayProtocol(), **kw)
        on = run_broadcast_batch(graph, DecayProtocol(), telemetry=True, **kw)
        for name in (
            "rounds", "completed", "informed_per_round",
            "first_informed_round", "transmissions",
        ):
            assert np.array_equal(getattr(off, name), getattr(on, name)), name
        assert not _telemetry_extras(off)
        assert _telemetry_extras(on)

    def test_cache_key_stable_when_off(self):
        """telemetry=False serializes to nothing: pre-telemetry specs and
        their cache keys are untouched."""
        sc = Scenario.from_string("hypercube(4) | decay | trials=8")
        assert "telemetry" not in sc.describe()
        assert "telemetry" not in sc.to_dict()
        on = sc.with_overrides({"telemetry": True})
        assert "telemetry=on" in on.describe()
        assert on.to_dict()["telemetry"] is True
        # Round-trips through the grammar in both states.
        assert Scenario.from_string(sc.describe()) == sc
        assert Scenario.from_string(on.describe()) == on


class TestSharding:
    def test_memory_budget_sharded_identical(self):
        graph = random_regular(96, 6, rng=2)
        kw = dict(trials=100, seed=SEED, telemetry=True, engine="bitset")
        whole = run_broadcast_batch(graph, DecayProtocol(), **kw)
        sharded = run_broadcast_batch(
            graph, DecayProtocol(), memory_budget=40_000, **kw
        )
        for key, val in _telemetry_extras(whole).items():
            assert np.array_equal(val, sharded.extras[key]), key
        assert np.array_equal(whole.transmissions, sharded.transmissions)
        assert np.array_equal(
            whole.informed_per_round, sharded.informed_per_round
        )

    def test_merge_pads_telemetry_rounds_with_zeros(self):
        graph = path_graph(6)
        a = run_broadcast_batch(
            graph, FloodingProtocol(), trials=2, seed=0, telemetry=True
        )
        b = run_broadcast_batch(
            graph, FloodingProtocol(), trials=2, seed=0, max_rounds=2,
            telemetry=True,
        )
        merged = merge_batches([a, b])
        tel = RoundTelemetry.from_batch(merged)
        assert tel.trials == 4
        assert tel.rounds == len(a.informed_per_round)
        # The short shard's missing rounds are zero activity, not edge-pad.
        assert (tel.transmitters[2:, 2:] == 0).all()


class TestRoundTelemetryType:
    def _tel(self):
        r = np.arange(12, dtype=np.int64).reshape(4, 3)
        return RoundTelemetry(
            transmitters=r + 2,
            receptions=r,
            collision_victims=r[::-1],
            newly_informed=r,
            wasted_transmissions=np.ones_like(r),
        )

    def test_shape_and_rates(self):
        tel = self._tel()
        assert (tel.rounds, tel.trials) == (4, 3)
        assert tel.contacted.shape == (4, 3)
        rates = tel.collision_rates
        assert ((0.0 <= rates) & (rates <= 1.0)).all()
        assert ((0.0 <= tel.wasted_rates) & (tel.wasted_rates <= 1.0)).all()
        assert 0.0 <= tel.mean_collision_rate() <= 1.0
        assert set(tel.totals()) == set(TELEMETRY_FIELDS)

    def test_extras_round_trip(self):
        tel = self._tel()
        again = RoundTelemetry.from_extras(tel.to_extras())
        for name in TELEMETRY_FIELDS:
            assert np.array_equal(getattr(tel, name), getattr(again, name))

    def test_from_extras_missing_key_raises(self):
        extras = self._tel().to_extras()
        extras.pop(TELEMETRY_PREFIX + "wasted_transmissions")
        with pytest.raises(KeyError):
            RoundTelemetry.from_extras(extras)

    def test_mismatched_shapes_rejected(self):
        good = self._tel()
        with pytest.raises(ValueError):
            RoundTelemetry(
                transmitters=good.transmitters,
                receptions=good.receptions[:2],
                collision_victims=good.collision_victims,
                newly_informed=good.newly_informed,
                wasted_transmissions=good.wasted_transmissions,
            )

    def test_accumulator_builds_extras(self):
        acc = TelemetryAccumulator(3)
        zeros = np.zeros(3, dtype=np.int64)
        acc.append_full(
            transmitters=zeros + 2, receptions=zeros + 1,
            collision_victims=zeros, newly_informed=zeros + 1,
            wasted_transmissions=zeros,
        )
        extras = acc.extras()
        assert set(extras) == {
            TELEMETRY_PREFIX + name for name in TELEMETRY_FIELDS
        }
        assert extras[TELEMETRY_PREFIX + "transmitters"].shape == (1, 3)

    def test_events_stream(self):
        tel = self._tel()
        events = list(telemetry_events(tel, scenario="s"))
        assert len(events) == tel.rounds
        assert all(e["kind"] == "telemetry" for e in events)
        assert all(0.0 <= e["collision_rate"] <= 1.0 for e in events)
        assert events[0]["scenario"] == "s"
