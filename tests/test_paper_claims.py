"""Integration suite: one test per claim of the paper (DESIGN.md §1 table).

Each test instantiates the relevant construction and verifies the claim
numerically — exactly where feasible, otherwise through certified
lower/upper bounds.
"""

import collections
import math

import numpy as np
import pytest

from repro.expansion import (
    bipartite_expansion_exact,
    bipartite_unique_expansion_exact,
    decay_success_lower_bound,
    lemma31_verify,
    max_unique_coverage_exact,
    mg_bound,
    theorem11_shape,
    unique_expansion_exact,
    unique_expansion_of_set,
    unique_success_probability,
    vertex_expansion_exact,
    wireless_expansion_exact,
    wireless_expansion_of_set_exact,
)
from repro.graphs import (
    arboricity,
    boosted_core,
    core_graph,
    core_graph_max_unique_coverage,
    core_graph_min_expansion,
    cplus_graph,
    cplus_informed_after_round_one,
    diluted_core,
    erdos_renyi,
    expander_arboricity_lower_bound,
    gbad,
    generalized_core,
    generalized_core_max_unique_coverage,
    grid_2d,
    hypercube,
    random_regular,
    worst_case_expander,
)
from repro.radio import (
    DecayProtocol,
    SpokesmanBroadcastProtocol,
    measure_chain_broadcast,
    rooted_core_graph,
    run_broadcast,
)
from repro.spokesman import (
    spokesman_partition,
    spokesman_portfolio,
    spokesman_recursive,
)


class TestSection1Motivation:
    def test_cplus_story(self):
        """C⁺ (Section 1.1): good expander, zero unique expansion after the
        first broadcast round, but positive wireless expansion."""
        g = cplus_graph(8)
        s = cplus_informed_after_round_one(8)
        assert unique_expansion_of_set(g, s) == 0.0
        bw, witness = wireless_expansion_of_set_exact(g, s)
        assert bw > 0 and witness.size == 1


class TestObservation21:
    @pytest.mark.parametrize("seed", range(5))
    def test_sandwich(self, seed):
        """β(G) ≥ βw(G) ≥ βu(G) at equal α — exact on small graphs."""
        g = erdos_renyi(9, 0.4, rng=seed)
        b, _ = vertex_expansion_exact(g, 0.5)
        bw, _ = wireless_expansion_exact(g, 0.5)
        bu, _ = unique_expansion_exact(g, 0.5)
        assert b + 1e-12 >= bw >= bu - 1e-12


class TestSection3:
    @pytest.mark.parametrize(
        "graph_maker", [lambda: hypercube(3), lambda: random_regular(12, 4, rng=1)]
    )
    def test_lemma31(self, graph_maker):
        """d-regular unique expander ⇒ ordinary expander with the spectral
        bound."""
        report = lemma31_verify(graph_maker(), 0.5)
        assert report.holds

    @pytest.mark.parametrize("seed", range(5))
    def test_lemma32(self, seed):
        """βu ≥ 2β − Δ, exact on small graphs."""
        g = erdos_renyi(8, 0.5, rng=seed)
        if g.max_degree == 0:
            return
        b, _ = vertex_expansion_exact(g, 0.5)
        bu, _ = unique_expansion_exact(g, 0.5)
        assert bu >= 2 * b - g.max_degree - 1e-9

    @pytest.mark.parametrize("delta,beta", [(4, 3), (6, 4), (6, 5), (4, 2)])
    def test_lemma33_tightness(self, delta, beta):
        """Gbad attains βu = 2β − Δ exactly (and β exactly)."""
        g = gbad(5, delta, beta)
        bu, _ = bipartite_unique_expansion_exact(g)
        b, _ = bipartite_expansion_exact(g)
        assert bu == pytest.approx(2 * beta - delta)
        assert b == pytest.approx(beta)

    @pytest.mark.parametrize("delta,beta", [(4, 2), (6, 3), (6, 4)])
    def test_remark1_wireless_survives(self, delta, beta):
        """Wireless expansion of Gbad ≥ max{2β − Δ, Δ/2}."""
        g = gbad(6, delta, beta)
        best, _ = max_unique_coverage_exact(g)
        assert best / 6 >= max(2 * beta - delta, delta / 2) - 1e-9


class TestSection42Positive:
    def test_lemma42_pointwise_probability(self):
        """The e^{-3} floor of the sampling argument."""
        for j in range(12):
            for d in (2**j, 2 ** (j + 1) - 1):
                assert (
                    unique_success_probability(d, 2.0**-j)
                    >= decay_success_lower_bound()
                )

    @pytest.mark.parametrize("s", [8, 16, 32, 64])
    def test_theorem11_on_core_graphs(self, s):
        """The portfolio certifies βw = Ω(β/log 2δ) even on the worst-case
        core instances (where it is tight)."""
        gs = core_graph(s)
        best, _ = spokesman_portfolio(gs, rng=0)
        beta = math.log2(2 * s)
        delta = gs.max_right_degree
        shape = theorem11_shape(beta, max(delta, 2 * s - 1))
        # payoff/|S| is a certified wireless expansion lower bound; the
        # theorem promises Ω(shape) — check with the paper's own constant
        # regime (the recursive bound 1/9 log is the certified one).
        assert best.unique_count / s >= beta / (
            9 * math.log2(2 * gs.avg_right_degree)
        ) - 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_theorem11_low_beta_regime(self, seed):
        """β < 1 instances route through Lemma 4.3 and still meet MG."""
        gen = np.random.default_rng(seed)
        from repro.graphs import random_bipartite

        gs = random_bipartite(24, 10, 0.2, rng=gen)
        deg = gs.right_degrees
        gamma = int((deg >= 1).sum())
        if gamma == 0:
            return
        delta = float(deg[deg >= 1].mean())
        best, _ = spokesman_portfolio(gs, rng=gen)
        assert best.unique_count >= gamma * mg_bound(max(delta, 1.0)) - 1e-9


class TestSection43Negative:
    @pytest.mark.parametrize("s", [4, 8, 16, 64, 256])
    def test_lemma44_all_claims(self, s):
        """The five core-graph properties."""
        g = core_graph(s)
        log2s = int(math.log2(2 * s))
        assert g.n_right == s * log2s  # (1)
        assert (g.left_degrees == 2 * s - 1).all()  # (2)
        assert g.max_right_degree == s  # (3a)
        assert g.avg_right_degree <= 2 * s / log2s + 1e-9  # (3b)
        exp, _, _ = core_graph_min_expansion(s)
        assert exp >= log2s - 1e-9  # (4)
        assert core_graph_max_unique_coverage(s) <= 2 * s  # (5)

    def test_lemma47_boosted(self):
        gc = boosted_core(8, 4)
        b, _ = bipartite_expansion_exact(gc.graph) if gc.graph.n_left <= 20 else (None, None)
        assert b == pytest.approx(gc.expansion)
        assert generalized_core_max_unique_coverage(gc) <= gc.wireless_coverage_cap

    def test_lemma48_diluted(self):
        gc = diluted_core(4, 3)
        b, _ = bipartite_expansion_exact(gc.graph)
        assert b == pytest.approx(gc.expansion)
        assert generalized_core_max_unique_coverage(gc) <= 2 * 4

    @pytest.mark.parametrize("delta_star,beta_star", [(64, 4), (128, 1.0), (64, 0.75)])
    def test_lemma46(self, delta_star, beta_star):
        gc = generalized_core(delta_star, beta_star)
        assert gc.graph.n_left <= delta_star / 2 + 1e-9
        assert gc.expansion >= beta_star - 1e-9
        assert gc.max_degree <= delta_star + 1e-9
        exact = generalized_core_max_unique_coverage(gc)
        assert exact <= gc.lemma46_wireless_fraction_cap * gc.graph.n_right + 1e-9

    def test_corollary_411_worst_case_gap(self):
        """The planted set's wireless expansion is a log factor below its
        ordinary expansion."""
        base = random_regular(256, 64, rng=21)
        wc = worst_case_expander(base, beta=2.0, epsilon=0.45, rng=22)
        planted_wireless_cap = wc.planted_wireless_expansion_cap
        planted_ordinary = wc.core.expansion
        # The gap on the planted set is at least log-ish: cap/ordinary
        # equals (2/log 2s)-ish by construction.
        assert planted_wireless_cap < planted_ordinary
        log_term = math.log2(
            min(
                wc.core.max_degree / wc.core.expansion,
                wc.core.max_degree * wc.core.expansion,
            )
        )
        assert (
            planted_wireless_cap
            <= 4 * planted_ordinary / log_term + 1e-9
        )


class TestSection421Spokesman:
    @pytest.mark.parametrize("s", [16, 32, 64])
    def test_beats_cw_guarantee_on_core(self, s):
        """Our algorithms' payoff ≥ the |N|/log|S| CW guarantee would
        require; on the core graph our guarantee is tight while CW's bound
        coincides — check we deliver the optimum 2s−1."""
        gs = core_graph(s)
        best, _ = spokesman_portfolio(gs, rng=1)
        assert best.unique_count == 2 * s - 1

    def test_average_degree_refinement_formula(self):
        """Section 4.2.1: the guarantee γ/(9·log 2δ) beats CW's γ/log|S|
        once |S| outgrows 2^{9·log 2δ} — i.e. whenever the average degree is
        small relative to the set size, which is exactly the paper's point
        (min{δ_N, δ_S} ≤ |S| but can be far smaller)."""
        gamma, delta = 1.0, 1.5  # per-unit-of-γ comparison
        ours = gamma / (9 * math.log2(2 * delta))
        for log_s in (20, 30, 64):
            cw = gamma / log_s
            assert ours > cw

    def test_average_degree_refinement_achieved(self):
        """The algorithms actually deliver the average-degree bound on a
        sparse instance (where Δ_N may be much larger than δ_N)."""
        from repro.graphs import random_bipartite_regular

        gs = random_bipartite_regular(256, 512, 2, rng=5)
        deg = gs.right_degrees
        gamma = int((deg >= 1).sum())
        delta = float(deg[deg >= 1].mean())
        best, _ = spokesman_portfolio(
            gs, rng=6, include=["partition", "recursive", "greedy-add"]
        )
        ours = gamma / (9 * math.log2(2 * delta))
        assert best.unique_count >= ours - 1e-9


class TestSection5Broadcast:
    def test_observation_52_portal_order(self):
        m = measure_chain_broadcast(8, 4, DecayProtocol(), seed=1, chain_seed=2)
        assert m.completed
        assert (np.diff(m.portal_rounds) > 0).all()

    def test_corollary_51_cap(self):
        s = 16
        g, root, n_ids = rooted_core_graph(s)
        res = run_broadcast(g, SpokesmanBroadcastProtocol(), source=root, seed=3)
        rounds = res.first_informed_round[n_ids]
        per_round = collections.Counter(rounds.tolist())
        assert max(per_round.values()) <= 2 * s

    def test_km_scaling_with_layers(self):
        """Rounds grow (at least) linearly in the number of chained hops."""
        rounds = []
        for layers in (2, 4, 8):
            m = measure_chain_broadcast(
                8, layers, DecayProtocol(), seed=4, chain_seed=5
            )
            assert m.completed
            rounds.append(m.rounds)
        assert rounds[0] < rounds[1] < rounds[2]
        # Per-hop cost is roughly constant -> total ~ layers.
        assert rounds[2] >= 3 * rounds[0] * 0.5


class TestAppendixA:
    @pytest.mark.parametrize("s", [8, 16, 32])
    def test_all_guarantees_on_core(self, s):
        gs = core_graph(s)
        gamma = gs.n_right
        delta_avg = gs.avg_right_degree
        from repro.spokesman import (
            spokesman_degree_classes,
            spokesman_naive_greedy,
        )

        assert (
            spokesman_naive_greedy(gs).unique_count
            >= gamma / gs.max_left_degree - 1e-9
        )
        assert (
            spokesman_partition(gs).unique_count >= gamma / (8 * delta_avg) - 1e-9
        )
        assert (
            spokesman_recursive(gs).unique_count
            >= gamma / (9 * math.log2(2 * delta_avg)) - 1e-9
        )
        from repro.expansion import degree_class_guarantee

        assert (
            spokesman_degree_classes(gs).unique_count
            >= degree_class_guarantee(gamma, gs.max_right_degree) - 1e-9
        )

    def test_mg_portfolio_guarantee(self):
        gs = core_graph(32)
        best, _ = spokesman_portfolio(gs, rng=2)
        assert best.unique_count >= gs.n_right * mg_bound(gs.avg_right_degree)


class TestArboricityCorollary:
    def test_low_arboricity_small_gap(self):
        """On planar-ish graphs, wireless ≈ ordinary expansion up to a
        constant (the log min{Δ/β, Δβ} factor is O(log arboricity))."""
        g = grid_2d(4, 4)
        eta = arboricity(g)
        assert eta <= 2
        # For several sets, certified wireless lower bound is within a
        # constant factor of the ordinary expansion.
        gen = np.random.default_rng(3)
        for _ in range(5):
            size = int(gen.integers(2, 8))
            subset = gen.choice(16, size=size, replace=False)
            from repro.expansion import expansion_of_set

            ordinary = expansion_of_set(g, subset)
            wireless, _ = wireless_expansion_of_set_exact(g, subset)
            assert wireless >= ordinary / (4 * max(eta, 1))

    def test_expander_bound_consistent(self):
        # Degree-Δ expanders with expansion β have arboricity ≥ min{Δ/β, Δβ}
        # — sanity-check the direction on the core graph boundary instance.
        assert expander_arboricity_lower_bound(16, 4.0) == 4.0
