"""Moderate-scale sanity: the library holds up beyond toy sizes.

These tests exercise the vectorized paths on instances 1–2 orders of
magnitude larger than the unit tests (still a few seconds total), where a
Python-loop implementation would be visibly infeasible.
"""

import math

import numpy as np
import pytest

from repro.graphs import (
    broadcast_chain,
    core_graph,
    core_graph_max_unique_coverage,
    core_graph_min_expansion,
    random_regular,
)
from repro.radio import DecayProtocol, run_broadcast
from repro.spokesman import (
    spokesman_greedy_add,
    spokesman_recursive,
    spokesman_sampling_all_scales,
)


class TestCoreGraphScale:
    def test_dp_at_4096(self):
        # Exact wireless cap via the O(s) DP, far beyond enumeration.
        assert core_graph_max_unique_coverage(4096) == 2 * 4096 - 1

    def test_min_expansion_at_512(self):
        exp, k, cov = core_graph_min_expansion(512)
        assert exp == pytest.approx(math.log2(1024))
        assert k == 512

    def test_construction_at_1024(self):
        g = core_graph(1024)
        assert g.n_edges == 1024 * (2 * 1024 - 1)
        assert g.max_right_degree == 1024

    def test_recursive_guarantee_at_512(self):
        gs = core_graph(512)
        res = spokesman_recursive(gs)
        floor = gs.n_right / (9 * math.log2(2 * gs.avg_right_degree))
        assert res.unique_count >= floor

    def test_greedy_add_optimum_at_256(self):
        assert spokesman_greedy_add(core_graph(256)).unique_count == 511

    def test_sampling_at_512(self):
        gs = core_graph(512)
        res = spokesman_sampling_all_scales(gs, rng=0, trials_per_scale=4)
        assert res.unique_count >= 256  # well above the e^{-3} floor


class TestRadioScale:
    def test_decay_on_2000_vertex_expander(self):
        g = random_regular(2000, 8, rng=1)
        res = run_broadcast(g, DecayProtocol(), source=0, seed=2)
        assert res.completed
        # O(log² n)-ish rounds, far below the n-round trivial bound.
        assert res.rounds < 500

    def test_long_chain(self):
        chain = broadcast_chain(16, 24, rng=3)
        # Each layer holds s + s·log2(2s) = 16 + 16·5 vertices.
        assert chain.graph.n == 1 + 24 * (16 + 16 * 5)
        res = run_broadcast(
            chain.graph, DecayProtocol(), source=chain.root, seed=4
        )
        assert res.completed
        portal_rounds = res.first_informed_round[chain.portals]
        assert (np.diff(portal_rounds) > 0).all()
