"""Section 5 chained-core-graph construction."""

import pytest

from repro.graphs import broadcast_chain, core_graph_layout


class TestBroadcastChain:
    def test_sizes(self):
        ch = broadcast_chain(8, 4, rng=0)
        per_layer = 8 + core_graph_layout(8).n_right
        assert ch.graph.n == 1 + 4 * per_layer
        assert ch.n_vertices == ch.graph.n
        assert ch.num_layers == 4

    def test_root_wired_to_first_s(self):
        ch = broadcast_chain(4, 3, rng=1)
        nbrs = set(ch.graph.neighbors(ch.root).tolist())
        assert nbrs == set(ch.s_ranges[0])

    def test_portals_live_in_their_n_layer(self):
        ch = broadcast_chain(8, 5, rng=2)
        for i, portal in enumerate(ch.portals):
            assert portal in ch.n_ranges[i]

    def test_portals_wired_to_next_s(self):
        ch = broadcast_chain(4, 3, rng=3)
        for i in range(ch.num_layers - 1):
            nbrs = set(ch.graph.neighbors(int(ch.portals[i])).tolist())
            assert set(ch.s_ranges[i + 1]) <= nbrs

    def test_last_portal_dangles(self):
        ch = broadcast_chain(4, 3, rng=4)
        last = int(ch.portals[-1])
        nbrs = set(ch.graph.neighbors(last).tolist())
        # Only core-graph neighbours (within its own S layer).
        assert nbrs <= set(ch.s_ranges[-1])

    def test_diameter_matches_claim(self):
        for layers in (1, 2, 4):
            ch = broadcast_chain(4, layers, rng=5)
            assert ch.graph.diameter() == ch.diameter_claim == 2 * layers + 2

    def test_connected(self):
        ch = broadcast_chain(8, 3, rng=6)
        assert ch.graph.is_connected()

    def test_layer_of(self):
        ch = broadcast_chain(4, 3, rng=7)
        assert ch.layer_of(ch.root) == -1
        assert ch.layer_of(ch.s_ranges[0].start) == 0
        assert ch.layer_of(ch.n_ranges[1].start) == 1
        assert ch.layer_of(ch.s_ranges[2].stop - 1) == 2

    def test_deterministic_given_seed(self):
        a = broadcast_chain(8, 3, rng=42)
        b = broadcast_chain(8, 3, rng=42)
        assert a.graph == b.graph
        assert (a.portals == b.portals).all()

    def test_portal_randomness(self):
        # Different seeds should (generically) pick different portals.
        portals = {
            tuple(broadcast_chain(16, 3, rng=seed).portals.tolist())
            for seed in range(6)
        }
        assert len(portals) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            broadcast_chain(6, 2, rng=0)  # s not a power of two
        with pytest.raises(ValueError):
            broadcast_chain(8, 0, rng=0)
