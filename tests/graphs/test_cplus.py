"""The C⁺ motivating example (Section 1.1)."""

import numpy as np
import pytest

from repro.expansion import unique_expansion_of_set, wireless_expansion_of_set_exact
from repro.graphs import cplus_graph, cplus_informed_after_round_one
from repro.graphs.cplus import SOURCE


class TestCPlus:
    def test_structure(self):
        g = cplus_graph(5)
        assert g.n == 6
        assert set(g.neighbors(SOURCE).tolist()) == {1, 2}
        # Clique vertices all pairwise adjacent.
        for u in range(1, 6):
            for v in range(u + 1, 6):
                assert g.has_edge(u, v)

    def test_validation(self):
        with pytest.raises(ValueError):
            cplus_graph(2)

    def test_informed_set(self):
        mask = cplus_informed_after_round_one(5)
        assert set(np.flatnonzero(mask)) == {0, 1, 2}

    def test_unique_expansion_of_informed_set_is_zero(self):
        # The paper's observation: all clique vertices hear both x and y.
        g = cplus_graph(7)
        s = cplus_informed_after_round_one(7)
        assert unique_expansion_of_set(g, s) == 0.0

    def test_wireless_expansion_of_informed_set_is_positive(self):
        # Selecting S' = {x} uniquely covers the whole remaining clique.
        g = cplus_graph(7)
        s = cplus_informed_after_round_one(7)
        ratio, witness = wireless_expansion_of_set_exact(g, s)
        # S' = {x} uniquely covers the clique_size − 2 outside-clique
        # vertices; {x, y} together cover none (all collisions).
        assert ratio == pytest.approx((7 - 2) / 3)
        assert witness.size == 1 and witness[0] in (1, 2)
