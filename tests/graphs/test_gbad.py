"""Lemma 3.3 / Figure 1: the bad unique-neighbour expander Gbad."""

import numpy as np
import pytest

from repro.expansion import (
    bipartite_expansion_exact,
    bipartite_unique_expansion_exact,
    max_unique_coverage_exact,
)
from repro.graphs import (
    gbad,
    gbad_alternating_subset,
    gbad_private_block,
    gbad_shared_block,
    gbad_unique_expansion,
    gbad_wireless_lower_bound,
)

CASES = [(4, 3), (4, 4), (6, 4), (6, 5), (5, 3), (8, 4)]  # (Δ, β)


class TestConstruction:
    @pytest.mark.parametrize("delta,beta", CASES)
    def test_sizes_and_degrees(self, delta, beta):
        s = 6
        g = gbad(s, delta, beta)
        assert g.n_left == s
        assert g.n_right == s * beta
        assert (g.left_degrees == delta).all()

    @pytest.mark.parametrize("delta,beta", CASES)
    def test_consecutive_overlap_exact(self, delta, beta):
        s = 6
        g = gbad(s, delta, beta)
        for i in range(s):
            a = set(g.neighbors_of_left(i).tolist())
            b = set(g.neighbors_of_left((i + 1) % s).tolist())
            assert len(a & b) == delta - beta

    def test_nonconsecutive_disjoint(self):
        g = gbad(6, 4, 3)
        a = set(g.neighbors_of_left(0).tolist())
        c = set(g.neighbors_of_left(2).tolist())
        assert not (a & c)

    def test_right_degrees_are_one_or_two(self):
        g = gbad(6, 6, 4)
        assert set(g.right_degrees.tolist()) <= {1, 2}

    def test_blocks(self):
        s, delta, beta = 5, 4, 3
        g = gbad(s, delta, beta)
        for i in range(s):
            shared = gbad_shared_block(s, delta, beta, i)
            private = gbad_private_block(s, delta, beta, i)
            assert len(shared) == delta - beta
            assert len(private) == 2 * beta - delta
            for v in shared:
                assert g.right_degrees[v] == 2
            for v in private:
                assert g.right_degrees[v] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="s >= 3"):
            gbad(2, 4, 3)
        with pytest.raises(ValueError, match="Δ/2"):
            gbad(5, 8, 3)  # β < Δ/2
        with pytest.raises(ValueError, match="Δ/2"):
            gbad(5, 4, 5)  # β > Δ
        with pytest.raises(ValueError):
            gbad_shared_block(5, 4, 3, 5)
        with pytest.raises(ValueError):
            gbad_private_block(5, 4, 3, -1)


class TestLemma33Claims:
    @pytest.mark.parametrize("delta,beta", CASES)
    def test_full_set_unique_expansion_is_2beta_minus_delta(self, delta, beta):
        s = 6
        g = gbad(s, delta, beta)
        full = np.arange(s)
        assert g.unique_cover_count(full) == s * (2 * beta - delta)
        assert gbad_unique_expansion(delta, beta) == 2 * beta - delta

    def test_unique_expansion_zero_at_half_delta(self):
        g = gbad(6, 4, 2)  # β = Δ/2
        assert g.unique_cover_count(np.arange(6)) == 0

    @pytest.mark.parametrize("delta,beta", [(4, 3), (4, 2), (6, 4)])
    def test_exact_unique_expansion_minimum(self, delta, beta):
        # With α = 1 the minimizing set is the full S: runs of length l have
        # ratio (lΔ − 2(l−1)(Δ−β))/l ≥ 2β − Δ, with equality at l = s.
        g = gbad(5, delta, beta)
        bu, witness = bipartite_unique_expansion_exact(g)
        assert bu == pytest.approx(2 * beta - delta)
        assert witness.size == 5  # the full left side

    @pytest.mark.parametrize("delta,beta", CASES)
    def test_ordinary_expansion_is_beta(self, delta, beta):
        g = gbad(5, delta, beta)
        b, _ = bipartite_expansion_exact(g)
        assert b == pytest.approx(beta)


class TestRemark1Wireless:
    @pytest.mark.parametrize("delta,beta", CASES)
    def test_alternating_subset_payoff(self, delta, beta):
        s = 6
        g = gbad(s, delta, beta)
        alt = gbad_alternating_subset(s)
        # Every second vertex: no shared blocks collide, all Δ neighbours
        # of each selected vertex are unique.
        assert g.unique_cover_count(alt) == (s // 2) * delta

    @pytest.mark.parametrize("delta,beta", CASES)
    def test_wireless_beats_remark_bound(self, delta, beta):
        s = 6
        g = gbad(s, delta, beta)
        best, _ = max_unique_coverage_exact(g)
        assert best / s >= gbad_wireless_lower_bound(delta, beta) - 1e-9

    def test_wireless_positive_where_unique_dies(self):
        # β = Δ/2: unique expansion 0, wireless ≥ Δ/2.
        delta = 4
        g = gbad(6, delta, 2)
        best, _ = max_unique_coverage_exact(g)
        assert g.unique_cover_count(np.arange(6)) == 0
        assert best / 6 >= delta / 2
