"""Batched coverage kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import random_bipartite


class TestBatchKernels:
    def test_matches_single_subset_kernel(self, tiny_bipartite):
        gen = np.random.default_rng(0)
        batch = gen.random((20, 4)) < 0.5
        counts = tiny_bipartite.cover_counts_batch(batch)
        uniques = tiny_bipartite.unique_cover_counts_batch(batch)
        for i in range(20):
            row = batch[i]
            assert (counts[i] == tiny_bipartite.cover_counts(row)).all()
            assert uniques[i] == tiny_bipartite.unique_cover_count(row)

    def test_empty_batch(self, tiny_bipartite):
        batch = np.zeros((0, 4), dtype=bool)
        assert tiny_bipartite.cover_counts_batch(batch).shape == (0, 5)
        assert tiny_bipartite.unique_cover_counts_batch(batch).shape == (0,)

    def test_shape_validation(self, tiny_bipartite):
        with pytest.raises(ValueError):
            tiny_bipartite.cover_counts_batch(np.zeros((3, 5), dtype=bool))
        with pytest.raises(ValueError):
            tiny_bipartite.cover_counts_batch(np.zeros((3, 4), dtype=np.int32))
        with pytest.raises(ValueError):
            tiny_bipartite.cover_counts_batch(np.zeros(4, dtype=bool))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_cross_check(self, seed):
        gen = np.random.default_rng(seed)
        gs = random_bipartite(7, 11, 0.3, rng=gen)
        batch = gen.random((8, 7)) < 0.4
        uniques = gs.unique_cover_counts_batch(batch)
        for i in range(8):
            assert uniques[i] == gs.unique_cover_count(batch[i])
