"""Lemma 3.3 remark (2): plugging Gbad onto an expander."""

import pytest

from repro.expansion import unique_expansion_of_set
from repro.graphs import random_regular, unique_tweaked_expander


@pytest.fixture(scope="module")
def tweaked():
    base = random_regular(64, 6, rng=5)
    return unique_tweaked_expander(base, s=6, delta_bad=4, beta_bad=3, rng=6)


class TestConstruction:
    def test_vertex_bookkeeping(self, tweaked):
        assert tweaked.graph.n == 64 + 6
        assert (tweaked.planted_set >= 64).all()
        assert tweaked.right_vertices.size == 6 * 3

    def test_planted_edges_only_into_rights(self, tweaked):
        rights = set(tweaked.right_vertices.tolist())
        for v in tweaked.planted_set:
            assert set(tweaked.graph.neighbors(int(v)).tolist()) <= rights

    def test_base_preserved(self, tweaked):
        base = random_regular(64, 6, rng=5)
        base_edges = {tuple(e) for e in base.edges().tolist()}
        assert base_edges <= {tuple(e) for e in tweaked.graph.edges().tolist()}

    def test_too_small_base_rejected(self):
        base = random_regular(10, 3, rng=1)
        with pytest.raises(ValueError):
            unique_tweaked_expander(base, s=6, delta_bad=4, beta_bad=3, rng=0)


class TestUniqueCap:
    def test_planted_unique_expansion_at_most_cap(self, tweaked):
        # The planted set's unique expansion is capped at 2β − Δ = 2.
        measured = unique_expansion_of_set(tweaked.graph, tweaked.planted_set)
        assert measured <= tweaked.planted_unique_cap + 1e-9

    def test_cap_value(self, tweaked):
        assert tweaked.planted_unique_cap == 2

    def test_zero_cap_at_half_delta(self):
        base = random_regular(64, 6, rng=7)
        tw = unique_tweaked_expander(base, s=6, delta_bad=4, beta_bad=2, rng=8)
        assert tw.planted_unique_cap == 0
        assert unique_expansion_of_set(tw.graph, tw.planted_set) == 0.0

    def test_wireless_survives_the_tweak(self):
        # Remark 1 carries over: wireless expansion of the planted set
        # remains ≥ Δ/2 even where unique expansion is 0.
        from repro.spokesman import wireless_lower_bound_of_set

        base = random_regular(64, 6, rng=9)
        tw = unique_tweaked_expander(base, s=6, delta_bad=4, beta_bad=2, rng=10)
        bw, _ = wireless_lower_bound_of_set(tw.graph, tw.planted_set, rng=11)
        assert bw >= 2.0 - 1e-9
