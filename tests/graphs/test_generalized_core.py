"""Lemmas 4.6/4.7/4.8: generalized core graphs."""

import math

import numpy as np
import pytest

from repro.expansion import (
    bipartite_expansion_exact,
    max_unique_coverage_exact,
)
from repro.graphs import (
    boosted_core,
    core_graph,
    diluted_core,
    generalized_core,
    generalized_core_max_unique_coverage,
    lemma46_regime_ok,
)


class TestBoostedCore:
    def test_multiplier_one_is_core(self):
        gc = boosted_core(8, 1)
        assert gc.mode == "core"
        assert gc.graph == core_graph(8)

    @pytest.mark.parametrize("s,k", [(4, 2), (8, 3), (16, 2)])
    def test_lemma47_claims(self, s, k):
        gc = boosted_core(s, k)
        log2s = int(math.log2(2 * s))
        # (1) |N̂| = s·β with β = k·log2s.
        assert gc.graph.n_right == s * log2s * k
        assert gc.expansion == k * log2s
        # (2) left degree (2s−1)·k.
        assert (gc.graph.left_degrees == (2 * s - 1) * k).all()
        # (3) right degrees unchanged: max s, average ≤ 2s/log 2s.
        assert gc.graph.max_right_degree == s
        assert gc.graph.avg_right_degree <= 2 * s / log2s + 1e-9

    def test_lemma47_expansion_exact(self):
        gc = boosted_core(4, 2)
        b, _ = bipartite_expansion_exact(gc.graph)
        assert b == pytest.approx(gc.expansion)

    def test_lemma47_wireless_cap(self):
        gc = boosted_core(4, 3)
        best, _ = max_unique_coverage_exact(gc.graph)
        assert best <= gc.wireless_coverage_cap
        assert best == generalized_core_max_unique_coverage(gc)

    def test_exact_optimum_scales_with_k(self):
        base, _ = max_unique_coverage_exact(core_graph(8))
        gc = boosted_core(8, 4)
        assert generalized_core_max_unique_coverage(gc) == 4 * base


class TestDilutedCore:
    def test_multiplier_one_is_core(self):
        gc = diluted_core(8, 1)
        assert gc.mode == "core"
        assert gc.graph == core_graph(8)

    @pytest.mark.parametrize("s,k", [(4, 2), (8, 2), (8, 3)])
    def test_lemma48_claims(self, s, k):
        gc = diluted_core(s, k)
        log2s = int(math.log2(2 * s))
        # (1) |Š| = s·k, |N| = s·log2s.
        assert gc.graph.n_left == s * k
        assert gc.graph.n_right == s * log2s
        assert gc.expansion == pytest.approx(log2s / k)
        # (2) left degree 2s−1 unchanged.
        assert (gc.graph.left_degrees == 2 * s - 1).all()
        # (3) right degrees scale by k.
        assert gc.graph.max_right_degree == s * k

    def test_lemma48_expansion_exact(self):
        gc = diluted_core(4, 2)
        b, _ = bipartite_expansion_exact(gc.graph)
        assert b == pytest.approx(gc.expansion)

    def test_lemma48_wireless_cap_unchanged(self):
        gc = diluted_core(4, 2)
        best, _ = max_unique_coverage_exact(gc.graph)
        assert best <= gc.wireless_coverage_cap == 8
        assert best == generalized_core_max_unique_coverage(gc)

    def test_copies_only_collide(self):
        # Selecting both copies of a left vertex can never beat one copy.
        gc = diluted_core(4, 2)
        one = gc.graph.unique_cover_count(np.array([0]))
        both = gc.graph.unique_cover_count(np.array([0, 1]))
        assert both == 0 < one


class TestLemma46Regime:
    def test_regime_check(self):
        assert lemma46_regime_ok(40, 3)
        assert not lemma46_regime_ok(4, 3)  # β* > Δ*/2e
        assert not lemma46_regime_ok(40, 0.1)  # β* < 2e/Δ*

    def test_out_of_regime_raises(self):
        with pytest.raises(ValueError, match="2e"):
            generalized_core(4, 3)


class TestGeneralizedCore:
    @pytest.mark.parametrize(
        "delta_star,beta_star",
        [(40, 6), (64, 2), (100, 10), (30, 1.0), (200, 0.5)],
    )
    def test_lemma46_assertions(self, delta_star, beta_star):
        gc = generalized_core(delta_star, beta_star)
        # (1) |S*| ≤ Δ*/2 and |N*| = β·|S*| for the achieved β.
        assert gc.graph.n_left <= delta_star / 2 + 1e-9
        assert gc.graph.n_right == pytest.approx(
            gc.expansion * gc.graph.n_left
        )
        # Achieved parameters honour the request.
        assert gc.expansion >= beta_star - 1e-9
        assert gc.max_degree <= delta_star + 1e-9
        assert gc.max_degree == max(
            gc.graph.max_left_degree, gc.graph.max_right_degree
        )
        # (3) wireless cap: exact optimum ≤ (4/log min{Δ/β, Δβ})·|N*|.
        exact = generalized_core_max_unique_coverage(gc)
        assert exact <= gc.wireless_coverage_cap
        assert (
            gc.wireless_coverage_cap
            <= gc.lemma46_wireless_fraction_cap * gc.graph.n_right + 1e-9
        )

    def test_boosted_branch_taken_for_large_beta(self):
        gc = generalized_core(100, 10)
        assert gc.mode == "boosted"

    def test_diluted_branch_taken_for_small_beta(self):
        gc = generalized_core(200, 0.5)
        assert gc.mode == "diluted"
