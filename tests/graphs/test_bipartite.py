"""Unit + property tests for the BipartiteGraph kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expansion.neighborhoods import (
    naive_bipartite_cover,
    naive_bipartite_unique_cover,
)
from repro.graphs import BipartiteGraph


def bipartite_strategy(max_left=8, max_right=10):
    """Random small bipartite graphs as (n_left, n_right, edge set)."""

    @st.composite
    def build(draw):
        n_left = draw(st.integers(1, max_left))
        n_right = draw(st.integers(1, max_right))
        pairs = draw(
            st.sets(
                st.tuples(
                    st.integers(0, n_left - 1), st.integers(0, n_right - 1)
                ),
                max_size=n_left * n_right,
            )
        )
        return BipartiteGraph(n_left, n_right, sorted(pairs))

    return build()


class TestConstruction:
    def test_basic_counts(self, tiny_bipartite):
        assert tiny_bipartite.n_left == 4
        assert tiny_bipartite.n_right == 5
        assert tiny_bipartite.n_edges == 8

    def test_degrees(self, tiny_bipartite):
        assert tiny_bipartite.left_degrees.tolist() == [2, 2, 3, 1]
        assert tiny_bipartite.right_degrees.tolist() == [1, 2, 2, 1, 2]
        assert tiny_bipartite.max_left_degree == 3
        assert tiny_bipartite.max_right_degree == 2

    def test_average_degrees(self, tiny_bipartite):
        assert tiny_bipartite.avg_left_degree == pytest.approx(2.0)
        assert tiny_bipartite.avg_right_degree == pytest.approx(1.6)

    def test_neighbors_sorted(self, tiny_bipartite):
        assert tiny_bipartite.neighbors_of_left(2).tolist() == [2, 3, 4]
        assert tiny_bipartite.neighbors_of_right(4).tolist() == [2, 3]

    def test_empty_graph(self):
        g = BipartiteGraph(3, 4, [])
        assert g.n_edges == 0
        assert g.max_left_degree == 0
        assert g.has_isolated_left()
        assert g.has_isolated_right()

    def test_rejects_duplicate_edges(self):
        with pytest.raises(ValueError, match="duplicate"):
            BipartiteGraph(2, 2, [(0, 0), (0, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            BipartiteGraph(2, 2, [(2, 0)])
        with pytest.raises(ValueError):
            BipartiteGraph(2, 2, [(0, 5)])
        with pytest.raises(ValueError):
            BipartiteGraph(2, 2, [(-1, 0)])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            BipartiteGraph(2, 2, [(0, 1, 2)])
        with pytest.raises(ValueError):
            BipartiteGraph(-1, 2, [])

    def test_edges_round_trip(self, tiny_bipartite):
        edges = tiny_bipartite.edges()
        rebuilt = BipartiteGraph(4, 5, edges)
        assert rebuilt == tiny_bipartite

    def test_iteration(self, tiny_bipartite):
        assert sorted(tiny_bipartite) == sorted(
            [(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 3), (2, 4), (3, 4)]
        )

    def test_repr(self, tiny_bipartite):
        assert "n_left=4" in repr(tiny_bipartite)


class TestAlternativeConstructors:
    def test_from_neighbor_lists(self, tiny_bipartite):
        g = BipartiteGraph.from_neighbor_lists(
            [[0, 1], [1, 2], [2, 3, 4], [4]], n_right=5
        )
        assert g == tiny_bipartite

    def test_from_neighbor_lists_infers_right(self):
        g = BipartiteGraph.from_neighbor_lists([[0], [3]])
        assert g.n_right == 4

    def test_from_biadjacency_dense(self, tiny_bipartite):
        mat = tiny_bipartite.biadjacency.toarray()
        assert BipartiteGraph.from_biadjacency(mat) == tiny_bipartite

    def test_from_biadjacency_sparse(self, tiny_bipartite):
        assert (
            BipartiteGraph.from_biadjacency(tiny_bipartite.biadjacency)
            == tiny_bipartite
        )


class TestMatrices:
    def test_biadjacency_shape_and_transpose(self, tiny_bipartite):
        b = tiny_bipartite.biadjacency
        l = tiny_bipartite.left_matrix
        assert b.shape == (5, 4)
        assert l.shape == (4, 5)
        assert (b.toarray() == l.toarray().T).all()

    def test_biadjacency_cached(self, tiny_bipartite):
        assert tiny_bipartite.biadjacency is tiny_bipartite.biadjacency


class TestCoverage:
    def test_cover_counts(self, tiny_bipartite):
        counts = tiny_bipartite.cover_counts([0, 1])
        assert counts.tolist() == [1, 2, 1, 0, 0]

    def test_unique_and_covered(self, tiny_bipartite):
        assert tiny_bipartite.unique_cover_count([0, 1]) == 2
        assert tiny_bipartite.cover_count([0, 1]) == 3

    def test_mask_input(self, tiny_bipartite):
        mask = np.array([True, True, False, False])
        assert tiny_bipartite.unique_cover_count(mask) == 2

    def test_empty_subset(self, tiny_bipartite):
        assert tiny_bipartite.unique_cover_count([]) == 0
        assert tiny_bipartite.cover_count([]) == 0

    def test_left_cover_counts(self, tiny_bipartite):
        counts = tiny_bipartite.left_cover_counts([2, 4])
        assert counts.tolist() == [0, 1, 2, 1]

    def test_bad_mask_length(self, tiny_bipartite):
        with pytest.raises(ValueError):
            tiny_bipartite.cover_counts(np.array([True, False]))

    def test_bad_indices(self, tiny_bipartite):
        with pytest.raises(ValueError):
            tiny_bipartite.cover_counts([7])

    @settings(max_examples=40, deadline=None)
    @given(bipartite_strategy(), st.data())
    def test_matches_naive_reference(self, gs, data):
        subset = data.draw(
            st.sets(st.integers(0, gs.n_left - 1), max_size=gs.n_left)
        )
        subset = sorted(subset)
        assert gs.cover_count(np.array(subset, dtype=np.int64)) == len(
            naive_bipartite_cover(gs, subset)
        )
        assert gs.unique_cover_count(np.array(subset, dtype=np.int64)) == len(
            naive_bipartite_unique_cover(gs, subset)
        )


class TestSubgraphs:
    def test_subgraph_reindexes(self, tiny_bipartite):
        sub = tiny_bipartite.subgraph([1, 2], [1, 2, 4])
        # left 1 -> 0 with right {1,2} -> {0,1}; left 2 -> 1 with {2,4} -> {1,2}
        assert sub.n_left == 2 and sub.n_right == 3
        assert sorted(sub) == [(0, 0), (0, 1), (1, 1), (1, 2)]

    def test_restrict_right(self, tiny_bipartite):
        sub = tiny_bipartite.restrict_right([0, 1])
        assert sub.n_left == 4
        assert sub.n_right == 2
        assert sub.n_edges == 3

    def test_restrict_left(self, tiny_bipartite):
        sub = tiny_bipartite.restrict_left([2])
        assert sub.n_left == 1 and sub.n_right == 5
        assert sub.left_degrees.tolist() == [3]

    def test_swap_sides(self, tiny_bipartite):
        sw = tiny_bipartite.swap_sides()
        assert sw.n_left == 5 and sw.n_right == 4
        assert sw.swap_sides() == tiny_bipartite

    @settings(max_examples=25, deadline=None)
    @given(bipartite_strategy())
    def test_full_subgraph_is_identity(self, gs):
        sub = gs.subgraph(
            np.ones(gs.n_left, dtype=bool), np.ones(gs.n_right, dtype=bool)
        )
        assert sub == gs


class TestNetworkx:
    def test_round_trip_structure(self, tiny_bipartite):
        nxg = tiny_bipartite.to_networkx()
        assert nxg.number_of_nodes() == 9
        assert nxg.number_of_edges() == 8
        assert nxg.nodes[("L", 0)]["bipartite"] == 0
        assert nxg.nodes[("R", 0)]["bipartite"] == 1
