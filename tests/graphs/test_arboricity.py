"""Arboricity / degeneracy / densest subgraph machinery."""

from fractions import Fraction

import pytest

from repro.graphs import (
    Graph,
    arboricity,
    complete_binary_tree,
    complete_graph,
    cycle_graph,
    degeneracy,
    degeneracy_ordering,
    densest_subgraph,
    expander_arboricity_lower_bound,
    grid_2d,
    nash_williams_density,
    triangular_grid,
)


class TestDegeneracy:
    def test_tree_is_one(self):
        assert degeneracy(complete_binary_tree(3)) == 1

    def test_cycle_is_two(self):
        assert degeneracy(cycle_graph(8)) == 2

    def test_complete(self):
        assert degeneracy(complete_graph(6)) == 5

    def test_empty(self):
        assert degeneracy(Graph(0, [])) == 0
        assert degeneracy(Graph(4, [])) == 0

    def test_ordering_is_permutation(self):
        g = grid_2d(3, 3)
        order = degeneracy_ordering(g)
        assert sorted(order.tolist()) == list(range(9))

    def test_sandwiches_arboricity(self):
        for g in (grid_2d(4, 4), complete_graph(7), triangular_grid(3, 4)):
            arb = arboricity(g)
            degen = degeneracy(g)
            assert arb <= degen <= 2 * arb - 1 if arb > 0 else degen == 0


class TestDensestSubgraph:
    def test_complete_graph(self):
        dens, witness = densest_subgraph(complete_graph(5))
        assert dens == Fraction(2, 1)
        assert witness.size == 5

    def test_tree(self):
        dens, _ = densest_subgraph(complete_binary_tree(2))
        # Best is the whole tree: 6 edges / 7 vertices.
        assert dens == Fraction(6, 7)

    def test_planted_clique(self):
        # Path of 10 with a K4 glued on: densest subgraph is the K4.
        edges = [(i, i + 1) for i in range(9)]
        edges += [(10, 11), (10, 12), (10, 13), (11, 12), (11, 13), (12, 13)]
        edges += [(9, 10)]
        g = Graph(14, edges)
        dens, witness = densest_subgraph(g)
        assert dens == Fraction(6, 4)
        assert set(witness.tolist()) >= {10, 11, 12, 13}

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            densest_subgraph(Graph(0, []))


class TestNashWilliams:
    def test_matches_enumeration_on_grid(self):
        g = grid_2d(3, 3)
        exact, _ = nash_williams_density(g, exact_small_limit=14)
        flow, _ = nash_williams_density(g, exact_small_limit=2)
        assert exact == flow

    def test_matches_enumeration_on_clique_plus_path(self):
        edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)]
        g = Graph(6, edges)
        exact, _ = nash_williams_density(g, exact_small_limit=14)
        flow, _ = nash_williams_density(g, exact_small_limit=2)
        assert exact == flow == Fraction(6, 3)

    def test_edgeless(self):
        dens, _ = nash_williams_density(Graph(3, []))
        assert dens == 0

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            nash_williams_density(Graph(1, []))


class TestArboricity:
    def test_tree(self):
        assert arboricity(complete_binary_tree(3)) == 1

    def test_cycle(self):
        # Cycle: max density 8/7 -> arboricity 2 (a cycle is not a forest).
        assert arboricity(cycle_graph(8)) == 2

    def test_complete(self):
        # K_n: n(n-1)/2 / (n-1) = n/2 -> ceil.
        assert arboricity(complete_graph(5)) == 3
        assert arboricity(complete_graph(6)) == 3

    def test_grid_is_two(self):
        assert arboricity(grid_2d(4, 4)) == 2

    def test_triangular_grid_at_most_three(self):
        assert arboricity(triangular_grid(3, 3)) <= 3

    def test_edgeless_zero(self):
        assert arboricity(Graph(5, [])) == 0

    def test_parametric_path_matches_enumeration(self):
        g = grid_2d(4, 5)  # n=20 > default small limit -> flow path
        assert arboricity(g) == 2


class TestExpanderBound:
    def test_formula(self):
        assert expander_arboricity_lower_bound(16, 2.0) == 8.0
        assert expander_arboricity_lower_bound(16, 0.25) == 4.0

    def test_min_switches_at_beta_one(self):
        # For β < 1 the binding term is Δ·β, for β > 1 it is Δ/β.
        assert expander_arboricity_lower_bound(10, 0.5) == 5.0
        assert expander_arboricity_lower_bound(10, 2.0) == 5.0
