"""Section 4.3.3 / Corollary 4.11: the plugged worst-case expander."""

import numpy as np
import pytest

from repro.graphs import (
    corollary_4_11_parameters,
    random_regular,
    worst_case_expander,
)
from repro.spokesman import wireless_lower_bound_of_set


@pytest.fixture(scope="module")
def base():
    return random_regular(256, 64, rng=11)


@pytest.fixture(scope="module")
def wc(base):
    return worst_case_expander(base, beta=2.0, epsilon=0.45, rng=12)


class TestConstruction:
    def test_vertex_bookkeeping(self, base, wc):
        assert wc.graph.n == base.n + wc.planted_set.size
        assert (wc.planted_set >= base.n).all()
        assert (wc.core_right_vertices < base.n).all()
        assert wc.core_right_vertices.size == wc.core.graph.n_right

    def test_blowup_bounds(self, base, wc):
        eps = wc.epsilon
        assert wc.graph.n <= (1 + eps) * base.n
        assert wc.graph.max_degree <= (1 + eps) * base.max_degree

    def test_planted_edges_only_into_core_rights(self, wc):
        # All neighbours of S* vertices are core right vertices.
        rights = set(wc.core_right_vertices.tolist())
        for v in wc.planted_set:
            assert set(wc.graph.neighbors(int(v)).tolist()) <= rights

    def test_base_edges_preserved(self, base, wc):
        base_edges = {tuple(e) for e in base.edges().tolist()}
        new_edges = {tuple(e) for e in wc.graph.edges().tolist()}
        assert base_edges <= new_edges

    def test_core_regime_parameters(self, wc):
        # The core was built for Δ* = εΔ, β* = β/ε.
        assert wc.core.max_degree <= wc.epsilon * wc.base_max_degree + 1e-9
        assert wc.core.expansion >= wc.base_beta / wc.epsilon - 1e-9


class TestClaim410:
    def test_planted_set_wireless_cap(self, wc):
        # Claim 4.10: the planted set's wireless coverage is capped by the
        # core's cap; certify with the spokesman portfolio lower bound and
        # the exact structural upper bound.
        cap = wc.planted_wireless_coverage_cap
        achieved, result = wireless_lower_bound_of_set(
            wc.graph, wc.planted_set, rng=5
        )
        assert result.unique_count <= cap
        # The planted wireless expansion is far below the ordinary β̃.
        assert wc.planted_wireless_expansion_cap >= achieved

    def test_expansion_of_planted_set_is_high(self, wc):
        # Claim 4.9 ingredient: S* itself expands by β* = β/ε ≥ core claim.
        from repro.expansion import expansion_of_set

        ratio = expansion_of_set(wc.graph, wc.planted_set)
        assert ratio >= wc.core.expansion - 1e-9


class TestClaim49:
    def test_sampled_sets_keep_beta_tilde(self, wc):
        # Claim 4.9: G̃ remains a (α̃, β̃)-expander with β̃ = (1−ε)β.  A
        # lower bound cannot be *proved* by sampling, but no sampled set may
        # violate it; candidates mix base vertices and planted ones.
        import numpy as np

        from repro.expansion import expansion_of_set

        beta_tilde = (1 - wc.epsilon) * wc.base_beta
        gen = np.random.default_rng(77)
        n = wc.graph.n
        for _ in range(40):
            size = int(gen.integers(1, n // 10))
            subset = gen.choice(n, size=size, replace=False)
            assert expansion_of_set(wc.graph, subset) >= beta_tilde - 1e-9

    def test_planted_heavy_sets_expand_via_core(self, wc):
        # The proof's other branch: sets dominated by S* expand through the
        # core at rate β/ε ≥ β̃.
        import numpy as np

        from repro.expansion import expansion_of_set

        beta_tilde = (1 - wc.epsilon) * wc.base_beta
        for k in range(1, wc.planted_set.size + 1):
            subset = wc.planted_set[:k]
            assert expansion_of_set(wc.graph, subset) >= beta_tilde - 1e-9


class TestParameters:
    def test_corollary_sheet(self):
        sheet = corollary_4_11_parameters(
            n=1000, delta=64, beta=2.0, alpha=0.5, epsilon=0.25
        )
        assert sheet["n_tilde_max"] == pytest.approx(1250)
        assert sheet["delta_tilde_max"] == pytest.approx(80)
        assert sheet["beta_tilde"] == pytest.approx(1.5)
        assert sheet["alpha_tilde"] == pytest.approx(0.375)
        assert sheet["wireless_cap"] > 0

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            corollary_4_11_parameters(100, 64, 2.0, 0.5, 0.6)
        with pytest.raises(ValueError):
            corollary_4_11_parameters(100, 64, 2.0, 0.5, 0.0)

    def test_delta_beta_regime(self):
        with pytest.raises(ValueError, match="Δ·β"):
            corollary_4_11_parameters(100, 2, 0.1, 0.5, 0.45)

    def test_construction_validation(self, base):
        with pytest.raises(ValueError):
            worst_case_expander(base, beta=2.0, epsilon=0.9, rng=0)
        # Core bigger than the base graph must be rejected.
        small = random_regular(16, 8, rng=3)
        with pytest.raises(ValueError):
            worst_case_expander(small, beta=0.9, epsilon=0.45, rng=0)
