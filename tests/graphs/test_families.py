"""Unit tests for the workload graph families."""

import pytest

from repro.graphs import (
    chordal_cycle_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    hypercube,
    margulis_expander,
    path_graph,
    random_bipartite,
    random_bipartite_regular,
    random_regular,
    star_graph,
)


class TestDeterministicFamilies:
    def test_complete(self):
        g = complete_graph(6)
        assert g.n == 6 and g.n_edges == 15
        assert (g.degrees == 5).all()

    def test_cycle(self):
        g = cycle_graph(7)
        assert (g.degrees == 2).all()
        assert g.is_connected()
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_path(self):
        g = path_graph(5)
        assert g.n_edges == 4
        assert g.diameter() == 4

    def test_star(self):
        g = star_graph(6)
        assert g.degrees[0] == 5
        assert (g.degrees[1:] == 1).all()
        with pytest.raises(ValueError):
            star_graph(1)

    def test_hypercube(self):
        for d in (1, 2, 3, 4):
            g = hypercube(d)
            assert g.n == 2**d
            assert (g.degrees == d).all()
            assert g.is_connected()
            assert g.diameter() == d

    def test_margulis(self):
        g = margulis_expander(4)
        assert g.n == 16
        assert g.is_connected()
        assert g.max_degree <= 8
        with pytest.raises(ValueError):
            margulis_expander(1)

    def test_chordal_cycle(self):
        g = chordal_cycle_graph(11)
        assert g.n == 11
        assert g.is_connected()
        assert g.max_degree <= 3
        with pytest.raises(ValueError, match="prime"):
            chordal_cycle_graph(9)


class TestRandomFamilies:
    def test_random_regular_degrees(self):
        for d in (2, 3, 6):
            g = random_regular(24, d, rng=1)
            assert (g.degrees == d).all()

    def test_random_regular_deterministic(self):
        a = random_regular(16, 3, rng=5)
        b = random_regular(16, 3, rng=5)
        assert a == b

    def test_random_regular_parity(self):
        with pytest.raises(ValueError):
            random_regular(5, 3, rng=0)
        with pytest.raises(ValueError):
            random_regular(4, 4, rng=0)

    def test_erdos_renyi_extremes(self):
        assert erdos_renyi(6, 0.0, rng=0).n_edges == 0
        assert erdos_renyi(6, 1.0, rng=0).n_edges == 15
        with pytest.raises(ValueError):
            erdos_renyi(6, 1.5, rng=0)

    def test_random_bipartite_regular(self):
        g = random_bipartite_regular(10, 20, 4, rng=2)
        assert (g.left_degrees == 4).all()
        assert g.n_right == 20
        with pytest.raises(ValueError):
            random_bipartite_regular(3, 2, 5, rng=0)

    def test_random_bipartite_extremes(self):
        assert random_bipartite(4, 5, 0.0, rng=0).n_edges == 0
        assert random_bipartite(4, 5, 1.0, rng=0).n_edges == 20

    def test_random_bipartite_deterministic(self):
        a = random_bipartite(5, 6, 0.4, rng=9)
        b = random_bipartite(5, 6, 0.4, rng=9)
        assert a == b
