"""Unit + property tests for the Graph kernel and its paper operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expansion.neighborhoods import (
    naive_gamma,
    naive_gamma_minus,
    naive_gamma_one,
    naive_gamma_one_s_excluding,
    naive_gamma_s_excluding,
)
from repro.graphs import Graph, cycle_graph


def graph_strategy(max_n=9):
    @st.composite
    def build(draw):
        n = draw(st.integers(1, max_n))
        pairs = draw(
            st.sets(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                    lambda t: t[0] < t[1]
                ),
                max_size=n * (n - 1) // 2,
            )
        )
        return Graph(n, sorted(pairs))

    return build()


class TestConstruction:
    def test_counts(self, triangle_with_tail):
        assert triangle_with_tail.n == 4
        assert triangle_with_tail.n_edges == 4

    def test_degrees(self, triangle_with_tail):
        assert triangle_with_tail.degrees.tolist() == [2, 2, 3, 1]
        assert triangle_with_tail.max_degree == 3
        assert triangle_with_tail.avg_degree == pytest.approx(2.0)

    def test_neighbors(self, triangle_with_tail):
        assert triangle_with_tail.neighbors(2).tolist() == [0, 1, 3]

    def test_has_edge(self, triangle_with_tail):
        assert triangle_with_tail.has_edge(0, 1)
        assert triangle_with_tail.has_edge(1, 0)
        assert not triangle_with_tail.has_edge(0, 3)

    def test_edge_order_normalized(self):
        g = Graph(3, [(2, 0), (1, 0)])
        assert g.edges().tolist() == [[0, 1], [0, 2]]

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(2, [(0, 0)])

    def test_rejects_duplicates_any_orientation(self):
        with pytest.raises(ValueError, match="duplicate"):
            Graph(3, [(0, 1), (1, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 2)])

    def test_empty_graph(self):
        g = Graph(0, [])
        assert g.n == 0 and g.n_edges == 0 and g.max_degree == 0

    def test_equality(self, triangle_with_tail):
        same = Graph(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        assert same == triangle_with_tail
        assert Graph(4, [(0, 1)]) != triangle_with_tail


class TestConverters:
    def test_networkx_round_trip(self, triangle_with_tail):
        nxg = triangle_with_tail.to_networkx()
        back = Graph.from_networkx(nxg)
        assert back == triangle_with_tail

    def test_from_adjacency(self, triangle_with_tail):
        back = Graph.from_adjacency(triangle_with_tail.adjacency)
        assert back == triangle_with_tail

    def test_from_adjacency_rejects_non_square(self):
        with pytest.raises(ValueError):
            Graph.from_adjacency(np.ones((2, 3)))


class TestNeighborhoodOperators:
    def test_gamma_includes_inside_neighbors(self, triangle_with_tail):
        # Γ({0,1}) = {0,1,2}: 0 and 1 are each other's neighbours.
        mask = triangle_with_tail.gamma([0, 1])
        assert set(np.flatnonzero(mask)) == {0, 1, 2}

    def test_gamma_minus(self, triangle_with_tail):
        mask = triangle_with_tail.gamma_minus([0, 1])
        assert set(np.flatnonzero(mask)) == {2}

    def test_gamma_one(self, triangle_with_tail):
        # Vertex 2 has two neighbours in {0,1}; so Γ¹ is empty.
        assert triangle_with_tail.gamma_one([0, 1]).sum() == 0
        # Γ¹({2}) = {0,1,3}.
        assert set(np.flatnonzero(triangle_with_tail.gamma_one([2]))) == {0, 1, 3}

    def test_gamma_s_excluding(self, triangle_with_tail):
        out = triangle_with_tail.gamma_s_excluding([0, 1], [0])
        assert set(np.flatnonzero(out)) == {2}

    def test_gamma_one_s_excluding(self, triangle_with_tail):
        out = triangle_with_tail.gamma_one_s_excluding([0, 1], [0])
        assert set(np.flatnonzero(out)) == {2}
        both = triangle_with_tail.gamma_one_s_excluding([0, 1], [0, 1])
        assert both.sum() == 0

    def test_s_prime_must_be_subset(self, triangle_with_tail):
        with pytest.raises(ValueError, match="subset"):
            triangle_with_tail.gamma_one_s_excluding([0], [1])

    @settings(max_examples=40, deadline=None)
    @given(graph_strategy(), st.data())
    def test_operators_match_naive(self, g, data):
        s = sorted(data.draw(st.sets(st.integers(0, g.n - 1), max_size=g.n)))
        s_arr = np.array(s, dtype=np.int64)
        assert set(np.flatnonzero(g.gamma(s_arr))) == naive_gamma(g, s)
        assert set(np.flatnonzero(g.gamma_minus(s_arr))) == naive_gamma_minus(g, s)
        assert set(np.flatnonzero(g.gamma_one(s_arr))) == naive_gamma_one(g, s)
        sp = sorted(data.draw(st.sets(st.sampled_from(s), max_size=len(s))) if s else [])
        sp_arr = np.array(sp, dtype=np.int64)
        assert set(
            np.flatnonzero(g.gamma_s_excluding(s_arr, sp_arr))
        ) == naive_gamma_s_excluding(g, s, sp)
        assert set(
            np.flatnonzero(g.gamma_one_s_excluding(s_arr, sp_arr))
        ) == naive_gamma_one_s_excluding(g, s, sp)


class TestBoundaryBipartite:
    def test_structure(self, triangle_with_tail):
        gs, left, right = triangle_with_tail.boundary_bipartite([0, 1])
        assert left.tolist() == [0, 1]
        assert right.tolist() == [2]
        assert sorted(gs) == [(0, 0), (1, 0)]

    def test_no_internal_edges_kept(self, q3):
        s = [0, 1, 2, 3]
        gs, left, right = q3.boundary_bipartite(s)
        # Edges inside S (e.g. 0-1) must not appear.
        assert gs.n_edges == int(q3.neighbor_counts(s)[right].sum())

    @settings(max_examples=30, deadline=None)
    @given(graph_strategy(), st.data())
    def test_coverage_consistency(self, g, data):
        s = sorted(
            data.draw(st.sets(st.integers(0, g.n - 1), min_size=1, max_size=g.n))
        )
        gs, left, right = g.boundary_bipartite(np.array(s))
        # Unique coverage of the full S through the bipartite view equals Γ¹.
        full = np.arange(gs.n_left)
        assert gs.unique_cover_count(full) == int(g.gamma_one(np.array(s)).sum())


class TestDistances:
    def test_bfs_layers(self, triangle_with_tail):
        assert triangle_with_tail.bfs_layers(3).tolist() == [2, 2, 1, 0]

    def test_bfs_unreachable(self):
        g = Graph(3, [(0, 1)])
        assert g.bfs_layers(0).tolist() == [0, 1, -1]

    def test_is_connected(self, q3):
        assert q3.is_connected()
        assert not Graph(3, [(0, 1)]).is_connected()
        assert Graph(0, []).is_connected()

    def test_diameter(self, q3):
        assert q3.diameter() == 3
        assert cycle_graph(6).diameter() == 3

    def test_diameter_disconnected_raises(self):
        with pytest.raises(ValueError):
            Graph(3, [(0, 1)]).diameter()

    def test_eccentricity(self, triangle_with_tail):
        assert triangle_with_tail.eccentricity(3) == 2
        assert triangle_with_tail.eccentricity(2) == 1
