"""Remark 1 run-length calculus vs exact measurement on Gbad."""

import pytest

from repro.graphs import (
    alternating_run_payoff,
    full_run_payoff,
    gbad,
    gbad_run_subset,
    predicted_run_wireless,
)


class TestRunSubset:
    def test_whole_run(self):
        assert gbad_run_subset(2, 3, 8).tolist() == [2, 3, 4]

    def test_wraps(self):
        assert gbad_run_subset(6, 3, 8).tolist() == [6, 7, 0]

    def test_alternating(self):
        assert gbad_run_subset(0, 6, 8, step=2).tolist() == [0, 2, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            gbad_run_subset(0, 9, 8)
        with pytest.raises(ValueError):
            gbad_run_subset(0, 0, 8)


class TestPayoffFormulas:
    @pytest.mark.parametrize("delta,beta", [(4, 3), (6, 4), (6, 5), (8, 6)])
    @pytest.mark.parametrize("length", [1, 2, 3, 4, 5])
    def test_f_matches_measurement(self, delta, beta, length):
        # f(l): the whole run transmits; per-vertex unique coverage.
        s = 12  # long cycle so runs of length <= 5 don't wrap into overlap
        g = gbad(s, delta, beta)
        run = gbad_run_subset(0, length, s)
        measured = g.unique_cover_count(run) / length
        assert measured == pytest.approx(full_run_payoff(length, delta, beta))

    @pytest.mark.parametrize("delta,beta", [(4, 3), (6, 4), (8, 6)])
    @pytest.mark.parametrize("length", [2, 4, 6])
    def test_g_matches_measurement_even(self, delta, beta, length):
        # g(l) for even l: every second vertex, all Δ neighbours unique.
        s = 12
        g = gbad(s, delta, beta)
        sel = gbad_run_subset(0, length, s, step=2)
        measured = g.unique_cover_count(sel) / length
        assert measured == pytest.approx(alternating_run_payoff(length, delta))

    def test_g_odd_formula(self):
        # Odd l: (l+1)/2 selected vertices each covering Δ uniquely.
        s, delta, beta = 12, 6, 4
        g = gbad(s, delta, beta)
        length = 5
        sel = gbad_run_subset(0, length, s, step=2)
        measured = g.unique_cover_count(sel) / length
        assert measured == pytest.approx(alternating_run_payoff(length, delta))

    def test_limits_give_remark_bound(self):
        # f -> 2β − Δ and g -> Δ/2 as l grows.
        delta, beta = 6, 4
        assert full_run_payoff(10_000, delta, beta) == pytest.approx(
            2 * beta - delta, abs=1e-2
        )
        assert alternating_run_payoff(10_000, delta) == pytest.approx(
            delta / 2, abs=1e-2
        )

    def test_prediction_is_max(self):
        assert predicted_run_wireless(4, 6, 4) == max(
            full_run_payoff(4, 6, 4), alternating_run_payoff(4, 6)
        )

    @pytest.mark.parametrize("length", [2, 3, 4, 6])
    def test_prediction_never_exceeds_exact(self, length):
        from repro.expansion import max_unique_coverage_exact

        s, delta, beta = 12, 6, 4
        g = gbad(s, delta, beta)
        # Exact optimum over ALL subsets, restricted to a run's vertices:
        run = gbad_run_subset(0, length, s)
        sub = g.restrict_left(run)
        best, _ = max_unique_coverage_exact(sub)
        assert best / length >= predicted_run_wireless(length, delta, beta) - 1e-9
