"""Expander quality of the graph families (spectral gap sanity).

The experiment sweeps assume these families are genuine expanders; these
tests pin that down via second eigenvalues and sampled vertex expansion.
"""

import numpy as np
import pytest

from repro.expansion import (
    second_eigenvalue,
    spectral_gap,
    vertex_expansion_sampled,
)
from repro.graphs import (
    chordal_cycle_graph,
    complete_graph,
    cycle_graph,
    hypercube,
    margulis_expander,
    random_regular,
)


class TestSpectralGaps:
    def test_complete_graph_gap(self):
        assert spectral_gap(complete_graph(10)) == pytest.approx(10.0)

    def test_cycle_gap_vanishes(self):
        # C_n has gap Θ(1/n²): a non-expander.
        small = spectral_gap(cycle_graph(8))
        large = spectral_gap(cycle_graph(64))
        assert large < small < 1.0

    @pytest.mark.parametrize("d", [4, 6, 8])
    def test_random_regular_near_ramanujan(self, d):
        # Friedman: λ₂ ≤ 2√(d−1) + o(1) w.h.p.
        g = random_regular(256, d, rng=d)
        lam = second_eigenvalue(g)
        assert lam <= 2 * np.sqrt(d - 1) + 1.0

    def test_hypercube_gap(self):
        assert spectral_gap(hypercube(5)) == pytest.approx(2.0)

    def test_chordal_cycle_connected_gap(self):
        g = chordal_cycle_graph(101)
        assert g.is_connected()
        # Non-regular (vertex 0 and self-inverse vertices have degree 2);
        # check connectivity-driven expansion via sampling instead.
        beta, _ = vertex_expansion_sampled(g, 0.5, samples=150, rng=1)
        assert beta > 0

    def test_margulis_positive_sampled_expansion(self):
        g = margulis_expander(8)
        beta, _ = vertex_expansion_sampled(g, 0.5, samples=150, rng=2)
        assert beta >= 0.5  # Ω(1) vertex expansion


class TestExpanderVsNonExpander:
    def test_expander_beats_cycle(self):
        expander = random_regular(64, 6, rng=3)
        ring = cycle_graph(64)
        b_exp, _ = vertex_expansion_sampled(expander, 0.5, samples=100, rng=4)
        b_ring, _ = vertex_expansion_sampled(ring, 0.5, samples=100, rng=4)
        assert b_exp > b_ring
