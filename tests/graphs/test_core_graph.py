"""Lemma 4.4 core graph: construction, layout and exact DP verifiers.

Every one of the lemma's five claims is checked, by brute force where
feasible and via the closed forms everywhere.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expansion import max_unique_coverage_exact
from repro.graphs import (
    core_graph,
    core_graph_layout,
    core_graph_max_unique_coverage,
    core_graph_min_expansion,
    core_graph_properties,
)

POWERS = [1, 2, 4, 8, 16, 32]


class TestLayout:
    def test_levels_and_sizes(self):
        layout = core_graph_layout(8)
        assert layout.levels == 4  # log2(16)
        assert layout.n_right == 8 * 4
        assert [layout.block_size(i) for i in range(4)] == [8, 4, 2, 1]

    def test_blocks_partition_right_side(self):
        layout = core_graph_layout(8)
        seen = set()
        for level in range(layout.levels):
            for t in range(1 << level):
                block = layout.block(level, t)
                assert not (set(block) & seen)
                seen.update(block)
        assert seen == set(range(layout.n_right))

    def test_ancestor(self):
        layout = core_graph_layout(8)
        assert layout.ancestor(5, 0) == 0
        assert layout.ancestor(5, 3) == 5
        assert layout.ancestor(5, 1) == 1  # 5 = 0b101 -> top bit 1
        assert layout.ancestor(5, 2) == 2

    def test_level_of_right(self):
        layout = core_graph_layout(4)
        assert layout.level_of_right(0) == 0
        assert layout.level_of_right(4) == 1
        assert layout.level_of_right(11) == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="power of two"):
            core_graph_layout(6)
        layout = core_graph_layout(4)
        with pytest.raises(ValueError):
            layout.block(5, 0)
        with pytest.raises(ValueError):
            layout.block(1, 2)
        with pytest.raises(ValueError):
            layout.ancestor(4, 0)
        with pytest.raises(ValueError):
            layout.level_of_right(100)


class TestConstruction:
    @pytest.mark.parametrize("s", POWERS)
    def test_lemma44_claim1_sizes(self, s):
        g = core_graph(s)
        props = core_graph_properties(s)
        assert g.n_left == s
        assert g.n_right == props["n_right"] == s * (s.bit_length())

    @pytest.mark.parametrize("s", POWERS)
    def test_lemma44_claim2_left_degree(self, s):
        g = core_graph(s)
        assert (g.left_degrees == 2 * s - 1).all()

    @pytest.mark.parametrize("s", POWERS)
    def test_lemma44_claim3_right_degrees(self, s):
        g = core_graph(s)
        assert g.max_right_degree == s
        assert g.avg_right_degree <= 2 * s / np.log2(2 * s) + 1e-9
        # Right degrees are exactly s/2^level.
        layout = core_graph_layout(s)
        for level in range(layout.levels):
            block = layout.block(level, 0)
            assert (g.right_degrees[list(block)] == s >> level).all()

    def test_adjacency_is_ancestor_relation(self):
        # Observation 4.5: z ~ v iff v's block owner is an ancestor of z.
        s = 8
        g = core_graph(s)
        layout = core_graph_layout(s)
        for leaf in range(s):
            expected = set()
            for level in range(layout.levels):
                expected.update(layout.block(level, layout.ancestor(leaf, level)))
            assert set(g.neighbors_of_left(leaf).tolist()) == expected


class TestExpansionDP:
    @pytest.mark.parametrize("s", [1, 2, 4, 8])
    def test_min_expansion_matches_brute_force(self, s):
        g = core_graph(s)
        best = min(
            g.cover_count(np.array(sub)) / len(sub)
            for k in range(1, s + 1)
            for sub in itertools.combinations(range(s), k)
        )
        exp, _k, _cov = core_graph_min_expansion(s)
        assert exp == pytest.approx(best)

    @pytest.mark.parametrize("s", POWERS)
    def test_lemma44_claim4_expansion_at_least_log2s(self, s):
        exp, _, _ = core_graph_min_expansion(s)
        assert exp >= np.log2(2 * s) - 1e-9

    @pytest.mark.parametrize("s", POWERS)
    def test_expansion_is_exactly_log2s(self, s):
        # The paper's bound is tight: the full set achieves it.
        exp, k, cov = core_graph_min_expansion(s)
        assert exp == pytest.approx(np.log2(2 * s))
        assert k == s and cov == s * (s.bit_length())


class TestWirelessDP:
    @pytest.mark.parametrize("s", [1, 2, 4, 8, 16])
    def test_matches_exhaustive(self, s):
        g = core_graph(s)
        exact, _wit = max_unique_coverage_exact(g)
        assert core_graph_max_unique_coverage(s) == exact

    @pytest.mark.parametrize("s", POWERS)
    def test_lemma44_claim5_cap(self, s):
        assert core_graph_max_unique_coverage(s) <= 2 * s

    @pytest.mark.parametrize("s", POWERS)
    def test_optimum_is_2s_minus_1(self, s):
        # The induction's bound 2s−1 is exactly attained (single leaf of the
        # deepest path uniquely covers its whole ancestor chain).
        assert core_graph_max_unique_coverage(s) == 2 * s - 1

    @pytest.mark.parametrize("s", POWERS)
    def test_witness_achieves_value(self, s):
        g = core_graph(s)
        value, witness = core_graph_max_unique_coverage(s, return_witness=True)
        assert g.unique_cover_count(witness) == value

    def test_single_leaf_is_optimal(self):
        # A single leaf covers its 2s−1 ancestors' blocks uniquely.
        g = core_graph(16)
        assert g.unique_cover_count(np.array([7])) == 31


class TestProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from([1, 2, 4, 8, 16, 32, 64]))
    def test_property_sheet_consistent(self, s):
        g = core_graph(s)
        props = core_graph_properties(s)
        assert g.n_right == props["n_right"]
        assert g.max_right_degree == props["max_right_degree"]
        assert (g.left_degrees == props["left_degree"]).all()
        assert g.avg_right_degree <= props["avg_right_degree_bound"] + 1e-9
        assert props["wireless_fraction_upper_bound"] == pytest.approx(
            props["wireless_coverage_upper_bound"] / props["n_right"]
        )

    def test_wireless_fraction_formula(self):
        props = core_graph_properties(32)
        assert props["wireless_fraction_upper_bound"] == pytest.approx(
            2 / np.log2(64)
        )
