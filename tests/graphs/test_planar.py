"""Low-arboricity workload generators."""

import pytest

from repro.graphs import (
    complete_binary_tree,
    grid_2d,
    random_recursive_tree,
    triangular_grid,
)


class TestGrid:
    def test_sizes(self):
        g = grid_2d(3, 4)
        assert g.n == 12
        assert g.n_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_degrees(self):
        g = grid_2d(3, 3)
        assert g.max_degree == 4
        assert g.degrees[4] == 4  # centre
        assert g.degrees[0] == 2  # corner

    def test_connected(self):
        assert grid_2d(5, 7).is_connected()

    def test_single_row(self):
        g = grid_2d(1, 5)
        assert g.n_edges == 4


class TestTriangularGrid:
    def test_diagonals_added(self):
        base = grid_2d(3, 3)
        tri = triangular_grid(3, 3)
        assert tri.n_edges == base.n_edges + 4  # one diagonal per cell

    def test_connected(self):
        assert triangular_grid(4, 4).is_connected()


class TestTrees:
    def test_complete_binary_tree(self):
        g = complete_binary_tree(3)
        assert g.n == 15
        assert g.n_edges == 14
        assert g.is_connected()
        assert g.degrees[0] == 2  # root

    def test_random_recursive_tree(self):
        g = random_recursive_tree(20, rng=1)
        assert g.n_edges == 19
        assert g.is_connected()

    def test_random_recursive_tree_deterministic(self):
        assert random_recursive_tree(15, rng=3) == random_recursive_tree(15, rng=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_recursive_tree(1, rng=0)
