"""Experiment registry consistency: docs can't rot silently."""

import os

from repro.analysis import EXPERIMENTS, validate_registry

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")


class TestRegistry:
    def test_registry_is_clean(self):
        assert validate_registry(BENCH_DIR) == []

    def test_twenty_two_experiments(self):
        assert len(EXPERIMENTS) == 22
        assert [e.id for e in EXPERIMENTS] == [f"E{i}" for i in range(1, 23)]

    def test_every_bench_file_registered(self):
        registered = {e.bench_file for e in EXPERIMENTS}
        registered |= {
            name for e in EXPERIMENTS for name in e.companion_benches
        }
        on_disk = {
            f for f in os.listdir(BENCH_DIR)
            if f.startswith("bench_") and f.endswith(".py")
        }
        assert on_disk == registered

    def test_design_md_mentions_every_experiment(self):
        with open(os.path.join(REPO_ROOT, "DESIGN.md")) as fh:
            text = fh.read()
        for exp in EXPERIMENTS:
            assert exp.id in text, f"{exp.id} missing from DESIGN.md"

    def test_experiments_md_mentions_every_experiment(self):
        with open(os.path.join(REPO_ROOT, "EXPERIMENTS.md")) as fh:
            text = fh.read()
        for exp in EXPERIMENTS:
            assert exp.id in text, f"{exp.id} missing from EXPERIMENTS.md"

    def test_validate_reports_missing_bench(self, tmp_path):
        problems = validate_registry(str(tmp_path))
        expected = sum(
            1 + len(e.companion_benches) for e in EXPERIMENTS
        )
        assert len(problems) == expected
        assert all("missing" in p for p in problems)
