"""Deterministic sweep harness."""

import pytest

from repro.analysis import run_sweep, sweep_grid


class TestSweepGrid:
    def test_cartesian_product(self):
        grid = list(sweep_grid({"a": [1, 2], "b": ["x", "y", "z"]}))
        assert len(grid) == 6
        assert {"a": 1, "b": "x"} in grid

    def test_order_is_stable(self):
        a = list(sweep_grid({"b": [1, 2], "a": [3]}))
        b = list(sweep_grid({"a": [3], "b": [1, 2]}))
        assert a == b

    def test_empty_dimension_rejected_eagerly(self):
        # Must raise at call time, not on first iteration: an empty
        # dimension would otherwise silently empty the whole grid.
        with pytest.raises(ValueError, match="'b' is empty"):
            sweep_grid({"a": [1, 2], "b": []})

    def test_string_dimension_rejected(self):
        with pytest.raises(TypeError, match="non-string sequence"):
            sweep_grid({"a": "xyz"})

    def test_scalar_dimension_rejected(self):
        with pytest.raises(TypeError, match="non-string sequence"):
            sweep_grid({"a": 5})

    def test_numpy_array_dimension_accepted(self):
        import numpy as np

        grid = list(sweep_grid({"p": np.linspace(0.0, 0.3, 4)}))
        assert len(grid) == 4

    def test_run_sweep_validates_space_too(self):
        with pytest.raises(ValueError, match="'a' is empty"):
            run_sweep({"a": []}, lambda a, seed: a, seed=0)


class TestRunSweep:
    def test_calls_with_seed(self):
        seen = []

        def fn(a, seed):
            seen.append((a, seed))
            return a * 10

        points = run_sweep({"a": [1, 2]}, fn, seed=0)
        assert [p.result for p in points] == [10, 20]
        assert all(isinstance(s, int) for _, s in seen)

    def test_reproducible(self):
        def fn(a, seed):
            return seed

        p1 = run_sweep({"a": [1, 2, 3]}, fn, seed=7)
        p2 = run_sweep({"a": [1, 2, 3]}, fn, seed=7)
        assert [p.result for p in p1] == [p.result for p in p2]

    def test_repetitions(self):
        def fn(a, seed):
            return seed

        points = run_sweep({"a": [1]}, fn, seed=1, repetitions=5)
        assert len(points) == 5
        assert len({p.seed for p in points}) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sweep({"a": [1]}, lambda a, seed: 0, repetitions=0)


class TestBatchedSweep:
    def test_batch_fn_matches_fn(self):
        def fn(a, seed):
            return (a, seed)

        def batch_fn(a, seeds):
            return [(a, s) for s in seeds]

        looped = run_sweep({"a": [1, 2]}, fn, seed=5, repetitions=3)
        batched = run_sweep({"a": [1, 2]}, seed=5, repetitions=3,
                            batch_fn=batch_fn)
        assert [(p.params, p.seed, p.result) for p in looped] == [
            (p.params, p.seed, p.result) for p in batched
        ]

    def test_batch_fn_called_once_per_point(self):
        calls = []

        def batch_fn(a, seeds):
            calls.append((a, tuple(seeds)))
            return [0] * len(seeds)

        run_sweep({"a": [1, 2, 3]}, seed=0, repetitions=4, batch_fn=batch_fn)
        assert len(calls) == 3
        assert all(len(seeds) == 4 for _, seeds in calls)

    def test_wrong_result_count_rejected(self):
        with pytest.raises(ValueError):
            run_sweep({"a": [1]}, seed=0, repetitions=2,
                      batch_fn=lambda a, seeds: [0])

    def test_exactly_one_evaluator(self):
        with pytest.raises(ValueError):
            run_sweep({"a": [1]}, seed=0)
        with pytest.raises(ValueError):
            run_sweep({"a": [1]}, lambda a, seed: 0, seed=0,
                      batch_fn=lambda a, seeds: [0])


class TestStaticParams:
    def test_static_params_forwarded_not_recorded(self):
        seen = []

        def fn(a, graph, seed):
            seen.append(graph)
            return a

        points = run_sweep(
            {"a": [1, 2]}, fn, seed=0, static_params={"graph": "G"})
        assert seen == ["G", "G"]
        assert all(p.params == {"a": p.result} for p in points)

    def test_static_params_in_batch_mode(self):
        def batch_fn(a, channel_factory, seeds):
            return [channel_factory() for _ in seeds]

        points = run_sweep(
            {"a": [1]}, seed=0, repetitions=3, batch_fn=batch_fn,
            static_params={"channel_factory": lambda: "fresh"})
        assert [p.result for p in points] == ["fresh"] * 3

    def test_static_params_do_not_change_seeds(self):
        def fn(a, seed, extra=None):
            return seed

        plain = run_sweep({"a": [1, 2]}, fn, seed=9, repetitions=2)
        static = run_sweep({"a": [1, 2]}, fn, seed=9, repetitions=2,
                           static_params={"extra": "x"})
        assert [p.seed for p in plain] == [p.seed for p in static]

    def test_static_params_shadowing_grid_rejected(self):
        with pytest.raises(ValueError, match="shadow"):
            run_sweep({"a": [1]}, lambda a, seed: 0, seed=0,
                      static_params={"a": 2})

    def test_static_params_reserved_names_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            run_sweep({"a": [1]}, lambda a, seed: 0, seed=0,
                      static_params={"seed": 5})
        with pytest.raises(ValueError, match="reserved"):
            run_sweep({"a": [1]}, seed=0,
                      batch_fn=lambda a, seeds: [0],
                      static_params={"seeds": [1]})
