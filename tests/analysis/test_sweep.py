"""Deterministic sweep harness."""

import pytest

from repro.analysis import run_sweep, sweep_grid


class TestSweepGrid:
    def test_cartesian_product(self):
        grid = list(sweep_grid({"a": [1, 2], "b": ["x", "y", "z"]}))
        assert len(grid) == 6
        assert {"a": 1, "b": "x"} in grid

    def test_order_is_stable(self):
        a = list(sweep_grid({"b": [1, 2], "a": [3]}))
        b = list(sweep_grid({"a": [3], "b": [1, 2]}))
        assert a == b


class TestRunSweep:
    def test_calls_with_seed(self):
        seen = []

        def fn(a, seed):
            seen.append((a, seed))
            return a * 10

        points = run_sweep({"a": [1, 2]}, fn, rng=0)
        assert [p.result for p in points] == [10, 20]
        assert all(isinstance(s, int) for _, s in seen)

    def test_reproducible(self):
        def fn(a, seed):
            return seed

        p1 = run_sweep({"a": [1, 2, 3]}, fn, rng=7)
        p2 = run_sweep({"a": [1, 2, 3]}, fn, rng=7)
        assert [p.result for p in p1] == [p.result for p in p2]

    def test_repetitions(self):
        def fn(a, seed):
            return seed

        points = run_sweep({"a": [1]}, fn, rng=1, repetitions=5)
        assert len(points) == 5
        assert len({p.seed for p in points}) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sweep({"a": [1]}, lambda a, seed: 0, repetitions=0)
