"""Table rendering."""

import os

import pytest

from repro.analysis import format_value, render_table, write_table


class TestFormatValue:
    def test_floats(self):
        assert format_value(0.123456) == "0.1235"
        assert format_value(1234567.0) == "1.235e+06"
        assert format_value(0.0) == "0"
        assert format_value(float("nan")) == "nan"

    def test_bools(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_other(self):
        assert format_value(42) == "42"
        assert format_value("abc") == "abc"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title(self):
        text = render_table(["x"], [[1]], title="T")
        assert text.startswith("== T ==")

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])


class TestWriteTable:
    def test_writes_and_returns(self, tmp_path):
        path = str(tmp_path / "sub" / "table.txt")
        text = write_table(path, ["a"], [[1], [2]], title="X")
        assert os.path.exists(path)
        with open(path) as fh:
            assert fh.read().strip() == text.strip()
