"""Summary statistics and scaling fits."""

import numpy as np
import pytest

from repro.analysis import fit_loglinear, summarize


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.min == 1.0 and s.max == 3.0

    def test_single_value(self):
        s = summarize([5.0])
        assert s.std == 0.0
        assert s.ci95 == (5.0, 5.0)

    def test_ci_contains_mean(self):
        s = summarize(np.arange(50, dtype=float))
        lo, hi = s.ci95
        assert lo < s.mean < hi

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestFitLogLinear:
    def test_perfect_line(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        fit = fit_loglinear(x, 3 * x)
        assert fit.slope == pytest.approx(3.0)
        assert fit.slope_through_origin == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(0.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_affine_line(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        fit = fit_loglinear(x, 2 * x + 5)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(5.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noise_lowers_r2(self):
        gen = np.random.default_rng(0)
        x = np.linspace(1, 10, 40)
        y = 2 * x + gen.normal(0, 5.0, size=40)
        fit = fit_loglinear(x, y)
        assert 0.0 < fit.r_squared < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_loglinear([1.0], [2.0])
        with pytest.raises(ValueError):
            fit_loglinear([1.0, 2.0], [1.0])
