"""Eager scenario-spec validation (the PR-5 satellite bugfixes).

Four regressions are pinned here:

* negative seeds used to parse, round-trip, and only crash inside numpy
  at ``run()`` with an opaque "expected non-negative integer";
* ``max_rounds=0`` used to be accepted and "run" a 0-round broadcast
  reporting every trial incomplete;
* out-of-domain graph specs (``chain(0, 3)``, ``chain(4, -1)``,
  ``erdos_renyi(10, 1.5)``) used to parse successfully and fail only at
  build time — mid-sweep for grids;
* a duplicate channel segment used to raise the misleading "too many
  component segments" error.
"""

import pytest

from repro.scenario import GRAPHS, GraphSpec, Scenario, ScenarioSweep


class TestSeedValidation:
    def test_negative_seed_rejected_at_construction(self):
        with pytest.raises(ValueError, match="seed must be a non-negative"):
            Scenario(graph=GraphSpec.make("chain", 2, 2), seed=-1)

    def test_negative_seed_rejected_in_from_string(self):
        # The round-trip rejection: the string parses structurally but the
        # spec must refuse it by name, not let numpy crash at run().
        with pytest.raises(ValueError, match="seed"):
            Scenario.from_string("chain(2, 2) | decay | seed=-1")

    def test_negative_seed_rejected_in_override(self):
        sc = Scenario.from_string("chain(2, 2) | decay")
        with pytest.raises(ValueError, match="seed"):
            sc.with_overrides({"seed": -5})

    def test_zero_seed_still_fine(self):
        assert Scenario.from_string("chain(2, 2) | decay | seed=0").seed == 0


class TestMaxRoundsValidation:
    def test_zero_max_rounds_rejected(self):
        with pytest.raises(ValueError, match="max_rounds must be >= 1"):
            Scenario(graph=GraphSpec.make("hypercube", 3), max_rounds=0)

    def test_zero_max_rounds_rejected_in_from_string(self):
        with pytest.raises(ValueError, match="max_rounds must be >= 1"):
            Scenario.from_string("hypercube(3) | decay | max_rounds=0")

    def test_negative_max_rounds_rejected(self):
        with pytest.raises(ValueError, match="max_rounds"):
            Scenario(graph=GraphSpec.make("hypercube", 3), max_rounds=-3)

    def test_none_and_positive_accepted(self):
        assert Scenario(graph=GraphSpec.make("hypercube", 3)).max_rounds is None
        sc = Scenario.from_string("hypercube(3) | decay | max_rounds=1")
        assert sc.max_rounds == 1


class TestSourceValidation:
    def test_negative_source_rejected(self):
        with pytest.raises(ValueError, match="source must be a vertex id"):
            Scenario(graph=GraphSpec.make("hypercube", 3), source=-1)
        with pytest.raises(ValueError, match="source"):
            Scenario.from_string("hypercube(3) | decay | source=-1")

    def test_valid_source_accepted(self):
        # A bare source= canonicalizes into the broadcast workload segment.
        sc = Scenario.from_string("hypercube(3) | decay | source=2")
        assert sc.source is None
        assert sc.workload.to_dict() == {
            "name": "broadcast", "kwargs": {"source": 2}
        }
        assert sc.build().source == 2


class TestEagerGraphValidation:
    @pytest.mark.parametrize(
        "spec",
        ["chain(0, 3)", "chain(4, -1)", "erdos_renyi(10, 1.5)"],
    )
    def test_bad_graph_specs_fail_at_parse_time(self, spec):
        with pytest.raises(ValueError, match="bad graph spec"):
            Scenario.from_string(f"{spec} | decay | classic")

    def test_chain_non_power_of_two_fails_fast(self):
        with pytest.raises(ValueError, match="power of two"):
            Scenario.from_string("chain(3, 2) | decay")

    def test_wrong_arity_fails_fast(self):
        with pytest.raises(ValueError, match="bad graph spec"):
            Scenario.from_string("hypercube(3, 4) | decay")

    def test_graph_spec_validate_returns_self(self):
        spec = GraphSpec.make("chain", 4, 2)
        assert spec.validate() is spec

    @pytest.mark.parametrize(
        "spec, match",
        [
            ("random_regular(5, 3)", "even"),
            ("random_regular(4, 4)", "d < n"),
            ("chordal_cycle(9)", "prime"),
            ("cycle(2)", ">= 3"),
            ("star(1)", ">= 2"),
            ("grid(2, 0)", "cols"),
        ],
    )
    def test_family_domain_checks(self, spec, match):
        with pytest.raises(ValueError, match=match):
            Scenario.from_string(f"{spec} | decay")

    def test_keyword_form_specs_still_validate(self):
        # Checks receive builder-normalized arguments, so keyword-form
        # specs validate regardless of the check fn's parameter names.
        Scenario.from_string("hypercube(dimension=3) | decay | classic")
        Scenario.from_string("cycle(n=8) | decay")
        Scenario.from_string("grid(rows=2, cols=3) | decay")
        with pytest.raises(ValueError, match="bad graph spec"):
            Scenario.from_string("cycle(n=2) | decay")

    def test_every_registered_family_has_a_check(self):
        # Eager validation only helps if new families keep registering
        # their parameter domains.
        for name, entry in GRAPHS.items():
            assert entry.check is not None, f"{name} registered without check"

    def test_sweep_grid_fails_before_any_run(self):
        sweep = ScenarioSweep(
            base=Scenario.from_string("chain(2, 2) | decay"),
            grid={"graph": ["chain(2, 2)", "chain(0, 3)"]},
            seed=0,
        )
        with pytest.raises(ValueError, match="bad graph spec"):
            sweep.points()

    def test_sweep_explicit_scenarios_validated(self):
        bad = Scenario(graph=GraphSpec.make("erdos_renyi", 10, 1.5))
        sweep = ScenarioSweep(scenarios=[bad], seed=0)
        with pytest.raises(ValueError, match="bad graph spec"):
            sweep.points()

    def test_validate_builds_protocol_and_channel(self):
        sc = Scenario.from_string("hypercube(3) | decay | erasure(0.1)")
        assert sc.validate() is sc


class TestDuplicateSegmentDiagnosis:
    def test_duplicate_channel_named(self):
        with pytest.raises(ValueError, match="duplicate channel segment"):
            Scenario.from_string(
                "hypercube(3) | decay | erasure(0.1) | erasure(0.9)"
            )

    def test_duplicate_graph_named(self):
        with pytest.raises(ValueError, match="duplicate graph segment"):
            Scenario.from_string(
                "hypercube(3) | decay | classic | hypercube(4)"
            )

    def test_unrecognized_extra_segment_keeps_generic_error(self):
        with pytest.raises(ValueError, match="too many component segments"):
            Scenario.from_string(
                "hypercube(3) | decay | classic | broadcast | mystery(1)"
            )

    def test_unrecognized_fourth_segment_names_workload_slot(self):
        # With all four slots open in order, an unknown fourth bare
        # segment lands in the workload slot and names the registry.
        with pytest.raises(ValueError, match="registered workloads"):
            Scenario.from_string(
                "hypercube(3) | decay | classic | mystery(1)"
            )


class TestRegistryPluralization:
    def test_graph_family_pluralizes_correctly(self):
        with pytest.raises(ValueError, match="registered graph families:"):
            GRAPHS.get("petersen-nope")

    def test_protocol_plural(self):
        from repro.scenario import PROTOCOLS

        with pytest.raises(ValueError, match="registered protocols:"):
            PROTOCOLS.get("nope")

    def test_default_plural_appends_s(self):
        from repro.scenario.registry import SpecRegistry

        assert SpecRegistry("protocol").plural == "protocols"
        assert SpecRegistry("graph family", plural="graph families").plural \
            == "graph families"
