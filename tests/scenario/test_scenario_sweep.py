"""ScenarioSweep: grids over spec fields, seed discipline, caching, and
the run_sweep scenario mode."""

import numpy as np
import pytest

from repro._util import as_rng, spawn_seeds
from repro.analysis import run_sweep
from repro.runtime import ParallelExecutor, ResultStore
from repro.runtime.tasks import chain_broadcast_point
from repro.scenario import GraphSpec, Scenario, ScenarioSweep

BASE = Scenario.from_string("chain(4, 2) | decay | classic | trials=3")


class TestSchedule:
    def test_grid_is_lexicographic_and_rep_expanded(self):
        sweep = ScenarioSweep(
            base=BASE,
            grid={"trials": [1, 2], "channel.erasure_p": [0.0, 0.1]},
            repetitions=2,
            seed=0,
        )
        points = sweep.points()
        assert len(points) == 8  # 2 x 2 grid x 2 reps
        # Sorted keys: channel.erasure_p varies slowest.
        assert [ov["channel.erasure_p"] for ov, _ in points] == [
            0.0, 0.0, 0.0, 0.0, 0.1, 0.1, 0.1, 0.1]
        assert [ov["trials"] for ov, _ in points] == [1, 1, 2, 2, 1, 1, 2, 2]
        # Seeds derive exactly like run_sweep: grid-major from the master.
        assert [sc.seed for _, sc in points] == spawn_seeds(as_rng(0), 8)

    def test_explicit_list_keeps_spec_seeds(self):
        scenarios = ["hypercube(4) | decay | classic | seed=5",
                     "cycle(8) | decay | classic | seed=9"]
        points = ScenarioSweep(scenarios=scenarios).points()
        assert [sc.seed for _, sc in points] == [5, 9]

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="exactly one"):
            ScenarioSweep()
        with pytest.raises(ValueError, match="exactly one"):
            ScenarioSweep(base=BASE, scenarios=[BASE])
        with pytest.raises(TypeError, match="non-string sequence"):
            ScenarioSweep(base=BASE, grid={"trials": "12"})
        with pytest.raises(ValueError, match="is empty"):
            ScenarioSweep(base=BASE, grid={"trials": []})


class TestRun:
    def test_serial_parallel_and_cache_agree(self, tmp_path):
        sweep = ScenarioSweep(
            base=BASE,
            grid={"graph": [GraphSpec.make("chain", 4, l) for l in (2, 3)]},
            repetitions=2,
            seed=1,
        )
        serial = sweep.run()
        parallel = sweep.run(executor=ParallelExecutor(2))
        assert [p.result for p in parallel] == [p.result for p in serial]
        store = ResultStore(tmp_path)
        cold = sweep.run(cache=store)
        assert (store.hits, store.misses) == (0, 4)
        warm = sweep.run(cache=store)
        assert (store.hits, store.misses) == (4, 4)
        assert [p.result for p in cold] == [p.result for p in serial]
        assert [p.result for p in warm] == [p.result for p in serial]

    def test_manifest_tracks_progress(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep = ScenarioSweep(base=BASE, grid={"trials": [1, 2]}, seed=0)
        manifest = sweep.manifest(store)
        assert manifest.progress(store) == (0, 2)
        sweep.run(cache=store)
        assert manifest.progress(store) == (2, 2)
        assert manifest.fn == "scenario:summary"

    def test_full_results_view(self):
        points = ScenarioSweep(
            scenarios=[BASE.with_overrides({"seed": 3})]
        ).run(summary=False)
        batch = points[0].result
        np.testing.assert_array_equal(
            batch.rounds, BASE.with_overrides({"seed": 3}).run().rounds)


class TestRunSweepScenarioMode:
    def test_matches_legacy_chain_sweep_bit_for_bit(self):
        # The CLI's broadcast path: a graph-spec grid must reproduce the
        # legacy chain_broadcast_point sweep numbers exactly (same seeds,
        # same engine, same splits).
        legacy = run_sweep(
            {"layers": [2, 3]},
            chain_broadcast_point,
            seed=0,
            repetitions=2,
            static_params={"s": 4, "trials": 3},
        )
        scenario_points = run_sweep(
            {"graph": [GraphSpec.make("chain", 4, l) for l in (2, 3)]},
            scenario=BASE,
            seed=0,
            repetitions=2,
        )
        assert len(scenario_points) == len(legacy) == 4
        for sp, lp in zip(scenario_points, legacy):
            assert sp.seed == lp.seed
            for key in ("s", "layers", "n", "diameter", "rounds", "completed"):
                assert sp.result[key] == lp.result[key], key

    def test_scenario_mode_rejects_evaluators(self):
        with pytest.raises(ValueError, match="scenario mode"):
            run_sweep({}, fn=chain_broadcast_point, scenario=BASE)

    def test_empty_grid_runs_base(self):
        points = run_sweep({}, scenario=BASE, seed=2, repetitions=2)
        assert len(points) == 2
        assert points[0].result["s"] == 4
