"""Scenario execution: bit-for-bit equivalence with the legacy engine
calls, trial sharding, and content-addressed caching."""

import numpy as np
import pytest

from repro._util import spawn_seeds
from repro.graphs import cycle_graph, grid_2d, hypercube
from repro.radio import (
    CollisionDetection,
    DecayProtocol,
    ErasureChannel,
    run_broadcast_batch,
)
from repro.radio.lower_bound import measure_chain_broadcast_batch
from repro.runtime import ParallelExecutor, ResultStore, SerialExecutor
from repro.scenario import (
    Scenario,
    merge_batches,
    run_scenario,
    run_scenario_sharded,
    scenario_summary,
)


def assert_batches_equal(a, b):
    assert a.trials == b.trials
    np.testing.assert_array_equal(a.rounds, b.rounds)
    np.testing.assert_array_equal(a.completed, b.completed)
    np.testing.assert_array_equal(a.informed_per_round, b.informed_per_round)
    np.testing.assert_array_equal(a.first_informed_round, b.first_informed_round)
    np.testing.assert_array_equal(a.transmissions, b.transmissions)


class TestLegacyEquivalence:
    """``Scenario.run`` == the ``run_broadcast_batch`` call it replaces."""

    @pytest.mark.parametrize("graph_str,builder", [
        ("hypercube(5)", lambda: hypercube(5)),
        ("grid(4, 5)", lambda: grid_2d(4, 5)),
        ("cycle(16)", lambda: cycle_graph(16)),
    ])
    def test_deterministic_graphs_bit_for_bit(self, graph_str, builder):
        sc = Scenario.from_string(f"{graph_str} | decay | classic | trials=6 | seed=11")
        legacy = run_broadcast_batch(
            builder(), DecayProtocol(), trials=6, seed=11)
        assert_batches_equal(sc.run(), legacy)

    def test_erasure_channel_bit_for_bit(self):
        sc = Scenario.from_string(
            "hypercube(5) | decay | erasure(0.15) | trials=5 | seed=2")
        legacy = run_broadcast_batch(
            hypercube(5), DecayProtocol(), trials=5, seed=2,
            channel=ErasureChannel(0.15))
        assert_batches_equal(sc.run(), legacy)

    def test_collision_detection_bit_for_bit(self):
        sc = Scenario.from_string(
            "hypercube(4) | collision-backoff | collision-detection "
            "| trials=4 | seed=9")
        from repro.radio import CollisionBackoffProtocol

        legacy = run_broadcast_batch(
            hypercube(4), CollisionBackoffProtocol(), trials=4, seed=9,
            channel=CollisionDetection())
        assert_batches_equal(sc.run(), legacy)

    def test_chain_seed_split_matches_legacy_task(self):
        # The randomized-family split is the chain_broadcast_point one:
        # (protocol_seed, graph_seed) = spawn_seeds(seed, 2).
        sc = Scenario.from_string("chain(4, 3) | decay | classic | trials=5 | seed=13")
        proto_seed, chain_seed = spawn_seeds(13, 2)
        m = measure_chain_broadcast_batch(
            4, 3, DecayProtocol(), trials=5, seed=proto_seed,
            chain_seed=chain_seed)
        batch = sc.run()
        np.testing.assert_array_equal(batch.rounds, m.rounds)
        np.testing.assert_array_equal(batch.completed, m.completed)

    def test_source_override(self):
        sc = Scenario.from_string("cycle(12) | decay | classic | seed=1 | source=5")
        legacy = run_broadcast_batch(
            cycle_graph(12), DecayProtocol(), trials=1, source=5, seed=1)
        assert_batches_equal(sc.run(), legacy)


class TestShardingAndCache:
    def test_parallel_executor_bit_for_bit(self):
        sc = Scenario.from_string("chain(4, 2) | decay | classic | trials=7 | seed=3")
        serial = sc.run()
        for executor in (SerialExecutor(), ParallelExecutor(2), 3):
            assert_batches_equal(sc.run(executor=executor), serial)

    def test_merge_batches_pads_with_final_counts(self):
        sc = Scenario.from_string("hypercube(5) | decay | classic | trials=9 | seed=4")
        serial = run_scenario(sc)
        sharded = run_scenario_sharded(sc, ParallelExecutor(4))
        assert_batches_equal(sharded, serial)

    def test_merge_batches_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_batches([])

    def test_warm_cache_replays_bit_for_bit(self, tmp_path):
        store = ResultStore(tmp_path)
        sc = Scenario.from_string("chain(4, 2) | decay | classic | trials=4 | seed=8")
        cold = sc.run(cache=store)
        assert (store.hits, store.misses) == (0, 1)
        warm = sc.run(cache=store)
        assert (store.hits, store.misses) == (1, 1)
        assert_batches_equal(cold, warm)

    def test_parallel_with_warm_store_reproduces_serial(self, tmp_path):
        # The acceptance invariant: ParallelExecutor + warm ResultStore
        # reproduces the serial result bit for bit.
        store = ResultStore(tmp_path)
        sc = Scenario.from_string("chain(4, 2) | decay | classic | trials=6 | seed=1")
        serial = sc.run(cache=store)
        replay = sc.run(executor=ParallelExecutor(2), cache=store)
        assert store.misses == 1 and store.hits == 1
        assert_batches_equal(replay, serial)

    def test_cache_key_is_spec_canonical_not_helper(self, tmp_path):
        # Spec-equal scenarios share an entry regardless of the producing
        # helper: a Scenario.run warm-up is hit by a ScenarioSweep replay.
        from repro.scenario import ScenarioSweep

        store = ResultStore(tmp_path)
        sc = Scenario.from_string("hypercube(4) | decay | classic | trials=3 | seed=6")
        direct = sc.run(cache=store)
        points = ScenarioSweep(scenarios=[sc]).run(cache=store, summary=False)
        assert store.hits == 1  # the sweep replayed the direct run's entry
        assert_batches_equal(points[0].result, direct)

    def test_key_distinguishes_views_and_fields(self, tmp_path):
        store = ResultStore(tmp_path)
        sc = Scenario.from_string("hypercube(4) | decay | classic | trials=3")
        k = store.scenario_key(sc)
        assert store.scenario_key(sc, view="summary") != k
        assert store.scenario_key(sc.with_overrides({"seed": 1})) != k
        assert store.scenario_key(
            sc.with_overrides({"channel": "erasure(0.1)"})) != k

    def test_irrelevant_channel_params_share_key(self, tmp_path):
        from repro.radio import ChannelSpec

        store = ResultStore(tmp_path)
        a = Scenario(graph="hypercube(4)", channel=ChannelSpec(erasure_p=0.1))
        b = Scenario(graph="hypercube(4)", channel=ChannelSpec(erasure_p=0.9))
        assert store.scenario_key(a) == store.scenario_key(b)


class TestSummary:
    def test_summary_superset_of_chain_point(self):
        from repro.runtime.tasks import chain_broadcast_point

        sc = Scenario.from_string("chain(4, 2) | decay | classic | trials=4 | seed=7")
        summary = scenario_summary(sc)
        legacy = chain_broadcast_point(4, 2, seed=7, trials=4)
        for key in ("s", "layers", "n", "diameter", "km_bound", "trials",
                    "rounds", "completed", "mean_rounds"):
            assert summary[key] == legacy[key], key

    def test_summary_accepts_string_and_dict(self):
        text = "hypercube(4) | decay | classic | trials=2 | seed=3"
        sc = Scenario.from_string(text)
        assert scenario_summary(text) == scenario_summary(sc.to_dict())

    def test_run_experiment_registry_scenarios(self):
        # Every experiment-bound scenario is runnable (tiny smoke of the
        # E1-E22 acceptance: simulation experiments route through Scenario).
        from repro.analysis import EXPERIMENTS

        bound = [e for e in EXPERIMENTS if e.scenario is not None]
        assert {e.id for e in bound} == {
            "E7", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19",
            "E20", "E21", "E22",
        }
        smoke = bound[0].scenario.with_overrides({"trials": 2})
        batch = smoke.run()
        assert batch.trials == 2
