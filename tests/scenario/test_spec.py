"""Spec round-trips: string, dict, pickle, and override views."""

import pickle

import pytest

from repro._util import format_call, format_value, parse_call, parse_value
from repro.radio import CHANNELS, ChannelSpec
from repro.scenario import (
    GRAPHS,
    PROTOCOLS,
    GraphSpec,
    ProtocolSpec,
    Scenario,
    SCENARIOS,
)

# Small, fast instances of every registered graph family.
GRAPH_STRINGS = [
    "chain(4, 2)",
    "hypercube(4)",
    "random_regular(16, 4)",
    "erdos_renyi(16, 0.3)",
    "grid(4)",
    "grid(4, 3)",
    "cycle(12)",
    "path(9)",
    "complete(6)",
    "star(7)",
    "margulis(3)",
    "chordal_cycle(11)",
    "cplus(6)",
    "tree(3)",
]

PROTOCOL_STRINGS = [
    "decay",
    "decay(phase_length=4)",
    "flooding",
    "round-robin",
    "aloha(0.25)",
    "collision-backoff",
    "spokesman",
]

CHANNEL_STRINGS = [
    "classic",
    "collision-detection",
    "erasure(0.05)",
    "jamming",
    'jamming("jam@0-2:1,2;crash@5:3")',
]


class TestCallStrings:
    @pytest.mark.parametrize("value", [
        0, -3, 17, 0.5, 1e-06, True, False, None, "decay",
        "jam@0-2:1,2", "a b", 'quo"te', "10", "none",
    ])
    def test_value_round_trip(self, value):
        assert parse_value(format_value(value)) == value

    def test_call_round_trip(self):
        name, args, kwargs = parse_call("decay(4, p=0.5, tag='x y')")
        assert (name, args, kwargs) == ("decay", (4,), {"p": 0.5, "tag": "x y"})
        assert parse_call(format_call(name, args, kwargs)) == (
            name, args, kwargs)

    def test_bad_specs_rejected(self):
        for text in ["", "1abc", "decay(", "decay(a=1, 2)", "decay)x"]:
            with pytest.raises(ValueError):
                parse_call(text)


class TestComponentRoundTrips:
    @pytest.mark.parametrize("text", GRAPH_STRINGS)
    def test_graph_string_round_trip(self, text):
        spec = GraphSpec.from_string(text)
        assert spec.describe() == text
        assert GraphSpec.from_string(spec.describe()) == spec
        assert GraphSpec.from_dict(spec.to_dict()) == spec
        assert pickle.loads(pickle.dumps(spec)) == spec

    @pytest.mark.parametrize("text", PROTOCOL_STRINGS)
    def test_protocol_string_round_trip(self, text):
        spec = ProtocolSpec.from_string(text)
        assert spec.describe() == text
        assert ProtocolSpec.from_string(spec.describe()) == spec
        assert ProtocolSpec.from_dict(spec.to_dict()) == spec
        assert pickle.loads(pickle.dumps(spec)) == spec

    @pytest.mark.parametrize("text", CHANNEL_STRINGS)
    def test_channel_string_round_trip(self, text):
        spec = ChannelSpec.from_string(text)
        assert spec.describe() == text
        assert ChannelSpec.from_string(spec.describe()) == spec
        assert ChannelSpec.from_dict(spec.to_dict()) == spec
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_channel_cd_alias_canonicalizes(self):
        assert ChannelSpec.from_string("cd").describe() == "collision-detection"

    def test_channel_canonical_dict_drops_irrelevant_params(self):
        # erasure_p on a classic channel cannot perturb the content address.
        a = ChannelSpec(name="classic", erasure_p=0.1)
        b = ChannelSpec(name="classic", erasure_p=0.7)
        assert a.to_dict() == b.to_dict() == {"name": "classic"}

    def test_every_registered_component_round_trips(self):
        # The bare name of every registry entry is itself a canonical spec.
        for name in GRAPHS.names():
            covered = [g.split("(")[0] for g in GRAPH_STRINGS]
            assert name in covered, f"graph family {name} missing a test string"
        for name in PROTOCOLS.names():
            spec = ProtocolSpec.from_string(name)
            assert spec.describe() == name
        for name in sorted(CHANNELS):
            # describe() is canonical: re-parsing it is a fixed point (the
            # bare "erasure" canonicalizes to "erasure(0.1)").
            canonical = ChannelSpec.from_string(name).describe()
            assert ChannelSpec.from_string(canonical).describe() == canonical

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="unknown graph family"):
            GraphSpec.from_string("petersen(10)")
        with pytest.raises(ValueError, match="unknown protocol"):
            ProtocolSpec.from_string("telepathy")
        with pytest.raises(ValueError, match="unknown channel"):
            ChannelSpec.from_string("telepathy")


class TestScenarioRoundTrips:
    @pytest.mark.parametrize("graph", GRAPH_STRINGS)
    def test_scenario_string_round_trip_per_graph(self, graph):
        text = f"{graph} | decay | classic"
        sc = Scenario.from_string(text)
        assert sc.describe() == text
        assert Scenario.from_string(sc.describe()) == sc

    @pytest.mark.parametrize("protocol", PROTOCOL_STRINGS)
    def test_scenario_string_round_trip_per_protocol(self, protocol):
        text = f"hypercube(4) | {protocol} | classic"
        sc = Scenario.from_string(text)
        assert sc.describe() == text

    @pytest.mark.parametrize("channel", CHANNEL_STRINGS)
    def test_scenario_string_round_trip_per_channel(self, channel):
        text = f"hypercube(4) | decay | {channel}"
        sc = Scenario.from_string(text)
        assert sc.describe() == text

    def test_scalars_round_trip(self):
        text = ("chain(4, 2) | decay | erasure(0.1) | trials=16 | seed=7 "
                "| source=1 | max_rounds=500")
        sc = Scenario.from_string(text)
        assert sc.trials == 16 and sc.seed == 7
        # source= is a deprecated alias: it canonicalizes into the
        # workload segment, so every view has one spelling.
        assert sc.source is None
        assert sc.workload.describe() == "broadcast(source=1)"
        assert sc.max_rounds == 500
        assert Scenario.from_string(sc.describe()) == sc

    def test_dict_round_trip_lossless(self):
        sc = Scenario.from_string(
            'chain(4, 2) | aloha(0.25) | jamming("jam@0-2:1") | trials=8')
        assert Scenario.from_dict(sc.to_dict()) == sc

    def test_pickle_round_trip(self):
        sc = Scenario.from_string("hypercube(5) | decay | erasure(0.2)")
        assert pickle.loads(pickle.dumps(sc)) == sc

    def test_keyword_segments(self):
        sc = Scenario.from_string(
            "graph=cplus(6) | protocol=flooding | max_rounds=50")
        assert sc.graph.family == "cplus"
        assert sc.protocol.name == "flooding"
        assert sc.max_rounds == 50

    def test_named_presets_round_trip(self):
        for name, (scenario, _summary) in SCENARIOS.items():
            assert Scenario.from_string(scenario.describe()) == scenario, name

    def test_missing_graph_rejected(self):
        with pytest.raises(ValueError, match="names no graph"):
            Scenario.from_string("protocol=decay")

    def test_duplicate_component_segment_named(self):
        # A fourth bare segment that re-spells an already-assigned
        # component kind is a *duplicate*, not "too many components".
        with pytest.raises(ValueError, match="duplicate protocol segment"):
            Scenario.from_string("hypercube(4) | decay | classic | decay")

    def test_too_many_components_rejected(self):
        # A fifth segment that matches no registry keeps the generic
        # too-many-segments diagnosis (a *fourth* unknown bare segment
        # lands in the open workload slot and names that registry).
        with pytest.raises(ValueError, match="too many component"):
            Scenario.from_string(
                "hypercube(4) | decay | classic | broadcast | not-a-component"
            )


class TestOverrides:
    def test_scalar_and_component_overrides(self):
        sc = Scenario.from_string("hypercube(4) | decay | classic")
        out = sc.with_overrides(
            {"trials": "32", "channel": "erasure(0.3)", "seed": 9})
        assert out.trials == 32 and out.seed == 9
        assert out.channel.name == "erasure"
        assert out.channel.erasure_p == 0.3
        # Originals untouched (frozen specs).
        assert sc.trials == 1 and sc.channel.name == "classic"

    def test_dotted_override(self):
        sc = Scenario.from_string("hypercube(4) | decay | erasure(0.1)")
        out = sc.with_overrides({"channel.erasure_p": "0.4"})
        assert out.channel.erasure_p == 0.4

    def test_unknown_override_rejected(self):
        sc = Scenario.from_string("hypercube(4)")
        with pytest.raises(KeyError, match="unknown scenario override"):
            sc.with_overrides({"frobnicate": 1})
        with pytest.raises(KeyError):
            sc.with_overrides({"channel.nope": 1})


class TestBuild:
    @pytest.mark.parametrize("graph", GRAPH_STRINGS)
    def test_every_family_builds(self, graph):
        sc = Scenario.from_string(f"{graph} | decay | classic")
        realized = sc.build()
        assert realized.built.graph.n >= 2
        assert 0 <= realized.source < realized.built.graph.n

    def test_chain_meta(self):
        realized = Scenario.from_string("chain(4, 3)").build()
        meta = realized.built.meta
        assert meta["s"] == 4 and meta["layers"] == 3
        assert meta["diameter"] == 8
        assert meta["km_bound"] > 0

    def test_deterministic_graph_seed_passthrough(self):
        # Deterministic family: the protocol seed IS the scenario seed.
        sc = Scenario.from_string("hypercube(4) | decay | classic | seed=5")
        assert sc.seeds == (5, None)

    def test_randomized_graph_seed_split(self):
        from repro._util import spawn_seeds

        sc = Scenario.from_string("chain(4, 2) | decay | classic | seed=5")
        assert sc.seeds == tuple(spawn_seeds(5, 2))

    def test_classic_channel_builds_none(self):
        assert Scenario.from_string("hypercube(4)").build().channel is None
        assert (
            Scenario.from_string("hypercube(4) | decay | erasure(0.1)")
            .build().channel is not None
        )
