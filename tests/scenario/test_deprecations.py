"""Every legacy-kwarg shim fires a DeprecationWarning naming the
replacement syntax — the one-release migration contract."""

import warnings

import pytest

from repro.analysis import erasure_degradation, run_sweep
from repro.graphs import hypercube
from repro.radio import DecayProtocol, run_broadcast, run_broadcast_batch
from repro.radio.hop_analysis import hop_time_study
from repro.radio.lower_bound import (
    measure_chain_broadcast,
    measure_chain_broadcast_batch,
)
from repro.radio.trace import run_broadcast_traced
from repro.runtime import plan_sweep


def _noop(seed):
    return seed


class TestRngShims:
    def test_run_broadcast(self):
        g = hypercube(3)
        with pytest.warns(DeprecationWarning, match="seed="):
            legacy = run_broadcast(g, DecayProtocol(), rng=0)
        new = run_broadcast(g, DecayProtocol(), seed=0)
        assert legacy.rounds == new.rounds

    def test_run_broadcast_batch(self):
        g = hypercube(3)
        with pytest.warns(DeprecationWarning, match="seed="):
            legacy = run_broadcast_batch(g, DecayProtocol(), trials=2, rng=0)
        new = run_broadcast_batch(g, DecayProtocol(), trials=2, seed=0)
        assert (legacy.rounds == new.rounds).all()

    def test_run_broadcast_traced(self):
        with pytest.warns(DeprecationWarning, match="seed="):
            run_broadcast_traced(hypercube(3), DecayProtocol(), rng=0)

    def test_measure_chain_broadcast(self):
        with pytest.warns(DeprecationWarning, match="seed="):
            measure_chain_broadcast(2, 2, DecayProtocol(), rng=0, chain_seed=1)
        with pytest.warns(DeprecationWarning, match="chain_seed="):
            measure_chain_broadcast(2, 2, DecayProtocol(), seed=0, chain_rng=1)

    def test_measure_chain_broadcast_batch_equivalent(self):
        with pytest.warns(DeprecationWarning):
            legacy = measure_chain_broadcast_batch(
                2, 2, DecayProtocol(), trials=2, rng=3, chain_rng=4)
        new = measure_chain_broadcast_batch(
            2, 2, DecayProtocol(), trials=2, seed=3, chain_seed=4)
        assert (legacy.rounds == new.rounds).all()

    def test_run_sweep(self):
        with pytest.warns(DeprecationWarning, match="seed="):
            legacy = run_sweep({"seed_offset": [1]},
                               lambda seed_offset, seed: seed, rng=0)
        new = run_sweep({"seed_offset": [1]},
                        lambda seed_offset, seed: seed, seed=0)
        assert [p.result for p in legacy] == [p.result for p in new]

    def test_plan_sweep(self):
        with pytest.warns(DeprecationWarning, match="seed="):
            plan_sweep({"a": [1]}, _noop, rng=0)

    def test_erasure_degradation(self):
        with pytest.warns(DeprecationWarning, match="seed="):
            erasure_degradation(
                [("h", hypercube(3))], [0.1], trials=1, rng=0)

    def test_hop_time_study_rng(self):
        with pytest.warns(DeprecationWarning, match="seed="):
            hop_time_study(2, 2, DecayProtocol, repetitions=2, rng=0)

    def test_both_spellings_rejected(self):
        with pytest.raises(TypeError, match="both"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                run_broadcast(hypercube(3), DecayProtocol(), seed=0, rng=1)


class TestChannelFactoryShim:
    def test_warns_and_honours_value(self):
        from repro.radio import ChannelSpec

        with pytest.warns(DeprecationWarning, match="scenario"):
            legacy = hop_time_study(
                2, 2, DecayProtocol, repetitions=2, seed=0,
                channel_factory=ChannelSpec(name="erasure", erasure_p=0.2))
        new = hop_time_study(
            2, 2, DecayProtocol, repetitions=2, seed=0,
            channel=ChannelSpec(name="erasure", erasure_p=0.2))
        assert (legacy.hop_times == new.hop_times).all()

    def test_message_names_spec_syntax(self):
        with pytest.warns(DeprecationWarning,
                          match=r"erasure\(0\.1\)"):
            hop_time_study(
                2, 2, DecayProtocol, repetitions=2, seed=0,
                channel_factory=None)


class TestScenarioFrontDoors:
    def test_hop_time_study_scenario(self):
        from repro.scenario import Scenario

        sc = Scenario.from_string(
            "chain(2, 2) | decay | classic | seed=0 | trials=2")
        study = hop_time_study(scenario=sc, repetitions=4)
        legacy = hop_time_study(
            2, 2, DecayProtocol, repetitions=4, seed=0, trials_per_chain=2)
        assert (study.hop_times == legacy.hop_times).all()

    def test_hop_time_study_rejects_mixed_forms(self):
        from repro.scenario import Scenario

        sc = Scenario.from_string("chain(2, 2)")
        with pytest.raises(TypeError, match="not both"):
            hop_time_study(2, 2, DecayProtocol, scenario=sc)

    def test_hop_time_study_rejects_non_chain(self):
        from repro.scenario import Scenario

        with pytest.raises(ValueError, match="chain-family"):
            hop_time_study(scenario=Scenario.from_string("hypercube(4)"))

    def test_hop_time_study_honours_scenario_max_rounds(self):
        from repro.scenario import Scenario

        sc = Scenario.from_string(
            "chain(2, 2) | round-robin | classic | max_rounds=3")
        # round-robin needs ~n rounds per hop; a 3-round cap cannot finish,
        # so the study's completion check must trip — proving the cap
        # actually reached the engine.
        with pytest.raises(RuntimeError, match="did not complete"):
            hop_time_study(scenario=sc, repetitions=2)

    def test_hop_time_study_rejects_scenario_source(self):
        from repro.scenario import Scenario

        sc = Scenario.from_string("chain(2, 2) | decay | classic | source=1")
        with pytest.raises(ValueError, match="chain root"):
            hop_time_study(scenario=sc, repetitions=2)

    def test_erasure_degradation_spec_families(self):
        points = erasure_degradation(
            [("cube", "hypercube(4)")], [0.0, 0.2], trials=2, seed=0)
        assert len(points) == 2
        # p=0 erasure is bit-for-bit the classic baseline (anchor invariant).
        assert points[0].slowdown == 1.0
        assert (points[0].batch.rounds == points[0].baseline.rounds).all()
