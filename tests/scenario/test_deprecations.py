"""The legacy ``rng=`` / ``chain_rng=`` / ``channel_factory=`` kwargs
completed their one-release DeprecationWarning migration and are gone;
the spec-first front doors they pointed at are the only spellings."""

import pytest

from repro.analysis import erasure_degradation, run_sweep
from repro.graphs import hypercube
from repro.radio import DecayProtocol, run_broadcast, run_broadcast_batch
from repro.radio.hop_analysis import hop_time_study
from repro.radio.lower_bound import measure_chain_broadcast
from repro.radio.trace import run_broadcast_traced
from repro.runtime import plan_sweep


def _noop(seed):
    return seed


class TestLegacyKwargsRemoved:
    """The shims were one-release bridges; the old spellings now fail
    loudly as unknown keywords instead of silently re-seeding."""

    def test_rng_gone_everywhere(self):
        g = hypercube(3)
        with pytest.raises(TypeError, match="rng"):
            run_broadcast(g, DecayProtocol(), rng=0)
        with pytest.raises(TypeError, match="rng"):
            run_broadcast_batch(g, DecayProtocol(), trials=2, rng=0)
        with pytest.raises(TypeError, match="rng"):
            run_broadcast_traced(g, DecayProtocol(), rng=0)
        with pytest.raises(TypeError, match="rng"):
            run_sweep({"a": [1]}, _noop, rng=0)
        with pytest.raises(TypeError, match="rng"):
            plan_sweep({"a": [1]}, _noop, rng=0)
        with pytest.raises(TypeError, match="rng"):
            erasure_degradation([("h", hypercube(3))], [0.1], trials=1, rng=0)

    def test_chain_rng_gone(self):
        with pytest.raises(TypeError, match="chain_rng"):
            measure_chain_broadcast(2, 2, DecayProtocol(), seed=0, chain_rng=1)

    def test_channel_factory_gone(self):
        with pytest.raises(TypeError, match="channel_factory"):
            hop_time_study(
                2, 2, DecayProtocol, repetitions=2, seed=0,
                channel_factory=None)


class TestScenarioFrontDoors:
    def test_hop_time_study_scenario(self):
        from repro.scenario import Scenario

        sc = Scenario.from_string(
            "chain(2, 2) | decay | classic | seed=0 | trials=2")
        study = hop_time_study(scenario=sc, repetitions=4)
        legacy = hop_time_study(
            2, 2, DecayProtocol, repetitions=4, seed=0, trials_per_chain=2)
        assert (study.hop_times == legacy.hop_times).all()

    def test_hop_time_study_rejects_mixed_forms(self):
        from repro.scenario import Scenario

        sc = Scenario.from_string("chain(2, 2)")
        with pytest.raises(TypeError, match="not both"):
            hop_time_study(2, 2, DecayProtocol, scenario=sc)

    def test_hop_time_study_rejects_non_chain(self):
        from repro.scenario import Scenario

        with pytest.raises(ValueError, match="chain-family"):
            hop_time_study(scenario=Scenario.from_string("hypercube(4)"))

    def test_hop_time_study_honours_scenario_max_rounds(self):
        from repro.scenario import Scenario

        sc = Scenario.from_string(
            "chain(2, 2) | round-robin | classic | max_rounds=3")
        # round-robin needs ~n rounds per hop; a 3-round cap cannot finish,
        # so the study's completion check must trip — proving the cap
        # actually reached the engine.
        with pytest.raises(RuntimeError, match="did not complete"):
            hop_time_study(scenario=sc, repetitions=2)

    def test_hop_time_study_rejects_scenario_source(self):
        from repro.scenario import Scenario

        sc = Scenario.from_string("chain(2, 2) | decay | classic | source=1")
        with pytest.raises(ValueError, match="chain root"):
            hop_time_study(scenario=sc, repetitions=2)

    def test_hop_time_study_rejects_scenario_workload(self):
        from repro.scenario import Scenario

        sc = Scenario.from_string("chain(2, 2) | decay | gossip(k=2)")
        with pytest.raises(ValueError, match="chain root"):
            hop_time_study(scenario=sc, repetitions=2)

    def test_erasure_degradation_spec_families(self):
        points = erasure_degradation(
            [("cube", "hypercube(4)")], [0.0, 0.2], trials=2, seed=0)
        assert len(points) == 2
        # p=0 erasure is bit-for-bit the classic baseline (anchor invariant).
        assert points[0].slowdown == 1.0
        assert (points[0].batch.rounds == points[0].baseline.rounds).all()
