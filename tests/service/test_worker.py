"""Worker execution: cold runs, warm cache replays, and the
kill → lease-expiry → resume-from-checkpoint path, bit-for-bit."""

import time

import numpy as np
import pytest

from repro.obs.metrics import METRICS
from repro.runtime.store import ResultStore
from repro.scenario import Scenario
from repro.service import JobQueue, Worker
from repro.service.worker import shard_checkpoint_key, shard_plan

SPEC = (
    "margulis(4) | decay | erasure(0.1) | gossip(k=4) "
    "| trials=10 | max_rounds=12 | seed=5"
)


def assert_batches_equal(a, b):
    assert a.trials == b.trials
    np.testing.assert_array_equal(a.rounds, b.rounds)
    np.testing.assert_array_equal(a.completed, b.completed)
    np.testing.assert_array_equal(a.informed_per_round, b.informed_per_round)
    np.testing.assert_array_equal(a.first_informed_round, b.first_informed_round)
    np.testing.assert_array_equal(a.transmissions, b.transmissions)


class TestShardPlan:
    def test_plan_covers_all_trials_contiguously(self):
        sc = Scenario.from_string(SPEC)
        plan = shard_plan(sc, shard_trials=4)
        assert [len(chunk) for chunk in plan] == [4, 4, 2]
        # The concatenated plan is exactly the serial engine's seed order.
        from repro._util import as_rng, spawn_seeds

        protocol_seed, _ = sc.seeds
        expected = [int(s) for s in spawn_seeds(as_rng(protocol_seed), sc.trials)]
        assert [s for chunk in plan for s in chunk] == expected

    def test_bad_shard_trials(self):
        with pytest.raises(ValueError, match="shard_trials"):
            shard_plan(Scenario.from_string(SPEC), shard_trials=0)


class TestColdExecution:
    def test_cold_job_runs_to_done(self, queue, store, worker):
        record, _ = queue.submit(SPEC)
        assert worker.run_once() == record.id
        done = queue.get(record.id)
        assert done.state == "done"
        assert done.cache_hit is False
        assert done.progress_done == done.progress_total == 10
        kinds = [kind for _, _, kind, _ in queue.events_since(record.id)]
        assert kinds.count("shard") == 3
        assert kinds[-2:] == ["result", "done"]

    def test_result_matches_direct_run_bit_for_bit(self, queue, store, worker):
        record, _ = queue.submit(SPEC)
        worker.run_once()
        sc = Scenario.from_string(SPEC)
        stored = store.get(store.scenario_key(sc))
        assert_batches_equal(stored, sc.run())

    def test_checkpoints_are_dropped_after_completion(
        self, queue, store, worker
    ):
        record, _ = queue.submit(SPEC)
        worker.run_once()
        sc = Scenario.from_string(SPEC)
        plan = shard_plan(sc, worker.shard_trials)
        for index, seeds in enumerate(plan):
            key = shard_checkpoint_key(store, sc, index, len(plan), seeds)
            assert not store.contains(key)
        assert store.contains(store.scenario_key(sc))

    def test_engine_failure_fails_the_job(self, queue, store, worker):
        record, _ = queue.submit(SPEC)
        # Corrupt the stored spec under the job: the queue validated it at
        # submit, but the worker re-parses — a poisoned row must land in
        # `failed` with the parse message, not crash the worker loop.
        with queue._tx() as con:
            con.execute(
                "UPDATE jobs SET spec='margulis(0) | decay' WHERE id=?",
                (record.id,),
            )
        worker.run_once()
        failed = queue.get(record.id)
        assert failed.state == "failed"
        assert "side must be positive" in failed.error


class TestWarmExecution:
    def test_warm_job_is_pure_cache_replay(self, tmp_path, store):
        # Run once against queue A, then resubmit on a fresh queue sharing
        # the same store: the job completes as a cache hit, no recompute.
        queue_a = JobQueue(tmp_path / "a.db")
        queue_a.submit(SPEC)
        Worker(queue_a, store=store, shard_trials=4).run_once()

        queue_b = JobQueue(tmp_path / "b.db")
        record, _ = queue_b.submit(SPEC)
        hits = METRICS.get("service.jobs.cache_hits")
        computed = METRICS.get("service.shards.computed")
        Worker(queue_b, store=store, shard_trials=4).run_once()
        done = queue_b.get(record.id)
        assert done.state == "done"
        assert done.cache_hit is True
        assert METRICS.get("service.jobs.cache_hits") == hits + 1
        assert METRICS.get("service.shards.computed") == computed

    def test_terminal_dedupe_skips_the_queue_entirely(self, queue, store, worker):
        record, _ = queue.submit(SPEC)
        worker.run_once()
        again, created = queue.submit(SPEC)
        assert not created
        assert again.state == "done"


class TestKillAndResume:
    def test_killed_worker_resumes_from_checkpoint_bit_for_bit(
        self, tmp_path, store
    ):
        queue = JobQueue(tmp_path / "jobs.db")
        record, _ = queue.submit(SPEC)

        # Worker one dies (simulated kill) right after its first shard:
        # the checkpoint is in the store, the job still leased.
        victim = Worker(queue, store=store, lease_ttl=0.2, shard_trials=4)

        def die(rec, index, total):
            raise KeyboardInterrupt

        victim.after_shard = die
        with pytest.raises(KeyboardInterrupt):
            victim.run_once()
        assert queue.get(record.id).state == "running"

        # Until the lease lapses nobody can touch the job.
        rescuer = Worker(queue, store=store, lease_ttl=30.0, shard_trials=4)
        assert queue.lease(rescuer.worker_id, ttl=30.0) is None

        time.sleep(0.25)  # let the victim's lease expire
        resumed_before = METRICS.get("service.shards.resumed")
        assert rescuer.run_once() == record.id
        done = queue.get(record.id)
        assert done.state == "done"
        assert done.attempts == 2
        assert METRICS.get("service.shards.resumed") > resumed_before
        shard_events = [
            payload
            for _, _, kind, payload in queue.events_since(record.id)
            if kind == "shard"
        ]
        assert any(ev["resumed"] for ev in shard_events)

        # The acceptance bar: identical to a never-interrupted run.
        sc = Scenario.from_string(SPEC)
        assert_batches_equal(store.get(store.scenario_key(sc)), sc.run())

    def test_cancelled_job_is_abandoned_not_overwritten(self, queue, store):
        worker = Worker(queue, store=store, shard_trials=4)
        record, _ = queue.submit(SPEC)
        leased = queue.lease(worker.worker_id, ttl=30.0)
        queue.cancel(record.id)
        lost = METRICS.get("service.jobs.lost")
        worker.execute(leased)  # first heartbeat fails -> JobLost
        assert queue.get(record.id).state == "cancelled"
        assert METRICS.get("service.jobs.lost") == lost + 1


class TestWorkerLoop:
    def test_run_drains_the_queue_and_idles_out(self, queue, store):
        queue.submit(SPEC)
        queue.submit("hypercube(3) | decay | trials=4 | max_rounds=10")
        worker = Worker(queue, store=store, shard_trials=4,
                        poll_interval=0.01)
        assert worker.run(idle_timeout=0.05) == 2
        assert queue.depth() == 0
        assert worker.jobs_done == 2

    def test_constructor_validation(self, queue):
        with pytest.raises(ValueError, match="lease_ttl"):
            Worker(queue, lease_ttl=0)
        with pytest.raises(ValueError, match="shard_trials"):
            Worker(queue, shard_trials=0)


def test_store_paths_accepted(tmp_path):
    # Workers accept bare paths for both queue and store (the spawn-process
    # entry point passes paths, never live handles).
    worker = Worker(tmp_path / "q.db", store=tmp_path / "cache")
    assert isinstance(worker.queue, JobQueue)
    assert isinstance(worker.store, ResultStore)
