"""The structured error surface: one fixture table of invalid specs,
asserted byte-identical across both transports — the HTTP 400 JSON body
and the CLI — against the library's own eager-validation message."""

import pytest

from repro.cli import main
from repro.scenario import Scenario
from repro.service import ServiceError

#: (spec, fragment) — the fragment pins *which* validation fired; the
#: tests below assert the full message is identical everywhere.
INVALID_SPECS = [
    ("margulis(0) | decay", "side must be positive"),
    ("chain(0, 3) | decay", "s must be positive"),
    (
        "hypercube(3) | decay | erasure(0.1) | erasure(0.9)",
        "duplicate channel segment",
    ),
    ("hypercube(3) | decay | trials=0", "trials must be >= 1"),
    ("hypercube(3) | decay | seed=-1", "seed must be a non-negative integer"),
    (
        "hypercube(3) | decay | erasure(1.5)",
        "erasure probability must lie in [0, 1]",
    ),
    ("hypercube(3) | decay | trials=soon", "must be an integer"),
]


def canonical_message(spec: str) -> str:
    """What ``Scenario.from_string`` itself says about the spec."""
    with pytest.raises((ValueError, TypeError)) as err:
        Scenario.from_string(spec)
    return str(err.value)


@pytest.mark.parametrize("spec,fragment", INVALID_SPECS)
def test_http_error_body_carries_the_validation_message(
    client, spec, fragment
):
    expected = canonical_message(spec)
    assert fragment in expected  # the table stays honest
    with pytest.raises(ServiceError) as err:
        client.submit(spec)
    assert err.value.status == 400
    assert str(err.value) == expected
    assert err.value.payload["error"] == expected
    assert err.value.payload["spec"] == spec


@pytest.mark.parametrize("spec,fragment", INVALID_SPECS)
def test_cli_submit_prints_the_same_message(
    server, capsys, spec, fragment
):
    expected = canonical_message(spec)
    code = main(["submit", spec, "--url", server.url])
    captured = capsys.readouterr()
    assert code == 1
    assert captured.err.strip() == f"error: {expected}"


def test_nothing_is_enqueued_for_invalid_specs(client, queue):
    for spec, _ in INVALID_SPECS:
        with pytest.raises(ServiceError):
            client.submit(spec)
    assert queue.depth() == 0
    assert client.jobs() == []


def test_unreachable_service_is_a_clean_client_error():
    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
    with pytest.raises(ServiceError, match="cannot reach"):
        client.healthz()
