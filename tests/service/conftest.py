"""Shared fixtures for the experiment-service tests: a tmp-backed queue
and store, a worker wired to both, and a live server on an ephemeral
port with its client."""

from __future__ import annotations

import threading

import pytest

from repro.runtime.store import ResultStore
from repro.service import JobQueue, ServiceClient, Worker, create_server

#: The suite's canonical small job — fast (tiny graph, capped rounds) but
#: wide enough (10 trials over 4-trial shards) to exercise checkpointing.
SPEC = (
    "margulis(4) | decay | erasure(0.1) | gossip(k=4) "
    "| trials=10 | max_rounds=12 | seed=5"
)


@pytest.fixture
def queue(tmp_path) -> JobQueue:
    return JobQueue(tmp_path / "jobs.db")


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "cache")


@pytest.fixture
def worker(queue, store) -> Worker:
    return Worker(queue, store=store, lease_ttl=30.0, shard_trials=4)


@pytest.fixture
def server(queue):
    srv = create_server(queue, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


@pytest.fixture
def client(server) -> ServiceClient:
    return ServiceClient(server.url, timeout=30.0)
