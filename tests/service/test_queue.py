"""JobQueue: schema migrations, idempotent submission, and the
queued → running → done/failed state machine under leases."""

import sqlite3

import pytest

from repro.runtime.store import scenario_key
from repro.scenario import Scenario
from repro.service import JOB_STATES, SCHEMA_VERSION, TERMINAL_STATES, JobQueue
from repro.service.queue import _MIGRATIONS

SPEC = (
    "margulis(4) | decay | erasure(0.1) | gossip(k=4) "
    "| trials=10 | max_rounds=12 | seed=5"
)


class TestSchema:
    def test_fresh_database_is_current(self, queue):
        assert queue.schema_version() == SCHEMA_VERSION == len(_MIGRATIONS)

    def test_reopen_is_idempotent(self, tmp_path):
        path = tmp_path / "jobs.db"
        JobQueue(path).submit(SPEC)
        again = JobQueue(path)
        assert again.schema_version() == SCHEMA_VERSION
        assert len(again.list()) == 1

    def test_v1_database_migrates_forward(self, tmp_path):
        # Build a database as the v1 code would have left it: first
        # migration only, version stamp 1, one job row without cache_hit.
        path = tmp_path / "old.db"
        con = sqlite3.connect(path)
        for statement in _MIGRATIONS[0]:
            con.execute(statement)
        con.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
        con.execute("INSERT INTO meta VALUES ('schema_version', '1')")
        con.execute(
            "INSERT INTO jobs (id, scenario_key, spec, state, submitted_at) "
            "VALUES ('aaaa', 'aaaa0000', 'x | y', 'done', 0.0)"
        )
        con.commit()
        con.close()
        queue = JobQueue(path)
        assert queue.schema_version() == SCHEMA_VERSION
        record = queue.get("aaaa")
        assert record.state == "done"
        assert record.cache_hit is False  # backfilled default

    def test_newer_database_is_refused(self, tmp_path):
        path = tmp_path / "future.db"
        JobQueue(path)
        con = sqlite3.connect(path)
        con.execute("UPDATE meta SET value='99' WHERE key='schema_version'")
        con.commit()
        con.close()
        with pytest.raises(RuntimeError, match="newer"):
            JobQueue(path)


class TestSubmission:
    def test_submit_validates_eagerly(self, queue):
        with pytest.raises(ValueError, match="duplicate channel segment"):
            queue.submit("hypercube(3) | decay | erasure(0.1) | erasure(0.9)")
        assert queue.depth() == 0  # nothing touched the database

    def test_job_id_is_scenario_key_prefix(self, queue):
        record, created = queue.submit(SPEC)
        assert created
        key = scenario_key(Scenario.from_string(SPEC), salt=queue.salt)
        assert record.scenario_key == key
        assert record.id == key[:16]

    def test_spec_equal_submissions_dedupe(self, queue):
        first, created = queue.submit(SPEC)
        assert created
        # A different spelling of the same scenario (whitespace, segment
        # form) still content-addresses to the same row.
        second, created2 = queue.submit(Scenario.from_string(SPEC))
        assert not created2
        assert second.id == first.id
        assert len(queue.list()) == 1

    def test_resubmit_of_terminal_failure_requeues(self, queue):
        record, _ = queue.submit(SPEC)
        queue.lease("w1", ttl=30)
        queue.finish(record.id, "w1", error="boom")
        assert queue.get(record.id).state == "failed"
        requeued, created = queue.submit(SPEC)
        assert not created
        assert requeued.id == record.id
        assert requeued.state == "queued"
        assert requeued.error is None
        assert requeued.attempts == 0
        kinds = [kind for _, _, kind, _ in queue.events_since(record.id)]
        assert "resubmitted" in kinds


class TestStateMachine:
    def test_happy_path(self, queue):
        record, _ = queue.submit(SPEC)
        assert record.state == "queued"
        leased = queue.lease("w1", ttl=30)
        assert leased.id == record.id
        assert leased.state == "running"
        assert leased.worker == "w1"
        assert leased.attempts == 1
        assert queue.heartbeat(record.id, "w1", ttl=30,
                               progress_done=4, progress_total=10)
        assert queue.get(record.id).progress_done == 4
        assert queue.finish(record.id, "w1")
        done = queue.get(record.id)
        assert done.state == "done"
        assert done.lease_expires is None
        # A second finish is a no-op: ownership is gone.
        assert not queue.finish(record.id, "w1")

    def test_empty_queue_leases_nothing(self, queue):
        assert queue.lease("w1", ttl=30) is None

    def test_expired_lease_is_reclaimed(self, queue):
        record, _ = queue.submit(SPEC)
        queue.lease("w1", ttl=5, now=100.0)
        # Not yet expired: nothing to lease.
        assert queue.lease("w2", ttl=5, now=104.0) is None
        reclaimed = queue.lease("w2", ttl=5, now=106.0)
        assert reclaimed.id == record.id
        assert reclaimed.worker == "w2"
        assert reclaimed.attempts == 2
        # The dead worker's writes are refused.
        assert not queue.heartbeat(record.id, "w1", ttl=5, now=106.5)
        assert not queue.finish(record.id, "w1", now=106.5)
        kinds = [kind for _, _, kind, _ in queue.events_since(record.id)]
        assert "lease_expired" in kinds

    def test_max_attempts_fails_the_job(self, tmp_path):
        queue = JobQueue(tmp_path / "jobs.db", max_attempts=2)
        record, _ = queue.submit(SPEC)
        queue.lease("w1", ttl=1, now=0.0)
        queue.lease("w2", ttl=1, now=10.0)
        # Both leases burned; the next claim fails the job instead.
        assert queue.lease("w3", ttl=1, now=20.0) is None
        failed = queue.get(record.id)
        assert failed.state == "failed"
        assert "lease expired after 2 attempts" in failed.error

    def test_cancel(self, queue):
        record, _ = queue.submit(SPEC)
        assert queue.cancel(record.id)
        assert queue.get(record.id).state == "cancelled"
        assert not queue.cancel(record.id)  # already terminal
        with pytest.raises(KeyError):
            queue.cancel("no-such-job")

    def test_cancel_running_revokes_ownership(self, queue):
        record, _ = queue.submit(SPEC)
        queue.lease("w1", ttl=30)
        assert queue.cancel(record.id)
        assert not queue.heartbeat(record.id, "w1", ttl=30)

    def test_counts_and_depth(self, queue):
        assert queue.counts() == {state: 0 for state in JOB_STATES}
        record, _ = queue.submit(SPEC)
        queue.submit("hypercube(3) | decay | trials=4")
        queue.lease("w1", ttl=30)
        counts = queue.counts()
        assert counts["running"] == 1 and counts["queued"] == 1
        assert queue.depth() == 2
        queue.finish(record.id, "w1")
        assert queue.depth() == 1

    def test_list_filter_rejects_unknown_state(self, queue):
        with pytest.raises(ValueError, match="unknown job state"):
            queue.list("exploded")


class TestEvents:
    def test_sequence_is_monotonic_and_filterable(self, queue):
        record, _ = queue.submit(SPEC)
        queue.append_event(record.id, "shard", {"shard": 1})
        queue.append_event(record.id, "shard", {"shard": 2})
        events = queue.events_since(record.id)
        assert [seq for seq, _, _, _ in events] == list(range(len(events)))
        kinds = [kind for _, _, kind, _ in events]
        assert kinds[0] == "submitted"
        tail = queue.events_since(record.id, after_seq=events[-2][0])
        assert [kind for _, _, kind, _ in tail] == ["shard"]
        assert tail[0][3] == {"shard": 2}

    def test_terminal_states_are_job_states(self):
        assert set(TERMINAL_STATES) <= set(JOB_STATES)
