"""The service CLI verbs (`repro submit`, `repro jobs ...`) end-to-end
against a live in-process server."""

import threading

from repro.cli import main
from repro.service import Worker

SPEC = (
    "margulis(4) | decay | erasure(0.1) | gossip(k=4) "
    "| trials=10 | max_rounds=12 | seed=5"
)


def _run_worker(queue, store):
    thread = threading.Thread(
        target=lambda: Worker(queue, store=store, shard_trials=4,
                              poll_interval=0.01).run(max_jobs=1,
                                                      idle_timeout=10),
        daemon=True,
    )
    thread.start()
    return thread


class TestSubmitVerb:
    def test_submit_streams_to_done(self, server, queue, store, capsys):
        thread = _run_worker(queue, store)
        assert main(["submit", SPEC, "--url", server.url]) == 0
        thread.join(timeout=10)
        out = capsys.readouterr().out
        assert "created state=queued" in out
        assert "shard 3/3: 10/10 trials" in out
        assert "done in" in out

    def test_warm_resubmit_reports_cache_hit(self, server, queue, store, capsys):
        thread = _run_worker(queue, store)
        main(["submit", SPEC, "--url", server.url])
        thread.join(timeout=10)
        capsys.readouterr()
        assert main(["submit", SPEC, "--url", server.url]) == 0
        out = capsys.readouterr().out
        assert "deduplicated to state=done" in out
        assert "cache hit, no recompute" in out

    def test_no_stream_returns_immediately(self, server, capsys):
        assert main(["submit", SPEC, "--url", server.url, "--no-stream"]) == 0
        out = capsys.readouterr().out
        assert "created state=queued" in out
        assert "shard" not in out


class TestJobsVerbs:
    def test_list_show_cancel(self, server, capsys):
        main(["submit", SPEC, "--url", server.url, "--no-stream"])
        job_id = capsys.readouterr().out.split()[1]

        assert main(["jobs", "list", "--url", server.url]) == 0
        out = capsys.readouterr().out
        assert job_id in out and "queued" in out

        assert main(["jobs", "show", job_id, "--url", server.url]) == 0
        out = capsys.readouterr().out
        assert f'"id": "{job_id}"' in out
        assert '"state": "queued"' in out

        assert main(["jobs", "cancel", job_id, "--url", server.url]) == 0
        assert "cancelled" in capsys.readouterr().out
        assert main(["jobs", "cancel", job_id, "--url", server.url]) == 0
        assert "already cancelled" in capsys.readouterr().out

    def test_show_unknown_job_fails_cleanly(self, server, capsys):
        assert main(["jobs", "show", "feedfeedfeedfeed",
                     "--url", server.url]) == 1
        assert "no such job" in capsys.readouterr().err

    def test_list_state_filter(self, server, capsys):
        main(["submit", SPEC, "--url", server.url, "--no-stream"])
        capsys.readouterr()
        assert main(["jobs", "list", "--state", "done",
                     "--url", server.url]) == 0
        assert "jobs (0)" in capsys.readouterr().out
