"""End-to-end HTTP: submit → stream → done on an ephemeral port, plus
the metrics/health endpoints and job management over the wire."""

import threading

import pytest

from repro.service import ServiceError, Worker

SPEC = (
    "margulis(4) | decay | erasure(0.1) | gossip(k=4) "
    "| trials=10 | max_rounds=12 | seed=5"
)


class TestJobsEndpoint:
    def test_submit_created_then_deduped(self, client):
        job, created = client.submit(SPEC)
        assert created
        assert job["state"] == "queued"
        again, created2 = client.submit(SPEC)
        assert not created2
        assert again["id"] == job["id"]

    def test_get_job_and_list(self, client):
        job, _ = client.submit(SPEC)
        assert client.job(job["id"])["spec"] == job["spec"]
        assert [j["id"] for j in client.jobs()] == [job["id"]]
        assert client.jobs("queued")[0]["id"] == job["id"]
        assert client.jobs("done") == []

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.job("beefbeefbeefbeef")
        assert err.value.status == 404
        assert "no such job" in str(err.value)

    def test_bad_state_filter_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.jobs("exploded")
        assert err.value.status == 400

    def test_cancel_over_http(self, client):
        job, _ = client.submit(SPEC)
        payload = client.cancel(job["id"])
        assert payload["cancelled"] is True
        assert payload["job"]["state"] == "cancelled"
        assert client.cancel(job["id"])["cancelled"] is False

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404


class TestStream:
    def test_full_round_trip_submit_stream_done(self, client, queue, store):
        job, _ = client.submit(SPEC)
        worker = Worker(queue, store=store, shard_trials=4,
                        poll_interval=0.01)
        thread = threading.Thread(
            target=lambda: worker.run(max_jobs=1, idle_timeout=10),
            daemon=True,
        )
        thread.start()
        events = list(client.stream(job["id"], timeout=30))
        thread.join(timeout=10)
        kinds = [kind for kind, _ in events]
        assert kinds[0] == "submitted"
        assert kinds[-1] == "done"
        shards = [payload for kind, payload in events if kind == "shard"]
        assert [s["trials_done"] for s in shards] == [4, 8, 10]
        assert all(s["trials"] == 10 for s in shards)
        result = next(payload for kind, payload in events if kind == "result")
        assert result["trials"] == 10
        assert result["cache_hit"] is False
        assert client.job(job["id"])["state"] == "done"

    def test_stream_of_finished_job_replays_history(
        self, client, queue, store
    ):
        job, _ = client.submit(SPEC)
        Worker(queue, store=store, shard_trials=4).run_once()
        events = list(client.stream(job["id"]))
        assert [kind for kind, _ in events][-1] == "done"

    def test_stream_timeout_on_idle_job(self, client):
        job, _ = client.submit(SPEC)  # no worker anywhere
        events = list(client.stream(job["id"], timeout=0.3))
        assert events[-1][0] == "timeout"
        assert events[-1][1]["state"] == "queued"

    def test_stream_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            list(client.stream("beefbeefbeefbeef"))
        assert err.value.status == 404


class TestHealthAndMetrics:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["ok"] is True
        assert payload["queue_depth"] == 0
        client.submit(SPEC)
        assert client.healthz()["queue_depth"] == 1

    def test_metrics_pools_registry_and_queue(self, client, queue, store):
        job, _ = client.submit(SPEC)
        Worker(queue, store=store, shard_trials=4).run_once()
        payload = client.metrics()
        assert payload["jobs"]["done"] == 1
        assert payload["queue_depth"] == 0
        assert payload["uptime_seconds"] > 0
        assert payload["jobs_per_second"] > 0
        # The process-wide registry is visible through the endpoint
        # (submission happened in the server process).
        assert payload["counters"].get("service.jobs.submitted", 0) >= 1

    def test_metrics_includes_spans_under_recording(self, client):
        from repro.obs.tracing import recording

        with recording():
            client.submit(SPEC)
            payload = client.metrics()
        assert "service.submit" in payload.get("spans", {})


class TestSubmissionBodies:
    def test_raw_text_body_is_a_spec(self, client, server):
        import urllib.request

        request = urllib.request.Request(
            server.url + "/jobs",
            data=SPEC.encode(),
            headers={"Content-Type": "text/plain"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 201

    def test_empty_body_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/jobs", {})
        assert err.value.status == 400
        assert "spec" in str(err.value)

    def test_non_string_spec_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/jobs", {"spec": 7})
        assert err.value.status == 400
