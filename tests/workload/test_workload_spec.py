"""WorkloadSpec view round-trips, registry coverage, and eager checks."""

import pickle

import pytest

from repro.scenario import Scenario
from repro.workload import (
    WORKLOADS,
    BroadcastWorkload,
    Workload,
    WorkloadSpec,
    as_workload,
)

#: One representative non-default spec string per registered workload.
REPRESENTATIVES = {
    "broadcast": "broadcast(source=3)",
    "gossip": "gossip(k=4)",
    "aggregate": "aggregate(op=count)",
    "pipeline": "pipeline(m=3, source=1)",
}


def test_registry_matches_representatives():
    assert set(WORKLOADS.names()) == set(REPRESENTATIVES)


class TestViewRoundTrips:
    @pytest.mark.parametrize("name", sorted(REPRESENTATIVES))
    def test_default_spec_round_trips(self, name):
        spec = WorkloadSpec(name)
        assert WorkloadSpec.from_string(spec.describe()) == spec
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert isinstance(spec.build(), Workload)

    @pytest.mark.parametrize("name", sorted(REPRESENTATIVES))
    def test_parameterized_spec_round_trips(self, name):
        spec = WorkloadSpec.from_string(REPRESENTATIVES[name])
        assert WorkloadSpec.from_string(spec.describe()) == spec
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec
        assert pickle.loads(pickle.dumps(spec)) == spec
        built = spec.build()
        assert built.name == name

    def test_dict_view_shape(self):
        spec = WorkloadSpec.from_string("gossip(k=4)")
        assert spec.to_dict() == {"name": "gossip", "kwargs": {"k": 4}}
        assert WorkloadSpec().to_dict() == {"name": "broadcast"}

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            WorkloadSpec.from_string("scatter(k=2)")


class TestAsWorkload:
    def test_coercions_agree(self):
        from_str = as_workload("gossip(k=4)")
        from_spec = as_workload(WorkloadSpec.from_string("gossip(k=4)"))
        from_dict = as_workload({"name": "gossip", "kwargs": {"k": 4}})
        assert from_str.k == from_spec.k == from_dict.k == 4
        instance = BroadcastWorkload(source=2)
        assert as_workload(instance) is instance

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="workload must be"):
            as_workload(42)


class TestEagerParameterChecks:
    """Bad parameters die at parse/validate time, before any build."""

    @pytest.mark.parametrize(
        ("text", "match"),
        [
            ("gossip(k=0)", "k"),
            ("gossip(k=2, source=1)", "only supported"),
            ("broadcast(source=-1)", "vertex id"),
            ("aggregate(op='median')", "aggregate op"),
            ("pipeline(m=0)", "m"),
        ],
    )
    def test_bad_params_fail_at_validate(self, text, match):
        with pytest.raises(ValueError, match=match):
            WorkloadSpec.from_string(text).validate()

    def test_every_registered_workload_has_a_check(self):
        for name in WORKLOADS.names():
            assert WORKLOADS.get(name).check is not None, (
                f"{name} registered without check")


class TestScenarioIntegration:
    def test_workload_segment_round_trips_through_scenario(self):
        sc = Scenario.from_string(
            "margulis(8) | decay | erasure(0.1) | gossip(k=16)")
        assert sc.workload == WorkloadSpec.from_string("gossip(k=16)")
        assert Scenario.from_string(sc.describe()) == sc
        assert Scenario.from_dict(sc.to_dict()) == sc
        assert pickle.loads(pickle.dumps(sc)) == sc
        assert "gossip(k=16)" in sc.describe()

    def test_default_workload_invisible_in_views(self):
        """Pre-workload broadcast specs serialize (and so hash) the same."""
        sc = Scenario.from_string("hypercube(4) | decay | classic")
        assert sc.workload == WorkloadSpec()
        assert "workload" not in sc.to_dict()
        assert "broadcast" not in sc.describe()

    def test_scenario_key_stable_across_views(self):
        from repro.runtime.store import scenario_key

        sc = Scenario.from_string(
            "chain(4, 2) | decay | classic | gossip(k=2) | trials=4")
        k = scenario_key(sc)
        assert scenario_key(Scenario.from_string(sc.describe())) == k
        assert scenario_key(Scenario.from_dict(sc.to_dict())) == k
        assert scenario_key(pickle.loads(pickle.dumps(sc))) == k
        # ...and the workload is part of the identity.
        other = sc.with_overrides({"workload": "gossip(k=3)"})
        assert scenario_key(other) != k

    def test_source_alias_canonicalizes(self):
        sc = Scenario.from_string("hypercube(4) | decay | classic | source=2")
        assert sc.source is None
        assert sc.workload.describe() == "broadcast(source=2)"
        assert sc.build().source == 2

    def test_source_with_sourceful_workload_names_both_fields(self):
        with pytest.raises(ValueError) as exc:
            Scenario.from_string(
                "hypercube(4) | decay | classic | gossip(k=2) | source=2")
        msg = str(exc.value)
        assert "source=2" in msg and "gossip(k=2)" in msg

    def test_source_with_pinned_broadcast_names_both_fields(self):
        with pytest.raises(ValueError, match="one place"):
            Scenario.from_string(
                "hypercube(4) | decay | broadcast(source=1) | source=2")

    def test_jamming_value_workload_rejected_at_validate(self):
        with pytest.raises(ValueError, match="exactly-one-neighbour"):
            Scenario.from_string(
                'hypercube(4) | decay | jamming("jam@0-9:0,1") '
                "| aggregate(op=max)")

    def test_workload_override_on_sweep_axis(self):
        base = Scenario.from_string("hypercube(4) | decay | classic")
        sc = base.with_overrides({"workload": "gossip(k=4)"})
        assert sc.workload.describe() == "gossip(k=4)"
        # Overriding source resets a source-only broadcast workload.
        pinned = base.with_overrides({"source": 3})
        assert pinned.workload.describe() == "broadcast(source=3)"
        repinned = pinned.with_overrides({"source": 1})
        assert repinned.workload.describe() == "broadcast(source=1)"
