"""Engine-level workload semantics: equivalences, extras, and fallbacks."""

import numpy as np
import pytest

from repro.graphs import hypercube, random_regular
from repro.radio import DecayProtocol, run_broadcast_batch
from repro.scenario import Scenario

FIELDS = (
    "rounds",
    "completed",
    "informed_per_round",
    "first_informed_round",
    "transmissions",
)


def batches_equal(a, b):
    return all(np.array_equal(getattr(a, f), getattr(b, f)) for f in FIELDS)


@pytest.fixture(scope="module")
def cube():
    return hypercube(5)


class TestBroadcastEquivalence:
    """The `broadcast` workload IS the pre-workload engine, bit for bit."""

    @pytest.mark.parametrize("engine", ["dense", "bitset"])
    def test_workload_matches_legacy(self, cube, engine):
        legacy = run_broadcast_batch(
            cube, DecayProtocol(), trials=8, seed=7, engine=engine)
        via = run_broadcast_batch(
            cube, DecayProtocol(), trials=8, seed=7, engine=engine,
            workload="broadcast")
        assert batches_equal(legacy, via)
        assert via.extras == {}

    def test_pinned_source_matches_legacy_source(self, cube):
        legacy = run_broadcast_batch(
            cube, DecayProtocol(), trials=4, seed=7, source=5)
        via = run_broadcast_batch(
            cube, DecayProtocol(), trials=4, seed=7,
            workload="broadcast(source=5)")
        assert batches_equal(legacy, via)

    def test_source_kwarg_rejected_with_explicit_workload(self, cube):
        with pytest.raises(ValueError, match="broadcast\\(source=3\\)"):
            run_broadcast_batch(
                cube, DecayProtocol(), trials=2, seed=0, source=3,
                workload="gossip(k=2)")


class TestGossip:
    def test_dense_bitset_identical_with_extras(self):
        g = random_regular(128, 8, rng=0)
        dense = run_broadcast_batch(
            g, DecayProtocol(), trials=8, seed=3, engine="dense",
            workload="gossip(k=4)")
        bitset = run_broadcast_batch(
            g, DecayProtocol(), trials=8, seed=3, engine="bitset",
            workload="gossip(k=4)")
        assert batches_equal(dense, bitset)
        assert np.array_equal(
            dense.extras["sources"], bitset.extras["sources"])
        assert dense.extras["sources"].shape == (4, 8)

    def test_k1_pinned_reduces_to_broadcast(self, cube):
        broadcast = run_broadcast_batch(
            cube, DecayProtocol(), trials=6, seed=11)
        gossip = run_broadcast_batch(
            cube, DecayProtocol(), trials=6, seed=11,
            workload="gossip(k=1, source=0)")
        assert batches_equal(broadcast, gossip)

    def test_all_sources_finish_instantly(self, cube):
        n = cube.n
        batch = run_broadcast_batch(
            cube, DecayProtocol(), trials=3, seed=0,
            workload=f"gossip(k={n})")
        assert (batch.rounds == 0).all()
        assert batch.completed.all()
        assert (batch.first_informed_round == 0).all()

    def test_sources_are_distinct_per_trial(self, cube):
        batch = run_broadcast_batch(
            cube, DecayProtocol(), trials=16, seed=5,
            workload="gossip(k=6)")
        src = batch.extras["sources"]
        for t in range(src.shape[1]):
            assert len(set(src[:, t].tolist())) == 6

    def test_sharded_run_identical_including_extras(self, cube):
        kwargs = dict(trials=12, seed=9, workload="gossip(k=3)")
        whole = run_broadcast_batch(cube, DecayProtocol(), **kwargs)
        sharded = run_broadcast_batch(
            cube, DecayProtocol(), memory_budget=40_000, **kwargs)
        assert batches_equal(whole, sharded)
        assert np.array_equal(
            whole.extras["sources"], sharded.extras["sources"])


class TestAggregate:
    def test_max_converges_exactly(self, cube):
        batch = run_broadcast_batch(
            cube, DecayProtocol(), trials=4, seed=2,
            workload="aggregate(op=max)")
        assert batch.completed.all()
        assert (batch.extras["truth"] == cube.n - 1).all()
        assert (batch.extras["estimate"] == float(cube.n - 1)).all()

    def test_count_sketch_estimates_n(self, cube):
        batch = run_broadcast_batch(
            cube, DecayProtocol(), trials=8, seed=2,
            workload="aggregate(op=count)")
        assert batch.completed.all()
        assert (batch.extras["truth"] == cube.n).all()
        est = batch.extras["estimate"]
        # Every estimate is a power of two (2**max_level) and positive.
        assert (est > 0).all()
        assert (np.exp2(np.round(np.log2(est))) == est).all()

    def test_bitset_request_falls_back_to_dense(self, cube):
        with pytest.warns(RuntimeWarning, match="falling back to dense"):
            batch = run_broadcast_batch(
                cube, DecayProtocol(), trials=2, seed=0, engine="bitset",
                workload="aggregate(op=max)")
        assert batch.completed.all()

    def test_jamming_rejected_at_engine(self, cube):
        from repro.radio.channel import AdversarialJamming

        with pytest.raises(ValueError, match="exactly-one-neighbour"):
            run_broadcast_batch(
                cube, DecayProtocol(), trials=2, seed=0,
                channel=AdversarialJamming("jam@0-9:0,1"),
                workload="aggregate(op=max)")


class TestPipeline:
    def test_m1_is_broadcast(self, cube):
        broadcast = run_broadcast_batch(
            cube, DecayProtocol(), trials=6, seed=13)
        pipe = run_broadcast_batch(
            cube, DecayProtocol(), trials=6, seed=13,
            workload="pipeline(m=1)")
        assert batches_equal(broadcast, pipe)

    def test_streaming_costs_more_rounds_than_one_message(self, cube):
        one = run_broadcast_batch(
            cube, DecayProtocol(), trials=4, seed=13,
            workload="pipeline(m=1)")
        four = run_broadcast_batch(
            cube, DecayProtocol(), trials=4, seed=13,
            workload="pipeline(m=4)")
        assert four.completed.all()
        assert (four.rounds >= one.rounds).all()
        assert (four.rounds > one.rounds).any()


class TestScenarioFrontDoor:
    def test_spec_run_matches_engine_call(self):
        sc = Scenario.from_string(
            "hypercube(5) | decay | classic | gossip(k=4) "
            "| trials=6 | seed=3")
        via_spec = sc.run()
        direct = run_broadcast_batch(
            hypercube(5), DecayProtocol(), trials=6, seed=3,
            workload="gossip(k=4)")
        assert batches_equal(via_spec, direct)
        assert np.array_equal(
            via_spec.extras["sources"], direct.extras["sources"])
