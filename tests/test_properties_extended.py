"""Second wave of hypothesis property tests: schedules, certificates,
batched kernels, and the threshold-partition family."""


import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.expansion import wireless_certificate, wireless_expansion_of_set_exact
from repro.graphs import BipartiteGraph, Graph
from repro.radio import synthesize_broadcast_schedule, synthesize_layer_schedule
from repro.spokesman import (
    nonisolated_right_count,
    spokesman_threshold_partition,
    threshold_population,
)

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def bipartite_graphs(draw, max_left=8, max_right=12):
    n_left = draw(st.integers(1, max_left))
    n_right = draw(st.integers(1, max_right))
    pairs = draw(
        st.sets(
            st.tuples(st.integers(0, n_left - 1), st.integers(0, n_right - 1)),
            max_size=min(40, n_left * n_right),
        )
    )
    return BipartiteGraph(n_left, n_right, sorted(pairs))


@st.composite
def connected_graphs(draw, max_n=10):
    """Random connected graph: a random spanning tree plus extra edges."""
    n = draw(st.integers(2, max_n))
    edges = set()
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        edges.add((parent, v))
    extra = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda t: t[0] < t[1]
            ),
            max_size=n,
        )
    )
    edges |= extra
    return Graph(n, sorted(edges))


class TestScheduleProperties:
    @settings(max_examples=25, **COMMON)
    @given(bipartite_graphs())
    def test_layer_schedule_always_covers(self, gs):
        slots = synthesize_layer_schedule(gs)
        covered = ~(gs.right_degrees >= 1)
        for slot in slots:
            covered |= gs.uniquely_covered(slot)
        assert covered.all()

    @settings(max_examples=25, **COMMON)
    @given(connected_graphs())
    def test_broadcast_schedule_verifies(self, g):
        schedule = synthesize_broadcast_schedule(g, source=0)
        ok, informed = schedule.verify(g)
        assert ok
        # Length floor: BFS depth.
        assert schedule.length >= g.eccentricity(0)


class TestCertificateProperties:
    @settings(max_examples=20, **COMMON)
    @given(connected_graphs(max_n=9), st.data())
    def test_certificate_brackets_exact(self, g, data):
        size = data.draw(st.integers(1, g.n - 1))
        gen = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        subset = np.sort(gen.choice(g.n, size=size, replace=False))
        cert = wireless_certificate(g, subset, rng=gen)
        exact, _ = wireless_expansion_of_set_exact(g, subset)
        assert cert.lower - 1e-9 <= exact <= cert.upper + 1e-9


class TestBatchProperties:
    @settings(max_examples=25, **COMMON)
    @given(bipartite_graphs(), st.integers(0, 2**31 - 1))
    def test_batch_equals_scalar(self, gs, seed):
        gen = np.random.default_rng(seed)
        batch = gen.random((6, gs.n_left)) < 0.5
        uniques = gs.unique_cover_counts_batch(batch)
        for i in range(6):
            assert uniques[i] == gs.unique_cover_count(batch[i])


class TestThresholdProperties:
    @settings(max_examples=30, **COMMON)
    @given(bipartite_graphs(), st.floats(min_value=1.1, max_value=16.0))
    def test_population_and_guarantee(self, gs, t):
        gamma = nonisolated_right_count(gs)
        if gamma == 0:
            return
        deg = gs.right_degrees
        delta = float(deg[deg >= 1].mean())
        pop = threshold_population(gs, t)
        m = int(pop.sum())
        # Markov: at least (1 − 1/t)·γ survive the threshold.
        assert m >= (1 - 1 / t) * gamma - 1e-9
        result = spokesman_threshold_partition(gs, t)
        assert result.unique_count >= m / (2 * t * delta) - 1e-9
