"""The python -m repro command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_int_list_parsing(self):
        args = build_parser().parse_args(["core", "--sizes", "2,4,8"])
        assert args.sizes == [2, 4, 8]

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])


class TestCommands:
    def test_core(self, capsys):
        assert main(["core", "--sizes", "2,4"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 4.4" in out
        assert "max_unique" in out

    def test_gbad(self, capsys):
        assert main(["gbad", "--s", "4", "--deltas", "4"]) == 0
        out = capsys.readouterr().out
        assert "Gbad" in out

    def test_spokesman_core(self, capsys):
        assert main(["spokesman", "--instance", "core", "--s", "8"]) == 0
        out = capsys.readouterr().out
        assert "EXACT" in out
        assert "recursive" in out

    def test_spokesman_random(self, capsys):
        assert main(["spokesman", "--instance", "random", "--s", "10"]) == 0
        assert "spokesman election" in capsys.readouterr().out

    def test_broadcast(self, capsys):
        assert main(
            ["broadcast", "--s", "4", "--layers", "2,3", "--reps", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Decay rounds" in out
        assert "fit:" in out

    def test_hops(self, capsys):
        assert main(["hops", "--s", "4", "--layers", "3", "--reps", "3"]) == 0
        out = capsys.readouterr().out
        assert "per-hop rounds" in out

    def test_schedule(self, capsys):
        assert main(["schedule", "--graph", "hypercube", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert "verified: True" in out

    def test_schedule_reps_average(self, capsys):
        assert main(["schedule", "--graph", "hypercube", "--size", "4",
                     "--reps", "3"]) == 0
        out = capsys.readouterr().out
        assert "over 3 runs" in out

    def test_worstcase(self, capsys):
        assert main(
            ["worstcase", "--n", "256", "--delta", "64", "--beta", "2.0",
             "--eps", "0.45"]
        ) == 0
        out = capsys.readouterr().out
        assert "gap" in out


class TestChannelFlags:
    def test_broadcast_erasure(self, capsys):
        assert main(
            ["broadcast", "--s", "4", "--layers", "2,3", "--reps", "2",
             "--trials", "8", "--channel", "erasure", "--erasure-p", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "channel=erasure" in out

    def test_broadcast_jamming_with_faults(self, capsys):
        assert main(
            ["broadcast", "--s", "4", "--layers", "2", "--reps", "1",
             "--trials", "4", "--channel", "jamming",
             "--faults", "jam@0-2:1,2"]
        ) == 0
        assert "channel=jamming" in capsys.readouterr().out

    def test_hops_collision_detection_alias(self, capsys):
        assert main(
            ["hops", "--s", "4", "--layers", "3", "--reps", "4",
             "--trials", "2", "--channel", "cd"]
        ) == 0
        assert "channel=cd" in capsys.readouterr().out

    def test_channels_table(self, capsys):
        assert main(
            ["channels", "--n", "64", "--trials", "8",
             "--erasure-ps", "0.0,0.2"]
        ) == 0
        out = capsys.readouterr().out
        assert "E15" in out
        assert "expander" in out and "chain" in out

    def test_unknown_channel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["broadcast", "--channel", "telepathy"]
            )


class TestUniformExecFlags:
    # Every simulation subcommand exposes the same --seed/--jobs pair.
    COMMANDS = {
        "broadcast": [],
        "hops": [],
        "schedule": [],
        "channels": [],
        "sweep": [],
        "spokesman": [],  # --seed only (single-instance election)
        "worstcase": [],  # --seed only
    }

    def test_seed_flag_everywhere(self):
        parser = build_parser()
        for cmd in self.COMMANDS:
            args = parser.parse_args([cmd, "--seed", "42"])
            assert args.seed == 42, cmd

    def test_jobs_flag_on_runtime_commands(self):
        parser = build_parser()
        for cmd in ("broadcast", "hops", "schedule", "channels", "sweep"):
            args = parser.parse_args([cmd, "--jobs", "3"])
            assert args.jobs == 3, cmd
        assert parser.parse_args(["run", "E16", "--jobs", "2"]).jobs == 2

    def test_jobs_defaults_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        args = build_parser().parse_args(["broadcast"])
        assert args.jobs == 5

    def test_broadcast_with_jobs_matches_serial(self, capsys):
        argv = ["broadcast", "--s", "4", "--layers", "2,3", "--reps", "2",
                "--trials", "4"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
