"""The python -m repro command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_int_list_parsing(self):
        args = build_parser().parse_args(["core", "--sizes", "2,4,8"])
        assert args.sizes == [2, 4, 8]

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_service_verbs_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--port", "9001", "--workers", "3", "--queue", "q.db"])
        assert (args.port, args.workers, args.queue) == (9001, 3, "q.db")
        args = parser.parse_args(
            ["submit", "hypercube(3) | decay", "--url", "http://h:1",
             "--no-stream"])
        assert args.spec == "hypercube(3) | decay"
        assert args.url == "http://h:1"
        assert args.no_stream
        assert parser.parse_args(["jobs", "list", "--state", "done"]).state == "done"
        assert parser.parse_args(["jobs", "show", "abcd"]).id == "abcd"
        assert parser.parse_args(["jobs", "cancel", "abcd"]).id == "abcd"
        with pytest.raises(SystemExit):  # jobs requires a sub-verb
            parser.parse_args(["jobs"])


class TestCommands:
    def test_core(self, capsys):
        assert main(["core", "--sizes", "2,4"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 4.4" in out
        assert "max_unique" in out

    def test_gbad(self, capsys):
        assert main(["gbad", "--s", "4", "--deltas", "4"]) == 0
        out = capsys.readouterr().out
        assert "Gbad" in out

    def test_spokesman_core(self, capsys):
        assert main(["spokesman", "--instance", "core", "--s", "8"]) == 0
        out = capsys.readouterr().out
        assert "EXACT" in out
        assert "recursive" in out

    def test_spokesman_random(self, capsys):
        assert main(["spokesman", "--instance", "random", "--s", "10"]) == 0
        assert "spokesman election" in capsys.readouterr().out

    def test_broadcast(self, capsys):
        assert main(
            ["broadcast", "--s", "4", "--layers", "2,3", "--reps", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Decay rounds" in out
        assert "fit:" in out

    def test_hops(self, capsys):
        assert main(["hops", "--s", "4", "--layers", "3", "--reps", "3"]) == 0
        out = capsys.readouterr().out
        assert "per-hop rounds" in out

    def test_schedule(self, capsys):
        assert main(["schedule", "--graph", "hypercube", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert "verified: True" in out

    def test_schedule_reps_average(self, capsys):
        assert main(["schedule", "--graph", "hypercube", "--size", "4",
                     "--reps", "3"]) == 0
        out = capsys.readouterr().out
        assert "over 3 runs" in out

    def test_worstcase(self, capsys):
        assert main(
            ["worstcase", "--n", "256", "--delta", "64", "--beta", "2.0",
             "--eps", "0.45"]
        ) == 0
        out = capsys.readouterr().out
        assert "gap" in out


class TestChannelFlags:
    def test_broadcast_erasure(self, capsys):
        assert main(
            ["broadcast", "--s", "4", "--layers", "2,3", "--reps", "2",
             "--trials", "8", "--channel", "erasure", "--erasure-p", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "channel=erasure" in out

    def test_broadcast_jamming_with_faults(self, capsys):
        assert main(
            ["broadcast", "--s", "4", "--layers", "2", "--reps", "1",
             "--trials", "4", "--channel", "jamming",
             "--faults", "jam@0-2:1,2"]
        ) == 0
        assert "channel=jamming" in capsys.readouterr().out

    def test_hops_collision_detection_alias(self, capsys):
        assert main(
            ["hops", "--s", "4", "--layers", "3", "--reps", "4",
             "--trials", "2", "--channel", "cd"]
        ) == 0
        assert "channel=cd" in capsys.readouterr().out

    def test_channels_table(self, capsys):
        assert main(
            ["channels", "--n", "64", "--trials", "8",
             "--erasure-ps", "0.0,0.2"]
        ) == 0
        out = capsys.readouterr().out
        assert "E15" in out
        assert "expander" in out and "chain" in out

    def test_unknown_channel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["broadcast", "--channel", "telepathy"]
            )


class TestScenarioFlags:
    # The uniform --scenario/-S builder shared by every simulation verb.
    def test_scenario_flags_everywhere(self):
        parser = build_parser()
        for cmd in ("broadcast", "hops", "channels", "sweep", "expansion"):
            args = parser.parse_args(
                [cmd, "--scenario", "chain(4, 2)", "-S", "trials=4"])
            assert args.scenario == "chain(4, 2)", cmd
            assert args.scenario_set == ["trials=4"], cmd

    def test_broadcast_scenario_single_run(self, capsys):
        assert main(
            ["broadcast", "--scenario", "hypercube(4) | decay | classic",
             "-S", "trials=4", "-S", "seed=3", "--reps", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "scenario broadcast" in out
        assert "hypercube(4)" in out

    def test_broadcast_preset_name(self, capsys):
        assert main(
            ["broadcast", "--scenario", "sweep-smoke", "--reps", "1"]
        ) == 0
        # The preset is a chain scenario, so the rich chain table renders.
        out = capsys.readouterr().out
        assert "scenario broadcast" in out
        assert "D·log2(n/D)" in out

    def test_broadcast_set_channel_override(self, capsys):
        assert main(
            ["broadcast", "--s", "4", "--layers", "2", "--reps", "1",
             "-S", "channel=erasure(0.2)", "-S", "trials=4"]
        ) == 0
        assert "channel=erasure(0.2)" in capsys.readouterr().out

    def test_hops_scenario(self, capsys):
        assert main(
            ["hops", "--scenario", "chain(4, 3) | decay | classic",
             "--reps", "3"]
        ) == 0
        assert "per-hop rounds" in capsys.readouterr().out

    def test_hops_rejects_non_chain_scenario(self):
        with pytest.raises(SystemExit):
            main(["hops", "--scenario", "hypercube(4)"])
        # A chain spec with too few arguments gets the same clean error.
        with pytest.raises(SystemExit):
            main(["hops", "--scenario", "chain(4)"])

    def test_set_graph_override_respected_without_scenario_flag(self, capsys):
        # -S graph=... must not be clobbered by the legacy --layers grid.
        assert main(
            ["broadcast", "-S", "graph=hypercube(4)", "-S", "trials=2",
             "--reps", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "scenario broadcast" in out
        assert "hypercube(4)" in out

    def test_explicit_seed_flag_beats_scenario_baked_seed(self, capsys):
        argv = ["broadcast", "--scenario",
                "chain(4, 2) | decay | classic | seed=5", "--reps", "2"]
        assert main(argv + ["--seed", "7"]) == 0
        explicit = capsys.readouterr().out
        assert main(["broadcast", "--scenario", "chain(4, 2) | decay | "
                     "classic | seed=7", "--reps", "2"]) == 0
        baked = capsys.readouterr().out
        assert explicit == baked

    def test_bad_override_rejected(self):
        with pytest.raises(SystemExit):
            main(["broadcast", "-S", "frobnicate=1"])
        with pytest.raises(SystemExit):
            main(["broadcast", "-S", "no-equals"])

    def test_channels_scenario_family(self, capsys):
        assert main(
            ["channels", "--n", "64", "--trials", "4",
             "--erasure-ps", "0.0,0.2",
             "--scenario", "hypercube(6) | decay | classic | trials=4"]
        ) == 0
        out = capsys.readouterr().out
        assert "hypercube" in out and "chain" in out

    def test_channels_explicit_seed_beats_baked_seed(self, capsys):
        spec = "hypercube(5) | decay | classic | trials=4"
        assert main(["channels", "--erasure-ps", "0.2",
                     "--scenario", f"{spec} | seed=5", "--seed", "7"]) == 0
        explicit = capsys.readouterr().out
        assert main(["channels", "--erasure-ps", "0.2",
                     "--scenario", f"{spec} | seed=7"]) == 0
        assert explicit == capsys.readouterr().out

    def test_channels_rejects_channel_override(self):
        with pytest.raises(SystemExit):
            main(["channels", "-S", "channel=erasure(0.5)"])

    def test_hops_explicit_seed_beats_baked_seed(self, capsys):
        spec = "chain(4, 3) | decay | classic"
        assert main(["hops", "--scenario", f"{spec} | seed=5",
                     "--seed", "7", "--reps", "3"]) == 0
        explicit = capsys.readouterr().out
        assert main(["hops", "--scenario", f"{spec} | seed=7",
                     "--reps", "3"]) == 0
        assert explicit == capsys.readouterr().out

    def test_bad_scenario_scalar_is_clean_error(self):
        with pytest.raises(SystemExit):
            main(["broadcast", "--scenario", "chain(4, 2) | trials=none"])
        with pytest.raises(SystemExit):
            main(["hops", "--scenario", "chain(4, 2) | source=1",
                  "--reps", "2"])

    def test_bad_graph_override_fails_before_running(self):
        # Eager Scenario.validate: the out-of-domain family parameter is a
        # clean SystemExit at resolution time, not a mid-sweep crash.
        with pytest.raises(SystemExit):
            main(["broadcast", "-S", "graph=erdos_renyi(10, 1.5)"])
        with pytest.raises(SystemExit):
            main(["sweep", "-S", "graph=chain(0, 3)"])


class TestExpansionCommand:
    def test_table_and_cache_counters(self, capsys, tmp_path):
        argv = ["expansion", "-S", "graph=margulis(3)",
                "-E", "sampled(samples=10)", "--seed", "1",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "wireless expansion of margulis(3)" in cold
        assert "beta_w" in cold
        assert "cache: 0 hits, 1 misses" in cold
        # Warm rerun must be a pure replay with identical numbers.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache: 1 hits, 0 misses" in warm
        assert cold.splitlines()[:-1] == warm.splitlines()[:-1]

    def test_multiple_estimators(self, capsys, tmp_path):
        assert main(
            ["expansion", "-S", "graph=hypercube(4)",
             "-E", "sampled(samples=10)", "-E", "exact(max_set_bits=16)",
             "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "upper" in out and "exact" in out

    def test_jobs_matches_serial(self, capsys, tmp_path):
        argv = ["expansion", "-S", "graph=margulis(3)",
                "-E", "sampled(samples=10)"]
        assert main(argv + ["--cache-dir", str(tmp_path / "a")]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--cache-dir", str(tmp_path / "b"),
                            "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        # Same table rows; only the jobs= banner differs.
        assert serial.splitlines()[1:-1] == parallel.splitlines()[1:-1]

    def test_bad_estimator_rejected(self):
        with pytest.raises(SystemExit):
            main(["expansion", "-E", "magic"])

    def test_estimator_domain_error_is_clean(self, tmp_path):
        # exact on a graph wider than max_set_bits must be a clean
        # SystemExit, not a raw ValueError traceback.
        with pytest.raises(SystemExit, match="cannot run"):
            main(["expansion", "-E", "exact",
                  "--cache-dir", str(tmp_path)])


class TestScenariosCommand:
    def test_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for marker in ("graph families", "protocols", "channels",
                       "expansion estimators", "named scenarios",
                       "chain-decay", "hypercube", "experiment-bound"):
            assert marker in out, marker

    def test_show_preset(self, capsys):
        assert main(["scenarios", "show", "sweep-smoke"]) == 0
        out = capsys.readouterr().out
        assert "chain(4, 2) | decay | classic | trials=4" in out
        assert "cache key:" in out

    def test_show_spec_string(self, capsys):
        assert main(
            ["scenarios", "show", "hypercube(4) | decay | erasure(0.1)"]
        ) == 0
        out = capsys.readouterr().out
        assert "n=16" in out
        assert "deterministic graph" in out

    def test_show_experiment_id(self, capsys):
        assert main(["scenarios", "show", "E15"]) == 0
        assert "random_regular(256, 8)" in capsys.readouterr().out

    def test_show_unknown(self, capsys):
        assert main(["scenarios", "show", "no-such-thing("]) == 1
        assert "error" in capsys.readouterr().err


class TestUniformExecFlags:
    # Every simulation subcommand exposes the same --seed/--jobs pair.
    COMMANDS = {
        "broadcast": [],
        "hops": [],
        "schedule": [],
        "channels": [],
        "sweep": [],
        "expansion": [],
        "spokesman": [],  # --seed only (single-instance election)
        "worstcase": [],  # --seed only
    }

    def test_seed_flag_everywhere(self):
        parser = build_parser()
        for cmd in self.COMMANDS:
            args = parser.parse_args([cmd, "--seed", "42"])
            assert args.seed == 42, cmd

    def test_jobs_flag_on_runtime_commands(self):
        parser = build_parser()
        for cmd in ("broadcast", "hops", "schedule", "channels", "sweep",
                    "expansion"):
            args = parser.parse_args([cmd, "--jobs", "3"])
            assert args.jobs == 3, cmd
        assert parser.parse_args(["run", "E16", "--jobs", "2"]).jobs == 2

    def test_jobs_defaults_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        args = build_parser().parse_args(["broadcast"])
        assert args.jobs == 5

    def test_broadcast_with_jobs_matches_serial(self, capsys):
        argv = ["broadcast", "--s", "4", "--layers", "2,3", "--reps", "2",
                "--trials", "4"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
