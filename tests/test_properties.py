"""Cross-module property-based tests (hypothesis).

These encode the paper's structural invariants as universally-quantified
properties over random instances — the safety net underneath the
per-module unit tests.
"""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.expansion import (
    bipartite_subset_profile,
    max_unique_coverage_exact,
    mg_bound,
    unique_expansion_exact,
    vertex_expansion_exact,
    wireless_expansion_exact,
)
from repro.graphs import BipartiteGraph, Graph
from repro.radio import RadioNetwork
from repro.spokesman import (
    evaluate_subset,
    nonisolated_right_count,
    procedure_partition,
    spokesman_degree_classes,
    spokesman_exact,
    spokesman_greedy_add,
    spokesman_naive_greedy,
    spokesman_partition,
    spokesman_recursive,
    spokesman_sampling,
)

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def bipartite_graphs(draw, max_left=8, max_right=12):
    n_left = draw(st.integers(1, max_left))
    n_right = draw(st.integers(1, max_right))
    pairs = draw(
        st.sets(
            st.tuples(st.integers(0, n_left - 1), st.integers(0, n_right - 1)),
            max_size=min(40, n_left * n_right),
        )
    )
    return BipartiteGraph(n_left, n_right, sorted(pairs))


@st.composite
def graphs(draw, max_n=10):
    n = draw(st.integers(2, max_n))
    pairs = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda t: t[0] < t[1]
            ),
            max_size=n * (n - 1) // 2,
        )
    )
    return Graph(n, sorted(pairs))


class TestExpansionOrdering:
    @settings(max_examples=25, **COMMON)
    @given(graphs(max_n=9))
    def test_observation_21(self, g):
        """β ≥ βw ≥ βu for every graph and α."""
        b, _ = vertex_expansion_exact(g, 0.5)
        bw, _ = wireless_expansion_exact(g, 0.5)
        bu, _ = unique_expansion_exact(g, 0.5)
        assert b + 1e-12 >= bw >= bu - 1e-12

    @settings(max_examples=25, **COMMON)
    @given(graphs(max_n=9))
    def test_lemma32_universal(self, g):
        """βu ≥ 2β − Δ holds for every graph."""
        if g.max_degree == 0:
            return
        b, _ = vertex_expansion_exact(g, 0.5)
        bu, _ = unique_expansion_exact(g, 0.5)
        assert bu >= 2 * b - g.max_degree - 1e-9


class TestSpokesmanAlgorithms:
    @settings(max_examples=30, **COMMON)
    @given(bipartite_graphs())
    def test_no_algorithm_beats_exact(self, gs):
        opt = spokesman_exact(gs).unique_count
        for algo in (
            spokesman_naive_greedy,
            spokesman_partition,
            spokesman_degree_classes,
            spokesman_recursive,
            spokesman_greedy_add,
        ):
            assert algo(gs).unique_count <= opt

    @settings(max_examples=30, **COMMON)
    @given(bipartite_graphs())
    def test_deterministic_guarantees(self, gs):
        gamma = nonisolated_right_count(gs)
        if gamma == 0:
            return
        deg = gs.right_degrees
        delta = float(deg[deg >= 1].mean())
        assert (
            spokesman_naive_greedy(gs).unique_count
            >= gamma / gs.max_left_degree - 1e-9
        )
        assert (
            spokesman_partition(gs).unique_count >= gamma / (8 * delta) - 1e-9
        )
        assert (
            spokesman_recursive(gs).unique_count
            >= gamma / (9 * math.log2(2 * delta)) - 1e-9
        )

    @settings(max_examples=25, **COMMON)
    @given(bipartite_graphs(), st.integers(0, 2**31 - 1))
    def test_sampling_valid_and_bounded(self, gs, seed):
        res = spokesman_sampling(gs, rng=seed)
        assert 0 <= res.unique_count <= gs.n_right
        assert (res.subset >= 0).all() and (res.subset < gs.n_left).all()
        # Re-evaluating the same subset reproduces the reported count.
        again = evaluate_subset(gs, res.subset, "recheck")
        assert again.unique_count == res.unique_count

    @settings(max_examples=25, **COMMON)
    @given(bipartite_graphs())
    def test_exact_equals_profile_max(self, gs):
        prof = bipartite_subset_profile(gs)
        assert spokesman_exact(gs).unique_count == int(prof.unique_counts.max())


class TestPartitionInvariants:
    @settings(max_examples=40, **COMMON)
    @given(bipartite_graphs())
    def test_p1_to_p4(self, gs):
        state = procedure_partition(gs)
        assert state.check_invariants(gs) == []

    @settings(max_examples=25, **COMMON)
    @given(bipartite_graphs(), st.integers(0, 2**31 - 1))
    def test_invariants_under_restriction(self, gs, seed):
        gen = np.random.default_rng(seed)
        mask = gen.random(gs.n_right) < 0.5
        state = procedure_partition(gs, mask)
        assert state.check_invariants(gs) == []


class TestRadioSemantics:
    @settings(max_examples=30, **COMMON)
    @given(graphs(max_n=12), st.integers(0, 2**31 - 1))
    def test_step_equals_reference(self, g, seed):
        net = RadioNetwork(g)
        gen = np.random.default_rng(seed)
        t = gen.random(g.n) < 0.4
        assert (net.step(t) == net.step_naive(t)).all()

    @settings(max_examples=25, **COMMON)
    @given(graphs(max_n=10))
    def test_single_transmitter_reaches_exactly_neighbors(self, g):
        net = RadioNetwork(g)
        t = np.zeros(g.n, dtype=bool)
        t[0] = True
        received = net.step(t)
        assert set(np.flatnonzero(received)) == set(g.neighbors(0).tolist())


class TestWirelessCoverageStructure:
    @settings(max_examples=25, **COMMON)
    @given(bipartite_graphs())
    def test_exact_wireless_dominates_every_subset(self, gs):
        best, witness = max_unique_coverage_exact(gs)
        assert gs.unique_cover_count(witness) == best
        # Spot-check domination on the full set and singletons.
        assert best >= gs.unique_cover_count(np.arange(gs.n_left))
        for u in range(gs.n_left):
            assert best >= gs.unique_cover_count(np.array([u]))

    @settings(max_examples=20, **COMMON)
    @given(bipartite_graphs(max_left=6, max_right=8))
    def test_mg_guarantee_never_exceeds_exact(self, gs):
        """MG is a valid guarantee: γ·MG(δ) ≤ optimum (else the paper's
        bound would be contradicted)."""
        gamma = nonisolated_right_count(gs)
        if gamma == 0:
            return
        deg = gs.right_degrees
        delta = float(deg[deg >= 1].mean())
        opt = spokesman_exact(gs).unique_count
        assert gamma * mg_bound(max(delta, 1.0)) <= opt + 1e-9
