"""Exact spokesman solver."""

import itertools

import numpy as np
import pytest

from repro.graphs import BipartiteGraph, random_bipartite
from repro.spokesman import spokesman_exact


class TestExact:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        gen = np.random.default_rng(700 + seed)
        gs = random_bipartite(7, 10, 0.35, rng=gen)
        result = spokesman_exact(gs)
        brute = max(
            gs.unique_cover_count(np.array(sub, dtype=np.int64))
            for k in range(8)
            for sub in itertools.combinations(range(7), k)
        )
        assert result.unique_count == brute

    def test_witness_achieves_optimum(self, tiny_bipartite):
        result = spokesman_exact(tiny_bipartite)
        assert (
            tiny_bipartite.unique_cover_count(result.subset)
            == result.unique_count
        )

    def test_rejects_wide_instances(self):
        gs = BipartiteGraph(23, 1, [(i, 0) for i in range(23)])
        with pytest.raises(ValueError):
            spokesman_exact(gs)

    def test_empty(self):
        gs = BipartiteGraph(3, 3, [])
        assert spokesman_exact(gs).unique_count == 0
