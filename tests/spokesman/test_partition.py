"""Procedure Partition: the (P1)-(P4) invariants and Lemma A.3."""

import numpy as np
import pytest

from repro.graphs import core_graph, gbad, random_bipartite
from repro.spokesman import (
    nonisolated_right_count,
    procedure_partition,
    spokesman_partition,
)
from repro.spokesman.partition import EXCLUDED, MANY, TMP, UNI


class TestInvariants:
    def test_fixed_graph(self, tiny_bipartite):
        state = procedure_partition(tiny_bipartite)
        assert state.check_invariants(tiny_bipartite) == []

    @pytest.mark.parametrize("seed", range(12))
    def test_random_graphs(self, seed):
        gen = np.random.default_rng(seed)
        gs = random_bipartite(9, 14, float(gen.uniform(0.1, 0.7)), rng=gen)
        state = procedure_partition(gs)
        assert state.check_invariants(gs) == [], (seed, state)

    @pytest.mark.parametrize("s", [4, 8, 16])
    def test_core_graphs(self, s):
        gs = core_graph(s)
        state = procedure_partition(gs)
        assert state.check_invariants(gs) == []

    def test_right_restriction_respected(self, tiny_bipartite):
        mask = np.array([True, True, False, False, True])
        state = procedure_partition(tiny_bipartite, mask)
        assert (state.labels[~mask] == EXCLUDED).all()

    def test_isolated_right_excluded(self):
        from repro.graphs import BipartiteGraph

        g = BipartiteGraph(2, 3, [(0, 0), (1, 0)])
        state = procedure_partition(g)
        assert state.labels[1] == EXCLUDED
        assert state.labels[2] == EXCLUDED

    def test_labels_partition_managed(self, tiny_bipartite):
        state = procedure_partition(tiny_bipartite)
        managed = state.labels != EXCLUDED
        assert set(state.labels[managed].tolist()) <= {TMP, UNI, MANY}

    def test_p3_globally(self, tiny_bipartite):
        state = procedure_partition(tiny_bipartite)
        assert state.n_uni.size >= state.n_many.size


class TestLemmaA3:
    @pytest.mark.parametrize("seed", range(10))
    def test_guarantee_random(self, seed):
        gen = np.random.default_rng(100 + seed)
        gs = random_bipartite(10, 16, float(gen.uniform(0.15, 0.6)), rng=gen)
        gamma = nonisolated_right_count(gs)
        if gamma == 0:
            return
        deg = gs.right_degrees
        delta = float(deg[deg >= 1].mean())
        result = spokesman_partition(gs)
        assert result.unique_count >= gamma / (8 * delta) - 1e-9

    @pytest.mark.parametrize("s", [4, 8, 16, 32])
    def test_guarantee_core_graph(self, s):
        gs = core_graph(s)
        gamma = gs.n_right
        delta = gs.avg_right_degree
        result = spokesman_partition(gs)
        assert result.unique_count >= gamma / (8 * delta) - 1e-9

    def test_guarantee_gbad(self):
        gs = gbad(8, 6, 4)
        result = spokesman_partition(gs)
        delta = gs.avg_right_degree
        assert result.unique_count >= gs.n_right / (8 * delta) - 1e-9

    def test_empty_graph(self):
        from repro.graphs import BipartiteGraph

        gs = BipartiteGraph(3, 3, [])
        result = spokesman_partition(gs)
        assert result.unique_count == 0
