"""Lemma A.1 naive greedy: trace semantics and the γ/Δ_S guarantee."""

import numpy as np
import pytest

from repro.graphs import BipartiteGraph, core_graph, random_bipartite
from repro.spokesman import (
    naive_greedy_trace,
    nonisolated_right_count,
    spokesman_naive_greedy,
)


class TestTrace:
    def test_certified_set_is_uniquely_covered(self, tiny_bipartite):
        s_uni, n_uni, steps = naive_greedy_trace(tiny_bipartite)
        counts = tiny_bipartite.cover_counts(s_uni)
        assert (counts[n_uni] == 1).all()

    @pytest.mark.parametrize("seed", range(10))
    def test_certified_set_random(self, seed):
        gen = np.random.default_rng(seed)
        gs = random_bipartite(8, 12, float(gen.uniform(0.15, 0.6)), rng=gen)
        s_uni, n_uni, steps = naive_greedy_trace(gs)
        if s_uni.size == 0:
            return
        counts = gs.cover_counts(s_uni)
        assert (counts[n_uni] == 1).all()
        assert n_uni.size >= steps  # at least one N_uni vertex per step

    def test_star_takes_one_step(self):
        # One left vertex covering everything.
        gs = BipartiteGraph(1, 6, [(0, j) for j in range(6)])
        s_uni, n_uni, steps = naive_greedy_trace(gs)
        assert steps == 1
        assert s_uni.tolist() == [0]
        assert n_uni.size == 6


class TestGuarantee:
    @pytest.mark.parametrize("seed", range(15))
    def test_gamma_over_delta_s(self, seed):
        gen = np.random.default_rng(200 + seed)
        gs = random_bipartite(9, 13, float(gen.uniform(0.1, 0.7)), rng=gen)
        gamma = nonisolated_right_count(gs)
        if gamma == 0 or gs.max_left_degree == 0:
            return
        result = spokesman_naive_greedy(gs)
        assert result.unique_count >= gamma / gs.max_left_degree - 1e-9

    @pytest.mark.parametrize("s", [4, 8, 16])
    def test_core_graph(self, s):
        gs = core_graph(s)
        result = spokesman_naive_greedy(gs)
        assert result.unique_count >= gs.n_right / gs.max_left_degree - 1e-9

    def test_disjoint_stars_optimal(self):
        # Two disjoint stars: greedy must pick both centres.
        gs = BipartiteGraph(2, 6, [(0, j) for j in range(3)] + [(1, j) for j in range(3, 6)])
        result = spokesman_naive_greedy(gs)
        assert result.unique_count == 6

    def test_empty(self):
        gs = BipartiteGraph(3, 3, [])
        result = spokesman_naive_greedy(gs)
        assert result.unique_count == 0
