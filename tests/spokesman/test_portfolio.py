"""Portfolio solver and the Corollary A.16 MG guarantee."""

import numpy as np
import pytest

from repro.expansion import mg_bound
from repro.graphs import cycle_graph, random_bipartite
from repro.spokesman import (
    DETERMINISTIC_ALGORITHMS,
    RANDOMIZED_ALGORITHMS,
    nonisolated_right_count,
    spokesman_exact,
    spokesman_portfolio,
    wireless_lower_bound_of_set,
)


class TestPortfolio:
    def test_runs_all_algorithms(self, core8):
        best, results = spokesman_portfolio(core8, rng=0)
        expected = set(DETERMINISTIC_ALGORITHMS) | set(RANDOMIZED_ALGORITHMS)
        assert set(results) == expected
        assert best.unique_count == max(r.unique_count for r in results.values())

    def test_include_filter(self, core8):
        best, results = spokesman_portfolio(core8, rng=0, include=["partition"])
        assert set(results) == {"partition"}

    def test_unknown_include_raises(self, core8):
        with pytest.raises(ValueError):
            spokesman_portfolio(core8, rng=0, include=["nope"])

    @pytest.mark.parametrize("seed", range(10))
    def test_mg_guarantee(self, seed):
        gen = np.random.default_rng(800 + seed)
        gs = random_bipartite(10, 14, float(gen.uniform(0.15, 0.6)), rng=gen)
        gamma = nonisolated_right_count(gs)
        if gamma == 0:
            return
        deg = gs.right_degrees
        delta = float(deg[deg >= 1].mean())
        best, _ = spokesman_portfolio(gs, rng=gen)
        assert best.unique_count >= gamma * mg_bound(max(delta, 1.0)) - 1e-9

    @pytest.mark.parametrize("seed", range(6))
    def test_never_beats_exact(self, seed):
        gen = np.random.default_rng(900 + seed)
        gs = random_bipartite(8, 12, 0.35, rng=gen)
        best, _ = spokesman_portfolio(gs, rng=gen)
        assert best.unique_count <= spokesman_exact(gs).unique_count


class TestWirelessLowerBoundOfSet:
    def test_cycle_arc(self):
        g = cycle_graph(12)
        ratio, result = wireless_lower_bound_of_set(g, [0, 1, 2], rng=0)
        # The two arc endpoints uniquely cover their outside neighbours.
        assert ratio >= 2 / 3 - 1e-9
        assert set(result.subset.tolist()) <= {0, 1, 2}

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            wireless_lower_bound_of_set(cycle_graph(5), [], rng=0)

    def test_lower_bounds_exact(self):
        from repro.expansion import wireless_expansion_of_set_exact

        g = cycle_graph(10)
        subset = [0, 1, 2, 3]
        lb, _ = wireless_lower_bound_of_set(g, subset, rng=1)
        exact, _ = wireless_expansion_of_set_exact(g, subset)
        assert lb <= exact + 1e-9
