"""Lemma 4.2/4.3 randomized sampling algorithm."""

import numpy as np
import pytest

from repro.graphs import BipartiteGraph, core_graph, random_bipartite
from repro.spokesman import (
    largest_degree_class,
    lemma43_reduction,
    spokesman_sampling,
    spokesman_sampling_all_scales,
)


class TestLargestDegreeClass:
    def test_uniform_degrees_single_class(self):
        gs = BipartiteGraph(4, 6, [(i % 4, j) for j in range(6) for i in [j, j + 1]])
        j, members = largest_degree_class(gs)
        assert j == 1  # all degrees are 2 -> class [2, 4)
        assert members.size == 6

    def test_core_graph_class(self):
        gs = core_graph(16)
        j, members = largest_degree_class(gs)
        # Class sizes are s per level for degrees s/2^i <= 2δ_N; the class
        # chosen must be one of the eligible levels.
        assert members.size >= 16

    def test_empty_raises(self):
        gs = BipartiteGraph(2, 2, [])
        with pytest.raises(ValueError):
            largest_degree_class(gs)


class TestLemma43Reduction:
    def test_output_expansion_at_least_one(self):
        # β < 1 instance: many left, few right.
        gen = np.random.default_rng(5)
        gs = random_bipartite(20, 8, 0.3, rng=gen)
        induced, left_ids = lemma43_reduction(gs)
        assert induced.n_left <= induced.n_right or induced.n_right == 0
        assert left_ids.size == induced.n_left

    def test_left_ids_valid(self):
        gen = np.random.default_rng(6)
        gs = random_bipartite(15, 6, 0.4, rng=gen)
        induced, left_ids = lemma43_reduction(gs)
        assert (left_ids < gs.n_left).all()
        # Each kept vertex must actually have edges.
        assert (induced.left_degrees >= 1).all()

    def test_covers_n_prime(self):
        gen = np.random.default_rng(7)
        gs = random_bipartite(12, 5, 0.5, rng=gen)
        induced, _ = lemma43_reduction(gs)
        if induced.n_right:
            # By construction S'' covers all of N'.
            assert induced.cover_count(np.arange(induced.n_left)) == induced.n_right


class TestSampling:
    def test_deterministic_given_seed(self, core8):
        a = spokesman_sampling(core8, rng=42)
        b = spokesman_sampling(core8, rng=42)
        assert a.unique_count == b.unique_count
        assert (a.subset == b.subset).all()

    @pytest.mark.parametrize("s", [8, 16, 32])
    def test_expected_guarantee_core(self, s):
        # E[payoff] = Ω(γ/log 2δ_N); with 16 trials the best draw should
        # clear a conservative e^{-3}/4 fraction of the largest class.
        gs = core_graph(s)
        result = spokesman_sampling(gs, rng=1, trials=16)
        _j, members = largest_degree_class(gs)
        floor = np.exp(-3) / 4 * members.size
        assert result.unique_count >= floor

    def test_low_beta_path(self):
        # β < 1: must route through the Lemma 4.3 reduction and still work.
        gen = np.random.default_rng(9)
        gs = random_bipartite(24, 8, 0.25, rng=gen)
        result = spokesman_sampling(gs, rng=2, trials=16)
        assert result.unique_count >= 1
        assert (result.subset < 24).all()

    def test_empty_graph(self):
        gs = BipartiteGraph(3, 3, [])
        assert spokesman_sampling(gs, rng=0).unique_count == 0

    def test_all_scales_dominates_trials(self, core8):
        single = spokesman_sampling(core8, rng=3, trials=4)
        multi = spokesman_sampling_all_scales(core8, rng=3, trials_per_scale=4)
        # Not a theorem, but with shared seeds and more scales the all-scale
        # variant should do at least as well on the core graph.
        assert multi.unique_count >= single.unique_count
