"""Corollary A.8 / Lemma A.11 threshold-parameterized Partition."""

import numpy as np
import pytest

from repro.graphs import BipartiteGraph, core_graph, random_bipartite
from repro.spokesman import (
    nonisolated_right_count,
    spokesman_partition,
    spokesman_threshold_partition,
    spokesman_threshold_sweep,
    threshold_population,
)


class TestThresholdPopulation:
    def test_markov_fraction(self):
        for seed in range(6):
            gen = np.random.default_rng(seed)
            gs = random_bipartite(10, 20, 0.3, rng=gen)
            gamma = nonisolated_right_count(gs)
            if gamma == 0:
                continue
            for t in (1.5, 2.0, 4.0):
                kept = int(threshold_population(gs, t).sum())
                assert kept >= (1 - 1 / t) * gamma - 1e-9

    def test_monotone_in_t(self, core8):
        sizes = [
            int(threshold_population(core8, t).sum()) for t in (1.2, 2.0, 8.0)
        ]
        assert sizes[0] <= sizes[1] <= sizes[2]

    def test_rejects_bad_threshold(self, core8):
        with pytest.raises(ValueError):
            threshold_population(core8, 1.0)

    def test_empty_graph(self):
        gs = BipartiteGraph(2, 3, [])
        assert not threshold_population(gs, 2.0).any()


class TestThresholdPartition:
    @pytest.mark.parametrize("t", [1.5, 2.0, 3.0, 8.0])
    @pytest.mark.parametrize("seed", range(5))
    def test_guarantee(self, t, seed):
        gen = np.random.default_rng(1000 + seed)
        gs = random_bipartite(10, 16, 0.3, rng=gen)
        deg = gs.right_degrees
        noniso = deg >= 1
        if not noniso.any():
            return
        delta = float(deg[noniso].mean())
        m = int(threshold_population(gs, t).sum())
        result = spokesman_threshold_partition(gs, t)
        assert result.unique_count >= m / (2 * t * delta) - 1e-9

    def test_t2_matches_lemma_a3_choice(self, core8):
        # t = 2 manages exactly the N^{2δ} population of Lemma A.3.
        a = spokesman_threshold_partition(core8, 2.0)
        b = spokesman_partition(core8)
        assert a.unique_count == b.unique_count

    def test_empty(self):
        gs = BipartiteGraph(3, 3, [])
        assert spokesman_threshold_partition(gs).unique_count == 0


class TestThresholdSweep:
    def test_dominates_single_thresholds(self, core8):
        sweep = spokesman_threshold_sweep(core8)
        for t in (1.5, 2.0, 3.0, 4.0, 8.0):
            assert (
                sweep.unique_count
                >= spokesman_threshold_partition(core8, t).unique_count
            )

    def test_core_graph_payoff(self):
        gs = core_graph(32)
        sweep = spokesman_threshold_sweep(gs)
        # Large thresholds admit the full population; payoff beats A.3's.
        assert sweep.unique_count >= spokesman_partition(gs).unique_count

    def test_deterministic(self, core8):
        a = spokesman_threshold_sweep(core8)
        b = spokesman_threshold_sweep(core8)
        assert (a.subset == b.subset).all()
