"""Local-search baseline."""

import numpy as np
import pytest

from repro.graphs import BipartiteGraph, core_graph, random_bipartite
from repro.spokesman import spokesman_exact, spokesman_greedy_add


class TestGreedyAdd:
    def test_local_optimum_no_improving_move(self):
        gen = np.random.default_rng(2)
        gs = random_bipartite(8, 12, 0.3, rng=gen)
        result = spokesman_greedy_add(gs)
        base = result.unique_count
        member = np.zeros(gs.n_left, dtype=bool)
        member[result.subset] = True
        for u in range(gs.n_left):
            flipped = member.copy()
            flipped[u] = ~flipped[u]
            assert gs.unique_cover_count(np.flatnonzero(flipped)) <= base

    @pytest.mark.parametrize("seed", range(8))
    def test_never_beats_exact(self, seed):
        gen = np.random.default_rng(600 + seed)
        gs = random_bipartite(9, 12, 0.35, rng=gen)
        assert (
            spokesman_greedy_add(gs).unique_count
            <= spokesman_exact(gs).unique_count
        )

    def test_core_graph_hits_optimum(self):
        # Hill climbing finds the single-leaf optimum on core graphs.
        s = 32
        result = spokesman_greedy_add(core_graph(s))
        assert result.unique_count == 2 * s - 1

    def test_disjoint_stars(self):
        gs = BipartiteGraph(
            3, 9, [(i, 3 * i + j) for i in range(3) for j in range(3)]
        )
        assert spokesman_greedy_add(gs).unique_count == 9

    def test_empty(self):
        gs = BipartiteGraph(3, 3, [])
        assert spokesman_greedy_add(gs).unique_count == 0

    def test_deterministic(self, core8):
        a = spokesman_greedy_add(core8)
        b = spokesman_greedy_add(core8)
        assert (a.subset == b.subset).all()
