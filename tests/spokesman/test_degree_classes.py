"""Lemma A.5 / Corollaries A.6-A.7 degree-class algorithm."""

import math

import numpy as np
import pytest

from repro.expansion import OPTIMAL_DEGREE_CLASS_BASE, degree_class_guarantee
from repro.graphs import BipartiteGraph, core_graph, random_bipartite
from repro.spokesman import (
    degree_class_members,
    nonisolated_right_count,
    spokesman_degree_classes,
)


class TestClassMembers:
    def test_classes_partition_nonisolated(self, core8):
        classes = degree_class_members(core8, 2.0)
        all_members = np.concatenate([m for _, m in classes])
        assert sorted(all_members.tolist()) == list(range(core8.n_right))

    def test_class_boundaries(self):
        gs = BipartiteGraph(
            8, 4, [(i, 0) for i in range(1)] + [(i, 1) for i in range(2)]
            + [(i, 2) for i in range(4)] + [(i, 3) for i in range(8)]
        )
        classes = dict(degree_class_members(gs, 2.0))
        # deg 1 -> class 1; deg 2 -> class 2; deg 4 -> class 3; deg 8 -> 4.
        assert classes[1].tolist() == [0]
        assert classes[2].tolist() == [1]
        assert classes[3].tolist() == [2]
        assert classes[4].tolist() == [3]

    def test_core_graph_classes_are_levels(self):
        # Core graph degrees are powers of two: with c = 2 each tree level
        # is its own class of exactly s vertices.
        s = 16
        classes = degree_class_members(core_graph(s), 2.0)
        assert all(m.size == s for _, m in classes)
        assert len(classes) == int(math.log2(2 * s))

    def test_rejects_bad_base(self, core8):
        with pytest.raises(ValueError):
            degree_class_members(core8, 1.0)

    def test_empty(self):
        gs = BipartiteGraph(2, 3, [])
        assert degree_class_members(gs, 2.0) == []


class TestGuarantee:
    @pytest.mark.parametrize("seed", range(12))
    def test_corollary_a6_random(self, seed):
        gen = np.random.default_rng(500 + seed)
        gs = random_bipartite(10, 14, float(gen.uniform(0.15, 0.6)), rng=gen)
        gamma = nonisolated_right_count(gs)
        deg = gs.right_degrees
        if gamma == 0:
            return
        delta_max = int(deg.max())
        result = spokesman_degree_classes(gs)
        if delta_max > 1:
            floor = degree_class_guarantee(gamma, delta_max)
            assert result.unique_count >= floor - 1e-9
        else:
            assert result.unique_count >= 1

    @pytest.mark.parametrize("s", [8, 16, 32])
    @pytest.mark.parametrize("c", [2.0, OPTIMAL_DEGREE_CLASS_BASE, 5.0])
    def test_core_graph_all_bases(self, s, c):
        gs = core_graph(s)
        result = spokesman_degree_classes(gs, c)
        floor = gs.n_right * math.log2(c) / (
            2 * (1 + c) * math.log2(gs.max_right_degree)
        )
        assert result.unique_count >= floor - 1e-9

    def test_core_graph_near_optimal(self):
        # On the core graph the best class is the leaf level and the
        # algorithm should recover nearly the full 2s−1 optimum.
        s = 32
        result = spokesman_degree_classes(core_graph(s))
        assert result.unique_count >= s  # ≥ half the optimum

    def test_empty(self):
        gs = BipartiteGraph(2, 3, [])
        assert spokesman_degree_classes(gs).unique_count == 0
