"""Lemma A.13 / Corollary A.15 recursive algorithm."""

import math

import numpy as np
import pytest

from repro.graphs import BipartiteGraph, boosted_core, core_graph, gbad, random_bipartite
from repro.spokesman import nonisolated_right_count, spokesman_recursive


class TestGuarantee:
    @pytest.mark.parametrize("seed", range(15))
    def test_lemma_a13_random(self, seed):
        gen = np.random.default_rng(300 + seed)
        gs = random_bipartite(10, 15, float(gen.uniform(0.1, 0.7)), rng=gen)
        gamma = nonisolated_right_count(gs)
        if gamma == 0:
            return
        deg = gs.right_degrees
        delta = float(deg[deg >= 1].mean())
        result = spokesman_recursive(gs)
        assert result.unique_count >= gamma / (9 * math.log2(2 * delta)) - 1e-9

    @pytest.mark.parametrize("s", [4, 8, 16, 32, 64])
    def test_lemma_a13_core(self, s):
        gs = core_graph(s)
        result = spokesman_recursive(gs)
        floor = gs.n_right / (9 * math.log2(2 * gs.avg_right_degree))
        assert result.unique_count >= floor - 1e-9

    def test_corollary_a15_random(self):
        for seed in range(8):
            gen = np.random.default_rng(400 + seed)
            gs = random_bipartite(12, 18, 0.3, rng=gen)
            gamma = nonisolated_right_count(gs)
            if gamma == 0:
                continue
            deg = gs.right_degrees
            delta = float(deg[deg >= 1].mean())
            floor = (
                gamma / 20
                if delta < 2
                else min(gamma / (9 * math.log2(delta)), gamma / 20)
            )
            result = spokesman_recursive(gs)
            assert result.unique_count >= floor - 1e-9

    def test_boosted_core(self):
        gc = boosted_core(8, 3)
        result = spokesman_recursive(gc.graph)
        gs = gc.graph
        floor = gs.n_right / (9 * math.log2(2 * gs.avg_right_degree))
        assert result.unique_count >= floor - 1e-9

    def test_gbad(self):
        gs = gbad(10, 6, 4)
        result = spokesman_recursive(gs)
        floor = gs.n_right / (9 * math.log2(2 * gs.avg_right_degree))
        assert result.unique_count >= floor - 1e-9


class TestEdgeCases:
    def test_empty(self):
        gs = BipartiteGraph(3, 3, [])
        assert spokesman_recursive(gs).unique_count == 0

    def test_tiny_base_case(self):
        # γ ≤ 9 triggers the single-vertex base case.
        gs = BipartiteGraph(3, 4, [(0, 0), (0, 1), (1, 2), (2, 3)])
        result = spokesman_recursive(gs)
        assert result.unique_count >= 1

    def test_deterministic(self, core8):
        a = spokesman_recursive(core8)
        b = spokesman_recursive(core8)
        assert (a.subset == b.subset).all()
