"""SpokesmanResult and evaluation helper."""

import pytest

from repro.spokesman import evaluate_subset, nonisolated_right_count


class TestEvaluateSubset:
    def test_measures_from_scratch(self, tiny_bipartite):
        res = evaluate_subset(tiny_bipartite, [0, 1], "test")
        assert res.unique_count == 2
        assert res.n_left == 4 and res.n_right == 5
        assert res.algorithm == "test"

    def test_deduplicates_and_sorts(self, tiny_bipartite):
        res = evaluate_subset(tiny_bipartite, [1, 0, 1], "test")
        assert res.subset.tolist() == [0, 1]

    def test_empty_subset(self, tiny_bipartite):
        res = evaluate_subset(tiny_bipartite, [], "test")
        assert res.unique_count == 0
        assert res.subset.size == 0

    def test_fractions(self, tiny_bipartite):
        res = evaluate_subset(tiny_bipartite, [0, 1], "test")
        assert res.unique_fraction == pytest.approx(2 / 5)
        assert res.wireless_ratio == pytest.approx(2 / 4)

    def test_repr(self, tiny_bipartite):
        res = evaluate_subset(tiny_bipartite, [0], "algo")
        assert "algo" in repr(res)


class TestNonisolated:
    def test_counts(self, tiny_bipartite):
        assert nonisolated_right_count(tiny_bipartite) == 5

    def test_with_isolated(self):
        from repro.graphs import BipartiteGraph

        g = BipartiteGraph(2, 4, [(0, 0), (1, 2)])
        assert nonisolated_right_count(g) == 2
