"""``WorkloadSpec`` — the fourth first-class segment of the spec grammar.

A workload spec names an entry of the :data:`WORKLOADS` registry plus its
parameters, with the same four lossless views as every other component
(``"gossip(k=16)"`` ↔ ``{"name": "gossip", "kwargs": {"k": 16}}`` ↔
pickle ↔ :meth:`WorkloadSpec.build`)::

    from repro.scenario import Scenario

    Scenario.from_string("margulis(8) | decay | erasure(0.1) | gossip(k=16)")

This module deliberately imports nothing from :mod:`repro.scenario` (the
scenario package imports *it*); the shared registry machinery lives in
:mod:`repro._util.callspec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro._util import check_positive_int
from repro._util.callspec import CallSpec, SpecRegistry
from repro.workload.base import Workload
from repro.workload.zoo import (
    AggregateWorkload,
    BroadcastWorkload,
    GossipWorkload,
    PipelineWorkload,
)

__all__ = ["WORKLOADS", "WorkloadSpec", "as_workload"]

WORKLOADS = SpecRegistry("workload")


@dataclass(frozen=True)
class WorkloadSpec(CallSpec):
    """A workload spec, e.g. ``gossip(k=16)`` or ``aggregate(op=count)``."""

    name: str = "broadcast"
    args: tuple = ()
    kwargs: tuple = ()

    kind = "workload"
    _registry = WORKLOADS
    _name_field = "name"

    @property
    def _call_name(self) -> str:
        return self.name

    def build(self) -> Workload:
        """A fresh workload instance (workload state is per-run)."""
        return self.entry.builder(*self.args, **dict(self.kwargs))


def as_workload(value) -> Workload:
    """Coerce a workload instance / spec / string / dict to an instance."""
    if isinstance(value, Workload):
        return value
    if isinstance(value, WorkloadSpec):
        return value.build()
    if isinstance(value, str):
        return WorkloadSpec.from_string(value).build()
    if isinstance(value, Mapping):
        return WorkloadSpec.from_dict(value).build()
    raise TypeError(
        "workload must be a Workload, WorkloadSpec, spec string, or dict; "
        f"got {type(value).__name__}"
    )


# ----------------------------------------------------------------------
# Eager parameter checks (SpecEntry.check): each mirrors its workload's
# constructor validation without building anything, so bad specs fail at
# Scenario.validate() / parse time.
# ----------------------------------------------------------------------


def _check_source(source) -> None:
    if source is not None and (not isinstance(source, int) or source < 0):
        raise ValueError(f"source must be a vertex id (>= 0), got {source}")


def _check_broadcast(source: int = 0) -> None:
    _check_source(source)


def _check_gossip(k: int = 2, source=None) -> None:
    check_positive_int(k, "k")
    _check_source(source)
    if source is not None and k != 1:
        raise ValueError(
            "gossip(source=...) pins the rumor set and is only supported "
            f"at k=1; got k={k}"
        )


def _check_aggregate(op: str = "max") -> None:
    if op not in ("count", "max"):
        raise ValueError(
            f"aggregate op must be one of count, max; got {op!r}"
        )


def _check_pipeline(m: int = 2, source: int = 0) -> None:
    check_positive_int(m, "m")
    _check_source(source)


def _register_workloads() -> None:
    WORKLOADS.register(
        "broadcast", BroadcastWorkload,
        summary="single-source rumor spreading (the classic task): "
                "broadcast(source=0)",
        check=_check_broadcast,
    )
    WORKLOADS.register(
        "gossip", GossipWorkload, randomized=True,
        summary="k random rumor sources per trial, spread to everyone: "
                "gossip(k=2)",
        check=_check_gossip,
    )
    WORKLOADS.register(
        "aggregate", AggregateWorkload,
        summary="in-network aggregation under collisions: "
                "aggregate(op=max|count)",
        check=_check_aggregate,
    )
    WORKLOADS.register(
        "pipeline", PipelineWorkload,
        summary="m-message streaming from one source: pipeline(m=2)",
        check=_check_pipeline,
    )


_register_workloads()
