"""repro.workload — the workload zoo on the scenario grammar.

The paper's (αw, βw)-wireless-expansion guarantee is a statement about
information dissemination in general, not just one-to-all broadcast.
This package makes the *task* a first-class, declarative component — the
fourth segment of the scenario grammar::

    "margulis(8) | decay | erasure(0.1) | gossip(k=16)"

:class:`WorkloadSpec` resolves against the extensible :data:`WORKLOADS`
registry; the engine boundary (init / fold / done) is the
:class:`Workload` / :class:`WorkloadState` contract in
:mod:`repro.workload.base`, and the batched implementations (broadcast,
gossip, aggregate, pipeline) live in :mod:`repro.workload.zoo`.
"""

from repro.workload.base import SetWorkloadState, Workload, WorkloadState
from repro.workload.spec import WORKLOADS, WorkloadSpec, as_workload
from repro.workload.zoo import (
    AggregateWorkload,
    BroadcastWorkload,
    GossipWorkload,
    PipelineWorkload,
)

__all__ = [
    "AggregateWorkload",
    "BroadcastWorkload",
    "GossipWorkload",
    "PipelineWorkload",
    "SetWorkloadState",
    "WORKLOADS",
    "Workload",
    "WorkloadSpec",
    "WorkloadState",
    "as_workload",
]
