"""The batched workload implementations behind the WORKLOADS registry.

Each workload advances ``T`` independent trials as ``(n, T)`` matrices,
matching the engine's trial-vectorized shape:

* :class:`BroadcastWorkload` — single-source rumor spreading, the
  pre-workload engine semantics bit for bit (its init draws nothing from
  the trial generators, so every stream is untouched);
* :class:`GossipWorkload` — ``k`` rumor sources per trial, drawn without
  replacement from each trial's own generator (all-to-all spreading once
  every trial's sources merge into one informed set);
* :class:`AggregateWorkload` — in-network aggregation under collisions:
  every node always has its current partial aggregate to share, and a
  clean reception folds the unique transmitting neighbour's value in
  (``op="max"`` converges to the exact maximum; ``op="count"`` runs a
  Flajolet–Martin sketch whose max-fold estimates ``n``);
* :class:`PipelineWorkload` — multi-message streaming: the source holds
  messages ``1..m``, every other node extends its consecutive prefix by
  one per clean reception from a node that is strictly ahead.

The two value workloads rely on the delivered-value identity ``sums = A @
(transmitting · values)``: receptions are a subset of exactly-one-
transmitting-neighbour events, so the row sum at a received cell *is* the
unique neighbour's value.  Adversarial jamming mutates the effective
adjacency mid-run and breaks that identity, so it is rejected eagerly.
"""

from __future__ import annotations

from repro._util import check_positive_int
from repro.backend import HOST
from repro.workload.base import SetWorkloadState, Workload, WorkloadState

# Host namespace via the backend shim: initial sets, per-trial draws and
# extras are built host-side; the value folds run on the network's
# backend (``self._bk``) via ``network.value_counts``.
np = HOST.xp

__all__ = [
    "AggregateWorkload",
    "BroadcastWorkload",
    "GossipWorkload",
    "PipelineWorkload",
]

#: Channels whose receptions are exactly-one-neighbour events on the
#: static adjacency — the precondition of the value-delivery kernel.
_VALUE_SAFE_CHANNELS = ("classic", "collision-detection", "erasure")

_AGGREGATE_OPS = ("count", "max")


def _check_value_channel(workload_name: str, channel_model) -> None:
    name = getattr(channel_model, "name", str(channel_model))
    if name not in _VALUE_SAFE_CHANNELS:
        raise ValueError(
            f"workload {workload_name!r} folds delivered values and needs a "
            f"channel whose receptions are exactly-one-neighbour events on "
            f"the static adjacency ({', '.join(_VALUE_SAFE_CHANNELS)}); "
            f"got {name!r}"
        )


class BroadcastWorkload(Workload):
    """Single-source broadcast — the classic engine semantics."""

    name = "broadcast"
    set_semantics = True

    def __init__(self, source: int = 0):
        self.source = int(source)
        if self.source < 0:
            raise ValueError(
                f"source must be a vertex id (>= 0), got {source}"
            )

    @property
    def protocol_source(self) -> int:
        return self.source

    def check_graph(self, graph) -> None:
        if not 0 <= self.source < graph.n:
            raise ValueError(f"source {self.source} out of range")

    def make_state(self, network, trial_rngs) -> SetWorkloadState:
        n, T = network.graph.n, len(trial_rngs)
        initial = np.zeros((n, T), dtype=bool)
        initial[self.source, :] = True
        return SetWorkloadState(initial)


class GossipWorkload(Workload):
    """``k``-source rumor spreading with per-trial random frontiers.

    Each trial draws its own ``k`` distinct sources from its own
    generator (after the protocol/channel reset draws, preserving the
    shard-equivalence discipline); ``extras["sources"]`` records the
    ``(k, T)`` draw.  ``gossip(k=1, source=s)`` pins the single source
    and consumes no randomness — it reduces to ``broadcast(source=s)``
    bit for bit.
    """

    name = "gossip"
    set_semantics = True

    def __init__(self, k: int = 2, source: int | None = None):
        check_positive_int(k, "k")
        self.k = int(k)
        self.source = None if source is None else int(source)
        if self.source is not None:
            if self.source < 0:
                raise ValueError(
                    f"source must be a vertex id (>= 0), got {source}"
                )
            if self.k != 1:
                raise ValueError(
                    "gossip(source=...) pins the rumor set and is only "
                    f"supported at k=1; got k={self.k}"
                )

    @property
    def protocol_source(self) -> int:
        return self.source if self.source is not None else 0

    def check_graph(self, graph) -> None:
        if self.k > graph.n:
            raise ValueError(
                f"gossip needs k <= n distinct sources; k={self.k} on a "
                f"{graph.n}-vertex graph"
            )
        if self.source is not None and not self.source < graph.n:
            raise ValueError(f"source {self.source} out of range")

    def make_state(self, network, trial_rngs) -> SetWorkloadState:
        n, T = network.graph.n, len(trial_rngs)
        initial = np.zeros((n, T), dtype=bool)
        if self.source is not None:
            initial[self.source, :] = True
            sources = np.full((1, T), self.source, dtype=np.int64)
        else:
            sources = np.empty((self.k, T), dtype=np.int64)
            for t, rng in enumerate(trial_rngs):
                picks = rng.choice(n, size=self.k, replace=False)
                sources[:, t] = picks
                initial[picks, t] = True
        return SetWorkloadState(initial, extras={"sources": sources})


class _AggregateState(WorkloadState):
    """Per-cell running aggregates folded by max under clean receptions.

    Working arrays (``values``, ``target``) live on the network's backend;
    extras stay host numpy.  On the host backend the masked-where fold
    computes exactly the pre-backend ``np.maximum(..., out=, where=)``
    in-place form.
    """

    def __init__(self, values, target, extras, backend=HOST):
        super().__init__(extras)
        self._bk = backend
        self.values = backend.asarray(values)  # (n, active) int64 aggregates
        self.target = backend.asarray(target)  # (active,) int64 targets

    def initial_satisfied(self) -> np.ndarray:
        return self.values >= self.target[None, :]

    def transmit_eligible(self, satisfied) -> np.ndarray:
        # Every node always holds a partial aggregate worth sharing.
        return self._bk.ones_like(satisfied)

    def fold(self, round_index, transmitting, received, satisfied, network):
        sums = network.value_counts(transmitting * self.values)
        self.values = self._bk.where(
            received, self._bk.maximum(self.values, sums), self.values
        )
        return (self.values >= self.target[None, :]) & ~satisfied

    def select_trials(self, keep) -> None:
        keep = self._bk.asarray(keep)
        self.values = self.values[:, keep]
        self.target = self.target[keep]


class AggregateWorkload(Workload):
    """In-network aggregation: fold every node's value into all nodes.

    ``op="max"`` seeds node ``v`` with value ``v``: a trial is done when
    every (living) node holds ``n - 1``, the exact maximum.  ``op="count"``
    seeds each (node, trial) cell with a geometric sketch level drawn from
    the trial's generator — the max-fold converges to the trial's highest
    level and ``extras["estimate"] = 2**level`` is the classic
    Flajolet–Martin cardinality estimate of ``n``
    (``extras["truth"]``).  A cell counts as satisfied once it holds the
    trial's final aggregate, so ``first_informed_round`` reads as
    "round the node learned the answer".
    """

    name = "aggregate"
    set_semantics = False

    def __init__(self, op: str = "max"):
        if op not in _AGGREGATE_OPS:
            raise ValueError(
                f"aggregate op must be one of {', '.join(_AGGREGATE_OPS)}; "
                f"got {op!r}"
            )
        self.op = op

    def check_channel(self, channel_model) -> None:
        _check_value_channel(self.name, channel_model)

    def make_state(self, network, trial_rngs) -> _AggregateState:
        n, T = network.graph.n, len(trial_rngs)
        if self.op == "max":
            values = np.broadcast_to(
                np.arange(n, dtype=np.int64)[:, None], (n, T)
            ).copy()
            target = np.full(T, n - 1, dtype=np.int64)
            estimate = np.full(T, float(n - 1))
            truth = np.full(T, n - 1, dtype=np.int64)
        else:
            values = np.empty((n, T), dtype=np.int64)
            for t, rng in enumerate(trial_rngs):
                # Level L with probability 2^-(L+1): the FM sketch draw.
                values[:, t] = rng.geometric(0.5, size=n) - 1
            target = values.max(axis=0)
            estimate = np.exp2(target.astype(np.float64))
            truth = np.full(T, n, dtype=np.int64)
        return _AggregateState(
            values,
            target,
            extras={"estimate": estimate, "truth": truth},
            backend=network.backend,
        )


class _PipelineState(WorkloadState):
    """Per-cell consecutive-prefix counters for multi-message streaming.

    The prefix matrix ``h`` lives on the network's backend; the fold's
    masked increment is the same expression on every backend.
    """

    def __init__(self, h, m, backend=HOST):
        super().__init__()
        self._bk = backend
        self.h = backend.asarray(h)  # (n, active) int64 prefix lengths
        self.m = m

    def initial_satisfied(self) -> np.ndarray:
        return self.h >= self.m

    def transmit_eligible(self, satisfied) -> np.ndarray:
        return self.h > 0

    def fold(self, round_index, transmitting, received, satisfied, network):
        sums = network.value_counts(transmitting * self.h)
        # A clean reception from a strictly-ahead neighbour delivers the
        # next message in the prefix — one message per round, pipelined.
        advance = received & (sums > self.h)
        self.h[advance] += 1
        return (self.h >= self.m) & ~satisfied

    def select_trials(self, keep) -> None:
        self.h = self.h[:, self._bk.asarray(keep)]


class PipelineWorkload(Workload):
    """Stream ``m`` messages from one source; done at full prefixes.

    ``pipeline(m=1)`` has exactly broadcast's round dynamics: the prefix
    counter is then a 0/1 informed flag.
    """

    name = "pipeline"
    set_semantics = False

    def __init__(self, m: int = 2, source: int = 0):
        check_positive_int(m, "m")
        self.m = int(m)
        self.source = int(source)
        if self.source < 0:
            raise ValueError(
                f"source must be a vertex id (>= 0), got {source}"
            )

    @property
    def protocol_source(self) -> int:
        return self.source

    def check_graph(self, graph) -> None:
        if not 0 <= self.source < graph.n:
            raise ValueError(f"source {self.source} out of range")

    def check_channel(self, channel_model) -> None:
        _check_value_channel(self.name, channel_model)

    def make_state(self, network, trial_rngs) -> _PipelineState:
        n, T = network.graph.n, len(trial_rngs)
        h = np.zeros((n, T), dtype=np.int64)
        h[self.source, :] = self.m
        return _PipelineState(h, self.m, backend=network.backend)
