"""The workload engine-boundary contract: init / fold / done.

A *workload* is the task the radio network is solving — which cells of
the ``(n, T)`` trial matrix start satisfied, how a round's deliveries
advance satisfaction, and when a trial is done.  The broadcast engine
(:func:`repro.radio.broadcast.run_broadcast_batch`) is a generic round
loop over this contract:

* **init** — :meth:`Workload.make_state` builds per-run state from the
  per-trial generators (drawn *after* the protocol and channel reset, so
  the broadcast workload — which draws nothing — stays bit-for-bit the
  pre-workload engine) and :meth:`WorkloadState.initial_satisfied` hands
  the engine the ``(n, T)`` bool matrix of initially-satisfied cells;
* **fold** — each round, :meth:`WorkloadState.fold` turns the delivery
  matrix into the newly-satisfied cells (for set-semantics workloads,
  simply ``received & ~satisfied``; value workloads also fold delivered
  values);
* **done** — a trial completes when its satisfied count reaches the
  channel's coverage target, exactly the broadcast completion rule.

Set-semantics workloads (satisfaction = "holds the rumor") run on both
the dense and packed-bitset backends; value workloads (aggregation,
pipelining) carry per-cell integers and are dense-only.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

__all__ = ["SetWorkloadState", "Workload", "WorkloadState"]


class WorkloadState:
    """Per-run engine-facing state (one batch's init/fold/done hooks).

    ``extras`` holds workload-specific result arrays with the trial axis
    *last* (the convention :func:`repro.radio.broadcast.merge_batches`
    concatenates shards on); they are sized for the full trial batch and
    are untouched by trial compaction.
    """

    #: Workload-specific result arrays, trial axis last.
    extras: dict[str, Any]

    def __init__(self, extras: Mapping[str, Any] | None = None):
        self.extras = dict(extras) if extras else {}

    def initial_satisfied(self) -> np.ndarray:
        """The ``(n, T)`` bool matrix of cells satisfied before round 1."""
        raise NotImplementedError

    def transmit_eligible(self, satisfied: np.ndarray) -> np.ndarray:
        """Which cells may transmit this round (``(n, T)`` bool).

        Set-semantics default: exactly the satisfied cells — only rumor
        holders have something to send, the classic broadcast gate.
        """
        return satisfied

    def fold(
        self,
        round_index: int,
        transmitting: np.ndarray,
        received: np.ndarray,
        satisfied: np.ndarray,
        network,
    ) -> np.ndarray:
        """Fold one round's deliveries; returns newly-satisfied cells.

        ``received`` is the channel's delivery matrix (cells that heard a
        clean transmission this round); the returned matrix must be
        disjoint from ``satisfied`` (the engine ors it in and stamps
        ``first_informed_round``).
        """
        return received & ~satisfied

    def select_trials(self, keep: np.ndarray) -> None:
        """Narrow per-trial working arrays to ``keep`` (trial compaction).

        ``extras`` stay full-width; only round-loop working state (value
        matrices, per-trial targets) is compacted.
        """

    def finalize(self, satisfied: np.ndarray, active) -> None:
        """Post-loop hook (compute derived extras); default: nothing."""


class SetWorkloadState(WorkloadState):
    """State for set-semantics workloads: a fixed initial rumor set."""

    def __init__(self, initial: np.ndarray, extras=None):
        super().__init__(extras)
        self._initial = initial

    def initial_satisfied(self) -> np.ndarray:
        return self._initial


class Workload:
    """A workload *factory*: validates parameters, builds per-run state.

    Like protocols and channels, workload instances are cheap factories;
    all per-run arrays live in the :class:`WorkloadState` built by
    :meth:`make_state`.
    """

    #: Registry name (matches the WORKLOADS entry).
    name: str = ""

    #: Satisfaction is "holds the single rumor": the packed-bitset engine
    #: can run it.  Value workloads (False) are dense-only.
    set_semantics: bool = True

    #: The source vertex handed to ``protocol.reset_batch`` (protocols
    #: like the spokesman genie precompute schedules from it).
    protocol_source: int = 0

    def check_graph(self, graph) -> None:
        """Eagerly validate parameters against the realized graph."""

    def check_channel(self, channel_model) -> None:
        """Eagerly validate the workload × channel combination.

        Value workloads override this: their delivered-value identity
        (the unique transmitting neighbour's value) requires a channel
        whose receptions are a subset of exactly-one-neighbour events on
        the *static* adjacency, which adversarial jamming breaks.
        """

    def make_state(
        self, network, trial_rngs: Sequence[np.random.Generator]
    ) -> WorkloadState:
        """Build per-run state; may draw from the per-trial generators.

        Called after ``protocol.reset_batch`` and ``channel.reset`` on the
        same generators — per-trial draws keep the memory-budget column
        sharder bit-for-bit (each shard sees its own trials' streams).
        """
        raise NotImplementedError
