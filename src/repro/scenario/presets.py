"""Named scenario presets — the discoverable workload catalogue.

``repro scenarios list`` prints this registry next to the component
registries, and ``repro scenarios show <name>`` (or any ``--scenario``
flag) resolves names through :func:`get_scenario` before falling back to
the spec-string parser.  The experiment registry
(:mod:`repro.analysis.experiments`) binds its simulation rows to the same
objects, so "what configuration does E15 actually run?" has one answer.
"""

from __future__ import annotations

from repro.scenario.spec import Scenario

__all__ = ["SCENARIOS", "get_scenario", "register_scenario"]

#: Name → (scenario, one-line description).
SCENARIOS: dict[str, tuple[Scenario, str]] = {}


def register_scenario(name: str, scenario: Scenario | str, summary: str = "") -> Scenario:
    """Register a named scenario (spec strings are parsed); returns it."""
    if isinstance(scenario, str):
        scenario = Scenario.from_string(scenario)
    SCENARIOS[name] = (scenario, summary)
    return scenario


def get_scenario(name_or_spec: str) -> Scenario:
    """Resolve a preset name, falling back to the spec-string parser."""
    hit = SCENARIOS.get(name_or_spec.strip())
    if hit is not None:
        return hit[0]
    return Scenario.from_string(name_or_spec)


register_scenario(
    "chain-decay",
    "chain(8, 4) | decay | classic | trials=16",
    "Section 5 lower-bound chain under Decay (the E7 workhorse)",
)
register_scenario(
    "chain-aloha",
    "chain(8, 4) | aloha(0.5) | classic | trials=16",
    "single-scale ALOHA on the chain (the E12 ablation baseline)",
)
register_scenario(
    "hypercube-decay",
    "hypercube(10) | decay | classic | trials=256",
    "bounded-degree expander broadcast at batch scale (E14's instance)",
)
register_scenario(
    "schedule-baseline",
    "hypercube(6) | decay | classic | trials=8",
    "the randomized comparison behind static-schedule synthesis (E13)",
)
register_scenario(
    "expander-erasure",
    "random_regular(256, 8) | decay | erasure(0.1) | trials=32",
    "expander broadcast under 10% link loss (E15's headline point)",
)
register_scenario(
    "cd-backoff",
    "hypercube(8) | collision-backoff | collision-detection | trials=32",
    "feedback-exploiting backoff under collision detection",
)
register_scenario(
    "cplus-flooding",
    "cplus(12) | flooding | classic | max_rounds=200",
    "the paper's opening deadlock: flooding stalls on C+ after one round",
)
register_scenario(
    "sweep-smoke",
    "chain(4, 2) | decay | classic | trials=4",
    "tiny cached-sweep instance (CI smoke and E16)",
)
register_scenario(
    "expander-gossip",
    "random_regular(256, 8) | decay | classic | gossip(k=16) | trials=32",
    "k-source gossip on an expander (E19's headline point)",
)
