"""Frozen, picklable scenario specs — the repo's declarative front door.

Every claim in the paper is a statement about a *configuration*: a graph
family, a broadcast protocol, a channel model, a trial count, a seed.
This module makes that configuration a first-class object:

* :class:`GraphSpec` / :class:`ProtocolSpec` — frozen component specs
  resolved against the :mod:`repro.scenario.registry` registries (the
  channel side is :class:`repro.radio.channel.ChannelSpec`, promoted to
  the same interface);
* :class:`Scenario` — the top-level spec tying the components to
  ``trials`` / ``seed`` / ``source`` / ``max_rounds``, with one entry
  point, :meth:`Scenario.run`, replacing direct engine plumbing.

Every spec supports four lossless views: the compact string form
(:meth:`from_string` / :meth:`describe`), the canonical plain-data form
(:meth:`to_dict` / :meth:`from_dict` — what cache keys hash), pickling
(frozen dataclasses, so specs ride into
:class:`~repro.runtime.executor.ParallelExecutor` workers as-is), and the
live objects (:meth:`build`)::

    sc = Scenario.from_string("hypercube(10) | decay | erasure(0.05) | trials=64")
    batch = sc.run()                      # BatchBroadcastResult
    sc.run(executor=4, cache="results/cache")   # parallel + content-addressed

Seeding contract
----------------
For a deterministic graph family, ``Scenario(graph=g, seed=s).run()`` is
bit-for-bit identical to ``run_broadcast_batch(graph, protocol,
trials=..., seed=s)`` on the same graph.  For a randomized family the
seed splits ``(protocol_seed, graph_seed) = spawn_seeds(seed, 2)`` — the
exact discipline the legacy ``chain_broadcast_point`` task used, so
spec-born and helper-born runs of the same configuration agree bit for
bit (and therefore share cache entries).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

from repro._util import (
    parse_byte_size,
    parse_call,
    parse_value,
    spawn_seeds,
)
from repro._util.callspec import CallSpec as _CallSpec
from repro.backend import BACKEND_NAMES
from repro.radio.channel import ChannelSpec
from repro.scenario.registry import GRAPHS, PROTOCOLS, BuiltGraph
from repro.workload import WORKLOADS, WorkloadSpec

__all__ = [
    "GraphSpec",
    "ProtocolSpec",
    "RealizedScenario",
    "Scenario",
    "WorkloadSpec",
]


@dataclass(frozen=True)
class GraphSpec(_CallSpec):
    """A graph-family spec, e.g. ``hypercube(10)`` or ``chain(8, 4)``."""

    family: str
    args: tuple = ()
    kwargs: tuple = ()

    kind = "graph"
    _registry = GRAPHS
    _name_field = "family"

    @property
    def _call_name(self) -> str:
        return self.family

    def build(self, seed=None) -> BuiltGraph:
        """Realize the graph (randomized families consume ``seed``)."""
        entry = self.entry
        kwargs = dict(self.kwargs)
        if entry.randomized:
            kwargs["rng"] = seed
        built = entry.builder(*self.args, **kwargs)
        if isinstance(built, BuiltGraph):
            return built
        return BuiltGraph(graph=built)


@dataclass(frozen=True)
class ProtocolSpec(_CallSpec):
    """A protocol spec, e.g. ``decay`` or ``aloha(0.25)``."""

    name: str
    args: tuple = ()
    kwargs: tuple = ()

    kind = "protocol"
    _registry = PROTOCOLS
    _name_field = "name"

    @property
    def _call_name(self) -> str:
        return self.name

    def build(self):
        """A fresh protocol instance (protocols hold per-run state)."""
        return self.entry.builder(*self.args, **dict(self.kwargs))


@dataclass(frozen=True)
class RealizedScenario:
    """The live objects one :class:`Scenario` resolves to.

    ``channel`` is ``None`` for the classic model — exactly the value the
    legacy ``run_broadcast_batch(channel=...)`` call would receive, which
    keeps ``Scenario.run`` bit-for-bit equal to the call it replaces.
    ``source`` is the workload's nominal source (what the protocol's
    ``reset_batch`` receives); multi-source workloads draw their own.
    """

    built: BuiltGraph
    protocol: Any
    channel: Any
    source: int
    protocol_seed: Any
    workload: Any = None


_SCALAR_FIELDS = (
    "trials", "seed", "source", "max_rounds", "engine", "memory_budget",
    "telemetry", "backend",
)
_ENGINE_CHOICES = ("auto", "dense", "bitset")
_COMPONENT_FIELDS = ("graph", "protocol", "channel", "workload")
_COMPONENT_TYPES = {
    "graph": GraphSpec,
    "protocol": ProtocolSpec,
    "channel": ChannelSpec,
    "workload": WorkloadSpec,
}
#: The canonical dict of the default workload — scenarios carrying it
#: serialize without a workload entry, so broadcast specs keep hashing
#: (and reading) exactly as they did before the workload layer.
_DEFAULT_WORKLOAD_DICT = {"name": "broadcast"}
_ASSIGN_RE = re.compile(r"^([a-z_]+)\s*=\s*(.+)$", re.DOTALL)


def _extra_segment_error(seg: str, text: str, values: Mapping[str, Any]) -> str:
    """Diagnose a bare segment arriving after all four component slots
    are taken: a *duplicate* of an already-assigned component kind gets a
    message saying so (``... | erasure(0.1) | erasure(0.9)``), anything
    else keeps the generic too-many-segments error."""
    try:
        name = parse_call(seg)[0]
    except ValueError:
        return f"too many component segments in scenario {text!r}"
    if name in GRAPHS:
        kind = "graph"
    elif name in PROTOCOLS:
        kind = "protocol"
    elif name in WORKLOADS:
        kind = "workload"
    else:
        try:
            ChannelSpec._canonical_name(name)
        except ValueError:
            return f"too many component segments in scenario {text!r}"
        kind = "channel"
    return (
        f"duplicate {kind} segment {seg!r} in scenario {text!r} "
        f"({kind} already set to {str(values.get(kind))!r})"
    )


def _segment_kinds(name: str) -> set:
    """Which component registries claim a bare segment's call name."""
    kinds = set()
    if name in GRAPHS:
        kinds.add("graph")
    if name in PROTOCOLS:
        kinds.add("protocol")
    if name in WORKLOADS:
        kinds.add("workload")
    try:
        ChannelSpec._canonical_name(name)
    except ValueError:
        pass
    else:
        kinds.add("channel")
    return kinds


def _source_only_broadcast(spec: WorkloadSpec) -> bool:
    """Is ``spec`` the canonical form a bare ``source=`` folds into —
    ``broadcast`` with at most a ``source`` keyword and nothing else?"""
    return (
        spec.name == "broadcast"
        and not spec.args
        and set(dict(spec.kwargs)) <= {"source"}
    )


def _coerce_component(key: str, value):
    cls = _COMPONENT_TYPES[key]
    if isinstance(value, cls):
        return value
    if isinstance(value, str):
        return cls.from_string(value)
    if isinstance(value, Mapping):
        return cls.from_dict(value)
    raise TypeError(
        f"scenario {key} must be a {cls.__name__}, spec string, or dict; "
        f"got {type(value).__name__}"
    )


def _coerce_scalar(key: str, value):
    if key == "engine":
        # The one non-numeric scalar: keep the string, validate membership
        # (parse_value would hand "bitset" back unchanged anyway, but a
        # quoted form or a stray literal must not slip through as an int).
        if isinstance(value, str):
            value = parse_value(value)
        if value not in _ENGINE_CHOICES:
            raise ValueError(
                f"scenario engine must be one of "
                f"{', '.join(_ENGINE_CHOICES)}; got {value!r}"
            )
        return value
    if key == "backend":
        # The array-backend selector: a registry name, optionally with a
        # ':device' suffix ("torch:cuda").  Kept as a string — resolution
        # (and the graceful numpy fallback when the extra is missing)
        # happens at run time, so specs stay buildable anywhere.
        if not isinstance(value, str) or not value.strip():
            raise ValueError(
                f"scenario backend must be a backend name, got {value!r}"
            )
        value = value.strip().lower()
        if value.partition(":")[0] not in BACKEND_NAMES:
            raise ValueError(
                f"scenario backend must name a registered array backend "
                f"({', '.join(sorted(BACKEND_NAMES))}, optionally with a "
                f"':device' suffix); got {value!r}"
            )
        return value
    if key == "telemetry":
        # The one boolean scalar.  Accept bools, 0/1, and the usual
        # switch spellings so spec strings read `telemetry=on`.
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("on", "true", "1"):
                return True
            if lowered in ("off", "false", "0"):
                return False
        raise ValueError(
            f"scenario telemetry must be on/off (or true/false, 0/1); "
            f"got {value!r}"
        )
    if key == "memory_budget" and isinstance(value, str):
        # Accept human byte sizes ("2GiB", "512MB") wherever the grammar
        # accepts the field — spec strings and -S overrides alike.
        parsed = parse_value(value)
        if parsed is None:
            return None
        if isinstance(parsed, str):
            return parse_byte_size(parsed)
        value = parsed
    elif isinstance(value, str):
        value = parse_value(value)
    if key in ("source", "max_rounds", "memory_budget") and value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"scenario {key} must be an integer, got {value!r}")
    return int(value)


@dataclass(frozen=True)
class Scenario:
    """One fully-specified experiment configuration.

    Attributes
    ----------
    graph, protocol, channel, workload:
        The component specs.  ``workload`` defaults to single-source
        ``broadcast`` — the classic task — and is omitted from the
        string/dict views when default, so pre-workload scenarios
        serialize (and hash) exactly as they always did.
    trials:
        Independent protocol trials, advanced together by the batched
        engine.
    seed:
        Master seed; see the module docstring for the split discipline.
    source:
        Deprecated alias for ``workload=broadcast(source=...)``: a
        non-``None`` value is canonicalized into the workload segment at
        construction (and rejected eagerly if the workload defines its
        own sources).  ``None`` — the default — uses the graph family's
        default source (vertex 0 everywhere except the chain, whose root
        is the source).
    max_rounds:
        Round cap; ``None`` is the engine's ``50·n·log₂n``-ish default.
    engine:
        Simulation backend: ``"dense"`` (sparse mat-mat counts),
        ``"bitset"`` (packed-word CSR gathers), or ``"auto"`` (the
        default — pick per run; see
        :func:`repro.radio.broadcast.run_broadcast_batch`).
    memory_budget:
        Peak per-run working-set budget in bytes; the engine shards the
        trial batch into column chunks that fit (``None`` = unbounded).
        Spec strings accept human sizes: ``memory_budget=2GiB``.
    telemetry:
        When ``True``, the run records per-round collision telemetry
        (:class:`~repro.obs.telemetry.RoundTelemetry`) into the result's
        ``extras``.  Off by default, and serialized only when on, so
        telemetry-off scenarios keep their pre-telemetry cache keys.
        Spec strings accept ``telemetry=on`` / ``telemetry=off``.
    backend:
        Array backend the dense engine runs on (:mod:`repro.backend`):
        ``"numpy"`` (the bit-for-bit default), ``"torch"``, or a
        device-suffixed form (``"torch:cuda"``).  Resolution happens at
        run time — a missing optional extra degrades to numpy with one
        ``RuntimeWarning`` — and the field is serialized only when
        non-default, so pre-backend scenarios keep their cache keys.
    """

    graph: GraphSpec
    protocol: ProtocolSpec = ProtocolSpec("decay")
    channel: ChannelSpec = ChannelSpec()
    workload: WorkloadSpec = WorkloadSpec("broadcast")
    trials: int = 1
    seed: int = 0
    source: int | None = None
    max_rounds: int | None = None
    engine: str = "auto"
    memory_budget: int | None = None
    telemetry: bool = False
    backend: str = "numpy"

    def __post_init__(self):
        object.__setattr__(
            self, "graph", _coerce_component("graph", self.graph)
        )
        object.__setattr__(
            self, "protocol", _coerce_component("protocol", self.protocol)
        )
        object.__setattr__(
            self, "channel", _coerce_component("channel", self.channel)
        )
        object.__setattr__(
            self, "workload", _coerce_component("workload", self.workload)
        )
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if self.seed < 0:
            # numpy would reject this only at run() with an opaque
            # "expected non-negative integer" — name the field here.
            raise ValueError(
                f"seed must be a non-negative integer, got {self.seed}"
            )
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.source is not None and self.source < 0:
            # The upper range needs the realized graph's n and is checked
            # at build time; negative ids are never valid for any family.
            raise ValueError(
                f"source must be a vertex id (>= 0), got {self.source}"
            )
        if self.engine not in _ENGINE_CHOICES:
            raise ValueError(
                f"engine must be one of {', '.join(_ENGINE_CHOICES)}, "
                f"got {self.engine!r}"
            )
        if self.memory_budget is not None and self.memory_budget < 1:
            raise ValueError(
                f"memory_budget must be >= 1 byte, got {self.memory_budget}"
            )
        if not isinstance(self.telemetry, bool):
            object.__setattr__(
                self, "telemetry", _coerce_scalar("telemetry", self.telemetry)
            )
        object.__setattr__(
            self, "backend", _coerce_scalar("backend", self.backend)
        )
        # `source` is a deprecated alias of the broadcast workload's own
        # parameter: canonicalize it into the workload segment so every
        # view (string/dict/pickle) has one spelling and spec-equal
        # scenarios hash to one cache key.  A non-broadcast workload
        # defines its own sources, so combining the two fields is an
        # eager error naming both.
        if self.source is not None:
            wd = self.workload.to_dict()
            if wd.get("name") != "broadcast":
                raise ValueError(
                    f"scenario field source={self.source} applies only to "
                    f"the broadcast workload, but workload="
                    f"{self.workload.describe()!r} defines its own sources; "
                    "set one of the two fields, not both"
                )
            if len(wd) > 1:
                raise ValueError(
                    f"scenario field source={self.source} conflicts with "
                    f"the workload's own parameters in "
                    f"{self.workload.describe()!r}; set the source in one "
                    "place, not both"
                )
            object.__setattr__(
                self,
                "workload",
                WorkloadSpec("broadcast", (), {"source": int(self.source)}),
            )
            object.__setattr__(self, "source", None)

    # ------------------------------------------------------------------
    # The four views
    # ------------------------------------------------------------------
    @classmethod
    def from_string(cls, text: str) -> "Scenario":
        """Parse the compact scenario form.

        ``|``-separated segments: bare component specs fill the
        graph → protocol → channel → workload slots in order (a bare
        segment whose name belongs to a *later* registry skips ahead, so
        ``"chain(4, 2) | gossip(k=2)"`` works without naming a protocol),
        and any segment may be a ``key=value`` assignment (``graph=``,
        ``protocol=``, ``channel=``, ``workload=``, ``trials=``,
        ``seed=``, ``source=``, ``max_rounds=``, ``engine=``,
        ``memory_budget=``, ``telemetry=``, ``backend=``)::

            "hypercube(10) | decay | erasure(0.05) | trials=64 | seed=3"
            "margulis(8) | decay | erasure(0.1) | gossip(k=16)"
            "chain(8, 4) | trials=16"
            "graph=cplus(12) | protocol=flooding"
        """
        segments = [seg.strip() for seg in text.split("|")]
        segments = [seg for seg in segments if seg]
        if not segments:
            raise ValueError("empty scenario string")
        values: dict[str, Any] = {}
        positional = list(_COMPONENT_FIELDS)
        for seg in segments:
            match = _ASSIGN_RE.match(seg)
            key = match.group(1) if match else None
            if key in _SCALAR_FIELDS or key in _COMPONENT_FIELDS:
                if key in values:
                    raise ValueError(
                        f"duplicate {key!r} in scenario string {text!r}"
                    )
                values[key] = match.group(2).strip()
                if key in positional:
                    positional.remove(key)
            else:
                # A bare component spec (note: "erasure(p=0.1)" has an "="
                # but not at segment top level, so it lands here).
                while positional and positional[0] in values:
                    positional.pop(0)
                if not positional:
                    raise ValueError(_extra_segment_error(seg, text, values))
                slot = positional[0]
                try:
                    kinds = _segment_kinds(parse_call(seg)[0])
                except ValueError:
                    kinds = set()
                if kinds and slot not in kinds:
                    # A recognizable name out of positional order: route
                    # it to the first open slot of its own kind, or fall
                    # through to the duplicate/too-many diagnosis when
                    # every slot of its kind is already taken.
                    open_kinds = [k for k in positional if k in kinds]
                    if not open_kinds:
                        raise ValueError(
                            _extra_segment_error(seg, text, values)
                        )
                    slot = open_kinds[0]
                positional.remove(slot)
                values[slot] = seg
        if "graph" not in values:
            raise ValueError(
                f"scenario {text!r} names no graph (the first segment, "
                "e.g. 'hypercube(10) | decay | classic')"
            )
        kwargs: dict[str, Any] = {}
        for key, raw in values.items():
            if key in _COMPONENT_FIELDS:
                kwargs[key] = _coerce_component(key, raw)
            else:
                kwargs[key] = _coerce_scalar(key, raw)
        return cls(**kwargs).validate()

    def describe(self) -> str:
        """Canonical string form: the component specs, then any
        non-default scalar as ``key=value``.  ``from_string(describe())``
        reconstructs an equal scenario.  The workload segment appears
        only when non-default, so broadcast scenarios read as they always
        did (a plain ``source=`` is canonicalized into
        ``broadcast(source=...)`` at construction)."""
        parts = [
            self.graph.describe(),
            self.protocol.describe(),
            self.channel.describe(),
        ]
        if self.workload.to_dict() != _DEFAULT_WORKLOAD_DICT:
            parts.append(self.workload.describe())
        if self.trials != 1:
            parts.append(f"trials={self.trials}")
        if self.seed != 0:
            parts.append(f"seed={self.seed}")
        if self.max_rounds is not None:
            parts.append(f"max_rounds={self.max_rounds}")
        if self.engine != "auto":
            parts.append(f"engine={self.engine}")
        if self.memory_budget is not None:
            parts.append(f"memory_budget={self.memory_budget}")
        if self.telemetry:
            parts.append("telemetry=on")
        if self.backend != "numpy":
            parts.append(f"backend={self.backend}")
        return " | ".join(parts)

    def to_dict(self) -> dict:
        """Canonical nested plain-data form — the content-address view
        (:meth:`repro.runtime.ResultStore.scenario_key` hashes this)."""
        out: dict[str, Any] = {
            "graph": self.graph.to_dict(),
            "protocol": self.protocol.to_dict(),
            "channel": self.channel.to_dict(),
            "trials": int(self.trials),
            "seed": int(self.seed),
        }
        # Emitted only when non-default so plain broadcast scenarios hash
        # to the same content-address key shape they always did (the
        # canonicalized `source` rides inside the workload entry).
        if self.workload.to_dict() != _DEFAULT_WORKLOAD_DICT:
            out["workload"] = self.workload.to_dict()
        if self.max_rounds is not None:
            out["max_rounds"] = int(self.max_rounds)
        if self.engine != "auto":
            out["engine"] = str(self.engine)
        if self.memory_budget is not None:
            out["memory_budget"] = int(self.memory_budget)
        if self.telemetry:
            out["telemetry"] = True
        # Non-default only: default-backend scenarios hash to exactly
        # their pre-backend cache keys (and backend lands in ResultStore
        # keys automatically whenever it is non-numpy).
        if self.backend != "numpy":
            out["backend"] = str(self.backend)
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "Scenario":
        """Inverse of :meth:`to_dict` (also accepts the legacy ``source``
        scalar, which canonicalizes into the workload entry)."""
        extra = set(data) - set(_COMPONENT_FIELDS) - set(_SCALAR_FIELDS)
        if extra:
            raise ValueError(f"unknown scenario fields {sorted(extra)}")
        kwargs: dict[str, Any] = {
            "graph": GraphSpec.from_dict(data["graph"]),
        }
        if "protocol" in data:
            kwargs["protocol"] = ProtocolSpec.from_dict(data["protocol"])
        if "channel" in data:
            kwargs["channel"] = ChannelSpec.from_dict(data["channel"])
        if "workload" in data:
            kwargs["workload"] = WorkloadSpec.from_dict(data["workload"])
        for key in _SCALAR_FIELDS:
            if key in data:
                kwargs[key] = data[key]
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Eager validation
    # ------------------------------------------------------------------
    def validate(self) -> "Scenario":
        """Eagerly check every component spec without building the graph.

        The graph spec's parameters are checked against its family's
        registered domain (:attr:`~repro.scenario.registry.SpecEntry.check`)
        and builder signature; the protocol and channel specs are cheap,
        so they are simply built and discarded.  Invoked by
        :meth:`from_string`, the CLI's scenario resolution, and
        :meth:`ScenarioSweep.points <repro.scenario.sweep.ScenarioSweep.points>`
        so a bad grid fails before any simulation runs, not mid-sweep.
        Returns ``self`` so call sites can chain.
        """
        self.graph.validate()
        self.protocol.validate()
        self.workload.validate()
        self.protocol.build()
        channel_model = self.channel.build()
        # Workload x channel compatibility (value workloads need
        # exactly-one-neighbour reception semantics) fails here, before
        # any graph is built or simulation runs.
        self.workload.build().check_channel(channel_model)
        return self

    # ------------------------------------------------------------------
    # Overrides (the CLI's -S key=value hook and ScenarioSweep's grid)
    # ------------------------------------------------------------------
    def with_overrides(self, overrides: Mapping[str, Any]) -> "Scenario":
        """A copy with the given field overrides applied.

        Keys are scenario fields (``graph``, ``protocol``, ``channel``,
        ``workload``, ``trials``, ``seed``, ``source``, ``max_rounds``,
        ``engine``, ``memory_budget``, ``telemetry``, ``backend``) or
        dotted paths
        one level into a component spec (``channel.erasure_p``,
        ``protocol.name``, ``graph.family``).  Component values may be
        spec objects, spec strings, or canonical dicts; scalar values may
        be ints or their string forms — exactly what ``-S key=value``
        hands over.
        """
        out = self
        for key, value in overrides.items():
            head, dot, attr = key.partition(".")
            if dot:
                if head not in _COMPONENT_FIELDS:
                    raise KeyError(
                        f"unknown scenario override {key!r} (dotted paths "
                        f"start with one of {', '.join(_COMPONENT_FIELDS)})"
                    )
                component = getattr(out, head)
                if attr not in {f.name for f in fields(component)}:
                    raise KeyError(
                        f"{type(component).__name__} has no field {attr!r}"
                    )
                if isinstance(value, str) and attr not in (
                    "name", "family", "faults"
                ):
                    value = parse_value(value)
                component = replace(component, **{attr: value})
                out = replace(out, **{head: component})
            elif head in _COMPONENT_FIELDS:
                out = replace(out, **{head: _coerce_component(head, value)})
            elif head in _SCALAR_FIELDS:
                updates = {head: _coerce_scalar(head, value)}
                if (
                    head == "source"
                    and updates[head] is not None
                    and _source_only_broadcast(out.workload)
                ):
                    # The constructor folded an earlier `source=` into the
                    # workload segment; the override replaces it, so reset
                    # the workload and let __post_init__ re-canonicalize.
                    updates["workload"] = WorkloadSpec("broadcast")
                out = replace(out, **updates)
            else:
                known = ", ".join(_COMPONENT_FIELDS + _SCALAR_FIELDS)
                raise KeyError(
                    f"unknown scenario override {key!r} (known fields: {known})"
                )
        return out

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def seeds(self) -> tuple[Any, Any]:
        """``(protocol_seed, graph_seed)`` under the split discipline."""
        if self.graph.randomized:
            protocol_seed, graph_seed = spawn_seeds(self.seed, 2)
            return protocol_seed, graph_seed
        return self.seed, None

    def build(self) -> RealizedScenario:
        """Resolve every spec to its live object."""
        protocol_seed, graph_seed = self.seeds
        built = self.graph.build(seed=graph_seed)
        workload_spec = self.workload
        if workload_spec.to_dict() == _DEFAULT_WORKLOAD_DICT and built.source:
            # The graph family's default source (the chain's root) only
            # exists once the graph is realized — pin it on the default
            # broadcast workload here, exactly where `source=None` used
            # to resolve.
            workload_spec = WorkloadSpec(
                "broadcast", (), {"source": int(built.source)}
            )
        workload = workload_spec.build()
        channel_spec = self.channel
        channel = (
            None
            if channel_spec.to_dict() == {"name": "classic"}
            else channel_spec.build()
        )
        return RealizedScenario(
            built=built,
            protocol=self.protocol.build(),
            channel=channel,
            source=workload.protocol_source,
            protocol_seed=protocol_seed,
            workload=workload,
        )

    def run(self, executor=None, cache=None):
        """Run the scenario through the batched engine.

        Returns the :class:`~repro.radio.broadcast.BatchBroadcastResult`.

        ``executor`` (an :class:`~repro.runtime.Executor` or int job
        count) shards the trials across worker processes — bit-for-bit
        identical to the serial run, because per-trial streams are derived
        seeds either way.  ``cache`` (a
        :class:`~repro.runtime.ResultStore` or cache-root path) replays a
        spec-equal previous run and persists new ones under the
        scenario's canonical-dict key, regardless of which helper
        produced the entry.
        """
        from repro.runtime.executor import as_executor, as_store
        from repro.scenario.tasks import run_scenario, run_scenario_sharded

        store = as_store(cache) if cache is not None else None
        if store is not None:
            key = store.scenario_key(self)
            try:
                return store.get(key)
            except KeyError:
                pass
        exec_ = as_executor(executor)
        if exec_.jobs > 1 and self.trials > 1:
            result = run_scenario_sharded(self, exec_)
        else:
            result = run_scenario(self)
        if store is not None:
            store.put(key, result, meta={"scenario": self.describe()})
        return result
