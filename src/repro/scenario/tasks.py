"""Module-level scenario task functions — the runtime's unit of work.

``ParallelExecutor`` pickles a task function plus kwargs into worker
processes and the result store content-addresses what it computes.  With
the scenario API both reduce to *one* canonical payload: the pickled
:class:`~repro.scenario.spec.Scenario` itself.  No more bespoke task
function per study — everything that runs a simulation schedules one of:

* :func:`run_scenario` — the full :class:`~repro.radio.broadcast.BatchBroadcastResult`;
* :func:`scenario_summary` — a plain-JSON dict (rounds, completion, the
  graph family's ``meta`` facts) for tables and sidecars;
* :func:`run_scenario_shard` — a contiguous slice of a scenario's trials
  (the building block of :func:`run_scenario_sharded`, which splits one
  big batch across worker processes and merges the shards back into the
  bit-for-bit serial result).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util import as_rng, spawn_seeds
from repro.obs.tracing import maybe_span
from repro.radio.broadcast import (
    BatchBroadcastResult,
    merge_batches,
    run_broadcast_batch,
)

__all__ = [
    "expansion_summary",
    "merge_batches",
    "run_scenario",
    "run_scenario_shard",
    "run_scenario_sharded",
    "scenario_summary",
]


def _as_scenario(scenario):
    """Accept a :class:`Scenario`, spec string, or canonical dict."""
    from repro.scenario.spec import Scenario

    if isinstance(scenario, Scenario):
        return scenario
    if isinstance(scenario, str):
        return Scenario.from_string(scenario)
    if isinstance(scenario, dict):
        return Scenario.from_dict(scenario)
    raise TypeError(
        f"expected a Scenario, spec string, or canonical dict; "
        f"got {type(scenario).__name__}"
    )


def _run_realized(realized, scenario) -> BatchBroadcastResult:
    """The one engine invocation every scenario view shares — so the
    cached ``summary`` and ``result`` views of a spec can never disagree
    about how it was run."""
    with maybe_span(
        "engine.run", scenario=scenario.describe(), backend=scenario.backend
    ):
        return run_broadcast_batch(
            realized.built.graph,
            realized.protocol,
            trials=scenario.trials,
            max_rounds=scenario.max_rounds,
            seed=realized.protocol_seed,
            channel=realized.channel,
            engine=scenario.engine,
            memory_budget=scenario.memory_budget,
            workload=realized.workload,
            telemetry=scenario.telemetry,
            backend=scenario.backend,
        )


def run_scenario(scenario) -> BatchBroadcastResult:
    """Run one scenario inline and return the full batch result.

    This is the reference evaluation: ``Scenario.run`` with any executor
    or cache must reproduce its output bit for bit.
    """
    scenario = _as_scenario(scenario)
    return _run_realized(scenario.build(), scenario)


def run_scenario_shard(scenario, trial_seeds: Sequence[int]) -> BatchBroadcastResult:
    """Run a contiguous slice of a scenario's trials.

    ``trial_seeds`` are the per-trial children the full batch would derive
    (``spawn_seeds(protocol_seed, trials)``); handing the engine the exact
    children keeps every shard bit-for-bit aligned with the serial batch.
    """
    scenario = _as_scenario(scenario)
    realized = scenario.build()
    with maybe_span(
        "engine.run_shard", trials=len(trial_seeds), backend=scenario.backend
    ):
        return run_broadcast_batch(
            realized.built.graph,
            realized.protocol,
            trials=len(trial_seeds),
            max_rounds=scenario.max_rounds,
            trial_rngs=list(trial_seeds),
            channel=realized.channel,
            engine=scenario.engine,
            memory_budget=scenario.memory_budget,
            workload=realized.workload,
            telemetry=scenario.telemetry,
            backend=scenario.backend,
        )


# merge_batches grew a second caller (the MemoryBudget column sharder) and
# now lives next to the engine in repro.radio.broadcast; re-exported here
# because this module has always been its public home.


def run_scenario_sharded(scenario, executor) -> BatchBroadcastResult:
    """Split one scenario's trials across an executor's workers.

    Derives the same per-trial seed children the serial engine would,
    chunks them contiguously (one shard per worker), and merges the shard
    results — bit-for-bit equal to :func:`run_scenario`.
    """
    from repro.runtime.executor import as_executor

    scenario = _as_scenario(scenario)
    exec_ = as_executor(executor)
    protocol_seed, _ = scenario.seeds
    trial_seeds = spawn_seeds(as_rng(protocol_seed), scenario.trials)
    shards = min(exec_.jobs, scenario.trials)
    chunks = [c.tolist() for c in np.array_split(trial_seeds, shards)]
    calls = [
        {"scenario": scenario, "trial_seeds": chunk}
        for chunk in chunks
        if chunk
    ]
    with maybe_span(
        "scenario.sharded", shards=len(calls), trials=scenario.trials
    ):
        parts = exec_.map(run_scenario_shard, calls)
        return merge_batches(parts)


def _as_graph_spec(graph):
    """Accept a :class:`GraphSpec`, spec string, or canonical dict."""
    from repro.scenario.spec import GraphSpec

    if isinstance(graph, GraphSpec):
        return graph
    if isinstance(graph, str):
        return GraphSpec.from_string(graph)
    if isinstance(graph, dict):
        return GraphSpec.from_dict(graph)
    raise TypeError(
        f"expected a GraphSpec, spec string, or canonical dict; "
        f"got {type(graph).__name__}"
    )


def expansion_summary(graph, expansion="sampled", seed: int = 0, executor=None) -> dict:
    """One wireless-expansion measurement as a plain-JSON dict.

    The measurement-side sibling of :func:`scenario_summary`: ``graph`` is
    a :class:`~repro.scenario.spec.GraphSpec` (or spec string / canonical
    dict), ``expansion`` an
    :class:`~repro.expansion.spec.ExpansionSpec` (or its string / dict
    form).  ``seed`` follows the scenario split discipline — a randomized
    family consumes the second child of ``spawn_seeds(seed, 2)`` for
    graph construction and the estimator the first, exactly as
    :attr:`Scenario.seeds <repro.scenario.spec.Scenario.seeds>` splits —
    so one ``(graph, expansion, seed)`` triple is one reproducible
    measurement, content-addressed by
    :meth:`~repro.runtime.store.ResultStore.expansion_key`.

    ``executor`` shards candidate batches inside the estimator (results
    are bit-for-bit identical to serial, so it is not part of the
    identity).
    """
    from repro.expansion.spec import as_expansion_spec

    gspec = _as_graph_spec(graph)
    gspec.validate()
    espec = as_expansion_spec(expansion)
    if gspec.randomized:
        estimator_seed, graph_seed = spawn_seeds(seed, 2)
    else:
        estimator_seed, graph_seed = seed, None
    built = gspec.build(seed=graph_seed)
    estimate = espec.estimate(built.graph, rng=estimator_seed, executor=executor)
    out: dict = dict(built.meta)
    out.update(
        graph=gspec.describe(),
        expansion=espec.describe(),
        seed=int(seed),
        n=built.graph.n,
        beta_w=float(estimate.value),
        bound=estimate.bound,
        subset_size=int(estimate.subset.size),
        candidates=int(estimate.candidates),
    )
    return out


def scenario_summary(scenario) -> dict:
    """One scenario as a plain-JSON measurement dict.

    Merges the graph family's ``meta`` facts (the chain family reports
    ``s``, ``layers``, ``diameter``, ``km_bound``) with the batch
    outcome — the row format the CLI tables and result sidecars consume,
    and a drop-in superset of the legacy ``chain_broadcast_point`` dict.
    """
    scenario = _as_scenario(scenario)
    realized = scenario.build()
    batch = _run_realized(realized, scenario)
    rounds = [int(r) for r in batch.rounds]
    out: dict = dict(realized.built.meta)
    out.update(
        scenario=scenario.describe(),
        n=realized.built.graph.n,
        trials=scenario.trials,
        rounds=rounds,
        completed=[bool(c) for c in batch.completed],
        mean_rounds=float(np.mean(rounds)),
        completion_rate=float(batch.completion_rate),
    )
    return out
