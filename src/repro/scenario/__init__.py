"""repro.scenario — the declarative scenario API.

One picklable spec layer from graph → protocol → channel → workload →
runtime: a :class:`Scenario` names a graph family, a broadcast protocol,
a channel model, a workload (broadcast/gossip/aggregate/pipeline), a
trial count, and a seed — everything one of the paper's claims
quantifies over — and is constructible from a compact string::

    from repro.scenario import Scenario

    sc = Scenario.from_string(
        "random_regular(256, 8) | decay | erasure(0.1) | trials=64 | seed=0"
    )
    batch = sc.run()                        # the batched engine, one call
    sc.run(executor=4, cache="results/cache")   # parallel + cached, bit-for-bit

Specs round-trip losslessly through four views — string
(``from_string``/``describe``), canonical dict (``to_dict``/``from_dict``,
the content-address the result cache hashes), pickle (frozen dataclasses,
the payload worker processes receive), and live objects (``build``).
:class:`ScenarioSweep` sweeps over spec *fields* (grid or explicit list),
and the registries (:data:`GRAPHS`, :data:`PROTOCOLS`, plus the radio
layer's channels) are extensible and discoverable via
``repro scenarios list``.
"""

from repro.radio.channel import ChannelSpec
from repro.scenario.presets import SCENARIOS, get_scenario, register_scenario
from repro.scenario.registry import (
    GRAPHS,
    PROTOCOLS,
    BuiltGraph,
    SpecEntry,
    SpecRegistry,
)
from repro.scenario.spec import (
    GraphSpec,
    ProtocolSpec,
    RealizedScenario,
    Scenario,
)
from repro.scenario.sweep import ScenarioPoint, ScenarioSweep
from repro.workload import WORKLOADS, WorkloadSpec
from repro.scenario.tasks import (
    expansion_summary,
    merge_batches,
    run_scenario,
    run_scenario_shard,
    run_scenario_sharded,
    scenario_summary,
)

__all__ = [
    "BuiltGraph",
    "ChannelSpec",
    "GRAPHS",
    "GraphSpec",
    "PROTOCOLS",
    "ProtocolSpec",
    "RealizedScenario",
    "SCENARIOS",
    "Scenario",
    "ScenarioPoint",
    "ScenarioSweep",
    "SpecEntry",
    "SpecRegistry",
    "WORKLOADS",
    "WorkloadSpec",
    "expansion_summary",
    "get_scenario",
    "merge_batches",
    "register_scenario",
    "run_scenario",
    "run_scenario_shard",
    "run_scenario_sharded",
    "scenario_summary",
]
