"""Extensible registries behind the declarative scenario specs.

A spec string like ``"hypercube(10)"`` or ``"decay"`` resolves against a
:class:`SpecRegistry`: one for graph families (:data:`GRAPHS`), one for
protocols (:data:`PROTOCOLS`).  Channels reuse the radio layer's own
registry (:data:`repro.radio.CHANNELS` via
:class:`~repro.radio.channel.ChannelSpec`), promoted to the same spec
interface — so all three layers are discoverable through ``repro
scenarios list`` and third-party code can register new entries without
touching this module::

    from repro.scenario import GRAPHS
    GRAPHS.register("petersen", my_builder, summary="the Petersen graph")
    Scenario.from_string("petersen | decay | classic").run()

Graph builders may return a plain :class:`~repro.graphs.graph.Graph` or a
:class:`BuiltGraph` carrying a non-zero default broadcast source and a
``meta`` dict of instance facts (the chain family reports ``diameter`` and
the ``D·log₂(n/D)`` yardstick, which the CLI tables surface).  Randomized
families take an ``rng`` keyword; the scenario layer feeds it the derived
graph seed so a spec plus a seed is always one reproducible instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.graphs.graph import Graph

__all__ = ["BuiltGraph", "GRAPHS", "PROTOCOLS", "SpecEntry", "SpecRegistry"]


@dataclass(frozen=True)
class BuiltGraph:
    """A realized graph instance plus its scenario-facing defaults.

    ``source`` is the family's natural broadcast source (the chain's root);
    ``meta`` holds plain-data instance facts for experiment tables.
    """

    graph: Graph
    source: int = 0
    meta: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SpecEntry:
    """One registry row: a named, documented builder."""

    name: str
    builder: Callable[..., Any]
    summary: str = ""
    randomized: bool = False
    aliases: tuple[str, ...] = ()


class SpecRegistry:
    """Name → :class:`SpecEntry` mapping with aliases and helpful errors."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, SpecEntry] = {}
        self._aliases: dict[str, str] = {}

    def register(
        self,
        name: str,
        builder: Callable[..., Any],
        summary: str = "",
        randomized: bool = False,
        aliases: tuple[str, ...] = (),
    ) -> SpecEntry:
        """Add (or replace) an entry; returns it for chaining."""
        entry = SpecEntry(
            name=name,
            builder=builder,
            summary=summary,
            randomized=randomized,
            aliases=tuple(aliases),
        )
        self._entries[name] = entry
        for alias in entry.aliases:
            self._aliases[alias] = name
        return entry

    def canonical(self, name: str) -> str:
        """Resolve aliases to the canonical registry name."""
        key = name.strip().lower()
        return self._aliases.get(key, key)

    def get(self, name: str) -> SpecEntry:
        key = self.canonical(name)
        entry = self._entries.get(key)
        if entry is None:
            raise ValueError(
                f"unknown {self.kind} {name!r}; registered {self.kind}s: "
                f"{', '.join(self.names())}"
            )
        return entry

    def __contains__(self, name: str) -> bool:
        return self.canonical(name) in self._entries

    def names(self) -> list[str]:
        """Canonical names, sorted."""
        return sorted(self._entries)

    def items(self) -> list[tuple[str, SpecEntry]]:
        return sorted(self._entries.items())


# ----------------------------------------------------------------------
# Graph families
# ----------------------------------------------------------------------

GRAPHS = SpecRegistry("graph family")


def _build_chain(s: int, layers: int, rng=None) -> BuiltGraph:
    from repro.graphs.broadcast_chain import broadcast_chain

    chain = broadcast_chain(s, layers, rng=rng)
    d = chain.diameter_claim
    return BuiltGraph(
        graph=chain.graph,
        source=chain.root,
        meta={
            "s": s,
            "layers": layers,
            "diameter": d,
            "km_bound": float(d * np.log2(chain.graph.n / d)),
        },
    )


def _build_grid(rows: int, cols: int | None = None) -> Graph:
    from repro.graphs.planar import grid_2d

    return grid_2d(rows, cols if cols is not None else rows)


def _register_graphs() -> None:
    from repro.graphs import cplus, families, planar

    GRAPHS.register(
        "chain", _build_chain, randomized=True,
        summary="Section 5 chained-core lower-bound network: chain(s, layers)",
    )
    GRAPHS.register(
        "hypercube", families.hypercube,
        summary="d-dimensional hypercube Q_d: hypercube(d)",
    )
    GRAPHS.register(
        "random_regular", families.random_regular, randomized=True,
        summary="uniform random simple d-regular graph: random_regular(n, d)",
    )
    GRAPHS.register(
        "erdos_renyi", families.erdos_renyi, randomized=True,
        summary="G(n, p) random graph: erdos_renyi(n, p)",
    )
    GRAPHS.register(
        "grid", _build_grid,
        summary="2-D grid: grid(rows, cols) (cols defaults to rows)",
    )
    GRAPHS.register(
        "cycle", families.cycle_graph, summary="cycle C_n: cycle(n)",
    )
    GRAPHS.register(
        "path", families.path_graph, summary="path P_n: path(n)",
    )
    GRAPHS.register(
        "complete", families.complete_graph,
        summary="complete graph K_n: complete(n)",
    )
    GRAPHS.register(
        "star", families.star_graph,
        summary="star K_{1,n-1} centred on vertex 0: star(n)",
    )
    GRAPHS.register(
        "margulis", families.margulis_expander,
        summary="Margulis-Gabber-Galil expander on Z_m x Z_m: margulis(m)",
    )
    GRAPHS.register(
        "chordal_cycle", families.chordal_cycle_graph,
        summary="Lubotzky chordal cycle on Z_p (p prime): chordal_cycle(p)",
    )
    GRAPHS.register(
        "cplus", cplus.cplus_graph,
        summary="the paper's C+ opener (clique + weak source): cplus(clique)",
    )
    GRAPHS.register(
        "tree", planar.complete_binary_tree,
        summary="complete binary tree of a given height: tree(height)",
    )


# ----------------------------------------------------------------------
# Protocols
# ----------------------------------------------------------------------

PROTOCOLS = SpecRegistry("protocol")


def _register_protocols() -> None:
    from repro.radio.aloha import AlohaProtocol
    from repro.radio.protocols import (
        CollisionBackoffProtocol,
        DecayProtocol,
        FloodingProtocol,
        RoundRobinProtocol,
    )
    from repro.radio.spokesman_broadcast import SpokesmanBroadcastProtocol

    PROTOCOLS.register(
        "decay", DecayProtocol,
        summary="Bar-Yehuda-Goldreich-Itai Decay: decay(phase_length=...)",
    )
    PROTOCOLS.register(
        "flooding", FloodingProtocol,
        summary="every informed processor shouts every round",
    )
    PROTOCOLS.register(
        "round-robin", RoundRobinProtocol,
        summary="v transmits iff v = round mod n (slow but collision-free)",
    )
    PROTOCOLS.register(
        "aloha", AlohaProtocol,
        summary="fixed-probability slotted ALOHA: aloha(p)",
    )
    PROTOCOLS.register(
        "collision-backoff", CollisionBackoffProtocol,
        summary="AIMD backoff exploiting collision-detection feedback",
        aliases=("backoff",),
    )
    PROTOCOLS.register(
        "spokesman", SpokesmanBroadcastProtocol,
        summary="centralized spokesman-election genie scheduler",
    )


_register_graphs()
_register_protocols()
