"""Extensible registries behind the declarative scenario specs.

A spec string like ``"hypercube(10)"`` or ``"decay"`` resolves against a
:class:`SpecRegistry`: one for graph families (:data:`GRAPHS`), one for
protocols (:data:`PROTOCOLS`).  Channels reuse the radio layer's own
registry (:data:`repro.radio.CHANNELS` via
:class:`~repro.radio.channel.ChannelSpec`), promoted to the same spec
interface — so all three layers are discoverable through ``repro
scenarios list`` and third-party code can register new entries without
touching this module::

    from repro.scenario import GRAPHS
    GRAPHS.register("petersen", my_builder, summary="the Petersen graph")
    Scenario.from_string("petersen | decay | classic").run()

Graph builders may return a plain :class:`~repro.graphs.graph.Graph` or a
:class:`BuiltGraph` carrying a non-zero default broadcast source and a
``meta`` dict of instance facts (the chain family reports ``diameter`` and
the ``D·log₂(n/D)`` yardstick, which the CLI tables surface).  Randomized
families take an ``rng`` keyword; the scenario layer feeds it the derived
graph seed so a spec plus a seed is always one reproducible instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

# Shared with repro.workload's WORKLOADS registry — the machinery lives
# in repro._util.callspec; re-exported here for existing importers.
from repro._util.callspec import SpecEntry, SpecRegistry
from repro.graphs.graph import Graph

__all__ = [
    "BuiltGraph",
    "GRAPHS",
    "PROTOCOLS",
    "SpecEntry",
    "SpecRegistry",
]


@dataclass(frozen=True)
class BuiltGraph:
    """A realized graph instance plus its scenario-facing defaults.

    ``source`` is the family's natural broadcast source (the chain's root);
    ``meta`` holds plain-data instance facts for experiment tables.
    """

    graph: Graph
    source: int = 0
    meta: dict[str, Any] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Graph families
# ----------------------------------------------------------------------

GRAPHS = SpecRegistry("graph family", plural="graph families")


def _build_chain(s: int, layers: int, rng=None) -> BuiltGraph:
    from repro.graphs.broadcast_chain import broadcast_chain

    chain = broadcast_chain(s, layers, rng=rng)
    d = chain.diameter_claim
    return BuiltGraph(
        graph=chain.graph,
        source=chain.root,
        meta={
            "s": s,
            "layers": layers,
            "diameter": d,
            "km_bound": float(d * np.log2(chain.graph.n / d)),
        },
    )


def _build_grid(rows: int, cols: int | None = None) -> Graph:
    from repro.graphs.planar import grid_2d

    return grid_2d(rows, cols if cols is not None else rows)


# ----------------------------------------------------------------------
# Eager parameter checks (SpecEntry.check) — each mirrors its builder's
# own cheap validation, minus the construction work, so a bad spec fails
# at Scenario.validate() time instead of mid-sweep.  The regression tests
# in tests/scenario/test_scenario_validation.py pin check and builder
# together.  Checks receive the builder-normalized arguments (see
# _CallSpec.validate), so their parameter names need not match.
# ----------------------------------------------------------------------


def _check_chain(s: int, layers: int, rng=None) -> None:
    from repro._util import check_positive_int
    from repro.graphs.core_graph import core_graph_layout

    core_graph_layout(s)  # positive power of two
    check_positive_int(layers, "num_layers")


def _check_random_regular(n: int, d: int, rng=None) -> None:
    from repro._util import check_positive_int

    check_positive_int(n, "n")
    check_positive_int(d, "d")
    if (n * d) % 2 != 0:
        raise ValueError("n*d must be even for a d-regular graph")
    if d >= n:
        raise ValueError("need d < n")


def _check_erdos_renyi(n: int, p: float, rng=None) -> None:
    from repro._util import check_positive_int

    check_positive_int(n, "n")
    if not 0 <= p <= 1:
        raise ValueError(f"p must lie in [0, 1], got {p}")


def _check_grid(rows: int, cols: int | None = None) -> None:
    from repro._util import check_positive_int

    check_positive_int(rows, "rows")
    if cols is not None:
        check_positive_int(cols, "cols")


def _check_positive(name: str, minimum: int = 1):
    def check(value: int) -> None:
        from repro._util import check_positive_int

        check_positive_int(value, name)
        if value < minimum:
            raise ValueError(f"{name} must be >= {minimum}, got {value}")

    return check


def _check_chordal_cycle(p: int) -> None:
    from repro._util import check_positive_int

    check_positive_int(p, "p")
    if p < 3 or any(p % q == 0 for q in range(2, int(p**0.5) + 1)):
        raise ValueError("chordal_cycle_graph requires a prime p >= 3")


def _check_tree(height: int) -> None:
    from repro._util import check_positive_int

    check_positive_int(height + 1, "height + 1")


def _register_graphs() -> None:
    from repro.graphs import cplus, families, planar

    GRAPHS.register(
        "chain", _build_chain, randomized=True,
        summary="Section 5 chained-core lower-bound network: chain(s, layers)",
        check=_check_chain,
    )
    GRAPHS.register(
        "hypercube", families.hypercube,
        summary="d-dimensional hypercube Q_d: hypercube(d)",
        check=_check_positive("dimension"),
    )
    GRAPHS.register(
        "random_regular", families.random_regular, randomized=True,
        summary="uniform random simple d-regular graph: random_regular(n, d)",
        check=_check_random_regular,
    )
    GRAPHS.register(
        "erdos_renyi", families.erdos_renyi, randomized=True,
        summary="G(n, p) random graph: erdos_renyi(n, p)",
        check=_check_erdos_renyi,
    )
    GRAPHS.register(
        "grid", _build_grid,
        summary="2-D grid: grid(rows, cols) (cols defaults to rows)",
        check=_check_grid,
    )
    GRAPHS.register(
        "cycle", families.cycle_graph, summary="cycle C_n: cycle(n)",
        check=_check_positive("n", minimum=3),
    )
    GRAPHS.register(
        "path", families.path_graph, summary="path P_n: path(n)",
        check=_check_positive("n"),
    )
    GRAPHS.register(
        "complete", families.complete_graph,
        summary="complete graph K_n: complete(n)",
        check=_check_positive("n"),
    )
    GRAPHS.register(
        "star", families.star_graph,
        summary="star K_{1,n-1} centred on vertex 0: star(n)",
        check=_check_positive("n", minimum=2),
    )
    GRAPHS.register(
        "margulis", families.margulis_expander,
        summary="Margulis-Gabber-Galil expander on Z_m x Z_m: margulis(m)",
        check=_check_positive("side", minimum=2),
    )
    GRAPHS.register(
        "chordal_cycle", families.chordal_cycle_graph,
        summary="Lubotzky chordal cycle on Z_p (p prime): chordal_cycle(p)",
        check=_check_chordal_cycle,
    )
    GRAPHS.register(
        "cplus", cplus.cplus_graph,
        summary="the paper's C+ opener (clique + weak source): cplus(clique)",
        check=_check_positive("clique_size", minimum=3),
    )
    GRAPHS.register(
        "tree", planar.complete_binary_tree,
        summary="complete binary tree of a given height: tree(height)",
        check=_check_tree,
    )


# ----------------------------------------------------------------------
# Protocols
# ----------------------------------------------------------------------

PROTOCOLS = SpecRegistry("protocol")


def _register_protocols() -> None:
    from repro.radio.aloha import AlohaProtocol
    from repro.radio.protocols import (
        CollisionBackoffProtocol,
        DecayProtocol,
        FloodingProtocol,
        RoundRobinProtocol,
    )
    from repro.radio.spokesman_broadcast import SpokesmanBroadcastProtocol

    PROTOCOLS.register(
        "decay", DecayProtocol,
        summary="Bar-Yehuda-Goldreich-Itai Decay: decay(phase_length=...)",
    )
    PROTOCOLS.register(
        "flooding", FloodingProtocol,
        summary="every informed processor shouts every round",
    )
    PROTOCOLS.register(
        "round-robin", RoundRobinProtocol,
        summary="v transmits iff v = round mod n (slow but collision-free)",
    )
    PROTOCOLS.register(
        "aloha", AlohaProtocol,
        summary="fixed-probability slotted ALOHA: aloha(p)",
    )
    PROTOCOLS.register(
        "collision-backoff", CollisionBackoffProtocol,
        summary="AIMD backoff exploiting collision-detection feedback",
        aliases=("backoff",),
    )
    PROTOCOLS.register(
        "spokesman", SpokesmanBroadcastProtocol,
        summary="centralized spokesman-election genie scheduler",
    )


_register_graphs()
_register_protocols()
