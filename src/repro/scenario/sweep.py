"""Sweeps over scenario *spec fields* — grids and explicit lists.

Where :func:`repro.analysis.sweep.run_sweep` sweeps a callable over a
parameter grid, :class:`ScenarioSweep` sweeps a :class:`Scenario` over its
own fields: each grid dimension names a scenario override (``"graph"``,
``"channel.erasure_p"``, ``"trials"``, …) and each grid point is a
concrete scenario.  That closes the loop the runtime layer opened —
canonical spec dicts become the content-addressed
:class:`~repro.runtime.store.ResultStore` keys and the pickled specs
become the :class:`~repro.runtime.executor.ParallelExecutor` task
payloads, with no bespoke task function per study::

    sweep = ScenarioSweep(
        base=Scenario.from_string("chain(8, 2) | decay | classic | trials=8"),
        grid={"graph": ["chain(8, 2)", "chain(8, 4)", "chain(8, 8)"],
              "channel.erasure_p": [0.0, 0.1]},
        repetitions=3,
        seed=0,
    )
    points = sweep.run(executor=4, cache="results/cache")

Seed discipline matches ``run_sweep`` exactly: one child seed per
(grid point, repetition) pair, derived grid-major from the master seed,
so the same sweep is bit-for-bit identical serial, parallel, or replayed
from a warm cache.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro._util import as_rng, spawn_seeds
from repro.scenario.spec import Scenario

__all__ = ["ScenarioPoint", "ScenarioSweep"]


@dataclass(frozen=True)
class ScenarioPoint:
    """One evaluated sweep point: the overrides that produced it, the
    concrete scenario, and the result (a summary dict by default)."""

    overrides: dict[str, Any]
    scenario: Scenario
    result: Any


def _jsonable(value: Any) -> Any:
    """Grid values rendered for manifests (specs become their strings)."""
    if hasattr(value, "describe"):
        return value.describe()
    if isinstance(value, Scenario):
        return value.describe()
    return value


class ScenarioSweep:
    """A grid (or explicit list) of scenarios, runnable as one unit.

    Parameters
    ----------
    base:
        The scenario every grid point starts from (grid mode).
    grid:
        Mapping of scenario override keys (see
        :meth:`Scenario.with_overrides`) to value lists; the cartesian
        product is swept in lexicographic-by-key order, mirroring
        ``run_sweep``.
    scenarios:
        Explicit scenario list (specs or strings) — mutually exclusive
        with ``base``/``grid``.
    repetitions:
        Independent repetitions per grid point, each with its own derived
        seed.
    seed:
        Master seed for the per-point seed derivation.  ``None`` with
        ``repetitions == 1`` keeps each scenario's own ``seed`` field
        (spec-first purity); otherwise seeds are derived exactly as
        ``run_sweep`` derives them.
    """

    def __init__(
        self,
        base: Scenario | str | None = None,
        grid: Mapping[str, Sequence] | None = None,
        scenarios: Sequence[Scenario | str] | None = None,
        repetitions: int = 1,
        seed=None,
    ):
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if (scenarios is None) == (base is None):
            raise ValueError("provide exactly one of base (+grid) and scenarios")
        if scenarios is not None and grid is not None:
            raise ValueError("grid only applies to a base scenario")
        if isinstance(base, str):
            base = Scenario.from_string(base)
        self.base = base
        self.grid = dict(grid) if grid else {}
        self.explicit = (
            None
            if scenarios is None
            else [
                s if isinstance(s, Scenario) else Scenario.from_string(s)
                for s in scenarios
            ]
        )
        self.repetitions = int(repetitions)
        self.seed = seed
        for key, values in self.grid.items():
            if isinstance(values, (str, bytes)) or not hasattr(values, "__len__"):
                raise TypeError(
                    f"sweep dimension {key!r} must be a non-string sequence"
                )
            if len(values) == 0:
                raise ValueError(f"sweep dimension {key!r} is empty")

    def _grid_points(self) -> list[dict[str, Any]]:
        keys = sorted(self.grid)
        return [
            dict(zip(keys, combo))
            for combo in itertools.product(*(self.grid[k] for k in keys))
        ]

    def points(self) -> list[tuple[dict[str, Any], Scenario]]:
        """The concrete ``(overrides, scenario)`` schedule, grid-major with
        repetitions innermost — seed-expanded and deterministic.

        Every scheduled scenario is eagerly validated
        (:meth:`Scenario.validate`), so a grid containing an
        out-of-domain spec fails here — before any task runs — rather
        than mid-sweep.
        """
        if self.explicit is not None:
            pairs = [({}, sc.validate()) for sc in self.explicit]
        else:
            pairs = [
                (overrides, self.base.with_overrides(overrides).validate())
                for overrides in self._grid_points()
            ]
        if self.seed is None and self.repetitions == 1:
            return pairs
        seeds = spawn_seeds(as_rng(self.seed), len(pairs) * self.repetitions)
        out: list[tuple[dict[str, Any], Scenario]] = []
        for i, (overrides, scenario) in enumerate(pairs):
            for seed in seeds[i * self.repetitions : (i + 1) * self.repetitions]:
                out.append(
                    (overrides, scenario.with_overrides({"seed": seed}))
                )
        return out

    def scenarios(self) -> list[Scenario]:
        """The concrete scenarios, in schedule order."""
        return [scenario for _, scenario in self.points()]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _view_fn(self, summary: bool):
        from repro.scenario.tasks import run_scenario, scenario_summary

        return (scenario_summary, "summary") if summary else (run_scenario, "result")

    def manifest(self, store, summary: bool = True):
        """The :class:`~repro.runtime.manifest.SweepManifest` a cached run
        of this sweep executes — scenario keys, in schedule order."""
        from repro.runtime.executor import as_store
        from repro.runtime.manifest import SweepManifest

        store = as_store(store)
        fn, view = self._view_fn(summary)
        points = self.points()
        return SweepManifest(
            fn=f"scenario:{view}",
            mode="fn",
            space={k: [_jsonable(v) for v in vs] for k, vs in sorted(self.grid.items())},
            repetitions=self.repetitions,
            static=self.base.to_dict() if self.base is not None else None,
            seeds=[int(sc.seed) for _, sc in points],
            keys=[store.scenario_key(sc, view=view) for _, sc in points],
            salt=store.salt,
        )

    def run(
        self, executor=None, cache=None, summary: bool = True
    ) -> list[ScenarioPoint]:
        """Evaluate every scenario of the sweep.

        ``summary=True`` (default) runs :func:`scenario_summary` (plain
        dicts, table-friendly); ``summary=False`` returns full
        :class:`~repro.radio.broadcast.BatchBroadcastResult` objects.

        ``executor`` schedules one task per scenario across worker
        processes; ``cache`` replays spec-equal completed tasks and
        persists new results as they land (saving the manifest first, so
        interrupted sweeps resume).  Results are bit-for-bit identical
        whichever executor runs them and whether they were computed or
        replayed.
        """
        import math

        from repro.runtime.executor import as_executor, as_store

        fn, view = self._view_fn(summary)
        points = self.points()
        store = as_store(cache) if cache is not None else None
        results: list[Any] = [None] * len(points)
        done = [False] * len(points)
        keys: list[str] | None = None
        walls: list = [None] * len(points)
        manifest = None
        if store is not None:
            from repro.runtime.manifest import SweepManifest

            manifest = self.manifest(store, summary=summary)
            # A prior run may have recorded per-task wall times; recover
            # them so cache replays can credit the compute they skip.
            try:
                prior = SweepManifest.load(store, manifest.sweep_id)
                if prior.walls is not None and len(prior.walls) == len(points):
                    walls = list(prior.walls)
            except (OSError, ValueError, KeyError):
                pass
            manifest = manifest.with_walls(walls)
            manifest.save(store)
            keys = manifest.keys
            for i, key in enumerate(keys):
                try:
                    results[i] = store.get(key)
                    done[i] = True
                    if walls[i]:
                        store.record_time_saved(walls[i])
                except KeyError:
                    pass
        pending = [i for i in range(len(points)) if not done[i]]
        calls = [{"scenario": points[i][1]} for i in pending]
        for j, result, seconds in as_executor(executor).imap_timed(fn, calls):
            i = pending[j]
            results[i] = result
            done[i] = True
            if not math.isnan(seconds):
                walls[i] = seconds
            if store is not None and keys is not None:
                store.put(
                    keys[i],
                    result,
                    meta={"scenario": points[i][1].describe()},
                )
        if store is not None and manifest is not None and pending:
            manifest.with_walls(walls).save(store)
        return [
            ScenarioPoint(overrides=dict(ov), scenario=sc, result=res)
            for (ov, sc), res in zip(points, results)
        ]
