"""repro — a full reproduction of *Wireless Expanders* (SPAA 2018).

Attali, Parter, Peleg and Solomon introduce **wireless expansion**: the
right notion of neighbourhood expansion for collision-limited radio
networks, sitting between ordinary vertex expansion and unique-neighbour
expansion (``β ≥ βw ≥ βu``).  This package implements, from scratch:

* the graph substrates and every construction in the paper (``C⁺``,
  ``Gbad``, the core graph and its generalizations, the worst-case plugged
  expanders, the Section 5 broadcast chains) — :mod:`repro.graphs`;
* exact and sampled analyzers for all three expansion notions, the spectral
  toolbox, and every closed-form bound — :mod:`repro.expansion`;
* the spokesman-election algorithms (randomized decay-style sampling and
  the whole Appendix A family) — :mod:`repro.spokesman`;
* a synchronous collision-model radio network simulator with Decay,
  flooding, round-robin and spokesman-aided broadcast — :mod:`repro.radio`;
* the experiment harness regenerating every claim as a measured table —
  :mod:`repro.analysis` and the ``benchmarks/`` directory;
* the execution runtime farming sweep tasks across processes with a
  content-addressed result cache and resumable manifests —
  :mod:`repro.runtime`;
* the declarative scenario layer tying all of the above together: one
  picklable spec from graph → protocol → channel → runtime —
  :mod:`repro.scenario`.

Quickstart::

    from repro import Scenario

    batch = Scenario.from_string(
        "hypercube(10) | decay | erasure(0.1) | trials=64 | seed=0"
    ).run()
    print(batch.completion_rate, batch.round_quantiles())
"""

from repro.analysis import (
    fit_loglinear,
    render_table,
    run_sweep,
    summarize,
    write_table,
)
from repro.expansion import (
    bipartite_expansion_exact,
    bipartite_unique_expansion_exact,
    expansion_of_set,
    kushilevitz_mansour_lower_bound,
    lemma31_verify,
    max_unique_coverage_exact,
    mg_bound,
    second_eigenvalue,
    theorem11_shape,
    unique_expansion_exact,
    unique_expansion_of_set,
    vertex_expansion_exact,
    vertex_expansion_sampled,
    wireless_expansion_exact,
    wireless_expansion_of_set_exact,
)
from repro.graphs import (
    BipartiteGraph,
    Graph,
    arboricity,
    boosted_core,
    broadcast_chain,
    core_graph,
    core_graph_max_unique_coverage,
    core_graph_min_expansion,
    cplus_graph,
    diluted_core,
    gbad,
    generalized_core,
    hypercube,
    margulis_expander,
    random_bipartite_regular,
    random_regular,
    worst_case_expander,
)
from repro.radio import (
    ChannelSpec,
    DecayProtocol,
    FloodingProtocol,
    RadioNetwork,
    RoundRobinProtocol,
    SpokesmanBroadcastProtocol,
    measure_chain_broadcast,
    run_broadcast,
)
from repro.scenario import (
    GraphSpec,
    ProtocolSpec,
    Scenario,
    ScenarioSweep,
)
from repro.spokesman import (
    SpokesmanResult,
    spokesman_exact,
    spokesman_greedy_add,
    spokesman_naive_greedy,
    spokesman_partition,
    spokesman_portfolio,
    spokesman_recursive,
    spokesman_sampling,
    wireless_lower_bound_of_set,
)

__version__ = "1.0.0"

__all__ = [
    "BipartiteGraph",
    "ChannelSpec",
    "DecayProtocol",
    "FloodingProtocol",
    "Graph",
    "GraphSpec",
    "ProtocolSpec",
    "RadioNetwork",
    "Scenario",
    "ScenarioSweep",
    "RoundRobinProtocol",
    "SpokesmanBroadcastProtocol",
    "SpokesmanResult",
    "__version__",
    "arboricity",
    "bipartite_expansion_exact",
    "bipartite_unique_expansion_exact",
    "boosted_core",
    "broadcast_chain",
    "core_graph",
    "core_graph_max_unique_coverage",
    "core_graph_min_expansion",
    "cplus_graph",
    "diluted_core",
    "expansion_of_set",
    "fit_loglinear",
    "gbad",
    "generalized_core",
    "hypercube",
    "kushilevitz_mansour_lower_bound",
    "lemma31_verify",
    "margulis_expander",
    "max_unique_coverage_exact",
    "measure_chain_broadcast",
    "mg_bound",
    "random_bipartite_regular",
    "random_regular",
    "render_table",
    "run_broadcast",
    "run_sweep",
    "second_eigenvalue",
    "spokesman_exact",
    "spokesman_greedy_add",
    "spokesman_naive_greedy",
    "spokesman_partition",
    "spokesman_portfolio",
    "spokesman_recursive",
    "spokesman_sampling",
    "summarize",
    "theorem11_shape",
    "unique_expansion_exact",
    "unique_expansion_of_set",
    "vertex_expansion_exact",
    "vertex_expansion_sampled",
    "wireless_expansion_exact",
    "wireless_expansion_of_set_exact",
    "wireless_lower_bound_of_set",
    "worst_case_expander",
    "write_table",
]
