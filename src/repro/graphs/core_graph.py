"""The core graph of Lemma 4.4 (Figure 2) — the paper's technical highlight.

Construction.  Take a perfect binary tree ``T_S`` with ``s`` leaves (``s`` a
power of two).  Leaves are identified with the left side ``S``.  Every tree
vertex ``w`` at level ``i`` (root = level 0, leaves = level ``log s``) owns a
block ``N_w`` of ``s / 2^i`` fresh right-side vertices; a leaf ``z`` is
adjacent to every vertex of every block owned by an ancestor of ``z``
(including ``z`` itself).  Hence:

1. ``|N| = s·log(2s)``                    (``log 2s`` levels of ``s`` each),
2. every left vertex has degree ``2s − 1``  (``Σ_i s/2^i``),
3. ``Δ_N = s`` and ``δ_N ≤ 2s / log(2s)``,
4. ordinary expansion ``β ≥ log 2s``,
5. wireless coverage ``max_{S'} |Γ¹_S(S')| ≤ 2s``, i.e. the wireless
   expansion loses a ``Θ(log 2s)`` factor — matching Theorem 1.1's positive
   bound and proving Theorem 1.2.

Because adjacency is "leaf under ancestor", a right vertex in block ``N_w``
is uniquely covered by ``S'`` **iff exactly one selected leaf lies in the
subtree of** ``w``.  That observation turns both extremal quantities into
exact tree DPs, so this module verifies properties (4) and (5) *exactly* even
for graphs far beyond brute-force range:

* :func:`core_graph_max_unique_coverage` — O(s) DP for the true
  ``max_{S'} |Γ¹_S(S')|`` (with an optimal witness subset);
* :func:`core_graph_min_expansion` — O(s²) tree-knapsack DP for the true
  ``min_{S'} |Γ(S')| / |S'|``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive_int, ilog2, is_power_of_two
from repro.graphs.bipartite import BipartiteGraph

__all__ = [
    "CoreGraphLayout",
    "core_graph",
    "core_graph_layout",
    "core_graph_max_unique_coverage",
    "core_graph_min_expansion",
    "core_graph_properties",
]


@dataclass(frozen=True)
class CoreGraphLayout:
    """Index arithmetic for the core graph's right side.

    Right-side ids are laid out level-major: level ``i`` occupies the id
    range ``[i·s, (i+1)·s)``; within a level, tree vertex ``t``
    (``0 ≤ t < 2^i``) owns the contiguous block of size ``s / 2^i`` starting
    at ``i·s + t·(s / 2^i)``.
    """

    s: int

    @property
    def levels(self) -> int:
        """Number of tree levels, ``log s + 1 = log 2s``."""
        return ilog2(self.s) + 1

    @property
    def n_right(self) -> int:
        """``|N| = s · log 2s``."""
        return self.s * self.levels

    def block_size(self, level: int) -> int:
        """``|N_w| = s / 2^level`` for any tree vertex at ``level``."""
        self._check_level(level)
        return self.s >> level

    def block(self, level: int, tree_index: int) -> range:
        """Right-side ids of ``N_w`` for tree vertex ``tree_index`` at
        ``level`` (tree vertices are numbered left-to-right per level)."""
        self._check_level(level)
        if not 0 <= tree_index < (1 << level):
            raise ValueError(
                f"tree index must lie in [0, {1 << level}), got {tree_index}"
            )
        size = self.block_size(level)
        start = level * self.s + tree_index * size
        return range(start, start + size)

    def ancestor(self, leaf: int, level: int) -> int:
        """Tree index of leaf ``leaf``'s ancestor at ``level``."""
        if not 0 <= leaf < self.s:
            raise ValueError(f"leaf must lie in [0, {self.s}), got {leaf}")
        self._check_level(level)
        return leaf >> (self.levels - 1 - level)

    def level_of_right(self, v: int) -> int:
        """Tree level owning right vertex ``v``."""
        if not 0 <= v < self.n_right:
            raise ValueError(f"right id must lie in [0, {self.n_right}), got {v}")
        return v // self.s

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.levels:
            raise ValueError(
                f"level must lie in [0, {self.levels}), got {level}"
            )


def core_graph_layout(s: int) -> CoreGraphLayout:
    """Validated :class:`CoreGraphLayout` for ``s`` (a positive power of two)."""
    check_positive_int(s, "s")
    if not is_power_of_two(s):
        raise ValueError(f"core graph requires s to be a power of two, got {s}")
    return CoreGraphLayout(s)


def core_graph(s: int) -> BipartiteGraph:
    """Build the Lemma 4.4 core graph ``G_S = (S, N, E_S)`` for ``|S| = s``."""
    layout = core_graph_layout(s)
    leaves = np.arange(s, dtype=np.int64)
    lefts = []
    rights = []
    for level in range(layout.levels):
        size = layout.block_size(level)
        anc = leaves >> (layout.levels - 1 - level)
        starts = level * s + anc * size
        # Each leaf connects to the whole ancestor block at this level.
        lefts.append(np.repeat(leaves, size))
        rights.append(
            (starts[:, None] + np.arange(size, dtype=np.int64)[None, :]).ravel()
        )
    edges = np.column_stack([np.concatenate(lefts), np.concatenate(rights)])
    return BipartiteGraph(s, layout.n_right, edges)


def core_graph_max_unique_coverage(
    s: int, return_witness: bool = False
) -> int | tuple[int, np.ndarray]:
    """Exact ``max_{S' ⊆ S} |Γ¹_S(S')|`` on the core graph, via tree DP.

    A block ``N_w`` (size ``s/2^i``) is fully uniquely covered iff exactly
    one selected leaf lies below ``w``, else contributes nothing.  DP state
    per subtree: number of selected leaves clipped to {0, 1, 2+}; value =
    best uniquely-covered mass inside the subtree.  Lemma 4.4(5) proves the
    answer is ``≤ 2s − 1``; this function returns the true optimum (and a
    witness subset when ``return_witness`` is set).
    """
    layout = core_graph_layout(s)
    levels = layout.levels

    # dp[t] for current level: tuple of (value0, value1, value2plus).
    # Unreachable states use -1.  Choices recorded for witness backtracking.
    NEG = -1
    leaf_dp = np.empty((s, 3), dtype=np.int64)
    leaf_dp[:, 0] = 0  # not selected: nothing covered
    leaf_dp[:, 1] = 1  # selected: the leaf's own singleton block is unique
    leaf_dp[:, 2] = NEG
    dp = leaf_dp
    # choice[level][t, state] = (left_state, right_state) used; -1 = invalid
    choices: list[np.ndarray] = []

    for level in range(levels - 2, -1, -1):
        width = 1 << level
        block = layout.block_size(level)
        new_dp = np.full((width, 3), NEG, dtype=np.int64)
        choice = np.full((width, 3, 2), -1, dtype=np.int64)
        left = dp[0::2]
        right = dp[1::2]
        for state_l in range(3):
            for state_r in range(3):
                valid = (left[:, state_l] >= 0) & (right[:, state_r] >= 0)
                total_sel = state_l + state_r
                state = min(total_sel, 2)
                bonus = block if state == 1 else 0
                value = left[:, state_l] + right[:, state_r] + bonus
                better = valid & (value > new_dp[:, state])
                new_dp[better, state] = value[better]
                choice[better, state, 0] = state_l
                choice[better, state, 1] = state_r
        choices.append(choice)
        dp = new_dp

    best_state = int(np.argmax(dp[0]))
    best = int(dp[0, best_state])
    if not return_witness:
        return best

    # Backtrack the recorded choices from the root down to the leaves.
    states = {0: best_state}  # tree_index -> state at current level
    for level in range(0, levels - 1):
        choice = choices[levels - 2 - level]
        nxt: dict[int, int] = {}
        for t, state in states.items():
            state_l, state_r = choice[t, state]
            nxt[2 * t] = int(state_l)
            nxt[2 * t + 1] = int(state_r)
        states = nxt
    witness = np.array(
        sorted(leaf for leaf, state in states.items() if state == 1),
        dtype=np.int64,
    )
    return best, witness


def core_graph_min_expansion(s: int) -> tuple[float, int, int]:
    """Exact ``min_{∅ ≠ S' ⊆ S} |Γ(S')| / |S'|`` on the core graph.

    Uses the tree-knapsack DP ``g(w, j) = min`` total ancestor-block mass
    inside ``subtree(w)`` over choices of ``j`` leaves below ``w`` (a block
    counts iff at least one selected leaf lies below its owner).  Returns
    ``(expansion, best_k, neighborhood_size)`` where ``best_k`` attains the
    minimum.  Lemma 4.4(4) proves ``expansion ≥ log 2s``.
    """
    layout = core_graph_layout(s)
    levels = layout.levels
    INF = np.iinfo(np.int64).max // 4

    # Leaves: selecting the leaf costs its own block (size 1).
    dp = np.full((s, 2), INF, dtype=np.int64)
    dp[:, 0] = 0
    dp[:, 1] = 1
    size_below = 1

    for level in range(levels - 2, -1, -1):
        width = 1 << level
        block = layout.block_size(level)
        cap = size_below * 2
        new_dp = np.full((width, cap + 1), INF, dtype=np.int64)
        left = dp[0::2]
        right = dp[1::2]
        # Tree-knapsack merge, vectorized over the tree vertices of a level.
        for j1 in range(size_below + 1):
            l_col = left[:, j1]
            for j2 in range(size_below + 1):
                j = j1 + j2
                value = l_col + right[:, j2]
                if j >= 1:
                    value = value + block
                np.minimum(new_dp[:, j], value, out=new_dp[:, j])
        dp = new_dp
        size_below = cap

    root = dp[0]
    ks = np.arange(1, s + 1)
    ratios = root[1:] / ks
    best_idx = int(np.argmin(ratios))
    return float(ratios[best_idx]), int(ks[best_idx]), int(root[1 + best_idx])


def core_graph_properties(s: int) -> dict[str, float | int]:
    """Closed-form property sheet of Lemma 4.4 for a given ``s``.

    These are the *claimed* values; the benchmarks compare them against
    measured values on the constructed graph.
    """
    layout = core_graph_layout(s)
    log2s = layout.levels  # log2(2s) since s is a power of two
    return {
        "s": s,
        "n_right": s * log2s,
        "left_degree": 2 * s - 1,
        "max_right_degree": s,
        "avg_right_degree_bound": 2 * s / log2s,
        "expansion_lower_bound": log2s,
        "wireless_coverage_upper_bound": 2 * s,
        "wireless_fraction_upper_bound": 2 / log2s,
    }
