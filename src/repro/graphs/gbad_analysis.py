"""The Remark 1 run-length calculus for ``Gbad`` (after Lemma 3.3).

For a run ``S_i`` of ``l`` consecutive cycle vertices the remark computes
two candidate sub-selections:

* take the whole run: ``f(l) = ((2 − l)·Δ + 2(l − 1)·β) / l`` uniquely
  covered per selected vertex (shared blocks between consecutive selected
  vertices collide);
* take every second vertex: ``g(l) = Δ/2`` per *run* vertex for even ``l``
  (``(l + 1)·Δ/(2l)`` for odd ``l``) — no collisions at all.

Both decrease in ``l``, so
``βw(Gbad) ≥ max{lim f, lim g} = max{2β − Δ, Δ/2}``.  This module exposes
``f``, ``g`` and the induced prediction so the experiments can verify the
remark's arithmetic against exact enumeration, run length by run length.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int

__all__ = [
    "alternating_run_payoff",
    "full_run_payoff",
    "gbad_run_subset",
    "predicted_run_wireless",
]


def full_run_payoff(length: int, delta: int, beta: int) -> float:
    """``f(l)``: per-vertex unique coverage when a whole run of ``l < s``
    consecutive vertices transmits.

    The run covers ``l·Δ`` edge-endpoints; each of the ``l − 1`` internal
    shared blocks (size ``Δ − β``) is covered twice and contributes nothing.
    """
    check_positive_int(length, "length")
    return ((2 - length) * delta + 2 * (length - 1) * beta) / length


def alternating_run_payoff(length: int, delta: int) -> float:
    """``g(l)``: per-vertex unique coverage when every second vertex of a
    run of ``l`` transmits (no two selected are consecutive ⇒ no
    collisions)."""
    check_positive_int(length, "length")
    if length % 2 == 0:
        return delta / 2
    return (length + 1) * delta / (2 * length)


def predicted_run_wireless(length: int, delta: int, beta: int) -> float:
    """The remark's per-run prediction ``max{f(l), g(l)}``."""
    return max(
        full_run_payoff(length, delta, beta),
        alternating_run_payoff(length, delta),
    )


def gbad_run_subset(start: int, length: int, s: int, step: int = 1) -> np.ndarray:
    """Left-vertex ids of a run on the ``Gbad`` cycle.

    ``step = 1`` yields the whole run (the ``f`` selection); ``step = 2``
    every second vertex (the ``g`` selection).  Indices wrap modulo ``s``.
    """
    check_positive_int(length, "length")
    check_positive_int(step, "step")
    if length > s:
        raise ValueError(f"run length {length} exceeds cycle size {s}")
    return (start + np.arange(0, length, step, dtype=np.int64)) % s
