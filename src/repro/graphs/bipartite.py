"""Bipartite graph kernel: the workhorse data structure of the reproduction.

Section 4.1 of the paper reduces every expansion question about a vertex set
``S`` in a graph ``G`` to a bipartite graph ``G_S = (S, N, E_S)`` whose left
side is ``S`` and whose right side is the external neighbourhood
``N = Γ⁻(S)`` (edges internal to ``S`` or ``N`` are irrelevant for the
expansion quantities).  All spokesman-election algorithms, the core-graph
constructions of Section 4.3, and the exact wireless-expansion computation
operate on this structure.

Performance notes (per the hpc-parallel guides): adjacency is stored as CSR
index arrays in *both* directions so that each side's neighbourhood scans are
contiguous; unique-cover counting — the single hottest operation in the
library — is a ``scipy.sparse`` mat-vec (``counts = B @ x``) followed by a
vectorized comparison, never a Python loop over vertices.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = ["BipartiteGraph"]


def _csr_from_edges(
    n_rows: int, rows: np.ndarray, cols: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Build (indptr, indices) CSR arrays with sorted, deduplicated rows."""
    order = np.lexsort((cols, rows))
    rows = rows[order]
    cols = cols[order]
    if len(rows) > 1:
        dup = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
        if dup.any():
            i = int(np.flatnonzero(dup)[0])
            raise ValueError(
                f"duplicate edge ({int(rows[i + 1])}, {int(cols[i + 1])})"
            )
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, cols.astype(np.int64, copy=False)


class BipartiteGraph:
    """An undirected bipartite graph with sides ``L`` (left) and ``R`` (right).

    In paper terms the left side plays the role of ``S`` and the right side
    the role of the neighbourhood ``N``.  Vertices are integers
    ``0..n_left-1`` and ``0..n_right-1`` on their respective sides.

    Instances are immutable; all mutating-style operations return new graphs.
    """

    __slots__ = (
        "n_left",
        "n_right",
        "_left_indptr",
        "_left_indices",
        "_right_indptr",
        "_right_indices",
        "_biadjacency",
        "_left_matrix",
    )

    def __init__(
        self,
        n_left: int,
        n_right: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
    ) -> None:
        """Build the graph from an iterable of ``(left, right)`` edges.

        Raises
        ------
        ValueError
            On out-of-range endpoints or duplicate edges.
        """
        if n_left < 0 or n_right < 0:
            raise ValueError("side sizes must be non-negative")
        self.n_left = int(n_left)
        self.n_right = int(n_right)

        edge_array = np.asarray(
            edges if isinstance(edges, np.ndarray) else list(edges),
            dtype=np.int64,
        )
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise ValueError("edges must be an iterable of (left, right) pairs")
        lefts = edge_array[:, 0]
        rights = edge_array[:, 1]
        if edge_array.size:
            if lefts.min(initial=0) < 0 or (
                self.n_left and lefts.max(initial=-1) >= self.n_left
            ):
                raise ValueError("left endpoint out of range")
            if rights.min(initial=0) < 0 or (
                self.n_right and rights.max(initial=-1) >= self.n_right
            ):
                raise ValueError("right endpoint out of range")
            if self.n_left == 0 or self.n_right == 0:
                raise ValueError("edges given for an empty side")

        self._left_indptr, self._left_indices = _csr_from_edges(
            self.n_left, lefts, rights
        )
        self._right_indptr, self._right_indices = _csr_from_edges(
            self.n_right, rights, lefts
        )
        self._biadjacency: sp.csr_matrix | None = None
        self._left_matrix: sp.csr_matrix | None = None

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_neighbor_lists(
        cls, neighbor_lists: Sequence[Sequence[int]], n_right: int | None = None
    ) -> "BipartiteGraph":
        """Build from per-left-vertex neighbour lists.

        ``n_right`` defaults to ``1 + max`` mentioned right vertex.
        """
        edges = [
            (i, j) for i, nbrs in enumerate(neighbor_lists) for j in nbrs
        ]
        if n_right is None:
            n_right = 1 + max((j for _, j in edges), default=-1)
        return cls(len(neighbor_lists), n_right, edges)

    @classmethod
    def from_biadjacency(cls, matrix: np.ndarray | sp.spmatrix) -> "BipartiteGraph":
        """Build from a dense or sparse 0/1 biadjacency matrix.

        Rows index the *right* side, columns the *left* side, matching the
        orientation used internally for unique-cover counting.
        """
        coo = sp.coo_matrix(matrix)
        mask = coo.data != 0
        edges = np.column_stack([coo.col[mask], coo.row[mask]])
        return cls(coo.shape[1], coo.shape[0], edges)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Number of edges ``|E|``."""
        return int(self._left_indices.shape[0])

    @property
    def left_degrees(self) -> np.ndarray:
        """Degree of each left vertex (``deg(u, N)`` in paper notation)."""
        return np.diff(self._left_indptr)

    @property
    def right_degrees(self) -> np.ndarray:
        """Degree of each right vertex (``deg(v, S)`` in paper notation)."""
        return np.diff(self._right_indptr)

    @property
    def max_left_degree(self) -> int:
        """``Δ_S``: maximum degree on the left side (0 for empty side)."""
        deg = self.left_degrees
        return int(deg.max()) if deg.size else 0

    @property
    def max_right_degree(self) -> int:
        """``Δ_N``: maximum degree on the right side (0 for empty side)."""
        deg = self.right_degrees
        return int(deg.max()) if deg.size else 0

    @property
    def avg_left_degree(self) -> float:
        """``δ_S``: average degree of the left side."""
        if self.n_left == 0:
            return 0.0
        return self.n_edges / self.n_left

    @property
    def avg_right_degree(self) -> float:
        """``δ_N``: average degree of the right side."""
        if self.n_right == 0:
            return 0.0
        return self.n_edges / self.n_right

    def neighbors_of_left(self, u: int) -> np.ndarray:
        """Sorted right-neighbours of left vertex ``u`` (read-only view)."""
        lo, hi = self._left_indptr[u], self._left_indptr[u + 1]
        return self._left_indices[lo:hi]

    def neighbors_of_right(self, v: int) -> np.ndarray:
        """Sorted left-neighbours of right vertex ``v`` (read-only view)."""
        lo, hi = self._right_indptr[v], self._right_indptr[v + 1]
        return self._right_indices[lo:hi]

    def edges(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array of ``(left, right)`` pairs."""
        lefts = np.repeat(
            np.arange(self.n_left, dtype=np.int64), self.left_degrees
        )
        return np.column_stack([lefts, self._left_indices])

    def has_isolated_left(self) -> bool:
        """True iff some left vertex has degree zero."""
        return bool((self.left_degrees == 0).any()) if self.n_left else False

    def has_isolated_right(self) -> bool:
        """True iff some right vertex has degree zero."""
        return bool((self.right_degrees == 0).any()) if self.n_right else False

    # ------------------------------------------------------------------
    # Matrix views
    # ------------------------------------------------------------------
    @property
    def biadjacency(self) -> sp.csr_matrix:
        """``n_right × n_left`` sparse 0/1 matrix ``B`` with ``B[v, u] = 1``.

        Cached; used for the hot ``counts = B @ x`` kernel.
        """
        if self._biadjacency is None:
            self._biadjacency = sp.csr_matrix(
                (
                    np.ones(self.n_edges, dtype=np.int32),
                    self._right_indices,
                    self._right_indptr,
                ),
                shape=(self.n_right, self.n_left),
            )
        return self._biadjacency

    @property
    def left_matrix(self) -> sp.csr_matrix:
        """``n_left × n_right`` transpose view of :attr:`biadjacency`."""
        if self._left_matrix is None:
            self._left_matrix = sp.csr_matrix(
                (
                    np.ones(self.n_edges, dtype=np.int32),
                    self._left_indices,
                    self._left_indptr,
                ),
                shape=(self.n_left, self.n_right),
            )
        return self._left_matrix

    # ------------------------------------------------------------------
    # Coverage kernels (the paper's Γ, Γ¹ restricted to a chosen S' ⊆ S)
    # ------------------------------------------------------------------
    def _as_left_mask(self, subset: np.ndarray | Sequence[int]) -> np.ndarray:
        """Coerce an index list or boolean mask into a left-side bool mask."""
        subset = np.asarray(subset)
        if subset.dtype == bool:
            if subset.shape != (self.n_left,):
                raise ValueError(
                    f"mask length {subset.shape} != n_left {self.n_left}"
                )
            return subset
        mask = np.zeros(self.n_left, dtype=bool)
        if subset.size:
            if subset.min() < 0 or subset.max() >= self.n_left:
                raise ValueError("left index out of range")
            mask[subset] = True
        return mask

    def _as_right_mask(self, subset: np.ndarray | Sequence[int]) -> np.ndarray:
        """Coerce an index list or boolean mask into a right-side bool mask."""
        subset = np.asarray(subset)
        if subset.dtype == bool:
            if subset.shape != (self.n_right,):
                raise ValueError(
                    f"mask length {subset.shape} != n_right {self.n_right}"
                )
            return subset
        mask = np.zeros(self.n_right, dtype=bool)
        if subset.size:
            if subset.min() < 0 or subset.max() >= self.n_right:
                raise ValueError("right index out of range")
            mask[subset] = True

        return mask

    def cover_counts(self, left_subset: np.ndarray | Sequence[int]) -> np.ndarray:
        """For each right vertex ``v``, ``|Γ(v) ∩ S'|`` for ``S'`` = subset.

        This is the collision count of the radio model: ``v`` hears a message
        iff its count is exactly one.
        """
        mask = self._as_left_mask(left_subset)
        return self.biadjacency @ mask.astype(np.int32)

    def covered(self, left_subset: np.ndarray | Sequence[int]) -> np.ndarray:
        """Boolean right-mask of ``Γ_S(S')``: at least one neighbour in ``S'``."""
        return self.cover_counts(left_subset) >= 1

    def uniquely_covered(
        self, left_subset: np.ndarray | Sequence[int]
    ) -> np.ndarray:
        """Boolean right-mask of ``Γ¹_S(S')``: exactly one neighbour in ``S'``."""
        return self.cover_counts(left_subset) == 1

    def unique_cover_count(self, left_subset: np.ndarray | Sequence[int]) -> int:
        """``|Γ¹_S(S')|`` — the quantity every spokesman algorithm maximizes."""
        return int(self.uniquely_covered(left_subset).sum())

    def cover_count(self, left_subset: np.ndarray | Sequence[int]) -> int:
        """``|Γ_S(S')|`` — number of right vertices seeing ``S'`` at all."""
        return int(self.covered(left_subset).sum())

    def left_cover_counts(
        self, right_subset: np.ndarray | Sequence[int]
    ) -> np.ndarray:
        """For each left vertex ``u``, ``|Γ(u) ∩ N'|`` for ``N'`` = subset.

        The mirror-image kernel, needed by Lemma 4.3's re-covering reduction.
        """
        mask = self._as_right_mask(right_subset)
        return self.left_matrix @ mask.astype(np.int32)

    def cover_counts_batch(self, left_subsets: np.ndarray) -> np.ndarray:
        """Coverage counts for a whole batch of subsets at once.

        Parameters
        ----------
        left_subsets:
            ``(batch, n_left)`` boolean matrix, one candidate ``S'`` per row.

        Returns
        -------
        numpy.ndarray
            ``(batch, n_right)`` integer matrix of per-right-vertex
            coverage counts — a single sparse mat-mat product, so evaluating
            hundreds of random candidates (the sampling algorithms' inner
            loop) costs one BLAS-like pass instead of a Python loop.
        """
        left_subsets = np.asarray(left_subsets)
        if (
            left_subsets.ndim != 2
            or left_subsets.shape[1] != self.n_left
            or left_subsets.dtype != bool
        ):
            raise ValueError(
                f"expected a (batch, {self.n_left}) bool matrix, got "
                f"{left_subsets.dtype} array of shape {left_subsets.shape}"
            )
        return (self.biadjacency @ left_subsets.T.astype(np.int32)).T

    def unique_cover_counts_batch(self, left_subsets: np.ndarray) -> np.ndarray:
        """``|Γ¹_S(S')|`` for every row of a ``(batch, n_left)`` bool matrix."""
        counts = self.cover_counts_batch(left_subsets)
        return (counts == 1).sum(axis=1)

    # ------------------------------------------------------------------
    # Subgraphs and transforms
    # ------------------------------------------------------------------
    def subgraph(
        self,
        left_subset: np.ndarray | Sequence[int],
        right_subset: np.ndarray | Sequence[int],
    ) -> "BipartiteGraph":
        """Induced subgraph on the given left/right subsets, reindexed densely.

        Vertex ``i`` of the result is the ``i``-th selected vertex of the
        corresponding side in increasing original order.
        """
        lmask = self._as_left_mask(left_subset)
        rmask = self._as_right_mask(right_subset)
        lmap = np.full(self.n_left, -1, dtype=np.int64)
        lmap[lmask] = np.arange(int(lmask.sum()))
        rmap = np.full(self.n_right, -1, dtype=np.int64)
        rmap[rmask] = np.arange(int(rmask.sum()))
        edges = self.edges()
        keep = lmask[edges[:, 0]] & rmask[edges[:, 1]]
        kept = edges[keep]
        remapped = np.column_stack([lmap[kept[:, 0]], rmap[kept[:, 1]]])
        return BipartiteGraph(int(lmask.sum()), int(rmask.sum()), remapped)

    def restrict_right(
        self, right_subset: np.ndarray | Sequence[int]
    ) -> "BipartiteGraph":
        """Keep all left vertices, restrict the right side to a subset."""
        return self.subgraph(np.ones(self.n_left, dtype=bool), right_subset)

    def restrict_left(
        self, left_subset: np.ndarray | Sequence[int]
    ) -> "BipartiteGraph":
        """Keep all right vertices, restrict the left side to a subset."""
        return self.subgraph(left_subset, np.ones(self.n_right, dtype=bool))

    def swap_sides(self) -> "BipartiteGraph":
        """Return the same graph with left and right roles exchanged."""
        edges = self.edges()
        return BipartiteGraph(
            self.n_right, self.n_left, edges[:, ::-1].copy()
        )

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` with ``bipartite`` attributes.

        Left vertices become ``("L", i)``, right vertices ``("R", j)``.
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from((("L", i) for i in range(self.n_left)), bipartite=0)
        g.add_nodes_from((("R", j) for j in range(self.n_right)), bipartite=1)
        g.add_edges_from((("L", int(u)), ("R", int(v))) for u, v in self.edges())
        return g

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteGraph):
            return NotImplemented
        return (
            self.n_left == other.n_left
            and self.n_right == other.n_right
            and np.array_equal(self._left_indptr, other._left_indptr)
            and np.array_equal(self._left_indices, other._left_indices)
        )

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((self.n_left, self.n_right, self.n_edges))

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(n_left={self.n_left}, n_right={self.n_right}, "
            f"n_edges={self.n_edges})"
        )

    def __iter__(self) -> Iterator[tuple[int, int]]:
        for u, v in self.edges():
            yield int(u), int(v)
