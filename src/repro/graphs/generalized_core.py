"""Generalized core graphs with arbitrary expansion (Lemmas 4.6, 4.7, 4.8).

The Lemma 4.4 core graph has expansion exactly ``log 2s``.  Section 4.3.2
stretches it to any target expansion ``β*`` while keeping the wireless
expansion capped at a ``1/log`` fraction:

* **Boosted core** (Lemma 4.7, ``β > log 2s``): make ``k = β / log 2s``
  copies of every right vertex.  Expansion rises to ``k·log 2s``; the
  wireless coverage cap rises to ``2s·k`` — still a ``2/log 2s`` fraction of
  the (bigger) right side.
* **Diluted core** (Lemma 4.8, ``β ≤ log 2s``): make ``k = log 2s / β``
  copies of every *left* vertex.  Expansion drops to ``log 2s / k``; the
  wireless coverage cap stays ``2s`` — again a ``2/log 2s`` fraction.
* **Lemma 4.6** packages both: for any ``Δ*`` and ``β*`` with
  ``2e/Δ* ≤ β* ≤ Δ*/(2e)`` there is a core-like graph with max degree
  ``≤ Δ*``, expansion ``≥ β*`` and wireless expansion
  ``≤ β*·(4 / log min{Δ*/β*, Δ*·β*})``.

Because copies have identical adjacency, the exact tree DP of
:mod:`repro.graphs.core_graph` transfers: the true max unique coverage of a
boosted core is ``k ×`` the core value, and of a diluted core equals the core
value (selecting two copies of the same left vertex only creates collisions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._util import check_positive_int
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.core_graph import (
    core_graph,
    core_graph_layout,
    core_graph_max_unique_coverage,
)

__all__ = [
    "GeneralizedCore",
    "boosted_core",
    "diluted_core",
    "generalized_core",
    "generalized_core_max_unique_coverage",
    "lemma46_regime_ok",
]


@dataclass(frozen=True)
class GeneralizedCore:
    """A generalized core graph together with its certified parameters.

    Attributes
    ----------
    graph:
        The bipartite graph ``G*_S = (S*, N*, E*)``.
    s:
        The underlying core-graph parameter (power of two).
    multiplier:
        The copy count ``k`` (``k = 1`` recovers the plain core graph).
    mode:
        ``"boosted"`` (Lemma 4.7), ``"diluted"`` (Lemma 4.8) or ``"core"``.
    expansion:
        The certified ordinary one-sided expansion ``β*``.
    max_degree:
        The maximum degree ``Δ*`` over both sides.
    wireless_coverage_cap:
        Lemma 4.7(5)/4.8(5) upper bound on ``max_{S'} |Γ¹_{S*}(S')|``.
    """

    graph: BipartiteGraph
    s: int
    multiplier: int
    mode: str
    expansion: float
    max_degree: int
    wireless_coverage_cap: int

    @property
    def wireless_expansion_cap(self) -> float:
        """Upper bound on the wireless expansion ``βw``:
        ``wireless_coverage_cap / |S*|``."""
        return self.wireless_coverage_cap / self.graph.n_left

    @property
    def log_min_ratio(self) -> float:
        """``log2(min{Δ*/β*, Δ*·β*})`` — the denominator of Lemma 4.6(3)."""
        value = min(self.max_degree / self.expansion,
                    self.max_degree * self.expansion)
        return math.log2(value)

    @property
    def lemma46_wireless_fraction_cap(self) -> float:
        """Lemma 4.6(3)'s cap ``4 / log min{Δ*/β*, Δ*·β*}`` on the uniquely
        coverable *fraction* of ``N*``."""
        return 4.0 / self.log_min_ratio


def boosted_core(s: int, multiplier: int) -> GeneralizedCore:
    """Lemma 4.7 graph ``Ĝ_S``: ``multiplier`` copies of every right vertex.

    Achieves expansion ``β = multiplier · log 2s`` with left degree
    ``(2s − 1) · multiplier``; wireless coverage stays ``≤ 2s·multiplier``.
    """
    check_positive_int(multiplier, "multiplier")
    layout = core_graph_layout(s)
    base = core_graph(s)
    k = multiplier
    base_edges = base.edges()
    # Copy c of right vertex v gets id v*k + c.
    lefts = np.repeat(base_edges[:, 0], k)
    rights = (base_edges[:, 1][:, None] * k + np.arange(k)[None, :]).ravel()
    graph = BipartiteGraph(s, base.n_right * k, np.column_stack([lefts, rights]))
    log2s = layout.levels
    return GeneralizedCore(
        graph=graph,
        s=s,
        multiplier=k,
        mode="boosted" if k > 1 else "core",
        expansion=float(k * log2s),
        max_degree=max((2 * s - 1) * k, s),
        wireless_coverage_cap=2 * s * k,
    )


def diluted_core(s: int, multiplier: int) -> GeneralizedCore:
    """Lemma 4.8 graph ``Ǧ_S``: ``multiplier`` copies of every left vertex.

    Achieves expansion ``β = log 2s / multiplier`` with right degrees scaled
    by ``multiplier``; wireless coverage stays ``≤ 2s``.
    """
    check_positive_int(multiplier, "multiplier")
    layout = core_graph_layout(s)
    base = core_graph(s)
    k = multiplier
    base_edges = base.edges()
    # Copy c of left vertex u gets id u*k + c.
    lefts = (base_edges[:, 0][:, None] * k + np.arange(k)[None, :]).ravel()
    rights = np.repeat(base_edges[:, 1], k)
    graph = BipartiteGraph(s * k, base.n_right, np.column_stack([lefts, rights]))
    log2s = layout.levels
    return GeneralizedCore(
        graph=graph,
        s=s,
        multiplier=k,
        mode="diluted" if k > 1 else "core",
        expansion=log2s / k,
        max_degree=max(2 * s - 1, s * k),
        wireless_coverage_cap=2 * s,
    )


def generalized_core_max_unique_coverage(gc: GeneralizedCore) -> int:
    """Exact ``max_{S'} |Γ¹_{S*}(S')|`` for a generalized core.

    Copies of a right vertex share their uniquely-covered status, so the
    boosted optimum is ``multiplier ×`` the core optimum; selecting two
    copies of a left vertex only collides, so the diluted optimum equals the
    core optimum.
    """
    core_best = int(core_graph_max_unique_coverage(gc.s))
    if gc.mode == "boosted":
        return core_best * gc.multiplier
    return core_best


def lemma46_regime_ok(delta_star: float, beta_star: float) -> bool:
    """Check Lemma 4.6's parameter regime ``2e/Δ* ≤ β* ≤ Δ*/(2e)``."""
    return (2 * math.e / delta_star) <= beta_star <= delta_star / (2 * math.e)


def generalized_core(delta_star: float, beta_star: float) -> GeneralizedCore:
    """Lemma 4.6: a core-like graph for target ``(Δ*, β*)``.

    Follows the proof's case split.  Writing ``Δ* = 2s·(β*/log 2s)`` when
    ``β* > log 2s`` (boosted) and ``Δ* = 2s·(log 2s/β*)`` otherwise
    (diluted), we search powers of two ``s`` and integer multipliers ``k``
    for the instance whose achieved max degree is closest to ``Δ*`` without
    exceeding it, with achieved expansion ``≥ β*``.  The returned object's
    *achieved* parameters certify the lemma's three assertions:
    ``|S*| ≤ Δ*/2``, ``|N*| = β·|S*|``, expansion ``≥ β*``, and wireless
    coverage ``≤ (4/log min{Δ/β, Δ·β})·|N*|``.

    Raises
    ------
    ValueError
        If ``(Δ*, β*)`` violates the lemma's regime or no integral instance
        fits (the regime guarantees one for all-powers-of-two parameters;
        ragged targets may be unachievable exactly, in which case we pick the
        closest instance that does not exceed ``Δ*``).
    """
    if not lemma46_regime_ok(delta_star, beta_star):
        raise ValueError(
            f"Lemma 4.6 requires 2e/Δ* <= β* <= Δ*/(2e); "
            f"got Δ*={delta_star}, β*={beta_star}"
        )
    best: GeneralizedCore | None = None
    best_gap = math.inf
    max_log = max(2, int(math.log2(max(delta_star, 4))) + 2)
    for log_s in range(0, max_log + 1):
        s = 1 << log_s
        log2s = log_s + 1  # log2(2s)
        if beta_star > log2s:
            # Boosted: need k >= ceil(β*/log 2s) for expansion >= β*.
            k = math.ceil(beta_star / log2s - 1e-12)
            candidate = boosted_core(s, k)
        else:
            # Diluted: need k <= log 2s / β* for expansion >= β*.
            k = math.floor(log2s / beta_star + 1e-12)
            if k < 1:
                continue
            candidate = diluted_core(s, k)
        if candidate.expansion < beta_star - 1e-9:
            continue
        # The lemma's Δ* accounting is 2·s·k (both modes), which dominates
        # the achieved max degree and guarantees |S*| ≤ Δ*/2.
        budget = 2 * s * candidate.multiplier
        if budget > delta_star + 1e-9:
            continue
        gap = delta_star - budget
        if gap < best_gap:
            best, best_gap = candidate, gap
    if best is None:
        raise ValueError(
            f"no integral generalized core fits Δ*={delta_star}, β*={beta_star}"
        )
    return best
