"""The bad unique-neighbour expander ``Gbad`` of Lemma 3.3 (Figure 1).

``Gbad = (S, N, E)`` has ``|S| = s`` left vertices arranged on an implicit
cycle.  Every ``v_i`` has exactly ``Δ`` neighbours; consecutive vertices
``v_i, v_{i+1}`` share exactly ``Δ − β`` of them (the "last" ``Δ − β``
neighbours of ``v_i`` are the "first" ``Δ − β`` neighbours of ``v_{i+1}``).

Consequences proved in the paper and verified by the test-suite:

* ordinary (one-sided) expansion is exactly ``β``: ``|N| = β·s`` and every
  ``S' ⊆ S`` has ``|Γ(S')| ≥ β·|S'|``;
* unique-neighbour expansion of the full set ``S`` is exactly ``2β − Δ``
  (each ``v_i`` uniquely covers only its private block), which shows the
  Lemma 3.2 lower bound ``βu ≥ 2β − Δ`` is tight — and drops to **zero** at
  ``β = Δ/2``;
* the *wireless* expansion is at least ``max{2β − Δ, Δ/2}`` (Remark 1):
  selecting every second vertex of a run leaves ``Δ``-degree coverage with no
  collisions, so wireless expansion survives exactly where unique expansion
  dies.

Structure: each ``v_i`` owns a *shared block* ``W_i`` (``|W_i| = Δ − β``,
common with ``v_{i+1}``) and a *private block* ``P_i`` (``|P_i| = 2β − Δ``),
so ``Γ(v_i) = W_{i−1} ∪ P_i ∪ W_i`` and ``|N| = s·β``.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int
from repro.graphs.bipartite import BipartiteGraph

__all__ = [
    "gbad",
    "gbad_alternating_subset",
    "gbad_private_block",
    "gbad_shared_block",
    "gbad_unique_expansion",
    "gbad_wireless_lower_bound",
]


def _validate(s: int, delta: int, beta: int) -> None:
    check_positive_int(s, "s")
    check_positive_int(delta, "delta")
    check_positive_int(beta, "beta")
    if s < 3:
        raise ValueError("gbad needs s >= 3 for the cyclic overlap structure")
    if not (delta / 2 <= beta <= delta):
        raise ValueError(
            f"Lemma 3.3 requires Δ/2 <= β <= Δ, got Δ={delta}, β={beta}"
        )


def gbad(s: int, delta: int, beta: int) -> BipartiteGraph:
    """Construct ``Gbad(s, Δ, β)`` as a :class:`BipartiteGraph`.

    Right-side layout: vertex ids ``[i·β, i·β + (Δ−β))`` form the shared
    block ``W_i`` and ids ``[i·β + (Δ−β), (i+1)·β)`` form the private block
    ``P_i``, for ``i = 0..s−1``.
    """
    _validate(s, delta, beta)
    edges: list[tuple[int, int]] = []
    for i in range(s):
        w_prev = gbad_shared_block(s, delta, beta, (i - 1) % s)
        p_own = gbad_private_block(s, delta, beta, i)
        w_own = gbad_shared_block(s, delta, beta, i)
        for v in (*w_prev, *p_own, *w_own):
            edges.append((i, v))
    return BipartiteGraph(s, s * beta, edges)


def gbad_shared_block(s: int, delta: int, beta: int, i: int) -> range:
    """Right-side ids of ``W_i``, the block shared by ``v_i`` and ``v_{i+1}``."""
    _validate(s, delta, beta)
    if not 0 <= i < s:
        raise ValueError(f"block index must lie in [0, {s}), got {i}")
    return range(i * beta, i * beta + (delta - beta))


def gbad_private_block(s: int, delta: int, beta: int, i: int) -> range:
    """Right-side ids of ``P_i``, the block uniquely covered by ``v_i``."""
    _validate(s, delta, beta)
    if not 0 <= i < s:
        raise ValueError(f"block index must lie in [0, {s}), got {i}")
    return range(i * beta + (delta - beta), (i + 1) * beta)


def gbad_unique_expansion(delta: int, beta: int) -> int:
    """The exact unique-neighbour expansion ``βu = 2β − Δ`` of ``Gbad``
    (Lemma 3.3): only private blocks are uniquely covered by ``S``."""
    return 2 * beta - delta


def gbad_wireless_lower_bound(delta: int, beta: int) -> float:
    """Remark 1's lower bound ``max{2β − Δ, Δ/2}`` on the wireless expansion
    of ``Gbad`` — strictly positive even when the unique expansion is zero."""
    return max(2 * beta - delta, delta / 2)


def gbad_alternating_subset(s: int) -> np.ndarray:
    """The "every second vertex" sub-selection from Remark 1.

    For even ``s`` this selects ``{v_0, v_2, …}``; no two selected vertices
    are consecutive on the cycle, so no shared block collides and each
    selected vertex uniquely covers all ``Δ`` of its neighbours.
    """
    check_positive_int(s, "s")
    return np.arange(0, s, 2, dtype=np.int64)
