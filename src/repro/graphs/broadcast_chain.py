"""The Section 5 lower-bound network: a chain of core graphs.

To show broadcast takes ``Ω(D·log(n/D))`` rounds, the paper chains ``D/2``
copies ``G¹_S, …, G^{D/2}_S`` of the Lemma 4.4 core graph.  The root ``rt``
is wired to all of ``S¹``; inside copy ``i`` a uniformly random right vertex
``rt_i ∈ N^i`` is designated the *portal* and wired to all of ``S^{i+1}``.
The message must pass through every portal in order (Observation 5.2), and by
Corollary 5.1 each hop costs ``Ω(log 2s) = Ω(log(n/D))`` rounds in
expectation — because no transmission schedule can uniquely cover more than a
``2/log 2s`` fraction of ``N^i`` per round.

This module builds the chain as a :class:`repro.graphs.graph.Graph` plus a
layout object that exposes each layer's vertex ranges and portals, which the
radio experiments (:mod:`repro.radio.lower_bound`) use to measure per-hop
round counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng, check_positive_int
from repro.graphs.core_graph import core_graph, core_graph_layout
from repro.graphs.graph import Graph

__all__ = ["BroadcastChain", "broadcast_chain"]


@dataclass(frozen=True)
class BroadcastChain:
    """A chained-core-graph radio network with layer bookkeeping.

    Vertex layout: vertex ``0`` is the broadcast source ``rt``; copy ``i``
    (``0``-based) occupies a contiguous id block, ``S``-side first, then
    ``N``-side.

    Attributes
    ----------
    graph:
        The full chained graph.
    s:
        Core-graph parameter of every copy.
    num_layers:
        Number of chained copies (``D/2`` in the paper's notation).
    s_ranges, n_ranges:
        Per-layer vertex-id ranges of the ``S``- and ``N``-sides.
    portals:
        ``portals[i]`` is the id of ``rt_i``, the random ``N^i`` vertex wired
        to layer ``i+1`` (the last portal is still sampled but dangling, as
        in the paper).
    """

    graph: Graph
    s: int
    num_layers: int
    s_ranges: tuple[range, ...]
    n_ranges: tuple[range, ...]
    portals: np.ndarray

    @property
    def root(self) -> int:
        """The broadcast source ``rt`` (always vertex 0)."""
        return 0

    @property
    def n_vertices(self) -> int:
        """Total number of vertices ``ñ``."""
        return self.graph.n

    @property
    def diameter_claim(self) -> int:
        """The paper's diameter accounting: ``D + 2`` for ``D/2`` layers."""
        return 2 * self.num_layers + 2

    def layer_of(self, vertex: int) -> int:
        """Layer index of ``vertex`` (``-1`` for the root)."""
        if vertex == 0:
            return -1
        per_layer = self.s_ranges[0].stop - self.s_ranges[0].start + (
            self.n_ranges[0].stop - self.n_ranges[0].start
        )
        return (vertex - 1) // per_layer


def broadcast_chain(s: int, num_layers: int, rng=None) -> BroadcastChain:
    """Build the Section 5 chain with ``num_layers`` core-graph copies.

    Parameters
    ----------
    s:
        Core-graph size parameter (power of two); each copy has
        ``s·log 4s`` vertices, so ``n ≈ num_layers · s·log 4s``.
    num_layers:
        ``D/2`` copies; the resulting diameter is ``2·num_layers + 2``.
    rng:
        Seeds the uniform portal choices ``rt_i ~ N^i``.
    """
    check_positive_int(num_layers, "num_layers")
    layout = core_graph_layout(s)
    base = core_graph(s)
    base_edges = base.edges()
    gen = as_rng(rng)

    per_layer = s + layout.n_right
    edges: list[np.ndarray] = []
    s_ranges: list[range] = []
    n_ranges: list[range] = []
    portals = np.empty(num_layers, dtype=np.int64)

    for layer in range(num_layers):
        s_start = 1 + layer * per_layer
        n_start = s_start + s
        s_ranges.append(range(s_start, s_start + s))
        n_ranges.append(range(n_start, n_start + layout.n_right))
        # Internal core-graph edges of this copy.
        edges.append(
            np.column_stack(
                [base_edges[:, 0] + s_start, base_edges[:, 1] + n_start]
            )
        )
        portals[layer] = n_start + int(gen.integers(layout.n_right))

    # Root to all of S^1.
    s0 = np.arange(s_ranges[0].start, s_ranges[0].stop, dtype=np.int64)
    edges.append(np.column_stack([np.zeros(s, dtype=np.int64), s0]))
    # Portal i to all of S^{i+2} (1-based: rt_i -> S^{i+1}).
    for layer in range(num_layers - 1):
        nxt = np.arange(
            s_ranges[layer + 1].start, s_ranges[layer + 1].stop, dtype=np.int64
        )
        edges.append(
            np.column_stack(
                [np.full(s, portals[layer], dtype=np.int64), nxt]
            )
        )

    graph = Graph(1 + num_layers * per_layer, np.concatenate(edges))
    return BroadcastChain(
        graph=graph,
        s=s,
        num_layers=num_layers,
        s_ranges=tuple(s_ranges),
        n_ranges=tuple(n_ranges),
        portals=portals,
    )
