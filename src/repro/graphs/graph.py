"""General undirected graph wrapper with the paper's neighbourhood operators.

A thin, immutable adjacency wrapper exposing exactly the operators
Section 2.1 defines — ``Γ(S)``, ``Γ⁻(S)``, ``Γ¹(S)``, ``Γ_S(S')``,
``Γ¹_S(S')`` — plus extraction of the boundary bipartite graph
``G_S = (S, Γ⁻(S))`` that Section 4.1 reduces every expansion question to.

The canonical storage is a plain-numpy CSR (:class:`CSRAdjacency`) with
indptr/indices in the narrowest safe uint dtype; the ``scipy.sparse``
matrix behind the dense neighbourhood operators is built lazily on first
use, so large-n paths that only need CSR gathers (the bitset broadcast
engine) never materialize scipy structures at all.

All neighbourhood operators are one sparse mat-vec plus vectorized masking.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro._util.dtypes import narrow_uint as _narrow_uint
from repro.graphs.bipartite import BipartiteGraph

__all__ = ["CSRAdjacency", "Graph"]


class CSRAdjacency:
    """Plain-numpy CSR view of a symmetric adjacency (no scipy).

    ``indptr``/``indices`` are stored in the narrowest safe uint dtype.
    ``gather_plan`` precomputes (and caches) the degree-slot schedule the
    bitset engine's exactly-one kernel iterates: for a d-regular graph the
    slot-major ``(d, n)`` transpose of the ``indices`` reshape (each
    slot's gather indices contiguous); in general a degree-descending
    stable ordering with int64 row starts, so slot ``k`` touches exactly
    the vertices whose degree exceeds ``k``.
    """

    __slots__ = ("n", "indptr", "indices", "degrees", "_plan")

    def __init__(self, n: int, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.n = int(n)
        self.indptr = _narrow_uint(
            np.asarray(indptr), int(indptr[-1]) if len(indptr) else 0
        )
        self.indices = _narrow_uint(np.asarray(indices), self.n - 1)
        self.degrees = np.diff(self.indptr.astype(np.int64))
        self._plan = None

    @property
    def nnz(self) -> int:
        """Number of stored (directed) entries — twice the edge count."""
        return int(self.indices.shape[0])

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max()) if self.n else 0

    def row(self, v: int) -> np.ndarray:
        """Sorted neighbours of ``v`` (int64)."""
        lo, hi = int(self.indptr[v]), int(self.indptr[v + 1])
        return self.indices[lo:hi].astype(np.int64)

    def gather_plan(self):
        """The cached degree-slot gather schedule.

        Returns either ``("regular", slots)`` with ``slots`` the
        slot-major ``(d, n)`` contiguous transpose of the ``(n, d)``
        ``indices`` reshape (valid because rows are sorted and equal
        length; slot-major so each slot's gather indices are one
        contiguous row), or ``("general", order, starts, slot_counts)``
        where ``order`` lists vertices by descending degree (stable),
        ``starts = indptr[order]`` as int64, and ``slot_counts[k]`` is the
        number of vertices with degree > ``k`` — the prefix of ``order``
        participating in slot ``k``.
        """
        if self._plan is None:
            n = self.n
            degrees = self.degrees
            max_d = self.max_degree
            if n and degrees.min() == max_d:
                # intp (not the narrow stored dtype): fancy indexing casts
                # non-intp index arrays on every gather, so the hot kernel
                # would pay the conversion once per slot per round.
                self._plan = (
                    "regular",
                    np.ascontiguousarray(self.indices.reshape(n, max_d).T).astype(
                        np.intp
                    ),
                )
            else:
                order = np.argsort(-degrees, kind="stable")
                starts = self.indptr.astype(np.int64)[order]
                counts = np.bincount(degrees, minlength=max_d + 1)
                # slot_counts[k] = #vertices with degree > k, k in 0..max_d-1.
                slot_counts = n - np.cumsum(counts)[:max_d]
                self._plan = ("general", order, starts, slot_counts)
        return self._plan


def _build_csr(n: int, canon: np.ndarray) -> CSRAdjacency:
    """Symmetrize canonical (u < v) edges into a sorted-row CSR."""
    rows = np.concatenate([canon[:, 0], canon[:, 1]])
    cols = np.concatenate([canon[:, 1], canon[:, 0]])
    order = np.lexsort((cols, rows))
    counts = np.bincount(rows, minlength=n) if n else np.zeros(0, dtype=np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRAdjacency(n, indptr, cols[order])


class Graph:
    """Simple undirected graph on vertices ``0..n-1`` (no self-loops).

    Immutable; constructed from an edge list, a prebuilt CSR
    (:meth:`from_csr`), a networkx graph, or a symmetric sparse adjacency
    matrix.
    """

    __slots__ = ("n", "_csr", "_adj", "_degrees")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] | np.ndarray) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.n = int(n)
        edge_array = np.asarray(
            edges if isinstance(edges, np.ndarray) else list(edges),
            dtype=np.int64,
        )
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise ValueError("edges must be an iterable of (u, v) pairs")
        if edge_array.size:
            if edge_array.min() < 0 or edge_array.max() >= self.n:
                raise ValueError("vertex index out of range")
            if (edge_array[:, 0] == edge_array[:, 1]).any():
                raise ValueError("self-loops are not allowed")
        u = np.minimum(edge_array[:, 0], edge_array[:, 1])
        v = np.maximum(edge_array[:, 0], edge_array[:, 1])
        canon = np.unique(np.column_stack([u, v]), axis=0)
        if canon.shape[0] != edge_array.shape[0]:
            raise ValueError("duplicate edges are not allowed")
        self._csr = _build_csr(self.n, canon)
        self._degrees = self._csr.degrees
        self._adj = None

    # ------------------------------------------------------------------
    # Constructors / converters
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(
        cls,
        n: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        validate: bool = True,
    ) -> "Graph":
        """Build directly from symmetric CSR arrays (rows must be sorted).

        The large-n constructor: no edge-list materialization, no scipy.
        ``validate`` checks structural invariants (monotone indptr, index
        range, strictly increasing rows — hence simple and loop-free —
        and symmetry); pass ``False`` only for arrays a trusted builder
        just produced.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        n = int(n)
        indptr = np.asarray(indptr)
        indices = np.asarray(indices)
        if indptr.ndim != 1 or indptr.shape[0] != n + 1:
            raise ValueError(f"indptr must have shape ({n + 1},)")
        if indices.ndim != 1:
            raise ValueError("indices must be one-dimensional")
        if validate:
            ptr = indptr.astype(np.int64)
            idx = indices.astype(np.int64)
            if ptr[0] != 0 or ptr[-1] != idx.shape[0]:
                raise ValueError("indptr must start at 0 and end at len(indices)")
            if (np.diff(ptr) < 0).any():
                raise ValueError("indptr must be non-decreasing")
            if idx.size and (idx.min() < 0 or idx.max() >= n):
                raise ValueError("vertex index out of range")
            rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(ptr))
            if (rows == idx).any():
                raise ValueError("self-loops are not allowed")
            if idx.size > 1:
                same_row = rows[1:] == rows[:-1]
                if (same_row & (np.diff(idx) <= 0)).any():
                    raise ValueError(
                        "row neighbour lists must be strictly increasing"
                    )
            if not np.array_equal(
                np.sort(rows * n + idx), np.sort(idx * n + rows)
            ):
                raise ValueError("adjacency must be symmetric")
        graph = cls.__new__(cls)
        graph.n = n
        graph._csr = CSRAdjacency(n, indptr, indices)
        graph._degrees = graph._csr.degrees
        graph._adj = None
        return graph

    @classmethod
    def from_networkx(cls, g) -> "Graph":
        """Build from a networkx graph; nodes are relabelled ``0..n-1`` in
        sorted-by-insertion (``list(g.nodes)``) order."""
        nodes = list(g.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[a], index[b]) for a, b in g.edges() if a != b]
        return cls(len(nodes), edges)

    @classmethod
    def from_adjacency(cls, matrix) -> "Graph":
        """Build from a symmetric 0/1 adjacency matrix."""
        import scipy.sparse as sp

        coo = sp.coo_matrix(matrix)
        if coo.shape[0] != coo.shape[1]:
            raise ValueError("adjacency matrix must be square")
        mask = (coo.data != 0) & (coo.row < coo.col)
        edges = np.column_stack([coo.row[mask], coo.col[mask]])
        return cls(coo.shape[0], edges)

    def to_networkx(self):
        """Convert to :class:`networkx.Graph` on integer nodes ``0..n-1``."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from((int(a), int(b)) for a, b in self.edges())
        return g

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def csr(self) -> CSRAdjacency:
        """The plain-numpy CSR adjacency (always materialized, scipy-free)."""
        return self._csr

    @property
    def adjacency(self):
        """The ``n × n`` symmetric 0/1 adjacency matrix (scipy CSR, int32).

        Built lazily on first access and cached; the CSR-only paths (the
        bitset engine, neighbour iteration) never trigger it.
        """
        if self._adj is None:
            import scipy.sparse as sp

            self._adj = sp.csr_matrix(
                (
                    np.ones(self._csr.nnz, dtype=np.int32),
                    self._csr.indices.astype(np.int64),
                    self._csr.indptr.astype(np.int64),
                ),
                shape=(self.n, self.n),
            )
        return self._adj

    @property
    def n_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._csr.nnz // 2

    @property
    def degrees(self) -> np.ndarray:
        """Degree vector ``deg(v)``."""
        return self._degrees

    @property
    def max_degree(self) -> int:
        """``Δ(G)`` (0 for the empty graph)."""
        return int(self._degrees.max()) if self.n else 0

    @property
    def avg_degree(self) -> float:
        """Average degree ``2|E|/n``."""
        return 2 * self.n_edges / self.n if self.n else 0.0

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbours of ``v``."""
        return self._csr.row(v)

    def edges(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array with ``u < v``."""
        rows = np.repeat(np.arange(self.n, dtype=np.int64), self._degrees)
        cols = self._csr.indices.astype(np.int64)
        mask = rows < cols
        return np.column_stack([rows[mask], cols[mask]])

    def has_edge(self, u: int, v: int) -> bool:
        """True iff ``{u, v}`` is an edge."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            return False
        row = self._csr.row(u)
        pos = int(np.searchsorted(row, v))
        return pos < row.shape[0] and int(row[pos]) == v

    # ------------------------------------------------------------------
    # Masks
    # ------------------------------------------------------------------
    def _as_mask(self, subset: np.ndarray | Sequence[int]) -> np.ndarray:
        subset = np.asarray(subset)
        if subset.dtype == bool:
            if subset.shape != (self.n,):
                raise ValueError(f"mask length {subset.shape} != n {self.n}")
            return subset
        mask = np.zeros(self.n, dtype=bool)
        if subset.size:
            if subset.min() < 0 or subset.max() >= self.n:
                raise ValueError("vertex index out of range")
            mask[subset] = True
        return mask

    # ------------------------------------------------------------------
    # Paper neighbourhood operators (Section 2.1)
    # ------------------------------------------------------------------
    def neighbor_counts(self, subset: np.ndarray | Sequence[int]) -> np.ndarray:
        """For each vertex ``v``, ``|Γ(v) ∩ S|`` (the radio collision count)."""
        mask = self._as_mask(subset)
        return self.adjacency @ mask.astype(np.int32)

    def gamma(self, subset: np.ndarray | Sequence[int]) -> np.ndarray:
        """``Γ(S)``: mask of vertices with at least one neighbour in ``S``
        (may intersect ``S`` itself, as in the paper)."""
        return self.neighbor_counts(subset) >= 1

    def gamma_minus(self, subset: np.ndarray | Sequence[int]) -> np.ndarray:
        """``Γ⁻(S) = Γ(S) \\ S``: the external neighbourhood."""
        mask = self._as_mask(subset)
        return self.gamma(mask) & ~mask

    def gamma_one(self, subset: np.ndarray | Sequence[int]) -> np.ndarray:
        """``Γ¹(S)``: vertices outside ``S`` with exactly one neighbour in ``S``."""
        mask = self._as_mask(subset)
        return (self.neighbor_counts(mask) == 1) & ~mask

    def gamma_s_excluding(
        self,
        s_subset: np.ndarray | Sequence[int],
        s_prime: np.ndarray | Sequence[int],
    ) -> np.ndarray:
        """``Γ_S(S')``: vertices outside ``S`` with ≥ 1 neighbour in ``S'``.

        ``s_prime`` must be contained in ``s_subset``.
        """
        s_mask = self._as_mask(s_subset)
        sp_mask = self._as_mask(s_prime)
        if (sp_mask & ~s_mask).any():
            raise ValueError("S' must be a subset of S")
        return self.gamma(sp_mask) & ~s_mask

    def gamma_one_s_excluding(
        self,
        s_subset: np.ndarray | Sequence[int],
        s_prime: np.ndarray | Sequence[int],
    ) -> np.ndarray:
        """``Γ¹_S(S')``: vertices outside ``S`` with exactly one neighbour in
        ``S'`` — the wireless-expansion payoff set."""
        s_mask = self._as_mask(s_subset)
        sp_mask = self._as_mask(s_prime)
        if (sp_mask & ~s_mask).any():
            raise ValueError("S' must be a subset of S")
        return (self.neighbor_counts(sp_mask) == 1) & ~s_mask

    # ------------------------------------------------------------------
    # Section 4.1 reduction
    # ------------------------------------------------------------------
    def boundary_bipartite(
        self, subset: np.ndarray | Sequence[int]
    ) -> tuple[BipartiteGraph, np.ndarray, np.ndarray]:
        """Extract ``G_S = (S, Γ⁻(S), E_S)`` as a :class:`BipartiteGraph`.

        Returns ``(gs, left_vertices, right_vertices)`` where
        ``left_vertices[i]`` / ``right_vertices[j]`` give the original vertex
        ids of the bipartite sides (both in increasing order).  Edges internal
        to ``S`` or to ``N`` are dropped, which per Section 4.1 "has no effect
        whatsoever on the expansion bounds".
        """
        s_mask = self._as_mask(subset)
        n_mask = self.gamma_minus(s_mask)
        left_vertices = np.flatnonzero(s_mask)
        right_vertices = np.flatnonzero(n_mask)
        lmap = np.full(self.n, -1, dtype=np.int64)
        lmap[left_vertices] = np.arange(left_vertices.size)
        rmap = np.full(self.n, -1, dtype=np.int64)
        rmap[right_vertices] = np.arange(right_vertices.size)
        all_edges = self.edges()
        # Keep edges with one endpoint in S and the other in N (either order).
        u, v = all_edges[:, 0], all_edges[:, 1]
        fwd = s_mask[u] & n_mask[v]
        bwd = s_mask[v] & n_mask[u]
        pairs = np.concatenate(
            [
                np.column_stack([lmap[u[fwd]], rmap[v[fwd]]]),
                np.column_stack([lmap[v[bwd]], rmap[u[bwd]]]),
            ]
        )
        gs = BipartiteGraph(left_vertices.size, right_vertices.size, pairs)
        return gs, left_vertices, right_vertices

    # ------------------------------------------------------------------
    # Connectivity / distance
    # ------------------------------------------------------------------
    def bfs_layers(self, source: int) -> np.ndarray:
        """BFS distance from ``source`` (``-1`` for unreachable), vectorized
        frontier expansion."""
        dist = np.full(self.n, -1, dtype=np.int64)
        frontier = np.zeros(self.n, dtype=bool)
        frontier[source] = True
        dist[source] = 0
        level = 0
        visited = frontier.copy()
        adj = self.adjacency
        while frontier.any():
            level += 1
            nxt = (adj @ frontier.astype(np.int32)) >= 1
            nxt &= ~visited
            dist[nxt] = level
            visited |= nxt
            frontier = nxt
        return dist

    def is_connected(self) -> bool:
        """True iff the graph is connected (the empty graph counts as connected)."""
        if self.n == 0:
            return True
        return bool((self.bfs_layers(0) >= 0).all())

    def diameter(self) -> int:
        """Exact diameter via all-sources BFS.

        Raises
        ------
        ValueError
            If the graph is disconnected or empty.
        """
        if self.n == 0:
            raise ValueError("diameter of an empty graph is undefined")
        best = 0
        for source in range(self.n):
            dist = self.bfs_layers(source)
            if (dist < 0).any():
                raise ValueError("diameter of a disconnected graph is undefined")
            best = max(best, int(dist.max()))
        return best

    def eccentricity(self, source: int) -> int:
        """Maximum BFS distance from ``source`` (graph must be connected)."""
        dist = self.bfs_layers(source)
        if (dist < 0).any():
            raise ValueError("eccentricity undefined on disconnected graphs")
        return int(dist.max())

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self.n == other.n and np.array_equal(
            self.edges(), other.edges()
        )

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((self.n, self.n_edges))

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, n_edges={self.n_edges})"
