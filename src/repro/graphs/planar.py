"""Low-arboricity workloads: grids, trees and triangulations.

The paper's headline corollary for this family: since
``arboricity ≥ min{Δ/β, Δ·β}``, any low-arboricity graph (planar graphs have
arboricity ≤ 3, trees have 1) has wireless expansion within a *constant*
factor of its ordinary expansion — so radio broadcast there is much cheaper
than the general ``log`` penalty.  These generators feed experiment E10.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng, check_positive_int
from repro.graphs.graph import Graph

__all__ = [
    "complete_binary_tree",
    "grid_2d",
    "random_recursive_tree",
    "triangular_grid",
]


def grid_2d(rows: int, cols: int) -> Graph:
    """The ``rows × cols`` grid graph (arboricity ≤ 2)."""
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    vid = (rr * cols + cc).ravel()
    rr, cc = rr.ravel(), cc.ravel()
    edges = []
    right = cc + 1 < cols
    edges.append(np.column_stack([vid[right], vid[right] + 1]))
    down = rr + 1 < rows
    edges.append(np.column_stack([vid[down], vid[down] + cols]))
    return Graph(rows * cols, np.concatenate(edges))


def triangular_grid(rows: int, cols: int) -> Graph:
    """Grid plus one diagonal per cell — a planar triangulation-style graph
    (arboricity ≤ 3)."""
    base = grid_2d(rows, cols)
    rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    vid = (rr * cols + cc).ravel()
    rr, cc = rr.ravel(), cc.ravel()
    diag = (rr + 1 < rows) & (cc + 1 < cols)
    extra = np.column_stack([vid[diag], vid[diag] + cols + 1])
    return Graph(rows * cols, np.concatenate([base.edges(), extra]))


def complete_binary_tree(height: int) -> Graph:
    """Perfect binary tree of the given height (``2^{h+1} − 1`` vertices,
    arboricity 1)."""
    check_positive_int(height + 1, "height + 1")
    n = (1 << (height + 1)) - 1
    children = np.arange(1, n)
    parents = (children - 1) // 2
    return Graph(n, np.column_stack([parents, children]))


def random_recursive_tree(n: int, rng=None) -> Graph:
    """Random recursive tree: vertex ``i`` attaches to a uniform earlier
    vertex.  Arboricity 1; used as the degenerate-workload extreme."""
    check_positive_int(n, "n")
    if n < 2:
        raise ValueError("random_recursive_tree needs n >= 2")
    gen = as_rng(rng)
    children = np.arange(1, n)
    parents = np.array([int(gen.integers(i)) for i in range(1, n)])
    return Graph(n, np.column_stack([parents, children]))
