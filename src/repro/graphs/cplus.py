"""The ``C⁺`` motivating example from Section 1.1.

``C⁺`` is a complete graph ``C`` on ``n`` vertices plus one extra source
vertex ``s₀`` connected to exactly two clique vertices ``x`` and ``y``.  It
is a good ordinary expander but a terrible *unique* expander: after the
first broadcast round the informed set ``S = {s₀, x, y}`` has no unique
neighbours at all (every clique vertex hears both ``x`` and ``y``), yet it is
a fine *wireless* expander because the sub-selection ``S' = {x}`` uniquely
covers the whole remaining clique.  This asymmetry is the seed observation of
the paper.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive_int
from repro.graphs.graph import Graph

__all__ = ["SOURCE", "cplus_graph", "cplus_informed_after_round_one"]

#: Vertex id of the source ``s₀`` in :func:`cplus_graph`.
SOURCE = 0


def cplus_graph(clique_size: int) -> Graph:
    """Build ``C⁺``: vertex 0 is ``s₀``; vertices ``1..clique_size`` form the
    clique; ``s₀`` is adjacent to clique vertices ``x = 1`` and ``y = 2``.

    Parameters
    ----------
    clique_size:
        Number of clique vertices; must be at least 3 so that the clique has
        vertices beyond ``{x, y}``.
    """
    check_positive_int(clique_size, "clique_size")
    if clique_size < 3:
        raise ValueError("clique_size must be >= 3")
    idx = np.arange(1, clique_size + 1)
    u, v = np.meshgrid(idx, idx, indexing="ij")
    mask = u < v
    clique_edges = np.column_stack([u[mask], v[mask]])
    source_edges = np.array([[SOURCE, 1], [SOURCE, 2]], dtype=np.int64)
    return Graph(clique_size + 1, np.concatenate([source_edges, clique_edges]))


def cplus_informed_after_round_one(clique_size: int) -> np.ndarray:
    """The informed set ``S = {s₀, x, y}`` after the source's first
    transmission — the set on which unique expansion collapses to zero."""
    graph = cplus_graph(clique_size)
    mask = np.zeros(graph.n, dtype=bool)
    mask[[SOURCE, 1, 2]] = True
    return mask
