"""Worst-case wireless expanders (Section 4.3.3, Claims 4.9/4.10, Cor 4.11).

Take any ordinary ``(α, β)``-expander ``G`` on ``n`` vertices with maximum
degree ``Δ`` and a blow-up parameter ``0 < ε < 1/2`` with
``Δ·β ≥ 1/(1 − 2ε)``.  Build the generalized core ``G*_S = (S*, N*, E*)``
with ``Δ* = ε·Δ`` and ``β* = β/ε``, add the fresh vertices ``S*`` to ``G``
and identify ``N*`` with arbitrary existing vertices of ``G``.  The result
``G̃``:

* stays an ordinary expander: ``β̃ = (1−ε)·β``, ``α̃ = (1−ε)·α``
  (Claim 4.9), with ``Δ̃ ≤ (1+ε)·Δ`` and ``ñ ≤ (1+ε)·n``;
* has *wireless* expansion
  ``β̃w = O(β̃ / (ε³ · log min{Δ̃/β̃, Δ̃·β̃}))`` (Claim 4.10), witnessed by
  the planted set ``S*`` itself — all of whose edges live in the core graph.

Together with Theorem 1.1 this pins the ordinary-vs-wireless gap to exactly
``Θ(log min{Δ/β, Δ·β})`` (Theorem 1.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._util import as_rng, check_fraction
from repro.graphs.generalized_core import (
    GeneralizedCore,
    generalized_core,
    generalized_core_max_unique_coverage,
)
from repro.graphs.graph import Graph

__all__ = [
    "WorstCaseExpander",
    "corollary_4_11_parameters",
    "worst_case_expander",
]


@dataclass(frozen=True)
class WorstCaseExpander:
    """The plugged graph ``G̃`` with bookkeeping for the planted bad set.

    Attributes
    ----------
    graph:
        ``G̃ = (V ∪ S*, E ∪ E*)``; original vertices keep their ids, the
        core's left side ``S*`` occupies ids ``n .. n + |S*| - 1``.
    planted_set:
        Vertex ids of ``S*`` in ``G̃`` — the set witnessing poor wireless
        expansion.
    core_right_vertices:
        Vertex ids (in ``G̃`` = in ``G``) that play the role of ``N*``.
    core:
        The :class:`GeneralizedCore` that was plugged in.
    epsilon:
        The blow-up parameter ``ε``.
    base_n, base_max_degree, base_beta:
        Parameters of the original expander ``G``.
    """

    graph: Graph
    planted_set: np.ndarray
    core_right_vertices: np.ndarray
    core: GeneralizedCore
    epsilon: float
    base_n: int
    base_max_degree: int
    base_beta: float

    @property
    def planted_wireless_coverage_cap(self) -> int:
        """Exact cap on ``max_{S' ⊆ S*} |Γ¹_{S*}(S')|`` inside ``G̃``.

        All edges incident to ``S*`` belong to the core graph, so the core's
        exact optimum (tree DP) is an upper bound on the planted set's unique
        coverage in ``G̃`` (vertices of ``N*`` may additionally be adjacent
        to each other in ``G``, but never to ``S*``; ``Γ¹`` only counts
        neighbours *in* ``S'``, so the cap is in fact exact).
        """
        return generalized_core_max_unique_coverage(self.core)

    @property
    def planted_wireless_expansion_cap(self) -> float:
        """Upper bound on the wireless expansion contributed by ``S*``:
        ``planted_wireless_coverage_cap / |S*|``."""
        return self.planted_wireless_coverage_cap / self.planted_set.size


def corollary_4_11_parameters(
    n: int, delta: float, beta: float, alpha: float, epsilon: float
) -> dict[str, float]:
    """The parameter sheet promised by Corollary 4.11.

    Returns the claimed bounds for ``ñ, Δ̃, β̃, α̃`` and the wireless
    expansion cap ``O(β̃/(ε³·log min{Δ̃/β̃, Δ̃·β̃}))`` (constant 24, as in
    the proof of Claim 4.10).
    """
    check_fraction(epsilon, "epsilon", inclusive_high=False)
    if epsilon >= 0.5:
        raise ValueError(f"epsilon must be < 1/2, got {epsilon}")
    if delta * beta < 1.0 / (1 - 2 * epsilon):
        raise ValueError(
            f"Corollary 4.11 requires Δ·β >= 1/(1−2ε); "
            f"got Δ·β={delta * beta}, 1/(1−2ε)={1/(1 - 2 * epsilon)}"
        )
    delta_tilde = (1 + epsilon) * delta
    beta_tilde = (1 - epsilon) * beta
    alpha_tilde = (1 - epsilon) * alpha
    n_tilde = (1 + epsilon) * n
    log_term = math.log2(
        min(delta_tilde / beta_tilde, delta_tilde * beta_tilde)
    )
    return {
        "n_tilde_max": n_tilde,
        "delta_tilde_max": delta_tilde,
        "beta_tilde": beta_tilde,
        "alpha_tilde": alpha_tilde,
        "log_min_ratio": log_term,
        "wireless_cap": 24 * beta_tilde / (epsilon**3 * log_term),
    }


def worst_case_expander(
    base: Graph,
    beta: float,
    epsilon: float,
    rng=None,
) -> WorstCaseExpander:
    """Plug a generalized core onto ``base`` to kill its wireless expansion.

    Parameters
    ----------
    base:
        An ordinary expander ``G`` (e.g. a random regular graph or a
        Margulis expander); its maximum degree ``Δ`` is read off the graph.
    beta:
        The (known or assumed) ordinary expansion ``β`` of ``base``.
    epsilon:
        Blow-up parameter ``0 < ε < 1/2``; must satisfy
        ``Δ·β ≥ 1/(1 − 2ε)`` and leave ``(Δ* = εΔ, β* = β/ε)`` inside
        Lemma 4.6's regime.
    rng:
        Seeds the arbitrary choice of ``N* ⊆ V(G)``.

    Raises
    ------
    ValueError
        If the core would need more right vertices than ``base`` has, or the
        parameters fall outside the lemma regimes.
    """
    check_fraction(epsilon, "epsilon", inclusive_high=False)
    if epsilon >= 0.5:
        raise ValueError(f"epsilon must be < 1/2, got {epsilon}")
    delta = base.max_degree
    if delta * beta < 1.0 / (1 - 2 * epsilon):
        raise ValueError(
            "Section 4.3.3 requires Δ·β >= 1/(1−2ε); "
            f"got Δ·β={delta * beta}"
        )
    core = generalized_core(epsilon * delta, beta / epsilon)
    if core.graph.n_right > base.n:
        raise ValueError(
            f"core needs |N*|={core.graph.n_right} right vertices but the "
            f"base graph only has n={base.n}; use a larger base or smaller ε"
        )
    gen = as_rng(rng)
    n_star = gen.choice(base.n, size=core.graph.n_right, replace=False)
    n_star = np.sort(n_star)

    n = base.n
    s_star = np.arange(n, n + core.graph.n_left, dtype=np.int64)
    core_edges = core.graph.edges()
    plugged = np.column_stack(
        [s_star[core_edges[:, 0]], n_star[core_edges[:, 1]]]
    )
    all_edges = np.concatenate([base.edges(), plugged])
    graph = Graph(n + core.graph.n_left, all_edges)
    return WorstCaseExpander(
        graph=graph,
        planted_set=s_star,
        core_right_vertices=n_star,
        core=core,
        epsilon=epsilon,
        base_n=n,
        base_max_degree=delta,
        base_beta=beta,
    )
