"""Arboricity, degeneracy and densest-subgraph machinery.

Section 2.1 defines arboricity à la Nash–Williams,
``η(G) = max_U ⌈|E(U)| / (|U| − 1)⌉``, and notes that any
``(α, β)``-expander with maximum degree ``Δ`` has
``η ≥ min{Δ/β, Δ·β}`` — which is why Theorem 1.1's ``log min{Δ/β, Δ·β}``
penalty collapses to a constant on low-arboricity (e.g. planar) graphs.

Implemented here:

* :func:`degeneracy` — Matula–Beck peeling; ``η ≤ degeneracy ≤ 2η − 1``.
* :func:`densest_subgraph` — Goldberg's exact ``max_U |E(U)|/|U|`` via
  parametric min-cut (edge-node network, exact rational arithmetic).
* :func:`nash_williams_density` — exact ``max_U |E(U)|/(|U|−1)``: subset
  enumeration for small graphs, otherwise the forced-vertex parametric
  min-cut variant.
* :func:`arboricity` — ``⌈nash_williams_density⌉`` (ceiling commutes with
  the max since it is monotone).
"""

from __future__ import annotations

import itertools
from fractions import Fraction

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "arboricity",
    "degeneracy",
    "degeneracy_ordering",
    "densest_subgraph",
    "expander_arboricity_lower_bound",
    "nash_williams_density",
]


def degeneracy_ordering(graph: Graph) -> np.ndarray:
    """Matula–Beck smallest-last ordering (repeatedly remove a min-degree
    vertex).  Returns the removal order."""
    n = graph.n
    degrees = graph.degrees.copy()
    removed = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    # Simple O(n^2 + m) selection; graphs in this repo are small enough that
    # a bucket queue is not worth the complexity.
    for step in range(n):
        candidates = np.flatnonzero(~removed)
        v = candidates[int(np.argmin(degrees[candidates]))]
        order[step] = v
        removed[v] = True
        nbrs = graph.neighbors(v)
        degrees[nbrs[~removed[nbrs]]] -= 1
    return order


def degeneracy(graph: Graph) -> int:
    """The degeneracy (smallest-last max back-degree); sandwiches arboricity
    within a factor 2."""
    if graph.n == 0:
        return 0
    degrees = graph.degrees.copy()
    removed = np.zeros(graph.n, dtype=bool)
    best = 0
    for _ in range(graph.n):
        candidates = np.flatnonzero(~removed)
        v = candidates[int(np.argmin(degrees[candidates]))]
        best = max(best, int(degrees[v]))
        removed[v] = True
        nbrs = graph.neighbors(v)
        degrees[nbrs[~removed[nbrs]]] -= 1
    return best


def _edges_inside(graph: Graph, subset: np.ndarray) -> int:
    mask = np.zeros(graph.n, dtype=bool)
    mask[subset] = True
    edges = graph.edges()
    return int((mask[edges[:, 0]] & mask[edges[:, 1]]).sum())


def _exists_denser(
    graph: Graph, threshold: Fraction, forced: int | None, denominator_shift: int
) -> tuple[bool, np.ndarray | None]:
    """Exact decision: is there a vertex set ``U`` (containing ``forced`` if
    given, ``|U| ≥ denominator_shift + 1``) with
    ``|E(U)| / (|U| − denominator_shift) > threshold``?

    Uses the edge-node max-flow network with capacities scaled by
    ``threshold``'s denominator so all arithmetic stays integral.  Returns
    the witness set on success.
    """
    import networkx as nx

    p, q = threshold.numerator, threshold.denominator
    m = graph.n_edges
    if m == 0:
        return False, None
    net = nx.DiGraph()
    source, sink = "s", "t"
    edges = graph.edges()
    for idx, (u, v) in enumerate(edges):
        enode = ("e", idx)
        net.add_edge(source, enode, capacity=q)
        net.add_edge(enode, ("v", int(u)), capacity=float("inf"))
        net.add_edge(enode, ("v", int(v)), capacity=float("inf"))
    for v in range(graph.n):
        if forced is not None and v == forced:
            # Forcing v into U: make cutting it from the source impossible.
            net.add_edge(source, ("v", v), capacity=float("inf"))
        net.add_edge(("v", v), sink, capacity=p)
    cut_value, (source_side, _) = nx.minimum_cut(net, source, sink)
    # min cut = q*m - max_U (q*|E(U)| - p*|U|)  [over U containing `forced`]
    best = q * m - cut_value
    # Condition |E(U)|/(|U| - shift) > p/q  <=>  q|E(U)| - p|U| > -p*shift.
    if best > -p * denominator_shift:
        subset = np.array(
            sorted(
                node[1]
                for node in source_side
                if isinstance(node, tuple) and node[0] == "v"
            ),
            dtype=np.int64,
        )
        if subset.size >= denominator_shift + 1:
            return True, subset
        # Degenerate witness (can happen only at the boundary); treat as no.
        return False, None
    return False, None


def _parametric_max(
    graph: Graph, denominator_shift: int
) -> tuple[Fraction, np.ndarray]:
    """Exact ``max_U |E(U)| / (|U| − denominator_shift)`` by parametric
    min-cut binary search with rational snapping."""
    n, m = graph.n, graph.n_edges
    if m == 0:
        return Fraction(0), np.arange(min(n, denominator_shift + 1))
    forced_choices: list[int | None]
    if denominator_shift == 0:
        forced_choices = [None]
    else:
        # |U| - 1 in the denominator: the empty-set degeneracy of the cut
        # formulation is avoided by forcing one vertex into U.
        forced_choices = list(range(n))

    lo = Fraction(0)
    hi = Fraction(m, 1)
    # Distinct candidate values are p/(k) with k <= n, so a gap of 1/n^2
    # isolates the optimum.
    gap = Fraction(1, n * n + 1)
    best_witness: np.ndarray | None = None
    while hi - lo > gap:
        mid = (lo + hi) / 2
        found = False
        for forced in forced_choices:
            ok, witness = _exists_denser(graph, mid, forced, denominator_shift)
            if ok:
                found = True
                best_witness = witness
                break
        if found:
            lo = mid
        else:
            hi = mid
    # Snap to the unique rational with denominator <= n in (lo, hi].
    candidates = []
    for denom in range(1, n + 1):
        numer = int(hi * denom)
        frac = Fraction(numer, denom)
        if lo < frac <= hi:
            candidates.append(frac)
    if not candidates:
        raise RuntimeError("parametric search failed to isolate the density")
    density = max(candidates)
    if best_witness is None:
        # The optimum is the starting lower bound: recover a witness at
        # density - gap.
        for forced in forced_choices:
            ok, witness = _exists_denser(
                graph, density - gap, forced, denominator_shift
            )
            if ok:
                best_witness = witness
                break
    assert best_witness is not None
    return density, best_witness


def densest_subgraph(graph: Graph) -> tuple[Fraction, np.ndarray]:
    """Goldberg's exact densest subgraph: ``max_U |E(U)|/|U|`` with witness."""
    if graph.n == 0:
        raise ValueError("densest_subgraph of the empty graph is undefined")
    return _parametric_max(graph, denominator_shift=0)


def nash_williams_density(
    graph: Graph, exact_small_limit: int = 14
) -> tuple[Fraction, np.ndarray]:
    """Exact ``max_{U, |U| ≥ 2} |E(U)|/(|U| − 1)`` with a witness set.

    Enumerates subsets when ``n ≤ exact_small_limit`` (cheap and obviously
    correct); otherwise runs the forced-vertex parametric min-cut.
    """
    if graph.n < 2:
        raise ValueError("nash_williams_density needs at least two vertices")
    if graph.n_edges == 0:
        return Fraction(0), np.array([0, 1], dtype=np.int64)
    if graph.n <= exact_small_limit:
        best = Fraction(-1)
        best_set: tuple[int, ...] = (0, 1)
        vertices = range(graph.n)
        for size in range(2, graph.n + 1):
            for subset in itertools.combinations(vertices, size):
                arr = np.array(subset, dtype=np.int64)
                dens = Fraction(_edges_inside(graph, arr), size - 1)
                if dens > best:
                    best, best_set = dens, subset
        return best, np.array(best_set, dtype=np.int64)
    return _parametric_max(graph, denominator_shift=1)


def arboricity(graph: Graph, exact_small_limit: int = 14) -> int:
    """Nash–Williams arboricity ``max_U ⌈|E(U)|/(|U|−1)⌉``."""
    if graph.n_edges == 0:
        return 0
    density, _ = nash_williams_density(graph, exact_small_limit)
    return int(-(-density.numerator // density.denominator))


def expander_arboricity_lower_bound(delta: float, beta: float) -> float:
    """The paper's Section 2.1 remark: an ``(α, β)``-expander with maximum
    degree ``Δ`` has arboricity at least ``min{Δ/β, Δ·β}`` — hence the
    Theorem 1.1 penalty is only ``O(log η)``."""
    return min(delta / beta, delta * beta)
