"""Standard graph families used as experiment workloads.

These provide the "ordinary expanders" that Theorem 1.1 takes as input and
the base graphs that Corollary 4.11 plugs the generalized core graph onto.
Random d-regular graphs are near-Ramanujan with high probability (Friedman's
theorem), standing in for the "known explicit expanders" the paper invokes;
Margulis–Gabber–Galil and chordal-cycle graphs give fully explicit expanders.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng, check_positive_int
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph

__all__ = [
    "chordal_cycle_graph",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi",
    "hypercube",
    "margulis_expander",
    "path_graph",
    "random_bipartite_regular",
    "random_bipartite",
    "random_regular",
    "star_graph",
]

#: Above this vertex count the randomized/explicit expander builders go
#: straight to CSR (:meth:`Graph.from_csr`) instead of routing through
#: networkx or edge-list canonicalization — the datacenter-scale path.
#: Below it, the legacy constructions are kept verbatim so existing seeds
#: keep producing bit-identical graphs.
_DIRECT_SAMPLER_MIN_N = 50_000


def _csr_from_pairs(n: int, u: np.ndarray, v: np.ndarray) -> Graph:
    """Symmetric, deduplicated CSR straight from directed edge endpoints.

    ``(u[i], v[i])`` are simple edges (no self-loops), possibly repeated;
    both directions are emitted, sorted, and deduplicated in vectorized
    numpy — no per-edge Python tuples and no duplicate-scanning
    :class:`Graph` constructor pass.
    """
    rows = np.concatenate([u, v])
    cols = np.concatenate([v, u])
    order = np.lexsort((cols, rows))
    rows = rows[order]
    cols = cols[order]
    if rows.shape[0]:
        keep = np.ones(rows.shape[0], dtype=bool)
        keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        rows = rows[keep]
        cols = cols[keep]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
    return Graph.from_csr(n, indptr, cols, validate=False)


def _random_regular_direct(n: int, d: int, gen: np.random.Generator) -> Graph:
    """Configuration-model pairing with vectorized repair.

    Pairs the ``n·d`` half-edge stubs uniformly, then repeatedly reshuffles
    the stubs of self-loops and duplicate edges until the graph is simple.
    When the repair pool stops shrinking (bad stubs sharing endpoints), an
    equal number of random good edges is broken up to re-open the mixing.
    For ``d ≪ n`` this converges in a handful of rounds w.h.p.
    """
    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    gen.shuffle(stubs)
    u, v = stubs[0::2].copy(), stubs[1::2].copy()
    stall, last_bad = 0, u.shape[0] + 1
    for _ in range(1000):
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        key = lo * n + hi
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        bad = u == v
        # Mark every repeat of an unordered pair past its first occurrence.
        repeats = np.zeros(key.shape[0], dtype=bool)
        repeats[order[1:]] = sorted_key[1:] == sorted_key[:-1]
        bad |= repeats
        n_bad = int(bad.sum())
        if n_bad == 0:
            return _csr_from_pairs(n, u, v)
        stall = stall + 1 if n_bad >= last_bad else 0
        last_bad = n_bad
        if stall >= 10:
            good = np.flatnonzero(~bad)
            release = gen.choice(
                good, size=min(good.size, n_bad), replace=False
            )
            bad[release] = True
            stall = 0
        pool = np.concatenate([u[bad], v[bad]])
        gen.shuffle(pool)
        keep = ~bad
        u = np.concatenate([u[keep], pool[0::2]])
        v = np.concatenate([v[keep], pool[1::2]])
    raise RuntimeError(
        f"random_regular pairing failed to mix for n={n}, d={d}; "
        "this regime (d close to n) needs the exact sampler — "
        f"use n < {_DIRECT_SAMPLER_MIN_N} to route through networkx"
    )


def complete_graph(n: int) -> Graph:
    """``K_n`` — the extreme (and degenerate) expander."""
    check_positive_int(n, "n")
    idx = np.arange(n)
    u, v = np.meshgrid(idx, idx, indexing="ij")
    mask = u < v
    return Graph(n, np.column_stack([u[mask], v[mask]]))


def cycle_graph(n: int) -> Graph:
    """``C_n`` — a 2-regular graph with poor expansion (β ≈ 2/|S|)."""
    check_positive_int(n, "n")
    if n < 3:
        raise ValueError("cycle_graph needs n >= 3")
    idx = np.arange(n)
    return Graph(n, np.column_stack([idx, (idx + 1) % n]))


def path_graph(n: int) -> Graph:
    """``P_n`` — a path on ``n`` vertices."""
    check_positive_int(n, "n")
    idx = np.arange(n - 1)
    return Graph(n, np.column_stack([idx, idx + 1]))


def star_graph(n: int) -> Graph:
    """``K_{1,n-1}`` — centre vertex 0; a tree with maximal degree skew."""
    check_positive_int(n, "n")
    if n < 2:
        raise ValueError("star_graph needs n >= 2")
    leaves = np.arange(1, n)
    return Graph(n, np.column_stack([np.zeros(n - 1, dtype=np.int64), leaves]))


def hypercube(dimension: int) -> Graph:
    """The ``d``-dimensional hypercube ``Q_d``: ``2^d`` vertices, degree ``d``.

    A classic bounded-degree expander with vertex expansion ``Θ(1/√d)`` for
    balanced sets (Harper's theorem).
    """
    check_positive_int(dimension, "dimension")
    n = 1 << dimension
    verts = np.arange(n)
    edges = []
    for bit in range(dimension):
        mate = verts ^ (1 << bit)
        keep = verts < mate
        edges.append(np.column_stack([verts[keep], mate[keep]]))
    return Graph(n, np.concatenate(edges))


def random_regular(n: int, d: int, rng=None) -> Graph:
    """Random simple ``d``-regular graph.

    Below ``n = 50,000`` this delegates to networkx's pairing-with-repair
    sampler (Steger–Wormald style) — kept verbatim so existing seeds keep
    producing bit-identical graphs.  At datacenter scale it switches to a
    vectorized configuration-model pairing that builds the CSR directly
    (:func:`_random_regular_direct`): no networkx node objects, no Python
    edge tuples — a few ``n·d``-length numpy passes.  Random regular
    graphs are near-Ramanujan w.h.p. (Friedman), so they serve as the
    generic good expander throughout.
    """
    check_positive_int(n, "n")
    check_positive_int(d, "d")
    if (n * d) % 2 != 0:
        raise ValueError("n*d must be even for a d-regular graph")
    if d >= n:
        raise ValueError("need d < n")
    gen = as_rng(rng)
    if n >= _DIRECT_SAMPLER_MIN_N:
        return _random_regular_direct(n, d, gen)
    import networkx as nx

    seed = int(gen.integers(0, 2**32 - 1))
    g = nx.random_regular_graph(d, n, seed=seed)
    return Graph(n, np.array(sorted((min(a, b), max(a, b)) for a, b in g.edges())))


def margulis_expander(side: int) -> Graph:
    """Margulis–Gabber–Galil expander on ``Z_m × Z_m`` (simple-graph version).

    Vertex ``(x, y)`` connects to ``(x±y, y)``, ``(x±y+1, y)``, ``(x, y±x)``
    and ``(x, y±x+1)`` (mod ``m``).  The multigraph is 8-regular; we keep the
    underlying simple graph, which preserves Ω(1) vertex expansion.
    """
    check_positive_int(side, "side")
    if side < 2:
        raise ValueError("margulis_expander needs side >= 2")
    m = side
    xs, ys = np.meshgrid(np.arange(m), np.arange(m), indexing="ij")
    x = xs.ravel()
    y = ys.ravel()
    vid = x * m + y

    def pack(a, b):
        return (a % m) * m + (b % m)

    targets = [
        pack(x + y, y),
        pack(x - y, y),
        pack(x + y + 1, y),
        pack(x - y - 1, y),
        pack(x, y + x),
        pack(x, y - x),
        pack(x, y + x + 1),
        pack(x, y - x - 1),
    ]
    pairs = np.concatenate(
        [np.column_stack([vid, t]) for t in targets]
    )
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    if m * m >= _DIRECT_SAMPLER_MIN_N:
        # The generator set is closed under inverse, so the directed pair
        # list is already symmetric — straight to CSR, skipping the
        # canonical-edge unique pass and the Graph constructor's
        # duplicate scan.
        return _csr_from_pairs(m * m, pairs[:, 0], pairs[:, 1])
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    uniq = np.unique(np.column_stack([lo, hi]), axis=0)
    return Graph(m * m, uniq)


def chordal_cycle_graph(p: int) -> Graph:
    """Chordal cycle on ``Z_p`` (``p`` prime): ``x ~ x±1`` and ``x ~ x⁻¹``.

    A 3-regular explicit expander (Lubotzky); ``0`` is paired with itself
    under inversion so its chord is dropped, making the graph simple.
    """
    check_positive_int(p, "p")
    if p < 3 or any(p % q == 0 for q in range(2, int(p**0.5) + 1)):
        raise ValueError("chordal_cycle_graph requires a prime p >= 3")
    edges = set()
    for xv in range(p):
        edges.add((min(xv, (xv + 1) % p), max(xv, (xv + 1) % p)))
        if xv != 0:
            inv = pow(xv, p - 2, p)
            if inv != xv:
                edges.add((min(xv, inv), max(xv, inv)))
    return Graph(p, sorted(edges))


def erdos_renyi(n: int, p: float, rng=None) -> Graph:
    """``G(n, p)`` random graph."""
    check_positive_int(n, "n")
    if not 0 <= p <= 1:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    gen = as_rng(rng)
    idx = np.arange(n)
    u, v = np.meshgrid(idx, idx, indexing="ij")
    mask = u < v
    uu, vv = u[mask], v[mask]
    keep = gen.random(uu.shape[0]) < p
    return Graph(n, np.column_stack([uu[keep], vv[keep]]))


def random_bipartite_regular(
    n_left: int, n_right: int, left_degree: int, rng=None
) -> BipartiteGraph:
    """Random bipartite graph, every left vertex of degree ``left_degree``.

    Each left vertex picks ``left_degree`` distinct right neighbours uniformly
    at random — the natural random instance for spokesman-election workloads.
    """
    check_positive_int(n_left, "n_left")
    check_positive_int(n_right, "n_right")
    check_positive_int(left_degree, "left_degree")
    if left_degree > n_right:
        raise ValueError("left_degree cannot exceed n_right")
    gen = as_rng(rng)
    edges = np.empty((n_left * left_degree, 2), dtype=np.int64)
    for u in range(n_left):
        nbrs = gen.choice(n_right, size=left_degree, replace=False)
        edges[u * left_degree : (u + 1) * left_degree, 0] = u
        edges[u * left_degree : (u + 1) * left_degree, 1] = nbrs
    return BipartiteGraph(n_left, n_right, edges)


def random_bipartite(n_left: int, n_right: int, p: float, rng=None) -> BipartiteGraph:
    """Bipartite ``G(n_left, n_right, p)``: each edge present independently.

    Right vertices that end up isolated are kept (callers that need the
    paper's no-isolated-vertex assumption should restrict the right side).
    """
    check_positive_int(n_left, "n_left")
    check_positive_int(n_right, "n_right")
    if not 0 <= p <= 1:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    gen = as_rng(rng)
    mat = gen.random((n_right, n_left)) < p
    return BipartiteGraph.from_biadjacency(mat.astype(np.int8))
