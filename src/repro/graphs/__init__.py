"""Graph substrates: kernels, families, and the paper's constructions.

* :class:`~repro.graphs.bipartite.BipartiteGraph` / :class:`~repro.graphs.graph.Graph`
  — the two core data structures;
* :mod:`~repro.graphs.families`, :mod:`~repro.graphs.planar` — workload
  generators (expanders and low-arboricity graphs);
* :mod:`~repro.graphs.cplus`, :mod:`~repro.graphs.gbad`,
  :mod:`~repro.graphs.core_graph`, :mod:`~repro.graphs.generalized_core`,
  :mod:`~repro.graphs.worst_case`, :mod:`~repro.graphs.broadcast_chain`
  — the constructions from the paper (Sections 1.1, 3, 4.3 and 5);
* :mod:`~repro.graphs.arboricity` — Nash–Williams machinery.
"""

from repro.graphs.arboricity import (
    arboricity,
    degeneracy,
    degeneracy_ordering,
    densest_subgraph,
    expander_arboricity_lower_bound,
    nash_williams_density,
)
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.broadcast_chain import BroadcastChain, broadcast_chain
from repro.graphs.core_graph import (
    CoreGraphLayout,
    core_graph,
    core_graph_layout,
    core_graph_max_unique_coverage,
    core_graph_min_expansion,
    core_graph_properties,
)
from repro.graphs.cplus import cplus_graph, cplus_informed_after_round_one
from repro.graphs.families import (
    chordal_cycle_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    hypercube,
    margulis_expander,
    path_graph,
    random_bipartite,
    random_bipartite_regular,
    random_regular,
    star_graph,
)
from repro.graphs.gbad_analysis import (
    alternating_run_payoff,
    full_run_payoff,
    gbad_run_subset,
    predicted_run_wireless,
)
from repro.graphs.gbad import (
    gbad,
    gbad_alternating_subset,
    gbad_private_block,
    gbad_shared_block,
    gbad_unique_expansion,
    gbad_wireless_lower_bound,
)
from repro.graphs.generalized_core import (
    GeneralizedCore,
    boosted_core,
    diluted_core,
    generalized_core,
    generalized_core_max_unique_coverage,
    lemma46_regime_ok,
)
from repro.graphs.graph import Graph
from repro.graphs.unique_tweak import UniqueTweaked, unique_tweaked_expander
from repro.graphs.planar import (
    complete_binary_tree,
    grid_2d,
    random_recursive_tree,
    triangular_grid,
)
from repro.graphs.worst_case import (
    WorstCaseExpander,
    corollary_4_11_parameters,
    worst_case_expander,
)

__all__ = [
    "BipartiteGraph",
    "BroadcastChain",
    "CoreGraphLayout",
    "GeneralizedCore",
    "Graph",
    "WorstCaseExpander",
    "alternating_run_payoff",
    "arboricity",
    "boosted_core",
    "broadcast_chain",
    "chordal_cycle_graph",
    "complete_binary_tree",
    "complete_graph",
    "core_graph",
    "core_graph_layout",
    "core_graph_max_unique_coverage",
    "core_graph_min_expansion",
    "core_graph_properties",
    "corollary_4_11_parameters",
    "cplus_graph",
    "cplus_informed_after_round_one",
    "cycle_graph",
    "degeneracy",
    "degeneracy_ordering",
    "densest_subgraph",
    "diluted_core",
    "erdos_renyi",
    "expander_arboricity_lower_bound",
    "full_run_payoff",
    "gbad",
    "gbad_run_subset",
    "gbad_alternating_subset",
    "gbad_private_block",
    "gbad_shared_block",
    "gbad_unique_expansion",
    "gbad_wireless_lower_bound",
    "generalized_core",
    "generalized_core_max_unique_coverage",
    "grid_2d",
    "hypercube",
    "lemma46_regime_ok",
    "margulis_expander",
    "nash_williams_density",
    "path_graph",
    "predicted_run_wireless",
    "random_bipartite",
    "random_bipartite_regular",
    "random_recursive_tree",
    "random_regular",
    "star_graph",
    "UniqueTweaked",
    "unique_tweaked_expander",
    "triangular_grid",
    "worst_case_expander",
]
