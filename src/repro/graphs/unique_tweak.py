"""The Lemma 3.3 remark-(2) "tweak": capping a graph's unique expansion.

Remark (2) after Lemma 3.3: plug the bad bipartite graph ``Gbad`` on top of
an ordinary ``(α, β)``-expander (identifying ``Gbad``'s right side with
existing vertices, adding its left side as fresh vertices).  The composite
stays an ordinary expander with comparable parameters, but its
unique-neighbour expansion is capped at ``2β − Δ'`` for the new maximum
degree ``Δ'`` — e.g. ``2β − Δ'/2`` when degrees double.  This is the
unique-expansion analogue of the Section 4.3.3 wireless worst case, and the
paper omits its "rather simple" details; we implement them here so the
Section 3 tightness results also hold for non-bipartite ambient graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng, check_positive_int
from repro.graphs.gbad import gbad
from repro.graphs.graph import Graph

__all__ = ["UniqueTweaked", "unique_tweaked_expander"]


@dataclass(frozen=True)
class UniqueTweaked:
    """An expander with a planted bad-unique-expansion set.

    Attributes
    ----------
    graph:
        The composite graph; base vertices keep their ids, ``Gbad``'s left
        side occupies ids ``n .. n + s − 1``.
    planted_set:
        The ``S`` of ``Gbad`` inside the composite — the set whose unique
        expansion is exactly ``2β_bad − Δ_bad``.
    right_vertices:
        Base-graph vertices playing ``Gbad``'s ``N`` role.
    delta_bad, beta_bad:
        The ``Gbad`` parameters.
    """

    graph: Graph
    planted_set: np.ndarray
    right_vertices: np.ndarray
    delta_bad: int
    beta_bad: int

    @property
    def planted_unique_cap(self) -> int:
        """Per-vertex unique coverage of the planted set: exactly
        ``2β − Δ`` vertices per planted vertex (Lemma 3.3)."""
        return 2 * self.beta_bad - self.delta_bad


def unique_tweaked_expander(
    base: Graph, s: int, delta_bad: int, beta_bad: int, rng=None
) -> UniqueTweaked:
    """Plug ``Gbad(s, Δ, β)`` onto ``base``.

    The planted set's unique expansion in the composite is *at most*
    ``2β − Δ`` (its edges all live in the ``Gbad`` layer; base-internal
    edges between the chosen right vertices cannot add unique neighbours of
    the planted set, whose only neighbours are the right vertices).

    Raises
    ------
    ValueError
        If ``base`` has fewer than ``s·β`` vertices to host ``N``.
    """
    check_positive_int(s, "s")
    bad = gbad(s, delta_bad, beta_bad)
    if bad.n_right > base.n:
        raise ValueError(
            f"Gbad needs {bad.n_right} right vertices but base has {base.n}"
        )
    gen = as_rng(rng)
    rights = np.sort(gen.choice(base.n, size=bad.n_right, replace=False))
    planted = np.arange(base.n, base.n + s, dtype=np.int64)
    bad_edges = bad.edges()
    plugged = np.column_stack(
        [planted[bad_edges[:, 0]], rights[bad_edges[:, 1]]]
    )
    graph = Graph(base.n + s, np.concatenate([base.edges(), plugged]))
    return UniqueTweaked(
        graph=graph,
        planted_set=planted,
        right_vertices=rights,
        delta_bad=delta_bad,
        beta_bad=beta_bad,
    )
