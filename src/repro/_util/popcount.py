"""Vectorized population counts for subset-enumeration kernels.

The exact wireless-expansion computation (:mod:`repro.expansion.wireless`)
enumerates all ``2^k`` subsets of a vertex set ``S`` as ``uint32``/``uint64``
bitmasks and needs, for every right-side vertex ``v`` with neighbourhood mask
``m_v``, the number of set bits of ``mask & m_v`` across the whole subset
array at once.  A 16-bit lookup table keeps that a handful of vectorized
gathers instead of a Python loop per subset (per the hpc-parallel guides:
vectorize the inner loop, keep the table cache-resident).
"""

from __future__ import annotations

import numpy as np

__all__ = ["POPCOUNT16", "popcount_u32", "popcount_u64"]


def _build_table() -> np.ndarray:
    table = np.zeros(1 << 16, dtype=np.uint8)
    for i in range(16):
        table[(np.arange(1 << 16) >> i) & 1 == 1] += 1
    return table


#: ``POPCOUNT16[x]`` is the number of set bits of the 16-bit integer ``x``.
POPCOUNT16: np.ndarray = _build_table()


def popcount_u32(values: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint32`` array (returns ``uint8`` counts)."""
    values = np.asarray(values, dtype=np.uint32)
    lo = POPCOUNT16[values & np.uint32(0xFFFF)]
    hi = POPCOUNT16[values >> np.uint32(16)]
    return lo + hi


def popcount_u64(values: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint64`` array (returns ``uint8`` counts)."""
    values = np.asarray(values, dtype=np.uint64)
    c = POPCOUNT16[values & np.uint64(0xFFFF)]
    c = c + POPCOUNT16[(values >> np.uint64(16)) & np.uint64(0xFFFF)]
    c = c + POPCOUNT16[(values >> np.uint64(32)) & np.uint64(0xFFFF)]
    c = c + POPCOUNT16[values >> np.uint64(48)]
    return c
