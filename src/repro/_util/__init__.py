"""Internal utilities shared across the :mod:`repro` package.

Nothing here is part of the public API; downstream users should import from
:mod:`repro` or its documented subpackages instead.
"""

from repro._util.dtypes import (
    WORD_BITS,
    WORD_DTYPE,
    count_dtype_for_degree,
    narrow_uint,
)
from repro._util.intmath import (
    ceil_div,
    ceil_log2,
    ilog2,
    is_power_of_two,
    log2_real,
    next_power_of_two,
    parse_byte_size,
)
from repro._util.popcount import POPCOUNT16, popcount_u32, popcount_u64
from repro._util.specstr import format_call, format_value, parse_call, parse_value
from repro._util.rng import (
    as_rng,
    counter_coin_blocks,
    counter_coins,
    counter_uniforms,
    derive_keys,
    spawn_seeds,
)
from repro._util.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
)

__all__ = [
    "POPCOUNT16",
    "WORD_BITS",
    "WORD_DTYPE",
    "as_rng",
    "ceil_div",
    "ceil_log2",
    "count_dtype_for_degree",
    "check_fraction",
    "check_positive",
    "check_positive_int",
    "counter_coin_blocks",
    "counter_coins",
    "counter_uniforms",
    "derive_keys",
    "format_call",
    "format_value",
    "ilog2",
    "is_power_of_two",
    "log2_real",
    "narrow_uint",
    "next_power_of_two",
    "parse_byte_size",
    "parse_call",
    "parse_value",
    "popcount_u32",
    "popcount_u64",
    "spawn_seeds",
]
