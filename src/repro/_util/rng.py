"""Seeding discipline for all randomized components.

Every randomized function in :mod:`repro` accepts an ``rng`` argument that is
either ``None`` (fresh entropy), an integer seed, or an existing
:class:`numpy.random.Generator`.  Centralizing the coercion keeps experiment
sweeps reproducible: the analysis harness spawns independent child seeds with
:func:`spawn_seeds` so that parallel arms of a sweep never share streams.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "spawn_seeds"]

RngLike = "np.random.Generator | int | None"


def as_rng(rng: np.random.Generator | int | None = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed, or a ``Generator`` which is
        returned unchanged (so callers can thread one stream through a whole
        experiment).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        "rng must be None, an int seed, or a numpy Generator; "
        f"got {type(rng).__name__}"
    )


def spawn_seeds(rng: np.random.Generator | int | None, count: int) -> list[int]:
    """Derive ``count`` independent integer seeds from ``rng``.

    Used by sweeps so that each (parameter point, repetition) pair owns a
    deterministic child stream regardless of evaluation order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    gen = as_rng(rng)
    return [int(s) for s in gen.integers(0, 2**63 - 1, size=count)]
