"""Seeding discipline for all randomized components.

Every randomized function in :mod:`repro` accepts an ``rng`` argument that is
either ``None`` (fresh entropy), an integer seed, or an existing
:class:`numpy.random.Generator`.  Centralizing the coercion keeps experiment
sweeps reproducible: the analysis harness spawns independent child seeds with
:func:`spawn_seeds` so that parallel arms of a sweep never share streams.

The batched simulation engine additionally needs *counter-based* randomness:
a protocol running ``T`` trials at once must produce, for trial ``t``, the
exact bit stream a standalone run seeded with trial ``t``'s seed would see —
otherwise batched and looped experiments are not comparable.  Stateful
generators cannot be vectorized across independent streams, so per-run
randomness is reduced to a pure function ``uniform(key, round, node)``
(:func:`counter_uniforms`, a splitmix64-style hash): one ``(n, T)`` array op
evaluates all trials' draws at once, and a single-trial run evaluating the
same function column-wise agrees bit for bit.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "as_rng",
    "counter_coin_blocks",
    "counter_coins",
    "counter_uniforms",
    "derive_keys",
    "spawn_seeds",
]

RngLike = "np.random.Generator | int | None"


def as_rng(rng: np.random.Generator | int | None = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed, or a ``Generator`` which is
        returned unchanged (so callers can thread one stream through a whole
        experiment).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        "rng must be None, an int seed, or a numpy Generator; "
        f"got {type(rng).__name__}"
    )


def spawn_seeds(rng: np.random.Generator | int | None, count: int) -> list[int]:
    """Derive ``count`` independent integer seeds from ``rng``.

    Used by sweeps so that each (parameter point, repetition) pair owns a
    deterministic child stream regardless of evaluation order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    gen = as_rng(rng)
    return [int(s) for s in gen.integers(0, 2**63 - 1, size=count)]


# Splitmix64 constants (Steele–Lea–Flood) for the cheap per-(key, round)
# mixing, and the murmur3 32-bit finalizer for the (n, T) lane pass — 32-bit
# multiplies vectorize far better than 64-bit ones, and 32 bits of entropy
# per (node, round, trial) coin is ample for a simulation stream.
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_A = np.uint64(0xBF58476D1CE4E5B9)
_MIX_B = np.uint64(0x94D049BB133111EB)
_GOLDEN32 = np.uint32(0x9E3779B9)
_MURMUR_A = np.uint32(0x85EBCA6B)
_MURMUR_B = np.uint32(0xC2B2AE35)
_INV_2_32 = np.float64(2.0**-32)


def _splitmix(z: np.ndarray) -> np.ndarray:
    z = (z ^ (z >> np.uint64(30))) * _MIX_A
    z = (z ^ (z >> np.uint64(27))) * _MIX_B
    return z ^ (z >> np.uint64(31))


# Pre-mixed per-node lane hashes, keyed by n.  Round-invariant, so caching
# them halves the per-round mixing work of the batched hot path; a handful
# of distinct n values per process keeps this tiny.
_NODE_HASH_CACHE: dict[int, np.ndarray] = {}


def _node_hashes(n: int) -> np.ndarray:
    cached = _NODE_HASH_CACHE.get(n)
    if cached is None:
        with np.errstate(over="ignore"):
            mixed = _splitmix(np.arange(1, n + 1, dtype=np.uint64) * _GOLDEN)
        cached = (mixed >> np.uint64(32)).astype(np.uint32)[:, None]
        _NODE_HASH_CACHE[n] = cached
    return cached


def derive_keys(rngs) -> np.ndarray:
    """One 64-bit counter key per generator, as a ``(len(rngs),)`` uint64 array.

    Each key is a single ``integers`` draw from its generator, so a batch of
    generators seeded with :func:`spawn_seeds` children and a standalone
    generator seeded with one of those children derive identical keys —
    the anchor of the batched/looped bit-for-bit equivalence guarantee.
    """
    return np.array(
        [as_rng(g).integers(0, 2**64, dtype=np.uint64) for g in rngs],
        dtype=np.uint64,
    )


#: Row-block size (in lattice elements) for the murmur finalizer: small
#: enough that a block and its shift/multiply temporaries stay cache-
#: resident across the six passes, which is ~3× faster than streaming the
#: whole ``(n, T)`` lattice through memory once per pass.
_BLOCK_ELEMS = 1 << 17


def _counter_bits(
    keys: np.ndarray, round_index: int, n: int, rows: np.ndarray | None = None
) -> np.ndarray:
    """``(n, len(keys))`` uint32 hash lattice over (key, round, node).

    ``rows`` (an int array of node ids) restricts the node axis: the
    result is exactly the full lattice indexed at those rows — the hash is
    a pure elementwise function of ``(key, round, node)``, so a restricted
    evaluation is bit-identical to slicing the full one.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    trials = keys.shape[0]
    with np.errstate(over="ignore"):
        # Mix key and round on the cheap (T,) side in 64 bits, nodes once
        # per n (cached); the only (rows, T) work is one row-blocked
        # murmur3 finalizer pass in 32-bit lanes.
        ctr = np.full(1, round_index + 1, dtype=np.uint64) * _GOLDEN
        kr = (_splitmix(keys + ctr) >> np.uint64(32)).astype(np.uint32)
        nh = _node_hashes(n)
        if rows is not None:
            nh = nh[np.asarray(rows)]
        count = nh.shape[0]
        out = np.empty((count, trials), dtype=np.uint32)
        block = max(1, _BLOCK_ELEMS // max(1, trials))
        for s in range(0, count, block):
            z = np.bitwise_xor(nh[s : s + block], kr[None, :], out=out[s : s + block])
            z ^= z >> np.uint32(16)
            z *= _MURMUR_A
            z ^= z >> np.uint32(13)
            z *= _MURMUR_B
            z ^= z >> np.uint32(16)
    return out


def counter_uniforms(
    keys: np.ndarray, round_index: int, n: int, rows: np.ndarray | None = None
) -> np.ndarray:
    """Uniform ``[0, 1)`` draws ``u[v, t] = hash(keys[t], round_index, v)``.

    Returns an ``(n, len(keys))`` float64 array.  Being a pure function of
    ``(key, round, node)``, the same entries come out whether a caller
    evaluates one trial (``len(keys) == 1``) or a whole batch — randomized
    protocols use this (via :func:`counter_coins`) for their per-round
    transmission coin flips.  ``rows`` restricts the node axis (see
    :func:`counter_coins`).
    """
    return _counter_bits(keys, round_index, n, rows) * _INV_2_32


def counter_coins(
    keys: np.ndarray,
    round_index: int,
    n: int,
    p: float,
    rows: np.ndarray | None = None,
) -> np.ndarray:
    """Bernoulli(``p``) coins ``coin[v, t] = (uniform(v, t) < p)``.

    Equivalent to ``counter_uniforms(...) < p`` but compares the raw hash
    against an integer threshold, skipping the float conversion on the
    batched hot path.  ``rows`` (an int array of node ids) evaluates only
    those rows of the lattice, bit-identically to
    ``counter_coins(...)[rows]`` — callers that know which nodes matter
    (e.g. only informed nodes may transmit) skip the rest of the hash.
    """
    trials = np.asarray(keys).shape[0]
    count = n if rows is None else np.asarray(rows).shape[0]
    threshold = math.ceil(p * 2.0**32)
    if threshold >= 2**32:
        return np.ones((count, trials), dtype=bool)
    if threshold <= 0:
        return np.zeros((count, trials), dtype=bool)
    return _counter_bits(keys, round_index, n, rows) < np.uint32(threshold)


def counter_coin_blocks(
    keys: np.ndarray,
    round_index: int,
    n: int,
    p: float,
    rows: np.ndarray | None = None,
    block: int = 2048,
):
    """Yield ``(start, coins)`` row-chunks of :func:`counter_coins`.

    Equivalent to slicing ``counter_coins(keys, round_index, n, p, rows)``
    into consecutive ``block``-row pieces (``start`` indexes into the
    restricted row list), but the per-chunk invariants — the key/round
    mixing and the node-hash gather — are hoisted out of the loop, the
    murmur passes run in one reused cache-resident buffer, and no
    full-size lattice is ever materialized.  This is the coin source of
    the packed engine (:func:`repro.radio.bitset.packed_counter_coins`),
    which packs each chunk straight into words.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    trials = keys.shape[0]
    nh = _node_hashes(n)
    if rows is not None:
        nh = nh[np.asarray(rows)]
    count = nh.shape[0]
    threshold = math.ceil(p * 2.0**32)
    if threshold >= 2**32 or threshold <= 0:
        template = np.full(
            (min(block, count), trials), threshold >= 2**32, dtype=bool
        )
        for s in range(0, count, block):
            yield s, template[: min(block, count - s)]
        return
    thr = np.uint32(threshold)
    with np.errstate(over="ignore"):
        ctr = np.full(1, round_index + 1, dtype=np.uint64) * _GOLDEN
        kr = (_splitmix(keys + ctr) >> np.uint64(32)).astype(np.uint32)
    buf = np.empty((min(block, count), trials), dtype=np.uint32)
    # Array-scalar integer ufuncs wrap silently, so the murmur passes need
    # no errstate guard — keeping the loop free of context-manager
    # overhead (and of state that would leak across yields).
    for s in range(0, count, block):
        hi = min(s + block, count)
        z = np.bitwise_xor(nh[s:hi], kr[None, :], out=buf[: hi - s])
        z ^= z >> np.uint32(16)
        z *= _MURMUR_A
        z ^= z >> np.uint32(13)
        z *= _MURMUR_B
        z ^= z >> np.uint32(16)
        yield s, z < thr
