"""Dtype-narrowing policy shared by the dense and packed engines.

One module owns every "how narrow can this integer be" decision so the
radio network, the CSR storage, the bitset kernels, and the array-backend
dtype tables cannot drift apart:

* :func:`count_dtype_for_degree` — the neighbour-count dtype of the dense
  sparse product (``counts = A @ transmit``): counts are bounded by the
  max degree, and int8 is several times faster than int32 on wide trial
  batches;
* :func:`narrow_uint` — index-array narrowing for CSR ``indptr`` /
  ``indices`` storage;
* :data:`WORD_DTYPE` / :data:`WORD_BITS` — the packed-bitset trial-word
  layout (64 trial bits to a uint64 word).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WORD_BITS",
    "WORD_DTYPE",
    "count_dtype_for_degree",
    "narrow_uint",
]

#: The packed-bitset engines' trial-word dtype and width.  Everything that
#: packs trials into words (bitset kernels, packed counter coins, the
#: transmission tally) assumes exactly this layout.
WORD_DTYPE = np.uint64
WORD_BITS = 64


def count_dtype_for_degree(max_degree: int) -> type:
    """Narrowest signed dtype holding neighbour counts up to ``max_degree``.

    Signed (not uint) because count matrices feed comparisons and
    subtractions; the bound is the positive range of the dtype.
    """
    max_degree = int(max_degree)
    if max_degree < 0:
        raise ValueError(f"max_degree must be non-negative, got {max_degree}")
    if max_degree < 2**7:
        return np.int8
    if max_degree < 2**15:
        return np.int16
    if max_degree < 2**31:
        return np.int32
    return np.int64


def narrow_uint(values: np.ndarray, max_value: int) -> np.ndarray:
    """Cast an index array to the narrowest uint dtype holding ``max_value``.

    ``max_value`` below zero clamps to zero (an empty structure's bound),
    matching :func:`numpy.min_scalar_type` on the clamped value.
    """
    dtype = np.min_scalar_type(max(int(max_value), 0))
    return np.asarray(values).astype(dtype, copy=False)
