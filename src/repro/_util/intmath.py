"""Small exact integer/log helpers used throughout the reproduction.

The paper's bounds are stated with base-2 logarithms (``log`` in the paper
always means ``log2``; e.g. the core graph of Lemma 4.4 has ``|N| = s log 2s``
with ``s`` a power of two, so ``log 2s = log2(2s)`` is an integer there).
These helpers keep integer quantities exact instead of round-tripping through
floats.
"""

from __future__ import annotations

import math
import re

__all__ = [
    "ceil_div",
    "ceil_log2",
    "ilog2",
    "is_power_of_two",
    "log2_real",
    "next_power_of_two",
    "parse_byte_size",
]


def is_power_of_two(x: int) -> bool:
    """Return ``True`` iff ``x`` is a positive integer power of two."""
    return x > 0 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """Exact ``log2(x)`` for a positive power of two.

    Raises
    ------
    ValueError
        If ``x`` is not a positive power of two.
    """
    if not is_power_of_two(x):
        raise ValueError(f"ilog2 requires a positive power of two, got {x!r}")
    return x.bit_length() - 1


def ceil_log2(x: int) -> int:
    """Smallest ``k`` with ``2**k >= x`` for a positive integer ``x``."""
    if x <= 0:
        raise ValueError(f"ceil_log2 requires a positive integer, got {x!r}")
    return (x - 1).bit_length()


def next_power_of_two(x: int) -> int:
    """Smallest power of two ``>= x`` for a positive integer ``x``."""
    return 1 << ceil_log2(x)


def ceil_div(a: int, b: int) -> int:
    """Exact ceiling division ``ceil(a / b)`` for integers, ``b > 0``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires positive divisor, got {b!r}")
    return -(-a // b)


#: Byte-size suffixes: binary (KiB = 2**10) and decimal (KB = 10**3),
#: case-insensitive, with a bare "B" and no suffix both meaning bytes.
_BYTE_UNITS = {
    "": 1,
    "b": 1,
    "kib": 2**10, "mib": 2**20, "gib": 2**30, "tib": 2**40,
    "kb": 10**3, "mb": 10**6, "gb": 10**9, "tb": 10**12,
    # Bare "K"/"M"/... follow the binary convention (ulimit, /proc).
    "k": 2**10, "m": 2**20, "g": 2**30, "t": 2**40,
}

_BYTE_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([A-Za-z]*)\s*$")


def parse_byte_size(text: str | int) -> int:
    """A human byte size as an exact integer byte count.

    Accepts plain integers (``2147483648``), binary suffixes
    (``"2GiB"``, ``"512MiB"``, ``"64K"``), and decimal suffixes
    (``"2GB"``); fractions are allowed with a suffix (``"1.5GiB"``).

    Raises
    ------
    ValueError
        On unknown suffixes, non-positive sizes, or fractional bytes.
    """
    if isinstance(text, int) and not isinstance(text, bool):
        size = text
    else:
        match = _BYTE_SIZE_RE.match(str(text))
        if match is None or match.group(2).lower() not in _BYTE_UNITS:
            raise ValueError(
                f"bad byte size {text!r}: expected an integer with an "
                "optional KiB/MiB/GiB/TiB (or KB/MB/GB/TB) suffix"
            )
        number, unit = match.group(1), _BYTE_UNITS[match.group(2).lower()]
        if "." in number:
            exact = float(number) * unit
            size = int(exact)
            if size != exact:
                raise ValueError(
                    f"bad byte size {text!r}: fractional byte count"
                )
        else:
            size = int(number) * unit
    if size < 1:
        raise ValueError(f"byte size must be >= 1, got {text!r}")
    return size


def log2_real(x: float) -> float:
    """``log2`` on positive reals; raises on non-positive input.

    A thin, validated wrapper so that bound formulas fail loudly on invalid
    parameter regimes instead of silently producing NaN.
    """
    if x <= 0:
        raise ValueError(f"log2 requires positive input, got {x!r}")
    return math.log2(x)
