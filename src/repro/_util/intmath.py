"""Small exact integer/log helpers used throughout the reproduction.

The paper's bounds are stated with base-2 logarithms (``log`` in the paper
always means ``log2``; e.g. the core graph of Lemma 4.4 has ``|N| = s log 2s``
with ``s`` a power of two, so ``log 2s = log2(2s)`` is an integer there).
These helpers keep integer quantities exact instead of round-tripping through
floats.
"""

from __future__ import annotations

import math

__all__ = [
    "ceil_div",
    "ceil_log2",
    "ilog2",
    "is_power_of_two",
    "log2_real",
    "next_power_of_two",
]


def is_power_of_two(x: int) -> bool:
    """Return ``True`` iff ``x`` is a positive integer power of two."""
    return x > 0 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """Exact ``log2(x)`` for a positive power of two.

    Raises
    ------
    ValueError
        If ``x`` is not a positive power of two.
    """
    if not is_power_of_two(x):
        raise ValueError(f"ilog2 requires a positive power of two, got {x!r}")
    return x.bit_length() - 1


def ceil_log2(x: int) -> int:
    """Smallest ``k`` with ``2**k >= x`` for a positive integer ``x``."""
    if x <= 0:
        raise ValueError(f"ceil_log2 requires a positive integer, got {x!r}")
    return (x - 1).bit_length()


def next_power_of_two(x: int) -> int:
    """Smallest power of two ``>= x`` for a positive integer ``x``."""
    return 1 << ceil_log2(x)


def ceil_div(a: int, b: int) -> int:
    """Exact ceiling division ``ceil(a / b)`` for integers, ``b > 0``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires positive divisor, got {b!r}")
    return -(-a // b)


def log2_real(x: float) -> float:
    """``log2`` on positive reals; raises on non-positive input.

    A thin, validated wrapper so that bound formulas fail loudly on invalid
    parameter regimes instead of silently producing NaN.
    """
    if x <= 0:
        raise ValueError(f"log2 requires positive input, got {x!r}")
    return math.log2(x)
