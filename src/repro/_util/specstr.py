"""Compact call-string grammar shared by every spec layer.

The declarative scenario API (:mod:`repro.scenario`) describes graphs,
protocols, and channels as short human-writable strings::

    hypercube(10)
    random_regular(1024, 8)
    decay(phase_length=5)
    erasure(0.05)
    jamming("jam@0-9:0,1;crash@5:7")

This module owns the grammar — ``name`` or ``name(arg, ..., key=value)``
with int/float/bool/none/string literals — so the parser and the canonical
formatter cannot drift apart: :func:`format_call` always produces a string
:func:`parse_call` maps back to the same ``(name, args, kwargs)`` triple,
the round-trip property the spec tests pin.

It lives in ``repro._util`` (not the scenario package) because the radio
layer's :class:`~repro.radio.channel.ChannelSpec` speaks the same grammar
and must not import :mod:`repro.scenario` (which imports the radio layer).
"""

from __future__ import annotations

import re
from typing import Any

__all__ = ["format_call", "format_value", "parse_call", "parse_value"]

#: Registry names: letters/digits/underscore/dash, starting with a letter.
_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-]*")

#: Strings that survive unquoted: a superset of names that also admits the
#: characters fault specs and paths use — but nothing the call grammar
#: itself needs (quotes, commas, parens, equals, whitespace).
_BARE_STRING_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-./@:;]*")

_KEYWORDS = {"true": True, "false": False, "none": None}


def parse_value(token: str) -> Any:
    """One literal of the call grammar: int, float, bool, none, or string.

    Quoted strings (single or double, with backslash escapes) decode to
    their contents; bare tokens try int, then float, then the keyword
    table, and fall back to a plain string.
    """
    token = token.strip()
    if not token:
        raise ValueError("empty value in spec string")
    if token[0] in "\"'":
        if len(token) < 2 or token[-1] != token[0]:
            raise ValueError(f"unterminated string literal {token!r}")
        body = token[1:-1]
        out = []
        i = 0
        while i < len(body):
            ch = body[i]
            if ch == "\\":
                if i + 1 >= len(body):
                    raise ValueError(f"dangling escape in {token!r}")
                out.append(body[i + 1])
                i += 2
            else:
                out.append(ch)
                i += 1
        return "".join(out)
    lowered = token.lower()
    if lowered in _KEYWORDS:
        return _KEYWORDS[lowered]
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def format_value(value: Any) -> str:
    """The canonical literal for ``value`` — the inverse of
    :func:`parse_value` (``parse_value(format_value(v)) == v``)."""
    if value is None:
        return "none"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        # Bare only when lexically safe AND it would not re-parse as some
        # other literal (e.g. "none", "10", "1e6" must be quoted).
        if _BARE_STRING_RE.fullmatch(value) and parse_value(value) == value:
            return value
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    raise TypeError(
        f"spec strings cannot represent {type(value).__name__} values; "
        "use int, float, bool, none, or str"
    )


def _split_args(body: str) -> list[str]:
    """Split an argument list on top-level commas, respecting quotes."""
    parts: list[str] = []
    current: list[str] = []
    quote: str | None = None
    i = 0
    while i < len(body):
        ch = body[i]
        if quote is not None:
            current.append(ch)
            if ch == "\\" and i + 1 < len(body):
                current.append(body[i + 1])
                i += 1
            elif ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
            current.append(ch)
        elif ch == ",":
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    if quote is not None:
        raise ValueError(f"unterminated string literal in {body!r}")
    parts.append("".join(current))
    return parts


def parse_call(text: str) -> tuple[str, tuple, dict[str, Any]]:
    """Parse ``"name"`` or ``"name(arg, ..., key=value)"``.

    Returns ``(name, positional_args, keyword_args)``.  Keyword arguments
    must follow positional ones, as in Python.
    """
    text = text.strip()
    match = _NAME_RE.match(text)
    if match is None:
        raise ValueError(
            f"bad spec {text!r}: expected name or name(args), e.g. "
            "'hypercube(10)' or 'erasure(0.05)'"
        )
    name = match.group(0)
    rest = text[match.end():].strip()
    if not rest:
        return name, (), {}
    if not (rest.startswith("(") and rest.endswith(")")):
        raise ValueError(
            f"bad spec {text!r}: trailing text after name {name!r} "
            "(arguments go in parentheses)"
        )
    body = rest[1:-1].strip()
    if not body:
        return name, (), {}
    args: list[Any] = []
    kwargs: dict[str, Any] = {}
    for part in _split_args(body):
        part = part.strip()
        if not part:
            raise ValueError(f"empty argument in spec {text!r}")
        key_match = re.match(r"([A-Za-z_][A-Za-z0-9_]*)\s*=\s*(.+)$", part)
        if key_match:
            key = key_match.group(1)
            if key in kwargs:
                raise ValueError(f"duplicate keyword {key!r} in spec {text!r}")
            kwargs[key] = parse_value(key_match.group(2))
        else:
            if kwargs:
                raise ValueError(
                    f"positional argument after keyword in spec {text!r}"
                )
            args.append(parse_value(part))
    return name, tuple(args), kwargs


def format_call(name: str, args: tuple = (), kwargs: dict | None = None) -> str:
    """The canonical string for a spec call — bare ``name`` when there are
    no arguments, else ``name(arg, ..., key=value)`` with keywords sorted."""
    if not _NAME_RE.fullmatch(name):
        raise ValueError(f"bad spec name {name!r}")
    kwargs = kwargs or {}
    parts = [format_value(a) for a in args]
    parts += [f"{k}={format_value(kwargs[k])}" for k in sorted(kwargs)]
    if not parts:
        return name
    return f"{name}({', '.join(parts)})"
