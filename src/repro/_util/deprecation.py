"""Deprecation plumbing for the one-release legacy-kwarg shims.

The scenario API redesign (PR 4) standardized seed-taking entry points on
``seed=`` and replaced per-layer factory kwargs with spec objects.  The old
spellings keep working for one release through shims that funnel through
:func:`warn_legacy_kwarg`, so every warning names the replacement syntax
and the tests can assert each shim actually fires.
"""

from __future__ import annotations

import warnings

__all__ = ["UNSET", "resolve_seed", "warn_legacy_kwarg"]


class _Unset:
    """Sentinel distinguishing "not passed" from ``None`` (a valid seed)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


UNSET = _Unset()


def warn_legacy_kwarg(fn_name: str, old: str, replacement: str) -> None:
    """Emit the standard shim warning: ``fn(old=...)`` → ``replacement``.

    ``replacement`` spells out the new syntax (including the spec string
    form where one exists) so callers can migrate from the message alone.
    """
    warnings.warn(
        f"{fn_name}({old}=...) is deprecated and will be removed in the "
        f"next release; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def resolve_seed(fn_name: str, seed, rng, replacement: str = "seed=<int>"):
    """Collapse the ``seed=`` / legacy ``rng=`` pair into one value.

    ``rng`` is the deprecated spelling; passing it warns (naming the
    ``replacement`` syntax) and passing both is an error — silently
    preferring one would change results.
    """
    if rng is UNSET:
        return seed
    warn_legacy_kwarg(fn_name, "rng", replacement)
    if seed is not None:
        raise TypeError(
            f"{fn_name}() got both seed= and the deprecated rng=; "
            "pass only seed="
        )
    return rng
