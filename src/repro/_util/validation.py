"""Argument validation helpers with consistent error messages.

The constructions in the paper have narrow validity regimes (e.g. Lemma 4.6
requires ``2e/Δ* ≤ β* ≤ Δ*/2e``); validating eagerly with named parameters
turns silent out-of-regime garbage into actionable errors.
"""

from __future__ import annotations

__all__ = ["check_fraction", "check_positive", "check_positive_int"]


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a positive real and return it as float."""
    value = float(value)
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_fraction(value: float, name: str, *, inclusive_low: bool = False,
                   inclusive_high: bool = True) -> float:
    """Validate that ``value`` lies in the (0, 1] interval (configurable).

    Expansion parameters like ``alpha`` are fractions of ``|V|``; the default
    interval ``(0, 1]`` matches the paper's usage (``alpha = 1`` means "all
    sets", which is meaningful for bipartite one-sided expansion).
    """
    value = float(value)
    low_ok = value >= 0 if inclusive_low else value > 0
    high_ok = value <= 1 if inclusive_high else value < 1
    if not (low_ok and high_ok):
        lo = "[0" if inclusive_low else "(0"
        hi = "1]" if inclusive_high else "1)"
        raise ValueError(f"{name} must lie in {lo}, {hi}, got {value}")
    return value
