"""Registry-backed call-spec machinery shared across spec layers.

The declarative grammar's component segments (``"hypercube(10)"``,
``"decay"``, ``"gossip(k=4)"``) all behave the same way: a name resolved
against a :class:`SpecRegistry`, positional/keyword arguments bound
against the registered builder, four lossless views (string, dict,
pickle, live object).  This module holds that machinery so every layer —
``repro.scenario`` (graphs, protocols), ``repro.workload`` (workloads),
``repro.expansion`` — can define its spec without importing the others
(``repro.workload`` in particular must not import ``repro.scenario``:
the scenario package imports the workload package to form its fourth
segment).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Mapping

from repro._util.specstr import format_call, parse_call

__all__ = ["CallSpec", "SpecEntry", "SpecRegistry"]


@dataclass(frozen=True)
class SpecEntry:
    """One registry row: a named, documented builder.

    ``check`` is an optional eager parameter validator with the builder's
    signature (minus any heavy work): it raises on out-of-domain
    parameters without constructing anything, which is what lets
    :meth:`repro.scenario.spec.Scenario.validate` fail a bad sweep grid
    fast instead of mid-run.
    """

    name: str
    builder: Callable[..., Any]
    summary: str = ""
    randomized: bool = False
    aliases: tuple[str, ...] = ()
    check: Callable[..., Any] | None = None


class SpecRegistry:
    """Name → :class:`SpecEntry` mapping with aliases and helpful errors."""

    def __init__(self, kind: str, plural: str | None = None):
        self.kind = kind
        # Irregular plurals are passed explicitly ("graph family" →
        # "graph families"); the default only appends an "s".
        self.plural = plural if plural is not None else kind + "s"
        self._entries: dict[str, SpecEntry] = {}
        self._aliases: dict[str, str] = {}

    def register(
        self,
        name: str,
        builder: Callable[..., Any],
        summary: str = "",
        randomized: bool = False,
        aliases: tuple[str, ...] = (),
        check: Callable[..., Any] | None = None,
    ) -> SpecEntry:
        """Add (or replace) an entry; returns it for chaining."""
        entry = SpecEntry(
            name=name,
            builder=builder,
            summary=summary,
            randomized=randomized,
            aliases=tuple(aliases),
            check=check,
        )
        self._entries[name] = entry
        for alias in entry.aliases:
            self._aliases[alias] = name
        return entry

    def canonical(self, name: str) -> str:
        """Resolve aliases to the canonical registry name."""
        key = name.strip().lower()
        return self._aliases.get(key, key)

    def get(self, name: str) -> SpecEntry:
        key = self.canonical(name)
        entry = self._entries.get(key)
        if entry is None:
            raise ValueError(
                f"unknown {self.kind} {name!r}; registered {self.plural}: "
                f"{', '.join(self.names())}"
            )
        return entry

    def __contains__(self, name: str) -> bool:
        return self.canonical(name) in self._entries

    def names(self) -> list[str]:
        """Canonical names, sorted."""
        return sorted(self._entries)

    def items(self) -> list[tuple[str, SpecEntry]]:
        return sorted(self._entries.items())


@lru_cache(maxsize=None)
def _builder_signature(builder) -> inspect.Signature:
    """Cached builder signature (validate runs per sweep point)."""
    return inspect.signature(builder)


def _freeze_kwargs(kwargs) -> tuple[tuple[str, Any], ...]:
    """Keyword arguments as a sorted, hashable tuple of pairs."""
    if isinstance(kwargs, Mapping):
        items = kwargs.items()
    else:
        items = [(str(k), v) for k, v in kwargs]
    return tuple(sorted((str(k), v) for k, v in items))


class CallSpec:
    """Shared machinery of the registry-backed component specs."""

    #: Overridden by subclasses with their registry and discriminator.
    _registry: SpecRegistry
    kind: str

    # Subclasses are dataclasses with fields (name-ish, args, kwargs); the
    # first field's name differs ("family" vs "name"), hence the property.
    @property
    def _call_name(self) -> str:
        raise NotImplementedError

    def __post_init__(self):
        object.__setattr__(self, "args", tuple(getattr(self, "args")))
        object.__setattr__(
            self, "kwargs", _freeze_kwargs(getattr(self, "kwargs"))
        )

    @classmethod
    def make(cls, name: str, *args, **kwargs):
        """Convenience constructor: ``GraphSpec.make("chain", 8, 4)``."""
        return cls(cls._registry.canonical(name), tuple(args), kwargs)

    @classmethod
    def from_string(cls, text: str):
        """Parse the compact call form against the registry."""
        name, args, kwargs = parse_call(text)
        name = cls._registry.canonical(name)
        cls._registry.get(name)  # fail fast on unknown names
        return cls(name, args, kwargs)

    def describe(self) -> str:
        """Canonical string form; ``from_string(describe())`` round-trips."""
        return format_call(self._call_name, self.args, dict(self.kwargs))

    def to_dict(self) -> dict:
        """Canonical plain-data form (the cache-key view)."""
        out: dict[str, Any] = {self._name_field: self._call_name}
        if self.args:
            out["args"] = list(self.args)
        if self.kwargs:
            out["kwargs"] = dict(self.kwargs)
        return out

    @classmethod
    def from_dict(cls, data: Mapping):
        """Inverse of :meth:`to_dict`."""
        extra = set(data) - {cls._name_field, "args", "kwargs"}
        if extra:
            raise ValueError(
                f"unknown {cls.kind}-spec fields {sorted(extra)}"
            )
        return cls(
            data[cls._name_field],
            tuple(data.get("args", ())),
            data.get("kwargs", {}),
        )

    @property
    def entry(self):
        """The resolved registry entry."""
        return self._registry.get(self._call_name)

    @property
    def randomized(self) -> bool:
        """Whether building this spec consumes a seed."""
        return self.entry.randomized

    def validate(self):
        """Eagerly check this spec without building anything heavy.

        Resolves the registry entry (unknown names fail here), binds the
        arguments against the builder's signature (arity and unknown
        keywords fail here), and runs the entry's registered parameter
        ``check`` if it has one (out-of-domain values fail here).
        Returns ``self`` so call sites can chain.
        """
        entry = self.entry
        try:
            bound = _builder_signature(entry.builder).bind(
                *self.args, **dict(self.kwargs)
            )
        except TypeError as exc:
            raise ValueError(
                f"bad {self.kind} spec {self.describe()!r}: {exc}"
            ) from None
        if entry.check is not None:
            try:
                # Hand the check the builder-normalized arguments, so
                # keyword-form specs (``hypercube(dimension=3)``) validate
                # regardless of the check function's own parameter names.
                entry.check(*bound.args, **bound.kwargs)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"bad {self.kind} spec {self.describe()!r}: {exc}"
                ) from None
        return self
