"""Ordinary (vertex) expansion — exact, sampled, and per-set.

Implements the combinatorial definition of Section 2.1: ``G`` is an
``(α, β)``-expander if ``|Γ⁻(S)| ≥ β·|S|`` for all ``S`` with
``|S| ≤ α·n``; ``β(G)`` is the minimum ratio over that family.  Exact
computation enumerates all subsets (tiny graphs); the sampled estimator
returns an *upper bound* on ``β`` by searching over random subsets and BFS
balls (which are the natural low-expansion candidates).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng, check_fraction
from repro.expansion.subsets import bipartite_subset_profile, graph_subset_profile
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph

__all__ = [
    "bipartite_expansion_exact",
    "expansion_of_set",
    "vertex_expansion_exact",
    "vertex_expansion_sampled",
]


def expansion_of_set(graph: Graph, subset) -> float:
    """``|Γ⁻(S)| / |S|`` for one set ``S``."""
    mask = graph._as_mask(subset)
    size = int(mask.sum())
    if size == 0:
        raise ValueError("expansion of the empty set is undefined")
    return int(graph.gamma_minus(mask).sum()) / size


def vertex_expansion_exact(
    graph: Graph, alpha: float = 0.5, max_bits: int = 20
) -> tuple[float, np.ndarray]:
    """Exact ``β(G) = min{|Γ⁻(S)|/|S| : 0 < |S| ≤ α·n}`` with a witness.

    Enumerates all subsets via the lattice DP; practical to ``n ≈ 20``.
    """
    check_fraction(alpha, "alpha")
    profile = graph_subset_profile(graph, max_bits=max_bits)
    limit = int(np.floor(alpha * graph.n))
    if limit < 1:
        raise ValueError(f"alpha={alpha} admits no non-empty subsets")
    eligible = (profile.sizes >= 1) & (profile.sizes <= limit)
    ratios = np.full(profile.sizes.shape[0], np.inf)
    ratios[eligible] = (
        profile.gamma_minus_counts[eligible] / profile.sizes[eligible]
    )
    best = int(np.argmin(ratios))
    witness = np.flatnonzero(
        (np.uint64(best) >> np.arange(graph.n, dtype=np.uint64)) & np.uint64(1)
    )
    return float(ratios[best]), witness


def vertex_expansion_sampled(
    graph: Graph,
    alpha: float = 0.5,
    samples: int = 200,
    rng=None,
    include_balls: bool = True,
) -> tuple[float, np.ndarray]:
    """Adversarial *upper bound* on ``β(G)`` by candidate search.

    Candidates: uniformly random subsets of every admissible size, plus BFS
    balls around every vertex (truncated to the size cap) — balls are the
    canonical low-expansion sets in bounded-degree graphs.
    """
    check_fraction(alpha, "alpha")
    gen = as_rng(rng)
    limit = int(np.floor(alpha * graph.n))
    if limit < 1:
        raise ValueError(f"alpha={alpha} admits no non-empty subsets")
    best_ratio = np.inf
    best_set = np.array([0], dtype=np.int64)

    def consider(indices: np.ndarray) -> None:
        nonlocal best_ratio, best_set
        if indices.size == 0 or indices.size > limit:
            return
        ratio = expansion_of_set(graph, indices)
        if ratio < best_ratio:
            best_ratio = ratio
            best_set = indices

    for _ in range(samples):
        size = int(gen.integers(1, limit + 1))
        consider(gen.choice(graph.n, size=size, replace=False))
    if include_balls:
        for v in range(graph.n):
            dist = graph.bfs_layers(v)
            reach = dist[dist >= 0]
            for radius in range(int(reach.max()) + 1):
                ball = np.flatnonzero((dist >= 0) & (dist <= radius))
                if ball.size > limit:
                    break
                consider(ball)
    return float(best_ratio), best_set


def bipartite_expansion_exact(
    gs: BipartiteGraph, alpha: float = 1.0
) -> tuple[float, np.ndarray]:
    """Exact one-sided bipartite expansion ``min |Γ(S')|/|S'|`` over
    ``0 < |S'| ≤ α·|L|`` (Section 2.1's bipartite definition), with witness.
    """
    check_fraction(alpha, "alpha")
    profile = bipartite_subset_profile(gs)
    limit = int(np.floor(alpha * gs.n_left))
    if limit < 1:
        raise ValueError(f"alpha={alpha} admits no non-empty subsets")
    eligible = (profile.sizes >= 1) & (profile.sizes <= limit)
    ratios = np.full(profile.sizes.shape[0], np.inf)
    ratios[eligible] = profile.cover_counts[eligible] / profile.sizes[eligible]
    best = int(np.argmin(ratios))
    witness = np.flatnonzero(
        (np.uint32(best) >> np.arange(gs.n_left, dtype=np.uint32)) & np.uint32(1)
    )
    return float(ratios[best]), witness
