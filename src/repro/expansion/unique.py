"""Unique-neighbour expansion (Alon–Capalbo), exact and per-set.

``G`` is an ``(αu, βu)``-unique expander if ``|Γ¹(S)| ≥ βu·|S|`` for all
``S`` with ``|S| ≤ αu·n``.  The paper's Section 3 relates ``βu`` to the
ordinary ``β`` (Lemmas 3.1–3.3); the experiments here compute both sides of
those inequalities exactly on small instances.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_fraction
from repro.expansion.subsets import bipartite_subset_profile, graph_subset_profile
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph

__all__ = [
    "bipartite_unique_expansion_exact",
    "unique_expansion_exact",
    "unique_expansion_of_set",
]


def unique_expansion_of_set(graph: Graph, subset) -> float:
    """``|Γ¹(S)| / |S|`` for one set ``S``."""
    mask = graph._as_mask(subset)
    size = int(mask.sum())
    if size == 0:
        raise ValueError("unique expansion of the empty set is undefined")
    return int(graph.gamma_one(mask).sum()) / size


def unique_expansion_exact(
    graph: Graph, alpha: float = 0.5, max_bits: int = 20
) -> tuple[float, np.ndarray]:
    """Exact ``βu(G) = min{|Γ¹(S)|/|S| : 0 < |S| ≤ α·n}`` with a witness."""
    check_fraction(alpha, "alpha")
    profile = graph_subset_profile(graph, max_bits=max_bits)
    limit = int(np.floor(alpha * graph.n))
    if limit < 1:
        raise ValueError(f"alpha={alpha} admits no non-empty subsets")
    eligible = (profile.sizes >= 1) & (profile.sizes <= limit)
    ratios = np.full(profile.sizes.shape[0], np.inf)
    ratios[eligible] = (
        profile.gamma_one_counts[eligible] / profile.sizes[eligible]
    )
    best = int(np.argmin(ratios))
    witness = np.flatnonzero(
        (np.uint64(best) >> np.arange(graph.n, dtype=np.uint64)) & np.uint64(1)
    )
    return float(ratios[best]), witness


def bipartite_unique_expansion_exact(
    gs: BipartiteGraph, alpha: float = 1.0
) -> tuple[float, np.ndarray]:
    """Exact one-sided ``min |Γ¹(S')|/|S'|`` over ``0 < |S'| ≤ α·|L|``.

    On ``Gbad`` (Lemma 3.3) this returns exactly ``2β − Δ`` with the full
    left side as a witness.
    """
    check_fraction(alpha, "alpha")
    profile = bipartite_subset_profile(gs)
    limit = int(np.floor(alpha * gs.n_left))
    if limit < 1:
        raise ValueError(f"alpha={alpha} admits no non-empty subsets")
    eligible = (profile.sizes >= 1) & (profile.sizes <= limit)
    ratios = np.full(profile.sizes.shape[0], np.inf)
    ratios[eligible] = profile.unique_counts[eligible] / profile.sizes[eligible]
    best = int(np.argmin(ratios))
    witness = np.flatnonzero(
        (np.uint32(best) >> np.arange(gs.n_left, dtype=np.uint32)) & np.uint32(1)
    )
    return float(ratios[best]), witness
