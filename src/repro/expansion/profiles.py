"""Per-size expansion profiles: ``β(k)``, ``βu(k)`` (and ``βw(k)``).

The single-number expansions collapse a whole curve: for each set size
``k``, the worst-case ratios

``β(k) = min_{|S| = k} |Γ⁻(S)|/k``,  ``βu(k) = min_{|S| = k} |Γ¹(S)|/k``,
``βw(k) = min_{|S| = k} max_{S' ⊆ S} |Γ¹_S(S')|/k``

trace how expansion degrades with set size — e.g. on ``C⁺`` the unique
profile crashes to zero exactly at ``k = 3`` while the wireless profile
stays up, and on ``Gbad`` the profiles reproduce the Remark 1 run
calculus.  Ordinary/unique profiles fall out of the subset-lattice DP in
one vectorized pass (``np.minimum.at`` keyed by popcount); the wireless
profile additionally walks submasks (``3^n``), so it is gated to tiny
graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.expansion.subsets import bipartite_subset_profile, graph_subset_profile
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph

__all__ = [
    "BipartiteProfile",
    "ExpansionProfile",
    "bipartite_left_profiles",
    "expansion_profiles",
    "wireless_profile",
]


@dataclass(frozen=True)
class ExpansionProfile:
    """Worst-case per-size expansion curves of a graph.

    ``ordinary[k-1]`` and ``unique[k-1]`` are ``β(k)`` and ``βu(k)`` for
    ``k = 1..n``; ``wireless`` is ``None`` unless requested.
    """

    n: int
    ordinary: np.ndarray
    unique: np.ndarray
    wireless: np.ndarray | None = None

    def size_range(self) -> np.ndarray:
        """The set sizes ``1..n`` the curves are indexed by."""
        return np.arange(1, self.n + 1)


def _per_size_minimum(values: np.ndarray, sizes: np.ndarray, n: int) -> np.ndarray:
    """For each k = 1..n, min of ``values`` over subsets of size k."""
    out = np.full(n + 1, np.inf)
    np.minimum.at(out, sizes, values)
    return out[1:]


def expansion_profiles(graph: Graph, max_bits: int = 18) -> ExpansionProfile:
    """Exact ``β(k)`` and ``βu(k)`` curves via the subset-lattice DP."""
    profile = graph_subset_profile(graph, max_bits=max_bits)
    sizes = profile.sizes
    nonempty = sizes >= 1
    ratios_ord = np.full(sizes.shape[0], np.inf)
    ratios_ord[nonempty] = (
        profile.gamma_minus_counts[nonempty] / sizes[nonempty]
    )
    ratios_uni = np.full(sizes.shape[0], np.inf)
    ratios_uni[nonempty] = profile.gamma_one_counts[nonempty] / sizes[nonempty]
    return ExpansionProfile(
        n=graph.n,
        ordinary=_per_size_minimum(ratios_ord, sizes, graph.n),
        unique=_per_size_minimum(ratios_uni, sizes, graph.n),
    )


def wireless_profile(graph: Graph, max_bits: int = 13) -> np.ndarray:
    """Exact ``βw(k)`` curve (``Θ(3^n)``; tiny graphs only)."""
    n = graph.n
    if n > max_bits:
        raise ValueError(f"wireless profile supports n <= {max_bits}, got {n}")
    profile = graph_subset_profile(graph, max_bits=max_bits)
    once = profile.once
    sizes = profile.sizes
    full = (1 << n) - 1
    best = np.full(n + 1, np.inf)
    for s_mask in range(1, 1 << n):
        outside = full & ~s_mask
        sub = s_mask
        cover = 0
        while True:
            c = (int(once[sub]) & outside).bit_count()
            if c > cover:
                cover = c
            if sub == 0:
                break
            sub = (sub - 1) & s_mask
        k = int(sizes[s_mask])
        ratio = cover / k
        if ratio < best[k]:
            best[k] = ratio
    return best[1:]


@dataclass(frozen=True)
class BipartiteProfile:
    """Per-size one-sided curves of a bipartite graph's left side.

    ``coverage[k-1]`` = worst ``|Γ(S')|/k`` and ``unique[k-1]`` = worst
    ``|Γ¹(S')|/k`` over ``|S'| = k``; ``best_unique[k-1]`` = *best*
    ``|Γ¹(S')|`` over ``|S'| = k`` (the spokesman frontier by budget).
    """

    n_left: int
    coverage: np.ndarray
    unique: np.ndarray
    best_unique: np.ndarray


def bipartite_left_profiles(gs: BipartiteGraph) -> BipartiteProfile:
    """Exact per-size curves for a bipartite instance (``n_left ≤ 22``)."""
    profile = bipartite_subset_profile(gs)
    sizes = profile.sizes
    n = gs.n_left
    nonempty = sizes >= 1
    cov = np.full(sizes.shape[0], np.inf)
    cov[nonempty] = profile.cover_counts[nonempty] / sizes[nonempty]
    uni = np.full(sizes.shape[0], np.inf)
    uni[nonempty] = profile.unique_counts[nonempty] / sizes[nonempty]
    best = np.zeros(n + 1, dtype=np.int64)
    np.maximum.at(best, sizes, profile.unique_counts)
    return BipartiteProfile(
        n_left=n,
        coverage=_per_size_minimum(cov, sizes, n),
        unique=_per_size_minimum(uni, sizes, n),
        best_unique=best[1:],
    )
