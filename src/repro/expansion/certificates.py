"""Certified two-sided bounds on the wireless expansion of a set.

Exact wireless expansion is exponential to compute; for large sets the
library instead certifies an interval:

* **lower bound** — any spokesman algorithm's payoff over ``|S|`` (a
  constructive witness);
* **upper bound** — structural: ``βw(S) ≤ β(S) = |Γ⁻(S)|/|S|``
  (Observation 2.1; no schedule can uniquely cover more than the whole
  neighbourhood); for sets small enough, exact enumeration collapses the
  interval to a point.

The certificate records which method produced each side, so experiment
tables can cite their provenance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.expansion.subsets import MAX_BITS
from repro.expansion.wireless import max_unique_coverage_exact
from repro.graphs.graph import Graph

__all__ = ["WirelessCertificate", "wireless_certificate"]


@dataclass(frozen=True)
class WirelessCertificate:
    """A certified interval ``lower ≤ βw(S) ≤ upper`` for one set.

    ``exact`` is ``True`` when the two sides coincide by exhaustive
    computation.  ``witness`` is the transmitting subset achieving
    ``lower`` (original vertex ids).
    """

    set_size: int
    lower: float
    upper: float
    lower_method: str
    upper_method: str
    exact: bool
    witness: np.ndarray

    def __post_init__(self) -> None:
        if self.lower > self.upper + 1e-9:
            raise ValueError(
                f"invalid certificate: lower {self.lower} > upper {self.upper}"
            )

    @property
    def gap(self) -> float:
        """Multiplicative gap ``upper/lower`` (``inf`` when lower is 0)."""
        if self.lower == 0:
            return float("inf") if self.upper > 0 else 1.0
        return self.upper / self.lower


def wireless_certificate(
    graph: Graph, subset, rng=None, exact_bits: int = MAX_BITS
) -> WirelessCertificate:
    """Certify ``βw(S)`` for one set ``S``.

    Uses exact enumeration when ``|S| ≤ exact_bits``, otherwise the
    spokesman portfolio for the lower side and structural caps for the
    upper side.
    """
    mask = graph._as_mask(subset)
    size = int(mask.sum())
    if size == 0:
        raise ValueError("wireless expansion of the empty set is undefined")
    gs, left_vertices, _ = graph.boundary_bipartite(mask)

    if size <= exact_bits:
        best, witness_local = max_unique_coverage_exact(gs)
        value = best / size
        return WirelessCertificate(
            set_size=size,
            lower=value,
            upper=value,
            lower_method="exact-enumeration",
            upper_method="exact-enumeration",
            exact=True,
            witness=left_vertices[witness_local],
        )

    from repro.spokesman.portfolio import spokesman_portfolio

    best, _ = spokesman_portfolio(gs, rng=rng)
    lower = best.unique_count / size
    return WirelessCertificate(
        set_size=size,
        lower=lower,
        upper=gs.n_right / size,
        lower_method=f"portfolio[{best.algorithm}]",
        upper_method="ordinary-expansion",
        exact=False,
        witness=left_vertices[best.subset],
    )
