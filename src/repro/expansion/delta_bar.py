"""The ``δ̄`` machinery of Lemma A.18 and Corollaries A.4/A.14.

For a set ``S``, ``δ_S`` is the average degree of its external
neighbourhood ``N = Γ⁻(S)`` counting only edges back into ``S``
(``δ_S = e(S, N)/|N|``), and ``δ̄ = max{δ_S : |S| ≤ α·n}``.  The appendix's
average-degree bounds are all phrased in ``δ̄``:

* Corollary A.4:  ``βw ≥ β/(8·δ̄)``,
* Corollary A.14: ``βw ≥ β/(9·log₂(2·δ̄))``,
* Lemma A.18:     ``βw ≥ β·MG(δ̄)`` (the portfolio bound).

The paper notes these "are usually hard to use, since in most cases we
cannot give an evaluation of δ̄" — but we *can* evaluate it: exactly by
enumeration on small graphs, and from below by adversarial sampling on
larger ones (any candidate's ``δ_S`` lower-bounds ``δ̄``, which makes the
resulting ``MG`` floor conservative in the right direction only when the
true maximizer is found; the exact variant is therefore the one used in
assertions).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro._util.validation import check_fraction
from repro.expansion.bounds import mg_bound
from repro.graphs.graph import Graph

__all__ = [
    "boundary_average_degree",
    "delta_bar_exact",
    "delta_bar_sampled",
    "lemma_a18_floor",
]


def boundary_average_degree(graph: Graph, subset) -> float:
    """``δ_S = e(S, Γ⁻(S)) / |Γ⁻(S)|`` — the average back-degree of the
    external neighbourhood.

    Raises
    ------
    ValueError
        If ``S`` is empty or has no external neighbours.
    """
    mask = graph._as_mask(subset)
    if not mask.any():
        raise ValueError("delta_S of the empty set is undefined")
    counts = graph.neighbor_counts(mask)
    boundary = (counts >= 1) & ~mask
    if not boundary.any():
        raise ValueError("set has no external neighbours")
    return float(counts[boundary].mean())


def delta_bar_exact(
    graph: Graph, alpha: float = 0.5, max_bits: int = 16
) -> tuple[float, np.ndarray]:
    """Exact ``δ̄ = max{δ_S : 0 < |S| ≤ α·n}`` with a witness set.

    One sparse mat-vec per subset; practical to ``n ≈ 16``.
    """
    check_fraction(alpha, "alpha")
    n = graph.n
    if n > max_bits:
        raise ValueError(f"exact δ̄ supports n <= {max_bits}, got {n}")
    limit = int(np.floor(alpha * n))
    if limit < 1:
        raise ValueError(f"alpha={alpha} admits no non-empty subsets")
    best = -np.inf
    best_set = np.array([0], dtype=np.int64)
    for mask_bits in range(1, 1 << n):
        if mask_bits.bit_count() > limit:
            continue
        subset = np.flatnonzero(
            (np.uint64(mask_bits) >> np.arange(n, dtype=np.uint64))
            & np.uint64(1)
        )
        counts = graph.neighbor_counts(subset)
        outside = counts.copy()
        outside[subset] = 0
        boundary = outside >= 1
        if not boundary.any():
            continue
        value = float(outside[boundary].mean())
        if value > best:
            best = value
            best_set = subset
    if best == -np.inf:
        raise ValueError("no subset has external neighbours")
    return best, best_set


def delta_bar_sampled(
    graph: Graph, alpha: float = 0.5, samples: int = 200, rng=None
) -> tuple[float, np.ndarray]:
    """Sampled *lower bound* on ``δ̄`` (max over random candidate sets)."""
    check_fraction(alpha, "alpha")
    gen = as_rng(rng)
    limit = int(np.floor(alpha * graph.n))
    if limit < 1:
        raise ValueError(f"alpha={alpha} admits no non-empty subsets")
    best = -np.inf
    best_set = np.array([0], dtype=np.int64)
    for _ in range(samples):
        size = int(gen.integers(1, limit + 1))
        subset = np.sort(gen.choice(graph.n, size=size, replace=False))
        try:
            value = boundary_average_degree(graph, subset)
        except ValueError:
            continue
        if value > best:
            best = value
            best_set = subset
    if best == -np.inf:
        raise ValueError("no sampled subset had external neighbours")
    return best, best_set


def lemma_a18_floor(beta: float, delta_bar: float) -> float:
    """Lemma A.18(1): ``βw ≥ β·MG(δ̄)``."""
    return beta * mg_bound(max(delta_bar, 1.0))
