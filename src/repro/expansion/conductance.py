"""Edge conductance and discrete Cheeger bounds.

Companion machinery to Lemma 3.1's spectral argument: the paper relates
vertex-expansion quantities to ``λ₂`` through the Alon–Spencer cut bound,
whose continuous analogue is the Cheeger inequality

``(d − λ₂)/2  ≤  h(G)  ≤  √(2·d·(d − λ₂))``

for the edge-expansion (Cheeger constant) ``h(G) = min_{|S| ≤ n/2}
|e(S, S̄)|/|S|`` of a d-regular graph.  Exact ``h`` is computed by the same
subset-lattice machinery as the vertex quantities; the bounds give cheap
two-sided estimates for the larger experiment graphs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.expansion.spectral import regular_degree, second_eigenvalue
from repro.expansion.subsets import graph_subset_profile
from repro.graphs.graph import Graph

__all__ = [
    "cheeger_bounds",
    "edge_conductance_exact",
    "edge_conductance_of_set",
]


def edge_conductance_of_set(graph: Graph, subset) -> float:
    """``|e(S, S̄)| / |S|`` for one set (requires ``0 < |S| ≤ n/2``)."""
    mask = graph._as_mask(subset)
    size = int(mask.sum())
    if size == 0 or size > graph.n // 2:
        raise ValueError(f"need 0 < |S| <= n/2, got |S| = {size}")
    edges = graph.edges()
    crossing = int((mask[edges[:, 0]] != mask[edges[:, 1]]).sum())
    return crossing / size


def edge_conductance_exact(
    graph: Graph, max_bits: int = 20
) -> tuple[float, np.ndarray]:
    """Exact Cheeger constant ``h(G)`` with a witness set.

    Counts crossing edges for all subsets via the identity
    ``|e(S, S̄)| = Σ_{v∈S} deg(v) − 2·|E(S)|`` where internal edges are
    accumulated per subset through the same highest-bit lattice DP used for
    neighbourhoods.
    """
    n = graph.n
    if n < 2:
        raise ValueError("Cheeger constant needs at least two vertices")
    profile = graph_subset_profile(graph, max_bits=max_bits)
    size = 1 << n

    # Internal-edge counts by lattice DP: adding vertex b to Y adds
    # |Γ(b) ∩ Y| internal edges.  Reuse neighbour-count masks.
    internal = np.zeros(size, dtype=np.int64)
    adj_masks = np.zeros(n, dtype=np.uint64)
    for v in range(n):
        m = np.uint64(0)
        for u in graph.neighbors(v):
            m |= np.uint64(1) << np.uint64(int(u))
        adj_masks[v] = m
    from repro._util import popcount_u64

    x = np.arange(size, dtype=np.uint64)
    for b in range(n):
        lo, hi = 1 << b, 1 << (b + 1)
        prev = internal[0 : hi - lo]
        gained = popcount_u64(x[0 : hi - lo] & adj_masks[b]).astype(np.int64)
        internal[lo:hi] = prev + gained

    degree_sums = np.zeros(size, dtype=np.int64)
    for b in range(n):
        lo, hi = 1 << b, 1 << (b + 1)
        degree_sums[lo:hi] = degree_sums[0 : hi - lo] + int(graph.degrees[b])

    crossing = degree_sums - 2 * internal
    sizes = profile.sizes
    eligible = (sizes >= 1) & (sizes <= n // 2)
    ratios = np.full(size, np.inf)
    ratios[eligible] = crossing[eligible] / sizes[eligible]
    best = int(np.argmin(ratios))
    witness = np.flatnonzero(
        (np.uint64(best) >> np.arange(n, dtype=np.uint64)) & np.uint64(1)
    )
    return float(ratios[best]), witness


def cheeger_bounds(graph: Graph) -> tuple[float, float]:
    """The discrete Cheeger sandwich ``((d − λ₂)/2, √(2d(d − λ₂)))`` for a
    d-regular graph."""
    d = regular_degree(graph)
    lam = second_eigenvalue(graph)
    gap = d - lam
    return gap / 2, math.sqrt(2 * d * gap)
