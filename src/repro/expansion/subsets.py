"""Vectorized all-subsets profiles — the exact-computation engine.

Two enumeration kernels power every exact expansion quantity in the library:

* :func:`bipartite_subset_profile` — for a bipartite ``G_S = (S, N)`` with
  ``|S| = k ≤ ~22``, computes ``|Γ(S')|`` and ``|Γ¹_S(S')|`` for **all**
  ``2^k`` subsets ``S' ⊆ S`` at once.  Right vertices are grouped by their
  neighbourhood bitmask (on the core graph this collapses whole blocks), and
  each distinct mask costs one vectorized popcount pass over the subset
  array — no Python loop over subsets ever runs.
* :func:`graph_subset_profile` — for a general graph with ``n ≤ ~20``,
  computes for every subset ``X ⊆ V`` the bitmasks of ``Γ``-covered-once and
  covered-many vertices by a subset-lattice DP (``X = Y ∪ {lowest bit}``),
  from which ``|Γ⁻(X)|`` and ``|Γ¹(X)|`` pop out via vectorized popcounts.

Both return plain numpy arrays indexed by the subset's bitmask, so callers
combine them freely (min over small subsets, max over sub-subsets, …).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import popcount_u32, popcount_u64
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph

__all__ = [
    "BipartiteSubsetProfile",
    "GraphSubsetProfile",
    "bipartite_subset_profile",
    "graph_subset_profile",
]

#: Hard cap on the enumeration width; 2^22 uint32 arrays stay ~tens of MB.
MAX_BITS = 22


@dataclass(frozen=True)
class BipartiteSubsetProfile:
    """All-subsets coverage profile of a bipartite graph's left side.

    ``cover_counts[x]`` is ``|Γ(S')|`` and ``unique_counts[x]`` is
    ``|Γ¹_S(S')|`` where ``S'`` is the subset whose bitmask is ``x``;
    ``sizes[x] = |S'|``.
    """

    n_left: int
    cover_counts: np.ndarray
    unique_counts: np.ndarray
    sizes: np.ndarray


def bipartite_subset_profile(gs: BipartiteGraph) -> BipartiteSubsetProfile:
    """Enumerate all ``2^{n_left}`` subsets of the left side (vectorized).

    Raises
    ------
    ValueError
        If ``n_left`` exceeds the enumeration cap (:data:`MAX_BITS`).
    """
    k = gs.n_left
    if k > MAX_BITS:
        raise ValueError(
            f"exact enumeration supports n_left <= {MAX_BITS}, got {k}"
        )
    # Neighbourhood bitmask (over the left side) of each right vertex.
    masks = np.zeros(gs.n_right, dtype=np.uint32)
    edges = gs.edges()
    if edges.size:
        np.bitwise_or.at(
            masks, edges[:, 1], (np.uint32(1) << edges[:, 0].astype(np.uint32))
        )
    distinct, counts = np.unique(masks, return_counts=True)

    subsets = np.arange(np.uint32(1) << np.uint32(k), dtype=np.uint32)
    cover = np.zeros(subsets.shape[0], dtype=np.int64)
    unique = np.zeros(subsets.shape[0], dtype=np.int64)
    for mask, mult in zip(distinct, counts):
        if mask == 0:
            continue  # isolated right vertex: never covered
        hits = popcount_u32(subsets & mask)
        cover += mult * (hits >= 1)
        unique += mult * (hits == 1)
    return BipartiteSubsetProfile(
        n_left=k,
        cover_counts=cover,
        unique_counts=unique,
        sizes=popcount_u32(subsets).astype(np.int64),
    )


@dataclass(frozen=True)
class GraphSubsetProfile:
    """All-subsets neighbourhood profile of a general graph.

    For subset bitmask ``x``: ``once[x]``/``many[x]`` are vertex bitmasks of
    vertices covered exactly once / at least twice by ``x`` (regardless of
    membership in ``x``); ``gamma_minus_counts[x] = |Γ⁻(X)|``;
    ``gamma_one_counts[x] = |Γ¹(X)|``; ``sizes[x] = |X|``.
    """

    n: int
    once: np.ndarray
    many: np.ndarray
    gamma_minus_counts: np.ndarray
    gamma_one_counts: np.ndarray
    sizes: np.ndarray


def graph_subset_profile(graph: Graph, max_bits: int = 20) -> GraphSubsetProfile:
    """Subset-lattice DP over all ``2^n`` vertex subsets.

    The recurrence peels the lowest set bit ``u`` off ``x``:
    ``many[x] = many[y] | (once[y] & adj[u])`` and
    ``once[x] = (once[y] | adj[u]) & ~many[x]`` — each level is one
    vectorized pass, so the whole lattice costs ``O(2^n)`` word ops.

    Raises
    ------
    ValueError
        If ``n`` exceeds 64 (bitmask width) or ``max_bits``.
    """
    n = graph.n
    if n > 64:
        raise ValueError("graph_subset_profile supports n <= 64")
    if n > max_bits:
        raise ValueError(
            f"exact enumeration supports n <= {max_bits}, got {n}"
        )
    adj_masks = np.zeros(n, dtype=np.uint64)
    for v in range(n):
        mask = np.uint64(0)
        for u in graph.neighbors(v):
            mask |= np.uint64(1) << np.uint64(int(u))
        adj_masks[v] = mask

    size = 1 << n
    once = np.zeros(size, dtype=np.uint64)
    many = np.zeros(size, dtype=np.uint64)
    # Process blocks [2^b, 2^{b+1}): subsets whose highest set bit is b.
    for b in range(n):
        lo, hi = 1 << b, 1 << (b + 1)
        prev_once = once[0 : hi - lo]
        prev_many = many[0 : hi - lo]
        a = adj_masks[b]
        new_many = prev_many | (prev_once & a)
        once[lo:hi] = (prev_once | a) & ~new_many
        many[lo:hi] = new_many

    x = np.arange(size, dtype=np.uint64)
    not_x = ~x
    gamma_minus = popcount_u64((once | many) & not_x).astype(np.int64)
    gamma_one = popcount_u64(once & not_x).astype(np.int64)
    sizes = popcount_u64(x).astype(np.int64)
    return GraphSubsetProfile(
        n=n,
        once=once,
        many=many,
        gamma_minus_counts=gamma_minus,
        gamma_one_counts=gamma_one,
        sizes=sizes,
    )
