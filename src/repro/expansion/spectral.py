"""Spectral toolbox: eigenvalues, the mixing bound, and Lemma 3.1.

Lemma 3.1's proof rests on the Alon–Spencer cut bound: every bipartition
``(A, B)`` of a d-regular graph with second adjacency eigenvalue ``λ``
satisfies ``e(A, B) ≥ (d − λ)·|A|·|B| / n``.  This module computes exact
spectra (dense symmetric solver — the graphs in our experiments are small
enough), checks regularity, counts cut edges, and packages the full
Lemma 3.1 verification used by experiment E3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.expansion.bounds import lemma31_expansion_bound
from repro.expansion.unique import unique_expansion_exact
from repro.expansion.vertex import vertex_expansion_exact
from repro.graphs.graph import Graph

__all__ = [
    "Lemma31Report",
    "adjacency_spectrum",
    "alon_spencer_cut_lower_bound",
    "cut_edges",
    "lemma31_verify",
    "regular_degree",
    "second_eigenvalue",
    "spectral_gap",
]


def adjacency_spectrum(graph: Graph) -> np.ndarray:
    """All adjacency eigenvalues, descending.  Dense ``eigh``; fine for the
    ``n ≤ a few thousand`` graphs used here."""
    if graph.n == 0:
        return np.array([])
    dense = graph.adjacency.toarray().astype(np.float64)
    return np.linalg.eigvalsh(dense)[::-1]


def second_eigenvalue(graph: Graph) -> float:
    """``λ₂``: the second-largest adjacency eigenvalue."""
    spectrum = adjacency_spectrum(graph)
    if spectrum.size < 2:
        raise ValueError("second eigenvalue needs at least two vertices")
    return float(spectrum[1])


def regular_degree(graph: Graph) -> int:
    """The common degree ``d`` of a regular graph.

    Raises
    ------
    ValueError
        If the graph is not regular.
    """
    degrees = graph.degrees
    if degrees.size == 0:
        raise ValueError("empty graph has no degree")
    d = int(degrees[0])
    if not (degrees == d).all():
        raise ValueError("graph is not regular")
    return d


def spectral_gap(graph: Graph) -> float:
    """``d − λ₂`` for a d-regular graph."""
    return regular_degree(graph) - second_eigenvalue(graph)


def cut_edges(graph: Graph, subset) -> int:
    """``|e(S, V \\ S)|``: edges crossing the bipartition."""
    mask = graph._as_mask(subset)
    edges = graph.edges()
    return int((mask[edges[:, 0]] != mask[edges[:, 1]]).sum())


def alon_spencer_cut_lower_bound(
    d: int, lam: float, size_a: int, size_b: int, n: int
) -> float:
    """Alon–Spencer: ``e(A, B) ≥ (d − λ)·|A|·|B| / n`` for any bipartition
    of a d-regular graph with second eigenvalue ``λ``."""
    if size_a + size_b != n:
        raise ValueError("A and B must partition V")
    return (d - lam) * size_a * size_b / n


@dataclass(frozen=True)
class Lemma31Report:
    """Measured vs claimed quantities for one Lemma 3.1 instance."""

    d: int
    lam: float
    alpha: float
    beta_unique: float
    beta_ordinary: float
    claimed_lower_bound: float

    @property
    def holds(self) -> bool:
        """Whether the measured ``β`` meets the claimed bound."""
        return self.beta_ordinary >= self.claimed_lower_bound - 1e-9


def lemma31_verify(graph: Graph, alpha: float = 0.5, max_bits: int = 20) -> Lemma31Report:
    """Measure both sides of Lemma 3.1 exactly on a small regular graph.

    Computes ``βu`` and ``β`` by exact enumeration and ``λ₂`` by dense
    eigendecomposition, then evaluates the claimed lower bound
    ``(1 − 1/d)·βu + (d − λ)·(1 − α)/d``.
    """
    d = regular_degree(graph)
    lam = second_eigenvalue(graph)
    beta_u, _ = unique_expansion_exact(graph, alpha, max_bits=max_bits)
    beta, _ = vertex_expansion_exact(graph, alpha, max_bits=max_bits)
    claimed = lemma31_expansion_bound(d, lam, alpha, beta_u)
    return Lemma31Report(
        d=d,
        lam=lam,
        alpha=alpha,
        beta_unique=beta_u,
        beta_ordinary=beta,
        claimed_lower_bound=claimed,
    )
