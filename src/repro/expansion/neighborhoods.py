"""Naive reference implementations of the Section 2.1 operators.

These are deliberately written as transparent Python set algebra, one
definition per function, mirroring the paper word for word.  They exist to
cross-check the vectorized kernels in :class:`repro.graphs.graph.Graph` and
:class:`repro.graphs.bipartite.BipartiteGraph` — every property test in the
suite compares a fast kernel against one of these.
"""

from __future__ import annotations

from typing import Iterable


from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph

__all__ = [
    "naive_bipartite_cover",
    "naive_bipartite_unique_cover",
    "naive_gamma",
    "naive_gamma_minus",
    "naive_gamma_one",
    "naive_gamma_one_s_excluding",
    "naive_gamma_s_excluding",
]


def naive_gamma(graph: Graph, subset: Iterable[int]) -> set[int]:
    """``Γ(S) = ⋃_{v∈S} Γ(v)`` — may include vertices of ``S``."""
    out: set[int] = set()
    for v in subset:
        out.update(int(u) for u in graph.neighbors(v))
    return out


def naive_gamma_minus(graph: Graph, subset: Iterable[int]) -> set[int]:
    """``Γ⁻(S) = Γ(S) \\ S``."""
    s = set(int(v) for v in subset)
    return naive_gamma(graph, s) - s


def naive_gamma_one(graph: Graph, subset: Iterable[int]) -> set[int]:
    """``Γ¹(S)``: vertices outside ``S`` with exactly one neighbour in ``S``."""
    s = set(int(v) for v in subset)
    out = set()
    for v in range(graph.n):
        if v in s:
            continue
        if sum(1 for u in graph.neighbors(v) if int(u) in s) == 1:
            out.add(v)
    return out


def naive_gamma_s_excluding(
    graph: Graph, s_subset: Iterable[int], s_prime: Iterable[int]
) -> set[int]:
    """``Γ_S(S')``: vertices outside ``S`` with ≥ 1 neighbour in ``S'``."""
    s = set(int(v) for v in s_subset)
    sp = set(int(v) for v in s_prime)
    if not sp <= s:
        raise ValueError("S' must be a subset of S")
    out = set()
    for v in range(graph.n):
        if v in s:
            continue
        if any(int(u) in sp for u in graph.neighbors(v)):
            out.add(v)
    return out


def naive_gamma_one_s_excluding(
    graph: Graph, s_subset: Iterable[int], s_prime: Iterable[int]
) -> set[int]:
    """``Γ¹_S(S')``: vertices outside ``S`` with exactly one neighbour in
    ``S'`` — the wireless payoff set."""
    s = set(int(v) for v in s_subset)
    sp = set(int(v) for v in s_prime)
    if not sp <= s:
        raise ValueError("S' must be a subset of S")
    out = set()
    for v in range(graph.n):
        if v in s:
            continue
        if sum(1 for u in graph.neighbors(v) if int(u) in sp) == 1:
            out.add(v)
    return out


def naive_bipartite_cover(gs: BipartiteGraph, left_subset: Iterable[int]) -> set[int]:
    """Right vertices with at least one neighbour in the left subset."""
    sp = set(int(v) for v in left_subset)
    out = set()
    for v in range(gs.n_right):
        if any(int(u) in sp for u in gs.neighbors_of_right(v)):
            out.add(v)
    return out


def naive_bipartite_unique_cover(
    gs: BipartiteGraph, left_subset: Iterable[int]
) -> set[int]:
    """Right vertices with exactly one neighbour in the left subset."""
    sp = set(int(v) for v in left_subset)
    out = set()
    for v in range(gs.n_right):
        if sum(1 for u in gs.neighbors_of_right(v) if int(u) in sp) == 1:
            out.add(v)
    return out
