"""Batched wireless-expansion estimation — the scaled candidate pipeline.

The sampled estimator (:func:`repro.expansion.wireless.wireless_expansion_sampled`)
searches over candidate sets ``S`` and needs, per candidate, the *exact*
spokesman optimum ``max_{S' ⊆ S} |Γ¹_S(S')|``.  The legacy path paid for
that with one ``boundary_bipartite`` extraction plus one
``bipartite_subset_profile`` call per candidate — a Python loop whose inner
profile itself loops over distinct neighbourhood masks (``O(D·2^k)`` work
per candidate, re-dispatched from Python every time).  This module is the
batched replacement:

* :func:`enumerate_candidates` draws every candidate up front with the
  exact RNG call sequence of the serial loop (random subsets first, then
  BFS balls), so a fixed seed yields the same candidate list bit for bit;
* :func:`evaluate_candidate_shard` groups candidates by size, extracts all
  their boundary neighbourhood masks with **one** sparse mat-mat product
  per group, and scores each candidate with
  :func:`max_unique_coverage_lattice` — the ``once``/``many``
  subset-lattice DP of :func:`~repro.expansion.subsets.graph_subset_profile`
  run over the candidate's *distinct boundary masks* (chunked 64 to a
  machine word), followed by a byte-table weighted popcount.  That turns
  the per-candidate cost from ``O(D·2^k)`` vectorized passes into
  ``O(⌈D/64⌉·2^k)`` word ops — the ≥ 10× win E17 pins;
* :func:`evaluate_candidates` shards the candidate list contiguously
  across a :class:`~repro.runtime.executor.ParallelExecutor`; per-set
  values are exact integers divided by exact sizes, so shard boundaries
  and worker count can never perturb the result.

The portfolio arm (:func:`portfolio_candidate_values` over
:func:`repro.spokesman.portfolio.wireless_lower_bounds_of_sets`) scores
the same candidates with the polynomial-time spokesman portfolio instead
of exact enumeration — usable at candidate widths where ``2^k``
enumeration is off the table.  Each per-set payoff certifies that set's
expansion from below, so the minimum lower-bounds the *candidate
minimum* (the exact arm's value on the same candidates), not ``βw(G)``
itself.
"""

from __future__ import annotations

from repro._util import as_rng, check_fraction
from repro.backend import HOST, resolve_backend
from repro.graphs.graph import Graph
from repro.obs.tracing import traced

# Host namespace via the backend shim: candidate bookkeeping, bitmask
# dedup and the uint64 word tricks are host-side; the boundary-mask
# mat-mats and the lattice DP's weight-table gathers route through the
# resolved backend.
np = HOST.xp

__all__ = [
    "enumerate_candidates",
    "evaluate_candidate_shard",
    "evaluate_candidates",
    "max_unique_coverage_lattice",
    "portfolio_candidate_values",
]

#: Candidates per boundary-extraction mat-mat product (bounds the dense
#: ``(n, C)`` mask matrix).
_GROUP_CHUNK = 1024


def _weight_table(weights: np.ndarray) -> np.ndarray:
    """``table[x] = Σ_{bit b ∈ x} weights[b]`` for all ``2^len`` bit patterns.

    Built by doubling (table of ``b+1`` bits = table of ``b`` bits, then
    the same shifted by ``weights[b]``), so the whole table costs one add
    per entry.
    """
    table = np.zeros(1 << len(weights), dtype=np.int64)
    for b, w in enumerate(weights):
        half = 1 << b
        np.add(table[:half], w, out=table[half : 2 * half])
    return table


@traced("expansion.enumerate_candidates")
def enumerate_candidates(
    graph: Graph,
    alpha: float = 0.5,
    samples: int = 100,
    rng=None,
    include_balls: bool = True,
    max_set_bits: int = 20,
) -> tuple[list[np.ndarray], int]:
    """All candidate sets of one sampled-estimation run, in serial order.

    Replays the exact generation sequence of the legacy serial loop —
    ``samples`` draws of ``(size, subset)`` from ``rng``, then every BFS
    ball of every vertex up to the first ball wider than the size cap —
    so a fixed seed enumerates identical candidates.  Returns
    ``(candidates, size_cap)`` with ``size_cap = min(⌊alpha·n⌋,
    max_set_bits)``.
    """
    check_fraction(alpha, "alpha")
    gen = as_rng(rng)
    limit = int(np.floor(alpha * graph.n))
    if limit < 1:
        raise ValueError(f"alpha={alpha} admits no non-empty subsets")
    size_cap = min(limit, max_set_bits)

    candidates: list[np.ndarray] = []
    for _ in range(samples):
        size = int(gen.integers(1, size_cap + 1))
        candidates.append(gen.choice(graph.n, size=size, replace=False))
    if include_balls:
        for v in range(graph.n):
            dist = graph.bfs_layers(v)
            reach = dist[dist >= 0]
            for radius in range(int(reach.max()) + 1):
                ball = np.flatnonzero((dist >= 0) & (dist <= radius))
                if ball.size > size_cap:
                    break
                candidates.append(ball)
    return candidates, size_cap


def max_unique_coverage_lattice(
    k: int, masks: np.ndarray, weights: np.ndarray, backend=None
) -> int:
    """Exact ``max_{S' ⊆ [k]} Σ_m w_m·[|S' ∩ m| = 1]`` by lattice DP.

    ``masks`` are the distinct boundary neighbourhood bitmasks (over the
    ``k`` candidate vertices) with multiplicities ``weights``.  Two-track
    evaluation over all ``2^k`` subsets ``S'``:

    * *singleton* masks (boundary vertices with one candidate neighbour
      ``b``, the bulk on sparse graphs) are covered once exactly when
      ``b ∈ S'`` — their total is a plain weighted bit-sum, materialized
      as an outer sum of two precomputed half-width weight tables;
    * the remaining *multi* masks are packed 64 to a machine word and
      swept with the ``once``/``many`` subset-lattice recurrence of
      :func:`~repro.expansion.subsets.graph_subset_profile`, their
      weighted unique count gathered through 16-bit weight tables.

    The return value is the maximum of the combined count.

    The word-packing and the once/many recurrence are host-side uint64
    tricks; the ``2^k``-wide weight-table gathers and the running total
    route through ``backend`` (host numpy when ``None``).
    """
    bk = resolve_backend(backend)
    masks = np.asarray(masks, dtype=np.uint64)
    if masks.size == 0:
        return 0
    weights = np.asarray(weights, dtype=np.int64)
    size = 1 << k
    bit_index = np.arange(k, dtype=np.uint64)
    member = ((masks[:, None] >> bit_index[None, :]) & np.uint64(1)).astype(bool)
    width = member.sum(axis=1)

    # Singleton track: Σ_{b ∈ S'} w_b as an outer table sum (masks are
    # distinct, so each bit has at most one singleton weight).
    single_weight = np.zeros(k, dtype=np.int64)
    single = width == 1
    if single.any():
        single_weight[np.nonzero(member[single])[1]] = weights[single]
    lo_bits = min(k, 16)
    lo_table = _weight_table(single_weight[:lo_bits])
    hi_table = _weight_table(single_weight[lo_bits:])
    total = bk.asarray((hi_table[:, None] + lo_table[None, :]).reshape(size))

    # Multi track: the chunked once/many lattice DP.
    multi = np.flatnonzero(~single)
    for lo in range(0, multi.size, 64):
        chunk = multi[lo : lo + 64]
        lane = np.uint64(1) << np.arange(chunk.size, dtype=np.uint64)
        # adj[b]: which chunk members (as lane bits) contain candidate bit b.
        adj = np.zeros(k, dtype=np.uint64)
        for b in range(k):
            sel = lane[member[chunk, b]]
            if sel.size:
                adj[b] = np.bitwise_or.reduce(sel)
        once = np.zeros(size, dtype=np.uint64)
        many = np.zeros(size, dtype=np.uint64)
        for b in range(k):
            blk_lo, blk_hi = 1 << b, 1 << (b + 1)
            a = adj[b]
            prev_once = once[0:blk_lo]
            new_many = many[0:blk_lo] | (prev_once & a)
            once[blk_lo:blk_hi] = (prev_once | a) & ~new_many
            many[blk_lo:blk_hi] = new_many
        w64 = np.zeros(64, dtype=np.int64)
        w64[: chunk.size] = weights[chunk]
        for lane16 in range((chunk.size + 15) // 16):
            table = _weight_table(w64[16 * lane16 : 16 * lane16 + 16])
            gathered = (
                (once >> np.uint64(16 * lane16)) & np.uint64(0xFFFF)
            ).astype(np.intp)
            total = total + bk.take(bk.asarray(table), bk.asarray(gathered))
    return int(bk.to_numpy(total).max())


def _group_best_unique(
    adjacency, n: int, group: np.ndarray, backend=HOST
) -> list[int]:
    """``max_{S'} |Γ¹_S(S')|`` for every candidate of one size group.

    ``group`` is a ``(C, k)`` index matrix.  One sparse mat-mat product
    yields every vertex's neighbourhood bitmask within every candidate at
    once (0/1 adjacency times powers of two cannot carry, so the integer
    sum *is* the bitwise OR); the per-candidate distinct masks then feed
    :func:`max_unique_coverage_lattice`.  ``adjacency`` is the backend's
    value operator (the host int64 scipy cast on numpy); the mask matrix
    lands back on the host for the bit-level dedup.
    """
    count, k = group.shape
    cols = np.repeat(np.arange(count), k)
    weights_matrix = np.zeros((n, count), dtype=np.int64)
    weights_matrix[group.ravel(), cols] = np.tile(
        np.int64(1) << np.arange(k, dtype=np.int64), count
    )
    if backend.is_host:
        masks = adjacency @ weights_matrix
    else:
        masks = backend.to_numpy(
            backend.value_matmul(adjacency, backend.asarray(weights_matrix))
        )
    in_set = np.zeros((n, count), dtype=bool)
    in_set[group.ravel(), cols] = True
    valid = (masks != 0) & ~in_set  # exactly the boundary Γ⁻(S) rows
    v_idx, c_idx = np.nonzero(valid)
    key = (c_idx.astype(np.int64) << k) | masks[v_idx, c_idx]
    distinct, multiplicity = np.unique(key, return_counts=True)
    cand_of = distinct >> k
    dmasks = distinct & ((np.int64(1) << k) - 1)
    starts = np.searchsorted(cand_of, np.arange(count))
    ends = np.searchsorted(cand_of, np.arange(count) + 1)
    return [
        max_unique_coverage_lattice(
            k, dmasks[s:e], multiplicity[s:e], backend=backend
        )
        for s, e in zip(starts, ends)
    ]


@traced("expansion.evaluate_candidate_shard")
def evaluate_candidate_shard(
    graph: Graph, candidates, size_cap: int, backend=None
) -> np.ndarray:
    """Exact per-set wireless expansion of each candidate (``inf`` where
    the candidate is skipped for falling outside ``1..size_cap``).

    Module-level and all-plain-data so :class:`ParallelExecutor` workers
    can evaluate shards; values are exact, so any sharding of the
    candidate list concatenates back to the serial answer bit for bit.
    ``backend`` (a name or ``None`` for host numpy — names stay picklable
    across worker boundaries) runs the boundary mat-mats and lattice
    gathers on an accelerator; values are exact integers either way.
    """
    bk = resolve_backend(backend)
    values = np.full(len(candidates), np.inf)
    by_size: dict[int, list[int]] = {}
    for i, cand in enumerate(candidates):
        width = int(np.asarray(cand).size)
        if 1 <= width <= size_cap:
            by_size.setdefault(width, []).append(i)
    adjacency = (
        graph.adjacency.astype(np.int64)
        if bk.is_host
        else bk.value_operator(graph)
    )
    for k, indices in sorted(by_size.items()):
        group = np.stack(
            [np.asarray(candidates[i], dtype=np.int64) for i in indices]
        )
        # Candidates are sets — dedupe repeats (BFS balls of nearby
        # vertices often coincide) and score each distinct set once.
        distinct, inverse = np.unique(
            np.sort(group, axis=1), axis=0, return_inverse=True
        )
        bests: list[int] = []
        for lo in range(0, distinct.shape[0], _GROUP_CHUNK):
            bests.extend(
                _group_best_unique(
                    adjacency, graph.n, distinct[lo : lo + _GROUP_CHUNK],
                    backend=bk,
                )
            )
        for i, j in zip(indices, inverse.ravel()):
            values[i] = int(bests[j]) / k
    return values


def _map_shards(fn, make_call, count: int, executor) -> np.ndarray:
    """Shard ``count`` candidates contiguously across an executor.

    ``make_call(indices)`` builds one shard's kwargs; the per-shard value
    arrays concatenate back in candidate order.  Per-candidate values are
    exact (and seeds pre-derived), so the shard layout can never perturb
    the result.
    """
    from repro.runtime.executor import as_executor

    exec_ = as_executor(executor)
    if exec_.jobs <= 1 or count <= 1:
        return fn(**make_call(np.arange(count)))
    shards = np.array_split(np.arange(count), min(exec_.jobs, count))
    parts = exec_.map(fn, [make_call(s) for s in shards if s.size])
    return np.concatenate(parts)


@traced("expansion.evaluate_candidates")
def evaluate_candidates(
    graph: Graph, candidates, size_cap: int, executor=None, backend=None
) -> np.ndarray:
    """Per-candidate exact values, optionally sharded across workers.

    ``executor`` is an :class:`~repro.runtime.executor.Executor`, an int
    job count, or ``None`` (inline).  Shards are contiguous slices of the
    candidate list, and every value is an exact ``best/|S|`` ratio, so the
    returned array is identical whatever the worker count.  ``backend``
    crosses worker boundaries as its registry spec string, so process
    shards never pickle live backend handles.
    """
    if backend is not None and not isinstance(backend, str):
        backend = resolve_backend(backend).spec
    return _map_shards(
        evaluate_candidate_shard,
        lambda shard: {
            "graph": graph,
            "candidates": [candidates[i] for i in shard],
            "size_cap": size_cap,
            "backend": backend,
        },
        len(candidates),
        executor,
    )


@traced("expansion.portfolio_candidate_values")
def portfolio_candidate_values(
    graph: Graph, candidates, seeds, size_cap: int, executor=None
) -> np.ndarray:
    """Certified per-candidate (per-set) lower bounds via the spokesman
    portfolio.

    The large-``n`` arm: each candidate is scored by
    :func:`repro.spokesman.portfolio.wireless_lower_bounds_of_sets`
    (polynomial-time, so ``size_cap`` may far exceed the exact
    enumeration width) under its own pre-derived seed, sharded like
    :func:`evaluate_candidates`.  The certification is per set — a
    minimum over these values bounds the candidate minimum, not βw.
    """
    from repro.spokesman.portfolio import wireless_lower_bounds_of_sets

    return _map_shards(
        wireless_lower_bounds_of_sets,
        lambda shard: {
            "graph": graph,
            "subsets": [candidates[i] for i in shard],
            "seeds": [seeds[i] for i in shard],
            "size_cap": size_cap,
        },
        len(candidates),
        executor,
    )


def select_minimum(values: np.ndarray, candidates) -> tuple[float, np.ndarray]:
    """The serial selection rule: first candidate strictly improving the
    running minimum wins (ties keep the earlier candidate)."""
    best = np.inf
    best_set = np.array([0], dtype=np.int64)
    for index in range(len(candidates)):
        if values[index] < best:
            best = values[index]
            best_set = candidates[index]
    return float(best), best_set
