"""Declarative expansion-estimator specs — the measurement-side spec layer.

The scenario API made every *simulation* a frozen, picklable, string-round-
trippable spec; this module does the same for the paper's measurement side.
An :class:`ExpansionSpec` names a βw estimator and its knobs, speaks the
shared :mod:`repro._util.specstr` grammar (like
:class:`~repro.radio.channel.ChannelSpec`), and resolves against the
:data:`ESTIMATORS` registry::

    ExpansionSpec.from_string("sampled(samples=200, alpha=0.4)")
    ExpansionSpec.from_string("exact(max_set_bits=14)")
    ExpansionSpec.from_string("portfolio(max_set_bits=64)").describe()

Estimators
----------
``sampled``
    Batched candidate-set search (:mod:`repro.expansion.pipeline`); every
    candidate is scored *exactly*, so the minimum is a certified **upper**
    bound on ``βw(G)``.
``exact``
    The full vectorized min-max sweep
    (:func:`~repro.expansion.wireless.wireless_expansion_exact`) —
    feasible for ``n ≤ max_set_bits``.
``portfolio``
    The same candidate search scored by the polynomial-time spokesman
    portfolio (Corollary A.16) instead of exact enumeration — the
    large-``n`` arm, so ``max_set_bits`` may far exceed the exact
    enumeration width.  Each per-set payoff certifies that *set's*
    expansion from below, so the reported minimum lower-bounds the
    **candidate minimum** (the ``sampled`` arm's value on the same
    candidate sequence) — it is *not* a bound on ``βw(G)`` itself,
    which is a minimum over all sets; the bound tag is therefore
    ``candidate-lower``.

Like the other spec layers, :meth:`to_dict` carries only the parameters
the named estimator consumes, so spec-equal measurements always share one
content address (:meth:`repro.runtime.ResultStore.expansion_key`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro._util import (
    as_rng,
    check_fraction,
    format_call,
    parse_call,
    spawn_seeds,
)
from repro.graphs.graph import Graph

__all__ = ["ESTIMATORS", "ExpansionEstimate", "ExpansionSpec", "as_expansion_spec"]

#: Estimator name → one-line summary (the CLI discovery surface, mirroring
#: ``repro.radio.CHANNELS``).
ESTIMATORS: dict[str, str] = {
    "sampled": "batched candidate-set search, exact per set (upper bound)",
    "exact": "full vectorized min-max sweep (n <= max_set_bits)",
    "portfolio": "candidate search scored by the spokesman portfolio "
    "(lower-bounds the candidate minimum; no 2^k blow-up)",
}

#: Which spec fields each estimator actually consumes (the to_dict view).
_CONSUMES: dict[str, tuple[str, ...]] = {
    "sampled": ("alpha", "samples", "max_set_bits", "include_balls"),
    "exact": ("alpha", "max_set_bits"),
    "portfolio": ("alpha", "samples", "max_set_bits", "include_balls"),
}

_DEFAULTS = {"alpha": 0.5, "samples": 100, "max_set_bits": 20, "include_balls": True}


@dataclass(frozen=True)
class ExpansionEstimate:
    """One βw estimate: the value, its certification tag (``upper`` —
    certified upper bound on βw; ``exact``; ``candidate-lower`` — a
    lower bound on the *candidate minimum* only, see the module
    docstring), the minimizing set, and how many candidate sets were
    examined."""

    value: float
    bound: str
    subset: np.ndarray
    estimator: str
    candidates: int


@dataclass(frozen=True)
class ExpansionSpec:
    """A picklable, content-addressable βw-estimator configuration."""

    estimator: str = "sampled"
    alpha: float = 0.5
    samples: int = 100
    max_set_bits: int = 20
    include_balls: bool = True

    #: Spec-interface discriminator (mirrors the other spec classes).
    kind = "expansion"

    def __post_init__(self):
        object.__setattr__(self, "estimator", self._canonical_name(self.estimator))
        check_fraction(self.alpha, "alpha")
        if self.samples < 0:
            raise ValueError(f"samples must be >= 0, got {self.samples}")
        if self.max_set_bits < 1:
            raise ValueError(
                f"max_set_bits must be >= 1, got {self.max_set_bits}"
            )

    @staticmethod
    def _canonical_name(name: str) -> str:
        key = str(name).strip().lower()
        if key not in ESTIMATORS:
            raise ValueError(
                f"unknown expansion estimator {name!r}; registered "
                f"estimators: {', '.join(sorted(ESTIMATORS))}"
            )
        return key

    # ------------------------------------------------------------------
    # The spec views (string / dict; pickling is free on a frozen
    # dataclass)
    # ------------------------------------------------------------------
    @classmethod
    def from_string(cls, text: str) -> "ExpansionSpec":
        """Parse ``sampled``, ``exact(max_set_bits=14)``,
        ``portfolio(samples=50, max_set_bits=64)``, …"""
        name, args, kwargs = parse_call(text)
        name = cls._canonical_name(name)
        if args:
            raise ValueError(
                f"expansion estimators take keyword arguments only "
                f"({', '.join(_CONSUMES[name])}), got {text!r}"
            )
        extra = set(kwargs) - set(_CONSUMES[name])
        if extra:
            raise ValueError(
                f"estimator {name!r} does not take {sorted(extra)}; known "
                f"fields: {', '.join(_CONSUMES[name])}"
            )
        return cls(estimator=name, **kwargs)

    def describe(self) -> str:
        """Canonical string: the estimator plus its non-default consumed
        fields; ``from_string(describe())`` round-trips canonical specs."""
        kwargs = {
            field: getattr(self, field)
            for field in _CONSUMES[self.estimator]
            if getattr(self, field) != _DEFAULTS[field]
        }
        return format_call(self.estimator, (), kwargs)

    def to_dict(self) -> dict:
        """Canonical plain-data form — only consumed parameters, so
        spec-equal estimators always encode (and cache) alike."""
        out: dict[str, Any] = {"estimator": self.estimator}
        for field in _CONSUMES[self.estimator]:
            out[field] = getattr(self, field)
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExpansionSpec":
        """Inverse of :meth:`to_dict`."""
        name = cls._canonical_name(data.get("estimator", "sampled"))
        extra = set(data) - {"estimator"} - set(_CONSUMES[name])
        if extra:
            raise ValueError(f"unknown expansion-spec fields {sorted(extra)}")
        return cls(
            estimator=name,
            **{k: data[k] for k in _CONSUMES[name] if k in data},
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def estimate(self, graph: Graph, rng=None, executor=None) -> ExpansionEstimate:
        """Run the configured estimator on ``graph``.

        ``rng`` follows the repo-wide seeding discipline (``None`` / int
        seed / Generator); ``executor`` shards candidate batches across
        worker processes with results bit-for-bit equal to serial.
        """
        from repro.expansion.pipeline import (
            enumerate_candidates,
            evaluate_candidates,
            portfolio_candidate_values,
            select_minimum,
        )
        from repro.expansion.wireless import wireless_expansion_exact

        if self.estimator == "exact":
            value, subset = wireless_expansion_exact(
                graph, self.alpha, max_bits=self.max_set_bits
            )
            limit = int(np.floor(self.alpha * graph.n))
            examined = sum(math.comb(graph.n, k) for k in range(1, limit + 1))
            return ExpansionEstimate(
                value=value,
                bound="exact",
                subset=subset,
                estimator="exact",
                candidates=examined,
            )
        gen = as_rng(rng)
        candidates, size_cap = enumerate_candidates(
            graph,
            alpha=self.alpha,
            samples=self.samples,
            rng=gen,
            include_balls=self.include_balls,
            max_set_bits=self.max_set_bits,
        )
        if self.estimator == "sampled":
            values = evaluate_candidates(
                graph, candidates, size_cap, executor=executor
            )
            bound = "upper"
        else:
            seeds = spawn_seeds(gen, len(candidates))
            values = portfolio_candidate_values(
                graph, candidates, seeds, size_cap, executor=executor
            )
            bound = "candidate-lower"
        value, subset = select_minimum(values, candidates)
        return ExpansionEstimate(
            value=value,
            bound=bound,
            subset=subset,
            estimator=self.estimator,
            candidates=len(candidates),
        )


def as_expansion_spec(value) -> ExpansionSpec:
    """Coerce an :class:`ExpansionSpec`, spec string, or canonical dict."""
    if isinstance(value, ExpansionSpec):
        return value
    if isinstance(value, str):
        return ExpansionSpec.from_string(value)
    if isinstance(value, Mapping):
        return ExpansionSpec.from_dict(value)
    raise TypeError(
        f"expected an ExpansionSpec, spec string, or canonical dict; "
        f"got {type(value).__name__}"
    )
