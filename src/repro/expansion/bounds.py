"""Every closed-form bound in the paper, as one documented function each.

All logarithms are base 2, matching the paper's convention.  Functions are
named after their source statement.  ``Ω``/``O`` statements are exposed as
*shape* functions (the bound without its unspecified constant); experiments
fit or check constants empirically.

One erratum is handled here: Corollaries A.9/A.10/A.16 print the constant
``2.0087``, but the derivation (maximize ``log₂c / (2(1+c))`` over ``c``,
attained at ``c* ≈ 3.59112`` with value ``≈ 0.20087``, as the paper itself
states before Corollary A.7) yields ``0.20087``; the printed value is a
misplaced decimal point.  We implement ``0.20087``.
"""

from __future__ import annotations

import math

from scipy.optimize import minimize_scalar

__all__ = [
    "OPTIMAL_DEGREE_CLASS_BASE",
    "OPTIMAL_DEGREE_CLASS_CONSTANT",
    "corollary51_min_rounds",
    "decay_success_lower_bound",
    "degree_class_guarantee",
    "kushilevitz_mansour_lower_bound",
    "lemma31_expansion_bound",
    "lemma32_unique_lower_bound",
    "lemma42_shape",
    "lemma43_shape",
    "lemma_a1_guarantee",
    "lemma_a3_guarantee",
    "lemma_a5_class_guarantee",
    "lemma_a8_guarantee",
    "lemma_a13_guarantee",
    "corollary_a15_guarantee",
    "mg_bound",
    "spokesman_cw_guarantee",
    "theorem11_shape",
    "unique_success_probability",
]


# ----------------------------------------------------------------------
# Section 3: ordinary vs unique expansion
# ----------------------------------------------------------------------
def lemma31_expansion_bound(
    d: int, lam: float, alpha_u: float, beta_u: float
) -> float:
    """Lemma 3.1: a d-regular ``(αu, βu)``-unique expander is an ordinary
    expander with ``β ≥ (1 − 1/d)·βu + (d − λ)·(1 − αu)/d``."""
    if d <= 0:
        raise ValueError(f"degree must be positive, got {d}")
    return (1 - 1 / d) * beta_u + (d - lam) * (1 - alpha_u) / d


def lemma32_unique_lower_bound(beta: float, delta: float) -> float:
    """Lemma 3.2 (and Lemma 4.1 via Observation 2.1):
    ``βu ≥ 2β − Δ`` — meaningful only for ``β > Δ/2``, and exactly attained
    by ``Gbad`` (Lemma 3.3)."""
    return 2 * beta - delta


# ----------------------------------------------------------------------
# Section 4.2: the positive results
# ----------------------------------------------------------------------
def unique_success_probability(degree: int, p: float) -> float:
    """``P[Bin-style unique hit] = d·p·(1−p)^{d−1}`` — the probability that a
    right vertex of degree ``d`` has exactly one neighbour in a ``p``-sampled
    subset (the heart of Lemma 4.2's probabilistic argument)."""
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    if not 0 <= p <= 1:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    return degree * p * (1 - p) ** (degree - 1)


def decay_success_lower_bound() -> float:
    """Lemma 4.2's pointwise bound: a vertex with degree in ``[2^j, 2^{j+1})``
    sampled at rate ``2^{-j}`` is uniquely covered with probability
    ``≥ e^{-3}``."""
    return math.exp(-3.0)


def lemma42_shape(beta: float, delta: float) -> float:
    """Lemma 4.2 (``β ≥ 1``): ``βw = Ω(β / log 2(Δ/β))`` — the shape
    ``β / log₂(2Δ/β)``."""
    if beta < 1:
        raise ValueError(f"Lemma 4.2 requires beta >= 1, got {beta}")
    return beta / math.log2(2 * delta / beta)


def lemma43_shape(beta: float, delta: float) -> float:
    """Lemma 4.3 (``1/Δ ≤ β < 1``): ``βw = Ω(β / log 2(Δ·β))`` — the shape
    ``β / log₂(2Δβ)``."""
    if not (1 / delta <= beta <= 1 + 1e-12):
        raise ValueError(
            f"Lemma 4.3 requires 1/Δ <= beta <= 1, got beta={beta}, Δ={delta}"
        )
    return beta / math.log2(2 * delta * beta)


def theorem11_shape(beta: float, delta: float) -> float:
    """Theorem 1.1 / 1.2 shape ``β / log₂(2·min{Δ/β, Δ·β})`` — the tight
    ordinary-vs-wireless gap.  Requires ``β ≥ 1/Δ``."""
    if beta < 1 / delta - 1e-12:
        raise ValueError(
            f"Theorem 1.1 requires beta >= 1/Δ, got beta={beta}, Δ={delta}"
        )
    return beta / math.log2(2 * min(delta / beta, delta * beta))


def spokesman_cw_guarantee(n_right: int, n_left: int) -> float:
    """Chlamtac–Weinstein's spokesman guarantee ``|Γ¹(S')| ≥ |N|/log₂|S|``
    (Section 4.2.1's comparison baseline; needs ``|S| ≥ 3`` to be finite)."""
    if n_left < 3:
        raise ValueError("the |N|/log|S| guarantee needs |S| >= 3")
    return n_right / math.log2(n_left)


# ----------------------------------------------------------------------
# Section 5: radio broadcast lower bound
# ----------------------------------------------------------------------
def corollary51_min_rounds(i: int, s: int) -> int:
    """Corollary 5.1: reaching a ``2i/log(2s)`` fraction of the core graph's
    ``N`` takes at least ``1 + i`` rounds, for ``0 ≤ i ≤ log(2s)/2``."""
    log2s = math.log2(2 * s)
    if not 0 <= i <= log2s / 2:
        raise ValueError(f"Corollary 5.1 needs 0 <= i <= log(2s)/2, got i={i}")
    return 1 + i


def kushilevitz_mansour_lower_bound(diameter: int, n: int) -> float:
    """The ``Ω(D·log(n/D))`` broadcast-time lower bound (shape
    ``D·log₂(n/D)``), re-proved in Section 5 via the core graph."""
    if not 1 <= diameter < n:
        raise ValueError(f"need 1 <= D < n, got D={diameter}, n={n}")
    return diameter * math.log2(n / diameter)


# ----------------------------------------------------------------------
# Appendix A: deterministic guarantees
# ----------------------------------------------------------------------
def lemma_a1_guarantee(gamma: int, delta: int) -> float:
    """Lemma A.1 (naive greedy): ``|Γ¹_S(S')| ≥ γ/Δ``."""
    if delta < 1:
        raise ValueError(f"delta must be >= 1, got {delta}")
    return gamma / delta


def lemma_a3_guarantee(gamma: int, delta_avg: float) -> float:
    """Lemma A.3 (Procedure Partition on ``N^{2δ}``):
    ``|Γ¹_S(S')| ≥ γ/(8δ)`` where ``δ`` is the average right degree."""
    if delta_avg < 1:
        raise ValueError(f"average degree must be >= 1, got {delta_avg}")
    return gamma / (8 * delta_avg)


#: The maximizer of ``log₂c / (2(1+c))`` (stated before Corollary A.7).
OPTIMAL_DEGREE_CLASS_BASE: float = float(
    minimize_scalar(
        lambda c: -math.log2(c) / (2 * (1 + c)), bounds=(1.5, 10.0), method="bounded"
    ).x
)

#: The maximum value ``≈ 0.20087`` of ``log₂c / (2(1+c))``.
OPTIMAL_DEGREE_CLASS_CONSTANT: float = math.log2(OPTIMAL_DEGREE_CLASS_BASE) / (
    2 * (1 + OPTIMAL_DEGREE_CLASS_BASE)
)


def lemma_a5_class_guarantee(class_size: int, c: float) -> float:
    """Lemma A.5: within one degree class ``N^{(i)}`` (degrees in
    ``[c^{i−1}, c^i)``) some ``S'`` uniquely covers ``≥ |N^{(i)}|/(2(1+c))``."""
    if c <= 1:
        raise ValueError(f"class base c must exceed 1, got {c}")
    return class_size / (2 * (1 + c))


def degree_class_guarantee(gamma: int, delta: float, c: float | None = None) -> float:
    """Corollaries A.6/A.7: ``|Γ¹_S(S')| ≥ γ·log₂c / (2(1+c)·log₂Δ)``;
    with the optimal ``c* ≈ 3.59112`` this is ``≥ 0.20087·γ/log₂Δ``."""
    if delta <= 1:
        raise ValueError(f"Δ must exceed 1 for a log₂Δ bound, got {delta}")
    if c is None:
        c = OPTIMAL_DEGREE_CLASS_BASE
    return gamma * math.log2(c) / (2 * (1 + c) * math.log2(delta))


def lemma_a8_guarantee(gamma: int, delta_avg: float, c: float, t: float) -> float:
    """Corollary A.8 (average-degree version): for any ``c, t > 1``,
    ``|Γ¹_S(S')| ≥ (1 − 1/t)·γ / (2(1+c)·log_c(tδ))``."""
    if c <= 1 or t <= 1:
        raise ValueError("Corollary A.8 requires c > 1 and t > 1")
    if t * delta_avg <= 1:
        raise ValueError("tδ must exceed 1")
    return (1 - 1 / t) * gamma / (2 * (1 + c) * math.log(t * delta_avg, c))


def lemma_a13_guarantee(gamma: int, delta_avg: float) -> float:
    """Lemma A.13 (recursive Partition): ``|Γ¹_S(S')| ≥ γ/(9·log₂(2δ))``."""
    if delta_avg < 1:
        raise ValueError(f"average degree must be >= 1, got {delta_avg}")
    return gamma / (9 * math.log2(2 * delta_avg))


def corollary_a15_guarantee(gamma: int, delta_avg: float) -> float:
    """Corollary A.15: ``|Γ¹_S(S')| ≥ min{γ/(9·log₂δ), γ/20}`` (for
    ``δ < 2`` the proof gives ``γ/20`` outright)."""
    if delta_avg < 1:
        raise ValueError(f"average degree must be >= 1, got {delta_avg}")
    if delta_avg < 2:
        return gamma / 20
    return min(gamma / (9 * math.log2(delta_avg)), gamma / 20)


def _mg_component3(x: float) -> float:
    """``max_{t>1} (1 − 1/t) · 0.20087 / log₂(t·x)`` (numeric; the optimal
    ``t`` solves ``ln(t·x) = t − 1``)."""
    if x <= 0:
        raise ValueError(f"x must be positive, got {x}")

    def neg(t: float) -> float:
        denom = math.log2(t * x)
        if denom <= 0:
            return math.inf
        return -(1 - 1 / t) * OPTIMAL_DEGREE_CLASS_CONSTANT / denom

    hi = 10 + 5 * math.log(x + math.e)
    res = minimize_scalar(neg, bounds=(1 + 1e-9, hi), method="bounded")
    return float(-res.fun)


def mg_bound(x: float) -> float:
    """The portfolio guarantee ``MG(x)`` of Corollary A.16 (per-unit-of-γ):

    ``MG(x) = max{ min{1/(9·log₂x), 1/20},  1/(9·log₂2x),
    max_{t>1}(1−1/t)·0.20087/log₂(t·x) }``.

    ``βw ≥ β·MG(δ̄)`` for any expander (Lemma A.18), and ``βw ≥ β·MG(Δ/β)``
    in the ``β ≥ 1`` regime.
    """
    if x < 1:
        raise ValueError(f"average degree must be >= 1, got {x}")
    comp1 = 1 / 20 if x < 2 else min(1 / (9 * math.log2(x)), 1 / 20)
    comp2 = 1 / (9 * math.log2(2 * x))
    comp3 = _mg_component3(x)
    return max(comp1, comp2, comp3)
