"""Wireless expansion — the paper's new quantity, computed exactly.

``G`` is an ``(αw, βw)``-wireless expander if every ``S`` with
``|S| ≤ αw·n`` contains some ``S' ⊆ S`` with ``|Γ¹_S(S')| ≥ βw·|S|``.  Thus

``βw(G) = min_S  max_{S' ⊆ S}  |Γ¹_S(S')| / |S|``

— a min-max over a doubly-exponential family.  This module computes it
exactly where feasible:

* per-set: ``max_{S'}`` by the all-subsets bipartite profile (``|S| ≤ ~22``);
* graph-level: the full min-max by combining the subset-lattice profile
  with sub-subset enumeration.  The ``Θ(3^n)`` submask pairs are swept
  **vectorized**: admissible sets are grouped by size, each group's
  submasks materialize through one bit-value × selector matrix product,
  and the covered-once counts fall out of array gathers into the
  :func:`~repro.expansion.subsets.graph_subset_profile` arrays — no
  Python-level submask walk (``n ≤ ~16`` is now comfortable).
* sampled: the candidate-set search is batched through
  :mod:`repro.expansion.pipeline` — candidates are enumerated up front,
  grouped by size, and scored by a chunked subset-lattice DP, optionally
  sharded across :class:`~repro.runtime.executor.ParallelExecutor`
  workers — bit-for-bit identical to the retired serial loop (kept as
  :func:`wireless_expansion_sampled_serial`, the equivalence yardstick).

Algorithmic *lower bounds* for large instances come from the spokesman
algorithms (:mod:`repro.spokesman`), which are guaranteed approximations by
the paper's positive results.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_fraction, popcount_u64
from repro.expansion.subsets import bipartite_subset_profile, graph_subset_profile
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph

__all__ = [
    "max_unique_coverage_exact",
    "wireless_expansion_exact",
    "wireless_expansion_of_set_exact",
    "wireless_expansion_sampled",
    "wireless_expansion_sampled_serial",
]

#: Submask-sweep chunk budget (elements of the per-chunk gather matrix).
_SWEEP_BUDGET = 1 << 22


def max_unique_coverage_exact(
    gs: BipartiteGraph,
) -> tuple[int, np.ndarray]:
    """Exact ``max_{S' ⊆ S} |Γ¹_S(S')|`` on a bipartite ``G_S``, with witness.

    This is the (NP-hard in general) *spokesman election* optimum of
    Section 4.2.1, solved by brute enumeration — the yardstick the
    polynomial-time algorithms are measured against.
    """
    profile = bipartite_subset_profile(gs)
    best = int(np.argmax(profile.unique_counts))
    witness = np.flatnonzero(
        (np.uint32(best) >> np.arange(gs.n_left, dtype=np.uint32)) & np.uint32(1)
    )
    return int(profile.unique_counts[best]), witness


def wireless_expansion_of_set_exact(
    graph: Graph, subset
) -> tuple[float, np.ndarray]:
    """Exact wireless expansion ``max_{S' ⊆ S} |Γ¹_S(S')| / |S|`` of one set.

    Returns the ratio and the optimal ``S'`` (as original vertex ids).
    """
    mask = graph._as_mask(subset)
    size = int(mask.sum())
    if size == 0:
        raise ValueError("wireless expansion of the empty set is undefined")
    gs, left_vertices, _ = graph.boundary_bipartite(mask)
    best, witness_local = max_unique_coverage_exact(gs)
    return best / size, left_vertices[witness_local]


def wireless_expansion_sampled(
    graph: Graph,
    alpha: float = 0.5,
    samples: int = 100,
    rng=None,
    include_balls: bool = True,
    max_set_bits: int = 20,
    executor=None,
) -> tuple[float, np.ndarray]:
    """Adversarial *upper bound* on ``βw(G)`` by candidate-set search.

    For each candidate ``S`` (random subsets of every admissible size, plus
    BFS balls — the canonical low-expansion sets) the *exact* per-set
    wireless expansion is computed, and the minimum over candidates is
    returned; since ``βw(G)`` is the minimum over **all** sets, every
    candidate's value upper-bounds it.  Candidates wider than
    ``max_set_bits`` are skipped (their exact value is unavailable and a
    lower bound would not be a valid upper bound for ``βw``).

    Candidates are enumerated up front and evaluated in size-grouped
    vectorized passes (:mod:`repro.expansion.pipeline`); ``executor`` (an
    :class:`~repro.runtime.executor.Executor` or int job count) shards the
    candidate batches across worker processes.  Serial, batched, and
    parallel evaluations agree bit for bit at a fixed seed.
    """
    from repro.expansion.pipeline import (
        enumerate_candidates,
        evaluate_candidates,
        select_minimum,
    )

    candidates, size_cap = enumerate_candidates(
        graph,
        alpha=alpha,
        samples=samples,
        rng=rng,
        include_balls=include_balls,
        max_set_bits=max_set_bits,
    )
    values = evaluate_candidates(graph, candidates, size_cap, executor=executor)
    return select_minimum(values, candidates)


def wireless_expansion_sampled_serial(
    graph: Graph,
    alpha: float = 0.5,
    samples: int = 100,
    rng=None,
    include_balls: bool = True,
    max_set_bits: int = 20,
) -> tuple[float, np.ndarray]:
    """The retired one-candidate-at-a-time estimator.

    Kept as the reference implementation the batched pipeline is pinned
    against (equivalence tests and ``bench_expansion_scaling.py``); new
    code should call :func:`wireless_expansion_sampled`.
    """
    from repro._util import as_rng

    check_fraction(alpha, "alpha")
    gen = as_rng(rng)
    limit = int(np.floor(alpha * graph.n))
    if limit < 1:
        raise ValueError(f"alpha={alpha} admits no non-empty subsets")
    size_cap = min(limit, max_set_bits)

    best = np.inf
    best_set = np.array([0], dtype=np.int64)

    def consider(indices: np.ndarray) -> None:
        nonlocal best, best_set
        if not 1 <= indices.size <= size_cap:
            return
        value, _ = wireless_expansion_of_set_exact(graph, indices)
        if value < best:
            best = value
            best_set = indices

    for _ in range(samples):
        size = int(gen.integers(1, size_cap + 1))
        consider(gen.choice(graph.n, size=size, replace=False))
    if include_balls:
        for v in range(graph.n):
            dist = graph.bfs_layers(v)
            reach = dist[dist >= 0]
            for radius in range(int(reach.max()) + 1):
                ball = np.flatnonzero((dist >= 0) & (dist <= radius))
                if ball.size > size_cap:
                    break
                consider(ball)
    return float(best), best_set


def wireless_expansion_exact(
    graph: Graph, alpha: float = 0.5, max_bits: int = 14
) -> tuple[float, np.ndarray]:
    """Exact ``βw(G)`` (min over ``S``, max over ``S' ⊆ S``) with the
    minimizing ``S`` as witness.

    Cost is ``Θ(3^n)`` submask pairs, swept as vectorized per-size passes
    over the :func:`~repro.expansion.subsets.graph_subset_profile`
    arrays: every admissible set's submasks come from one bit-value ×
    selector product, their covered-once masks from one gather into the
    profile's ``once`` array.  ``max_bits`` (default 14, the historical
    Python-walk ceiling) guards the ``2^n`` profile allocation.
    """
    check_fraction(alpha, "alpha")
    n = graph.n
    if n > max_bits:
        raise ValueError(
            f"exact wireless expansion supports n <= {max_bits}, got {n}"
        )
    profile = graph_subset_profile(graph, max_bits=max_bits)
    limit = int(np.floor(alpha * n))
    if limit < 1:
        raise ValueError(f"alpha={alpha} admits no non-empty subsets")
    once = profile.once
    sizes = profile.sizes
    full = np.uint64((1 << n) - 1)

    all_masks = np.arange(1 << n, dtype=np.int64)
    best_ratio = np.inf
    best_set = 0
    for k in range(1, limit + 1):
        group = all_masks[sizes == k]  # ascending mask order
        # Bit positions of each mask, as a (R, k) matrix; row-major
        # np.nonzero keeps them grouped per mask, ascending.
        member = ((group[:, None] >> np.arange(n)) & 1).astype(bool)
        positions = np.nonzero(member)[1].reshape(group.size, k)
        bit_values = np.int64(1) << positions
        selectors = ((np.arange(1 << k)[:, None] >> np.arange(k)) & 1).astype(
            np.int64
        )
        outside = (~group.astype(np.uint64)) & full
        rows_per_chunk = max(1, _SWEEP_BUDGET >> k)
        for lo in range(0, group.size, rows_per_chunk):
            hi = min(lo + rows_per_chunk, group.size)
            submasks = bit_values[lo:hi] @ selectors.T  # (rows, 2^k)
            covered = once[submasks] & outside[lo:hi, None]
            best_cover = popcount_u64(covered).max(axis=1)
            ratio = best_cover / k
            arg = int(np.argmin(ratio))  # first (smallest) mask on ties
            candidate = int(group[lo + arg])
            if ratio[arg] < best_ratio or (
                ratio[arg] == best_ratio and candidate < best_set
            ):
                best_ratio = float(ratio[arg])
                best_set = candidate
    witness = np.flatnonzero(
        (np.uint64(best_set) >> np.arange(n, dtype=np.uint64)) & np.uint64(1)
    )
    return float(best_ratio), witness


def _wireless_expansion_exact_walk(
    graph: Graph, alpha: float = 0.5, max_bits: int = 14
) -> tuple[float, np.ndarray]:
    """The retired Python submask walk — the vectorized sweep's reference.

    Kept (module-private) so equivalence tests and the E17 bench can pin
    the vectorized :func:`wireless_expansion_exact` against it bit for bit.
    """
    check_fraction(alpha, "alpha")
    n = graph.n
    if n > max_bits:
        raise ValueError(
            f"exact wireless expansion supports n <= {max_bits}, got {n}"
        )
    profile = graph_subset_profile(graph, max_bits=max_bits)
    limit = int(np.floor(alpha * n))
    if limit < 1:
        raise ValueError(f"alpha={alpha} admits no non-empty subsets")
    once = profile.once
    sizes = profile.sizes
    full = (1 << n) - 1

    best_ratio = np.inf
    best_set = 0
    for s_mask in range(1, 1 << n):
        size = int(sizes[s_mask])
        if size > limit:
            continue
        outside = full & ~s_mask
        # Walk all submasks of s_mask (including s_mask itself and 0; the
        # empty S' contributes 0 and never helps).
        sub = s_mask
        best_cover = 0
        while True:
            covered_once = int(once[sub]) & outside
            count = covered_once.bit_count()
            if count > best_cover:
                best_cover = count
            if sub == 0:
                break
            sub = (sub - 1) & s_mask
        ratio = best_cover / size
        if ratio < best_ratio:
            best_ratio = ratio
            best_set = s_mask
    witness = np.flatnonzero(
        (np.uint64(best_set) >> np.arange(n, dtype=np.uint64)) & np.uint64(1)
    )
    return float(best_ratio), witness
