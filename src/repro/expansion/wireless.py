"""Wireless expansion — the paper's new quantity, computed exactly.

``G`` is an ``(αw, βw)``-wireless expander if every ``S`` with
``|S| ≤ αw·n`` contains some ``S' ⊆ S`` with ``|Γ¹_S(S')| ≥ βw·|S|``.  Thus

``βw(G) = min_S  max_{S' ⊆ S}  |Γ¹_S(S')| / |S|``

— a min-max over a doubly-exponential family.  This module computes it
exactly where feasible:

* per-set: ``max_{S'}`` by the all-subsets bipartite profile (``|S| ≤ ~22``);
* graph-level: the full min-max by combining the subset-lattice profile with
  sub-subset enumeration (``n ≤ ~14``; the 3^n pairs are walked with the
  standard submask trick).

Algorithmic *lower bounds* for large instances come from the spokesman
algorithms (:mod:`repro.spokesman`), which are guaranteed approximations by
the paper's positive results.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_fraction
from repro.expansion.subsets import bipartite_subset_profile, graph_subset_profile
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph

__all__ = [
    "max_unique_coverage_exact",
    "wireless_expansion_exact",
    "wireless_expansion_of_set_exact",
    "wireless_expansion_sampled",
]


def max_unique_coverage_exact(
    gs: BipartiteGraph,
) -> tuple[int, np.ndarray]:
    """Exact ``max_{S' ⊆ S} |Γ¹_S(S')|`` on a bipartite ``G_S``, with witness.

    This is the (NP-hard in general) *spokesman election* optimum of
    Section 4.2.1, solved by brute enumeration — the yardstick the
    polynomial-time algorithms are measured against.
    """
    profile = bipartite_subset_profile(gs)
    best = int(np.argmax(profile.unique_counts))
    witness = np.flatnonzero(
        (np.uint32(best) >> np.arange(gs.n_left, dtype=np.uint32)) & np.uint32(1)
    )
    return int(profile.unique_counts[best]), witness


def wireless_expansion_of_set_exact(
    graph: Graph, subset
) -> tuple[float, np.ndarray]:
    """Exact wireless expansion ``max_{S' ⊆ S} |Γ¹_S(S')| / |S|`` of one set.

    Returns the ratio and the optimal ``S'`` (as original vertex ids).
    """
    mask = graph._as_mask(subset)
    size = int(mask.sum())
    if size == 0:
        raise ValueError("wireless expansion of the empty set is undefined")
    gs, left_vertices, _ = graph.boundary_bipartite(mask)
    best, witness_local = max_unique_coverage_exact(gs)
    return best / size, left_vertices[witness_local]


def wireless_expansion_sampled(
    graph: Graph,
    alpha: float = 0.5,
    samples: int = 100,
    rng=None,
    include_balls: bool = True,
    max_set_bits: int = 20,
) -> tuple[float, np.ndarray]:
    """Adversarial *upper bound* on ``βw(G)`` by candidate-set search.

    For each candidate ``S`` (random subsets of every admissible size, plus
    BFS balls — the canonical low-expansion sets) the *exact* per-set
    wireless expansion is computed, and the minimum over candidates is
    returned; since ``βw(G)`` is the minimum over **all** sets, every
    candidate's value upper-bounds it.  Candidates wider than
    ``max_set_bits`` are skipped (their exact value is unavailable and a
    lower bound would not be a valid upper bound for ``βw``).
    """
    from repro._util import as_rng
    from repro._util.validation import check_fraction

    check_fraction(alpha, "alpha")
    gen = as_rng(rng)
    limit = int(np.floor(alpha * graph.n))
    if limit < 1:
        raise ValueError(f"alpha={alpha} admits no non-empty subsets")
    size_cap = min(limit, max_set_bits)

    best = np.inf
    best_set = np.array([0], dtype=np.int64)

    def consider(indices: np.ndarray) -> None:
        nonlocal best, best_set
        if not 1 <= indices.size <= size_cap:
            return
        value, _ = wireless_expansion_of_set_exact(graph, indices)
        if value < best:
            best = value
            best_set = indices

    for _ in range(samples):
        size = int(gen.integers(1, size_cap + 1))
        consider(gen.choice(graph.n, size=size, replace=False))
    if include_balls:
        for v in range(graph.n):
            dist = graph.bfs_layers(v)
            reach = dist[dist >= 0]
            for radius in range(int(reach.max()) + 1):
                ball = np.flatnonzero((dist >= 0) & (dist <= radius))
                if ball.size > size_cap:
                    break
                consider(ball)
    return float(best), best_set


def wireless_expansion_exact(
    graph: Graph, alpha: float = 0.5, max_bits: int = 14
) -> tuple[float, np.ndarray]:
    """Exact ``βw(G)`` (min over ``S``, max over ``S' ⊆ S``) with the
    minimizing ``S`` as witness.

    Cost is ``Θ(3^n)`` submask pairs; keep ``n ≤ max_bits`` (default 14).
    """
    check_fraction(alpha, "alpha")
    n = graph.n
    if n > max_bits:
        raise ValueError(
            f"exact wireless expansion supports n <= {max_bits}, got {n}"
        )
    profile = graph_subset_profile(graph, max_bits=max_bits)
    limit = int(np.floor(alpha * n))
    if limit < 1:
        raise ValueError(f"alpha={alpha} admits no non-empty subsets")
    once = profile.once
    sizes = profile.sizes
    full = (1 << n) - 1

    best_ratio = np.inf
    best_set = 0
    for s_mask in range(1, 1 << n):
        size = int(sizes[s_mask])
        if size > limit:
            continue
        outside = full & ~s_mask
        # Walk all submasks of s_mask (including s_mask itself and 0; the
        # empty S' contributes 0 and never helps).
        sub = s_mask
        best_cover = 0
        while True:
            covered_once = int(once[sub]) & outside
            count = covered_once.bit_count()
            if count > best_cover:
                best_cover = count
            if sub == 0:
                break
            sub = (sub - 1) & s_mask
        ratio = best_cover / size
        if ratio < best_ratio:
            best_ratio = ratio
            best_set = s_mask
    witness = np.flatnonzero(
        (np.uint64(best_set) >> np.arange(n, dtype=np.uint64)) & np.uint64(1)
    )
    return float(best_ratio), witness
