"""Common result type and evaluation helper for spokesman algorithms.

The *spokesman election* problem (Chlamtac–Weinstein, Section 4.2.1): given
a bipartite graph ``G_S = (S, N, E)``, compute ``S' ⊆ S`` maximizing the
unique neighbourhood ``|Γ¹_S(S')|``.  It is NP-hard; the paper's positive
results are polynomial-time approximations with guarantees in terms of
``γ = |N|`` and the degree structure.

Every algorithm in this package returns a :class:`SpokesmanResult`, whose
``unique_count`` is always re-measured from scratch on the input graph (so a
buggy algorithm can at worst under-perform, never over-report).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.bipartite import BipartiteGraph

__all__ = ["SpokesmanResult", "evaluate_subset", "nonisolated_right_count"]


@dataclass(frozen=True)
class SpokesmanResult:
    """Outcome of one spokesman-election algorithm on one bipartite graph.

    Attributes
    ----------
    subset:
        The chosen ``S'`` as sorted left-vertex ids.
    unique_count:
        ``|Γ¹_S(S')|``, measured on the input graph.
    n_left, n_right:
        Sizes of the input sides (for computing fractions).
    algorithm:
        Human-readable name of the algorithm that produced this result.
    """

    subset: np.ndarray
    unique_count: int
    n_left: int
    n_right: int
    algorithm: str

    @property
    def unique_fraction(self) -> float:
        """``|Γ¹_S(S')| / |N|`` — the fraction-of-γ yardstick used by all of
        the paper's guarantees."""
        if self.n_right == 0:
            return 0.0
        return self.unique_count / self.n_right

    @property
    def wireless_ratio(self) -> float:
        """``|Γ¹_S(S')| / |S|`` — the wireless-expansion contribution."""
        if self.n_left == 0:
            return 0.0
        return self.unique_count / self.n_left

    def __repr__(self) -> str:
        return (
            f"SpokesmanResult({self.algorithm!r}, unique={self.unique_count}"
            f"/{self.n_right}, |S'|={self.subset.size}/{self.n_left})"
        )


def evaluate_subset(
    gs: BipartiteGraph, subset, algorithm: str
) -> SpokesmanResult:
    """Package a candidate ``S'`` into a result, re-measuring its payoff."""
    subset = np.asarray(subset, dtype=np.int64)
    subset = np.unique(subset)
    count = gs.unique_cover_count(subset) if subset.size else 0
    return SpokesmanResult(
        subset=subset,
        unique_count=count,
        n_left=gs.n_left,
        n_right=gs.n_right,
        algorithm=algorithm,
    )


def nonisolated_right_count(gs: BipartiteGraph) -> int:
    """Number of right vertices with degree ≥ 1 — the effective ``γ`` for
    the paper's guarantees (which assume no isolated vertices)."""
    return int((gs.right_degrees >= 1).sum())
