"""Threshold-parameterized Partition (Corollary A.8 / Lemma A.11).

Lemma A.3 runs Procedure Partition on the right vertices of degree
``≤ 2δ``.  Appendix A.2 generalizes the threshold: for any ``t > 1`` run on
``N^{tδ} = {v : deg(v) ≤ t·δ}`` (which holds ``≥ (1 − 1/t)·γ`` vertices by
Markov).  Under Lemma A.11's density condition the payoff becomes
``(1 − 1/t)·γ / (2(1+c))`` for the matching ``c``; unconditionally the
Lemma A.3-style edge accounting gives ``|N_uni| ≥ |N^{tδ}| / (2·t·δ)``
(the ``t = 2`` case is exactly ``γ/(8δ)``) — a trade-off between the
population kept (large ``t``) and per-vertex degree slack (small ``t``).

:func:`spokesman_threshold_partition` runs one threshold;
:func:`spokesman_threshold_sweep` tries a geometric ladder of thresholds
and keeps the best (still polynomial, dominates Lemma A.3's fixed choice).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.spokesman.base import SpokesmanResult, evaluate_subset
from repro.spokesman.partition import procedure_partition

__all__ = [
    "spokesman_threshold_partition",
    "spokesman_threshold_sweep",
    "threshold_population",
]


def threshold_population(gs: BipartiteGraph, t: float) -> np.ndarray:
    """Bool mask of ``N^{tδ}``: non-isolated right vertices with degree at
    most ``t·δ`` (``δ`` = average degree of non-isolated right vertices).

    By Markov's inequality this keeps at least a ``(1 − 1/t)`` fraction.
    """
    if t <= 1:
        raise ValueError(f"threshold t must exceed 1, got {t}")
    deg = gs.right_degrees
    nonisolated = deg >= 1
    if not nonisolated.any():
        return np.zeros(gs.n_right, dtype=bool)
    delta = float(deg[nonisolated].mean())
    return nonisolated & (deg <= t * delta)


def spokesman_threshold_partition(
    gs: BipartiteGraph, t: float = 2.0
) -> SpokesmanResult:
    """Procedure Partition on ``N^{tδ}`` (Lemma A.3 is the ``t = 2`` case).

    Guarantee: with ``m = |N^{tδ}| ≥ (1 − 1/t)·γ``, the partition
    accounting yields ``unique_count ≥ m / (2·t·δ)``.
    """
    population = threshold_population(gs, t)
    if not population.any():
        return evaluate_subset(gs, [], f"partition[t={t:g}]")
    state = procedure_partition(gs, population)
    return evaluate_subset(
        gs, np.flatnonzero(state.s_uni), f"partition[t={t:g}]"
    )


def spokesman_threshold_sweep(
    gs: BipartiteGraph, thresholds: tuple[float, ...] = (1.5, 2.0, 3.0, 4.0, 8.0)
) -> SpokesmanResult:
    """Best threshold from a geometric ladder — dominates any fixed ``t``."""
    best: SpokesmanResult | None = None
    for t in thresholds:
        cand = spokesman_threshold_partition(gs, t)
        if best is None or cand.unique_count > best.unique_count:
            best = cand
    assert best is not None
    return best
