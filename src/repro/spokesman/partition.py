"""Procedure Partition (Appendix A.1.2) and the Lemma A.3 algorithm.

Procedure Partition splits ``N`` into ``(N_uni, N_many, N_tmp)`` and ``S``
into ``(S_uni, S_tmp)`` subject to the partition conditions:

* (P1) every ``N_uni`` vertex has a unique neighbour in ``S_uni``;
* (P2) every ``N_tmp`` vertex has ≥ 1 neighbour in ``S_tmp`` and none in
  ``S_uni``;
* (P3) ``|N_uni| ≥ |N_many|``;
* (P4) at termination, ``N_tmp = ∅`` or ``|E_tmp| ≤ 2·|E_uni|`` where
  ``E_uni``/``E_tmp`` are the edges from ``S_tmp`` to ``N_uni``/``N_tmp``.

The greedy rule: repeatedly move the ``S_tmp`` vertex maximizing
``gain(v) = |N_tmp(v)| − 2·|N_uni(v)|`` into ``S_uni`` (its ``N_uni``
neighbours fall to ``N_many``, its ``N_tmp`` neighbours rise to ``N_uni``),
stopping when every gain is ``≤ 0``.

Lemma A.3 then runs the procedure on the sub-population ``N^{2δ}`` of right
vertices with degree ``≤ 2δ`` (at least half of ``N``) and extracts
``S' = S_uni`` with ``|Γ¹_S(S')| ≥ γ/(8δ)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.spokesman.base import SpokesmanResult, evaluate_subset

__all__ = [
    "PartitionState",
    "procedure_partition",
    "spokesman_partition",
]

#: Right-vertex labels used by :class:`PartitionState`.
TMP, UNI, MANY, EXCLUDED = 0, 1, 2, 3


@dataclass(frozen=True)
class PartitionState:
    """Result of one Procedure Partition run.

    ``labels[v]`` is one of ``TMP/UNI/MANY`` for right vertices the run
    managed, or ``EXCLUDED`` for vertices outside the requested
    sub-population (isolated vertices are always excluded).
    """

    s_uni: np.ndarray  # bool mask over left vertices
    s_tmp: np.ndarray  # bool mask over left vertices
    labels: np.ndarray  # int labels over right vertices
    steps: int

    @property
    def n_uni(self) -> np.ndarray:
        """Right ids labelled ``N_uni``."""
        return np.flatnonzero(self.labels == UNI)

    @property
    def n_many(self) -> np.ndarray:
        """Right ids labelled ``N_many``."""
        return np.flatnonzero(self.labels == MANY)

    @property
    def n_tmp(self) -> np.ndarray:
        """Right ids labelled ``N_tmp``."""
        return np.flatnonzero(self.labels == TMP)

    def check_invariants(self, gs: BipartiteGraph) -> list[str]:
        """Return human-readable violations of (P1)–(P4); empty if clean."""
        problems: list[str] = []
        s_uni_idx = np.flatnonzero(self.s_uni)
        uni_counts = gs.cover_counts(s_uni_idx)
        tmp_counts = gs.cover_counts(np.flatnonzero(self.s_tmp))
        for v in self.n_uni:
            if uni_counts[v] != 1:
                problems.append(f"(P1) N_uni vertex {v} has {uni_counts[v]} "
                                "S_uni neighbours")
        for v in self.n_tmp:
            if tmp_counts[v] < 1:
                problems.append(f"(P2) N_tmp vertex {v} has no S_tmp neighbour")
            if uni_counts[v] != 0:
                problems.append(f"(P2) N_tmp vertex {v} touches S_uni")
        if self.n_uni.size < self.n_many.size:
            problems.append(
                f"(P3) |N_uni|={self.n_uni.size} < |N_many|={self.n_many.size}"
            )
        if self.n_tmp.size:
            e_uni = int(gs.left_cover_counts(self.n_uni)[self.s_tmp].sum())
            e_tmp = int(gs.left_cover_counts(self.n_tmp)[self.s_tmp].sum())
            if e_tmp > 2 * e_uni:
                problems.append(f"(P4) |E_tmp|={e_tmp} > 2|E_uni|={2 * e_uni}")
        if (self.s_uni & self.s_tmp).any():
            problems.append("(I) S_uni and S_tmp overlap")
        return problems


def procedure_partition(
    gs: BipartiteGraph, right_subset=None
) -> PartitionState:
    """Run Procedure Partition on ``gs`` (optionally on a right sub-population).

    Parameters
    ----------
    right_subset:
        Bool mask or index list selecting the right vertices to manage
        (default: all non-isolated).  Vertices outside it are ``EXCLUDED``
        and never influence gains.
    """
    if right_subset is None:
        managed = gs.right_degrees >= 1
    else:
        managed = gs._as_right_mask(np.asarray(right_subset))
        managed = managed & (gs.right_degrees >= 1)

    labels = np.full(gs.n_right, EXCLUDED, dtype=np.int8)
    labels[managed] = TMP
    in_stmp = np.ones(gs.n_left, dtype=bool)
    in_suni = np.zeros(gs.n_left, dtype=bool)

    # Per-left-vertex counts of TMP / UNI neighbours, updated incrementally.
    tmp_count = gs.left_cover_counts(managed).astype(np.int64)
    uni_count = np.zeros(gs.n_left, dtype=np.int64)

    steps = 0
    while in_stmp.any():
        gains = tmp_count - 2 * uni_count
        gains[~in_stmp] = np.iinfo(np.int64).min
        v = int(np.argmax(gains))
        if gains[v] <= 0:
            break
        steps += 1
        in_stmp[v] = False
        in_suni[v] = True
        for r in gs.neighbors_of_left(v):
            r = int(r)
            if labels[r] == UNI:
                labels[r] = MANY
                uni_count[gs.neighbors_of_right(r)] -= 1
            elif labels[r] == TMP:
                labels[r] = UNI
                tmp_count[gs.neighbors_of_right(r)] -= 1
                uni_count[gs.neighbors_of_right(r)] += 1

    return PartitionState(
        s_uni=in_suni, s_tmp=in_stmp, labels=labels, steps=steps
    )


def spokesman_partition(gs: BipartiteGraph) -> SpokesmanResult:
    """Lemma A.3's algorithm: Procedure Partition on ``N^{2δ}``.

    Guarantee: ``unique_count ≥ γ/(8δ)`` where ``δ`` is the average degree
    of the non-isolated right vertices and ``γ`` their number.
    """
    deg = gs.right_degrees
    nonisolated = deg >= 1
    if not nonisolated.any():
        return evaluate_subset(gs, [], "partition")
    delta = float(deg[nonisolated].mean())
    state = procedure_partition(gs, nonisolated & (deg <= 2 * delta))
    return evaluate_subset(gs, np.flatnonzero(state.s_uni), "partition")
