"""Spokesman election algorithms (Section 4.2 and Appendix A).

Given a bipartite ``G_S = (S, N, E)``, find ``S' ⊆ S`` maximizing
``|Γ¹_S(S')|``.  Exact solver, the paper's randomized sampler, four
deterministic procedures with proven guarantees, a local-search baseline,
and the Corollary A.16 portfolio.
"""

from repro.spokesman.base import (
    SpokesmanResult,
    evaluate_subset,
    nonisolated_right_count,
)
from repro.spokesman.degree_classes import (
    degree_class_members,
    spokesman_degree_classes,
)
from repro.spokesman.exact import spokesman_exact
from repro.spokesman.greedy_add import spokesman_greedy_add
from repro.spokesman.naive_greedy import naive_greedy_trace, spokesman_naive_greedy
from repro.spokesman.partition import (
    PartitionState,
    procedure_partition,
    spokesman_partition,
)
from repro.spokesman.portfolio import (
    DETERMINISTIC_ALGORITHMS,
    RANDOMIZED_ALGORITHMS,
    spokesman_portfolio,
    wireless_lower_bound_of_set,
    wireless_lower_bounds_of_sets,
)
from repro.spokesman.recursive import spokesman_recursive
from repro.spokesman.sampling import (
    largest_degree_class,
    lemma43_reduction,
    spokesman_sampling,
    spokesman_sampling_all_scales,
)
from repro.spokesman.threshold_partition import (
    spokesman_threshold_partition,
    spokesman_threshold_sweep,
    threshold_population,
)

__all__ = [
    "DETERMINISTIC_ALGORITHMS",
    "PartitionState",
    "RANDOMIZED_ALGORITHMS",
    "SpokesmanResult",
    "degree_class_members",
    "evaluate_subset",
    "largest_degree_class",
    "lemma43_reduction",
    "naive_greedy_trace",
    "nonisolated_right_count",
    "procedure_partition",
    "spokesman_degree_classes",
    "spokesman_exact",
    "spokesman_greedy_add",
    "spokesman_naive_greedy",
    "spokesman_partition",
    "spokesman_portfolio",
    "spokesman_recursive",
    "spokesman_sampling",
    "spokesman_sampling_all_scales",
    "spokesman_threshold_partition",
    "spokesman_threshold_sweep",
    "threshold_population",
    "wireless_lower_bound_of_set",
    "wireless_lower_bounds_of_sets",
]
