"""Local-search baseline: greedy add/remove hill climbing.

Not from the paper — this is the strong practical baseline the experiments
measure the guaranteed algorithms against (Section 4.2.1 compares guarantees
against Chlamtac–Weinstein's ``|N|/log|S|`` *bound*; a modern reproduction
also wants a strong heuristic's *achieved* value).

The marginal payoff of toggling one left vertex is computable for all
vertices at once from the current cover counts: adding ``u`` gains its
neighbours with count 0 and loses those with count 1; removing ``u ∈ S'``
gains its neighbours with count 2 and loses those with count 1.  Each pass
is two sparse mat-vecs.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.spokesman.base import SpokesmanResult, evaluate_subset

__all__ = ["spokesman_greedy_add"]


def spokesman_greedy_add(
    gs: BipartiteGraph, max_passes: int = 10_000
) -> SpokesmanResult:
    """Best-improvement hill climbing over single add/remove moves.

    Deterministic (starts from ``S' = ∅``; ties broken by vertex id).
    Terminates when no single move improves ``|Γ¹_S(S')|`` or after
    ``max_passes`` moves — each move strictly improves the payoff, which is
    bounded by ``|N|``, so it always terminates on its own for sane inputs.
    """
    member = np.zeros(gs.n_left, dtype=bool)
    counts = np.zeros(gs.n_right, dtype=np.int32)
    left = gs.left_matrix

    for _ in range(max_passes):
        zero = (counts == 0).astype(np.int32)
        one = (counts == 1).astype(np.int32)
        two = (counts == 2).astype(np.int32)
        gain_add = left @ zero - left @ one
        gain_remove = left @ two - left @ one
        gain = np.where(member, gain_remove, gain_add)
        best = int(np.argmax(gain))
        if gain[best] <= 0:
            break
        if member[best]:
            member[best] = False
            counts[gs.neighbors_of_left(best)] -= 1
        else:
            member[best] = True
            counts[gs.neighbors_of_left(best)] += 1

    return evaluate_subset(gs, np.flatnonzero(member), "greedy-add")
