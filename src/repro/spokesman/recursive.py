"""The recursive near-optimal algorithm of Lemma A.13 / Corollary A.15.

Guarantee ``|Γ¹_S(S')| ≥ γ / (9·log₂(2δ))`` — within a constant of the
paper's matching negative result (the core graph caps the fraction at
``2/log 2s``).

The recursion mirrors the proof: run Procedure Partition; if ``N_tmp``
emptied, ``S_uni`` uniquely covers ≥ half of ``N``; otherwise compare the
*potential* ``γ/log₂(2δ)`` of the residual instance ``(S_tmp, N_tmp)``
against the original — if the residual's potential is at least as large,
recurse into it (the proof's induction), else ``S_uni`` already meets the
bound.  A strictly-decreasing ``γ`` guarantees termination.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.spokesman.base import SpokesmanResult, evaluate_subset
from repro.spokesman.partition import procedure_partition

__all__ = ["spokesman_recursive"]


def _potential(gamma: int, delta: float) -> float:
    """``γ / log₂(2δ)`` — the quantity the induction compares."""
    if gamma == 0:
        return 0.0
    return gamma / math.log2(2 * max(delta, 1.0))


def _recurse(gs: BipartiteGraph, depth: int) -> np.ndarray:
    """Return a subset of ``gs``'s left side; ids are local to ``gs``."""
    nonisolated = gs.right_degrees >= 1
    gamma = int(nonisolated.sum())
    if gamma == 0:
        return np.array([], dtype=np.int64)
    # Small instances: a single covering vertex already meets the bound
    # (the proof's base case γ <= 9).
    if gamma <= 9:
        u = int(np.argmax(gs.left_degrees))
        return np.array([u], dtype=np.int64)

    delta = float(gs.right_degrees[nonisolated].mean())
    state = procedure_partition(gs, nonisolated)
    n_tmp = state.n_tmp
    if n_tmp.size == 0 or depth > gs.n_left + gs.n_right:
        return np.flatnonzero(state.s_uni)

    e_tmp = int(gs.left_cover_counts(n_tmp)[state.s_tmp].sum())
    delta_tmp = e_tmp / n_tmp.size
    if _potential(n_tmp.size, delta_tmp) >= _potential(gamma, delta) and (
        n_tmp.size < gamma
    ):
        sub = gs.subgraph(state.s_tmp, n_tmp)
        local = _recurse(sub, depth + 1)
        stmp_ids = np.flatnonzero(state.s_tmp)
        return stmp_ids[local]
    return np.flatnonzero(state.s_uni)


def spokesman_recursive(gs: BipartiteGraph) -> SpokesmanResult:
    """Lemma A.13's algorithm.  Deterministic; guarantee
    ``unique_count ≥ γ/(9·log₂(2δ))`` with ``γ, δ`` over non-isolated right
    vertices (Corollary A.15 sharpens the same run to
    ``min{γ/(9·log₂δ), γ/20}``)."""
    subset = _recurse(gs, depth=0)
    return evaluate_subset(gs, subset, "recursive")
