"""Portfolio spokesman solver — Corollary A.16's "run everything" bound.

Running every algorithm and keeping the best inherits the *maximum* of the
individual guarantees, which is exactly the paper's ``γ·MG(δ)`` bound
(Corollary A.16 / Observation A.17): the portfolio payoff is at least

``γ · max{ min{1/(9log δ), 1/20}, 1/(9log 2δ), (1−1/t)·0.20087/log(tδ) }``.

The portfolio is also how large-graph wireless expansion is *lower-bounded*
throughout the experiments (any algorithm's payoff on ``G_S`` certifies
``βw(S) ≥ payoff/|S|``).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.graph import Graph
from repro.spokesman.base import SpokesmanResult
from repro.spokesman.degree_classes import spokesman_degree_classes
from repro.spokesman.greedy_add import spokesman_greedy_add
from repro.spokesman.naive_greedy import spokesman_naive_greedy
from repro.spokesman.partition import spokesman_partition
from repro.spokesman.recursive import spokesman_recursive
from repro.spokesman.sampling import spokesman_sampling, spokesman_sampling_all_scales
from repro.spokesman.threshold_partition import spokesman_threshold_sweep

__all__ = [
    "DETERMINISTIC_ALGORITHMS",
    "RANDOMIZED_ALGORITHMS",
    "spokesman_portfolio",
    "wireless_lower_bound_of_set",
    "wireless_lower_bounds_of_sets",
]

#: Name → callable(gs) for the deterministic algorithms.
DETERMINISTIC_ALGORITHMS = {
    "naive-greedy": spokesman_naive_greedy,
    "partition": spokesman_partition,
    "threshold-sweep": spokesman_threshold_sweep,
    "degree-classes": spokesman_degree_classes,
    "recursive": spokesman_recursive,
    "greedy-add": spokesman_greedy_add,
}

#: Name → callable(gs, rng) for the randomized algorithms.
RANDOMIZED_ALGORITHMS = {
    "sampling": spokesman_sampling,
    "sampling-all-scales": spokesman_sampling_all_scales,
}


def spokesman_portfolio(
    gs: BipartiteGraph,
    rng=None,
    include: list[str] | None = None,
) -> tuple[SpokesmanResult, dict[str, SpokesmanResult]]:
    """Run the selected algorithms (default: all) and return
    ``(best, per_algorithm_results)``.

    Guarantee: ``best.unique_count ≥ γ·MG(δ)`` (Corollary A.16) whenever the
    portfolio includes the partition-family algorithms.
    """
    results: dict[str, SpokesmanResult] = {}
    for name, fn in DETERMINISTIC_ALGORITHMS.items():
        if include is None or name in include:
            results[name] = fn(gs)
    for name, fn in RANDOMIZED_ALGORITHMS.items():
        if include is None or name in include:
            results[name] = fn(gs, rng)
    if not results:
        raise ValueError(f"no known algorithm selected from {include!r}")
    best = max(results.values(), key=lambda r: r.unique_count)
    return best, results


def wireless_lower_bound_of_set(
    graph: Graph, subset, rng=None, include: list[str] | None = None
) -> tuple[float, SpokesmanResult]:
    """Certified lower bound on the wireless expansion of one set ``S``.

    Extracts the boundary bipartite graph ``G_S`` (Section 4.1), runs the
    portfolio, and returns ``(payoff/|S|, best_result)`` with the witness
    ``S'`` translated back to original vertex ids.
    """
    mask = graph._as_mask(subset)
    size = int(mask.sum())
    if size == 0:
        raise ValueError("wireless expansion of the empty set is undefined")
    gs, left_vertices, _ = graph.boundary_bipartite(mask)
    best, _results = spokesman_portfolio(gs, rng=rng, include=include)
    translated = SpokesmanResult(
        subset=left_vertices[best.subset],
        unique_count=best.unique_count,
        n_left=best.n_left,
        n_right=best.n_right,
        algorithm=best.algorithm,
    )
    return best.unique_count / size, translated


def wireless_lower_bounds_of_sets(
    graph: Graph,
    subsets,
    seeds=None,
    size_cap: int | None = None,
    include: list[str] | None = None,
) -> np.ndarray:
    """Certified per-set lower bounds for a batch of candidate sets.

    The batched-pipeline arm of :func:`wireless_lower_bound_of_set`:
    module-level and plain-data so candidate shards can ride into
    :class:`~repro.runtime.executor.ParallelExecutor` workers.  ``seeds``
    supplies one pre-derived seed per candidate (so sharding can never
    perturb the randomized algorithms' streams); candidates outside
    ``1..size_cap`` score ``inf`` (skipped), matching the exact
    evaluator's skip rule.
    """
    values = np.full(len(subsets), np.inf)
    for i, subset in enumerate(subsets):
        subset = np.asarray(subset, dtype=np.int64)
        if subset.size < 1 or (size_cap is not None and subset.size > size_cap):
            continue
        seed = None if seeds is None else seeds[i]
        value, _ = wireless_lower_bound_of_set(
            graph, subset, rng=seed, include=include
        )
        values[i] = value
    return values
