"""The naive deterministic procedure of Lemma A.1 (guarantee ``γ/Δ``).

The procedure grows ``S_uni`` and ``N_uni`` while shrinking ``S_tmp`` and
``N_tmp``, maintaining invariants (I1)–(I4).  Each step:

1. pick ``v ∈ N_tmp`` with the fewest remaining ``S_tmp``-neighbours;
2. move one arbitrary ``w ∈ Γ(v, S_tmp)`` into ``S_uni`` and delete the
   rest of ``Γ(v, S_tmp)`` from ``S_tmp`` (they can never join ``S_uni``);
3. the class ``Q'_v`` of ``N_tmp`` vertices whose ``S_tmp``-neighbourhood
   equals ``Γ(v, S_tmp)`` is now uniquely covered by ``w`` forever — move it
   to ``N_uni``; the *other* ``N_tmp``-neighbours of ``w`` (``Q''_v ∩ Γ(w)``)
   are discarded to protect the invariants.

At least one of every ``Δ`` vertices removed from ``N_tmp`` lands in
``N_uni``, giving ``|N_uni| ≥ γ/Δ`` — in fact ``γ/Δ_S``: only the left-side
maximum degree matters, as the paper remarks after the lemma.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.spokesman.base import SpokesmanResult, evaluate_subset

__all__ = ["naive_greedy_trace", "spokesman_naive_greedy"]


def naive_greedy_trace(
    gs: BipartiteGraph,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Run the Lemma A.1 procedure, returning ``(S_uni, N_uni, steps)``.

    ``N_uni`` is the set the procedure *certifies* as uniquely covered; the
    true payoff ``|Γ¹_S(S_uni)|`` can only be larger.
    """
    in_stmp = np.ones(gs.n_left, dtype=bool)
    in_ntmp = gs.right_degrees >= 1
    deg_tmp = gs.right_degrees.copy()  # |Γ(v, S_tmp)| for every right v
    s_uni: list[int] = []
    n_uni: list[int] = []
    steps = 0

    while in_ntmp.any():
        steps += 1
        candidates = np.flatnonzero(in_ntmp)
        v = int(candidates[np.argmin(deg_tmp[candidates])])
        if deg_tmp[v] < 1:
            raise AssertionError(
                "invariant (I4) violated: N_tmp vertex with no S_tmp neighbour"
            )
        nbrs_v = gs.neighbors_of_right(v)
        gamma_v = nbrs_v[in_stmp[nbrs_v]]
        gamma_v_set = frozenset(int(u) for u in gamma_v)
        w = int(gamma_v[0])
        s_uni.append(w)

        # Every N_tmp neighbour of w leaves N_tmp: Q'_v (identical S_tmp
        # neighbourhood, hence uniquely covered by w from now on) joins
        # N_uni, the rest (Q''_v ∩ Γ(w)) is discarded.
        for r in gs.neighbors_of_left(w):
            r = int(r)
            if not in_ntmp[r]:
                continue
            nbrs_r = gs.neighbors_of_right(r)
            stmp_nbrs = frozenset(int(u) for u in nbrs_r[in_stmp[nbrs_r]])
            in_ntmp[r] = False
            if stmp_nbrs == gamma_v_set:
                n_uni.append(r)

        # Remove all of Γ(v, S_tmp) from S_tmp (w included — it moved to
        # S_uni) and refresh the S_tmp-degrees of affected right vertices.
        for u in gamma_v:
            u = int(u)
            in_stmp[u] = False
            deg_tmp[gs.neighbors_of_left(u)] -= 1

    return (
        np.array(s_uni, dtype=np.int64),
        np.array(sorted(n_uni), dtype=np.int64),
        steps,
    )


def spokesman_naive_greedy(gs: BipartiteGraph) -> SpokesmanResult:
    """Lemma A.1's spokesman algorithm; deterministic, guarantee
    ``unique_count ≥ γ/Δ_S`` (``γ`` = non-isolated right vertices)."""
    s_uni, _n_uni, _steps = naive_greedy_trace(gs)
    return evaluate_subset(gs, s_uni, "naive-greedy")
