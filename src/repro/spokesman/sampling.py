"""The randomized decay-style spokesman algorithm (Lemmas 4.2 and 4.3).

**Lemma 4.2** (``β = |N|/|S| ≥ 1``): restrict to right vertices of degree
``≤ 2δ_N`` (at least half of ``N``), bucket them into degree classes
``[2^i, 2^{i+1})``, take the largest class ``N_j``, and sample each left
vertex independently with probability ``2^{-j}``.  A class vertex is then
uniquely covered with probability ``d·p·(1−p)^{d−1} ≥ e^{-3}``, so the
expected payoff is ``Ω(|N_j|) = Ω(γ / log 2δ_N)``.

**Lemma 4.3** (``1/Δ ≤ β < 1``): first shrink to ``S' = {u : deg(u) ≤ 2δ_S}``
(at least half of ``S``), then greedily re-cover: scan ``S'`` and keep a
vertex only if it covers a yet-uncovered right vertex, producing ``S''``
with ``|S''| ≤ |N'|``.  The induced graph has expansion ``≥ 1`` and average
right degree ``≤ 2δ_S``, so the Lemma 4.2 machinery applies.

The public entry point :func:`spokesman_sampling` dispatches on ``β`` and
repeats the random draw a few times keeping the best (the guarantee is in
expectation; repetitions make it concentrate).  This is the "extremely
simple" algorithm the paper advertises as the improved solution to the
spokesman election problem.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.graphs.bipartite import BipartiteGraph
from repro.spokesman.base import SpokesmanResult, evaluate_subset

__all__ = [
    "largest_degree_class",
    "lemma43_reduction",
    "spokesman_sampling",
    "spokesman_sampling_all_scales",
]


def largest_degree_class(gs: BipartiteGraph) -> tuple[int, np.ndarray]:
    """Lemma 4.2's class selection.

    Among right vertices with ``1 ≤ deg ≤ 2δ_N``, bucket by
    ``deg ∈ [2^i, 2^{i+1})`` and return ``(j, members)`` for the largest
    bucket ``N_j``.
    """
    deg = gs.right_degrees
    if gs.n_right == 0 or not (deg >= 1).any():
        raise ValueError("graph has no coverable right vertices")
    delta_n = deg[deg >= 1].mean()
    eligible = (deg >= 1) & (deg <= 2 * delta_n)
    classes = np.floor(np.log2(deg, where=deg >= 1, out=np.zeros_like(deg, dtype=float)))
    best_j, best_members = 0, np.array([], dtype=np.int64)
    for j in range(int(classes[eligible].max()) + 1):
        members = np.flatnonzero(eligible & (classes == j))
        if members.size > best_members.size:
            best_j, best_members = j, members
    return best_j, best_members


def spokesman_sampling_all_scales(
    gs: BipartiteGraph, rng=None, trials_per_scale: int = 8
) -> SpokesmanResult:
    """Practical variant: try every scale ``j = 0..⌈log₂Δ_N⌉`` with several
    draws each, return the best.  Dominates the single-scale guarantee.

    All draws are evaluated in one batched sparse mat-mat
    (:meth:`~repro.graphs.bipartite.BipartiteGraph.unique_cover_counts_batch`).
    """
    gen = as_rng(rng)
    max_deg = gs.max_right_degree
    if max_deg == 0:
        return evaluate_subset(gs, [], "sampling-all-scales")
    top = int(np.ceil(np.log2(max(2, max_deg)))) + 1
    scales = np.repeat(np.arange(top + 2, dtype=np.float64), trials_per_scale)
    draws = gen.random((scales.size, gs.n_left)) < 2.0 ** (-scales)[:, None]
    payoffs = gs.unique_cover_counts_batch(draws)
    best_row = int(np.argmax(payoffs))
    return evaluate_subset(
        gs, np.flatnonzero(draws[best_row]), "sampling-all-scales"
    )


def lemma43_reduction(gs: BipartiteGraph) -> tuple[BipartiteGraph, np.ndarray]:
    """Lemma 4.3's re-covering reduction for the ``β < 1`` regime.

    Returns ``(induced, left_ids)`` where ``induced`` is the bipartite graph
    on ``(S'', N')`` with ``|S''| ≤ |N'|`` (so expansion ``≥ 1``) and
    ``left_ids[i]`` maps its left vertex ``i`` back to the original graph.
    """
    deg = gs.left_degrees
    if gs.n_left == 0 or not (deg >= 1).any():
        raise ValueError("graph has no covering left vertices")
    delta_s = deg[deg >= 1].mean() if (deg >= 1).any() else 0.0
    s_prime = np.flatnonzero((deg >= 1) & (deg <= 2 * delta_s))
    # N' = Γ(S').
    n_prime_mask = gs.covered(s_prime)
    # Greedy re-covering: keep u only if it covers a new vertex of N'.
    covered = np.zeros(gs.n_right, dtype=bool)
    keep: list[int] = []
    for u in s_prime:
        nbrs = gs.neighbors_of_left(int(u))
        fresh = nbrs[n_prime_mask[nbrs] & ~covered[nbrs]]
        if fresh.size:
            keep.append(int(u))
            covered[fresh] = True
    left_ids = np.array(keep, dtype=np.int64)
    induced = gs.subgraph(left_ids, n_prime_mask)
    return induced, left_ids


def spokesman_sampling(
    gs: BipartiteGraph, rng=None, trials: int = 16
) -> SpokesmanResult:
    """The paper's randomized spokesman algorithm (Theorem 1.1's engine).

    Dispatches on ``β = |N|/|S|``: for ``β ≥ 1`` applies Lemma 4.2 directly
    (sample the largest degree class's scale); for ``β < 1`` first applies
    Lemma 4.3's reduction.  ``trials`` independent draws are taken and the
    best kept.  Guarantee: expected payoff ``Ω(γ / log(2·min{δ_N, δ_S}))``.
    """
    gen = as_rng(rng)
    if gs.n_right == 0 or gs.max_right_degree == 0:
        return evaluate_subset(gs, [], "sampling")
    beta = gs.n_right / gs.n_left if gs.n_left else np.inf

    if beta >= 1:
        target, left_ids = gs, None
    else:
        target, left_ids = lemma43_reduction(gs)
        if target.n_right == 0 or target.max_right_degree == 0:
            return evaluate_subset(gs, [], "sampling")

    j, _members = largest_degree_class(target)
    # Draw all trials at once and translate to original left ids, then
    # evaluate the whole batch against the ORIGINAL graph in one mat-mat.
    local_draws = gen.random((trials, target.n_left)) < 2.0 ** (-j)
    if left_ids is None:
        draws = local_draws
    else:
        draws = np.zeros((trials, gs.n_left), dtype=bool)
        draws[:, left_ids] = local_draws
    payoffs = gs.unique_cover_counts_batch(draws)
    best_row = int(np.argmax(payoffs))
    return evaluate_subset(gs, np.flatnonzero(draws[best_row]), "sampling")
