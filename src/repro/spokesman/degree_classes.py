"""Degree-class spokesman algorithm (Lemma A.5, Corollaries A.6/A.7).

Bucket the right vertices into geometric degree classes
``N^{(i)} = {v : deg(v, S) ∈ [c^{i−1}, c^i)}``.  Within one class, degrees
are within a factor ``c`` of each other, so Procedure Partition's edge
accounting tightens to ``|N_uni| ≥ |N^{(i)}| / (2(1+c))``.  Some class holds
a ``1/⌈log_c Δ⌉`` fraction of ``N``, so running the procedure per class and
keeping the best gives

``|Γ¹_S(S')| ≥ γ·log₂c / (2(1+c)·log₂Δ) ≥ 0.20087·γ/log₂Δ``

at the optimal base ``c* ≈ 3.59112``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.expansion.bounds import OPTIMAL_DEGREE_CLASS_BASE
from repro.graphs.bipartite import BipartiteGraph
from repro.spokesman.base import SpokesmanResult, evaluate_subset
from repro.spokesman.partition import procedure_partition

__all__ = ["degree_class_members", "spokesman_degree_classes"]


def degree_class_members(
    gs: BipartiteGraph, c: float
) -> list[tuple[int, np.ndarray]]:
    """Split non-isolated right vertices into classes
    ``deg ∈ [c^{i−1}, c^i)`` (``i ≥ 1``); returns ``(i, members)`` pairs for
    the non-empty classes."""
    if c <= 1:
        raise ValueError(f"class base c must exceed 1, got {c}")
    deg = gs.right_degrees
    nonisolated = deg >= 1
    if not nonisolated.any():
        return []
    # deg = 1 belongs to class i=1 ([c^0, c^1)); generally i = floor(log_c deg) + 1.
    idx = np.zeros(gs.n_right, dtype=np.int64)
    logs = np.log(deg[nonisolated]) / math.log(c)
    idx[nonisolated] = np.floor(logs + 1e-12).astype(np.int64) + 1
    out: list[tuple[int, np.ndarray]] = []
    for i in range(1, int(idx.max()) + 1):
        members = np.flatnonzero(idx == i)
        if members.size:
            out.append((i, members))
    return out


def spokesman_degree_classes(
    gs: BipartiteGraph, c: float | None = None
) -> SpokesmanResult:
    """Run Procedure Partition per degree class, keep the best class.

    Deterministic.  Guarantee: ``unique_count ≥ γ·log₂c/(2(1+c)·log₂Δ_N)``
    for any ``c > 1`` (Corollary A.6); defaults to the optimal ``c*``.
    """
    if c is None:
        c = OPTIMAL_DEGREE_CLASS_BASE
    best: SpokesmanResult | None = None
    for _i, members in degree_class_members(gs, c):
        state = procedure_partition(gs, members)
        cand = evaluate_subset(
            gs, np.flatnonzero(state.s_uni), "degree-classes"
        )
        if best is None or cand.unique_count > best.unique_count:
            best = cand
    if best is None:
        return evaluate_subset(gs, [], "degree-classes")
    return best
