"""Exact spokesman election by enumeration (the NP-hard optimum).

Delegates to the vectorized all-subsets profile; feasible to
``|S| ≈ 22``.  This is the yardstick for experiment E8: on small instances
every polynomial-time algorithm's payoff is compared against the true
optimum, and the paper's guarantees are checked against it too (no
guarantee may exceed the optimum).
"""

from __future__ import annotations

from repro.expansion.wireless import max_unique_coverage_exact
from repro.graphs.bipartite import BipartiteGraph
from repro.spokesman.base import SpokesmanResult, evaluate_subset

__all__ = ["spokesman_exact"]


def spokesman_exact(gs: BipartiteGraph) -> SpokesmanResult:
    """Brute-force optimal ``S'``.  Raises on left sides wider than the
    enumeration cap (22 bits)."""
    _best, witness = max_unique_coverage_exact(gs)
    return evaluate_subset(gs, witness, "exact")
