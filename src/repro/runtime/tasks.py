"""Picklable, cache-friendly task functions for runtime-scheduled sweeps.

``ParallelExecutor`` pickles the task function and its kwargs into worker
processes, and the result store content-addresses both — so sweep
evaluators that want parallelism or caching must be module-level functions
taking plain-data parameters and returning plain-data results.

Since the scenario API landed, the canonical payload is a pickled
:class:`~repro.scenario.Scenario` and the canonical evaluators live in
:mod:`repro.scenario.tasks`.  The two legacy task functions below are
kept as thin compatibility wrappers over that machinery — same function
names, same argument shapes, same result dicts (now produced by
:func:`~repro.scenario.tasks.scenario_summary`, so spec-born and
helper-born runs share one engine path).
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "chain_broadcast_point",
    "broadcast_rounds_point",
    "wireless_expansion_point",
]


def _channel_spec(channel) -> Any:
    """Coerce a legacy channel factory argument to a ChannelSpec."""
    from repro.radio import ChannelSpec

    if channel is None:
        return ChannelSpec()
    if isinstance(channel, ChannelSpec):
        return channel
    raise TypeError(
        "scenario-routed tasks need a repro.radio.ChannelSpec (or None), "
        f"not {type(channel).__name__}; arbitrary factories cannot be "
        "content-addressed"
    )


def wireless_expansion_point(
    graph, expansion="sampled", seed: int = 0
) -> dict[str, Any]:
    """One ``(graph, estimator)`` grid point: a βw estimate as a plain
    dict.

    A thin wrapper over :func:`repro.scenario.tasks.expansion_summary`
    with ``run_sweep``'s calling convention (``seed`` last, all-plain
    parameters), so expansion measurements ride the same sweep/executor/
    cache machinery as the broadcast points above — E17 sweeps graph
    families through exactly this function.
    """
    from repro.scenario.tasks import expansion_summary

    return expansion_summary(graph, expansion=expansion, seed=seed)


def chain_broadcast_point(
    s: int,
    layers: int,
    seed: int,
    trials: int = 1,
    channel=None,
    max_rounds: int | None = None,
) -> dict[str, Any]:
    """One (``s``, ``layers``) grid point: ``trials`` batched Decay
    broadcasts on a fresh Section 5 chain.

    A thin wrapper over ``scenario_summary`` of the equivalent
    ``chain(s, layers) | decay`` scenario — ``seed`` splits into the
    protocol and chain-construction seeds exactly as before, so every
    measured number is bit-for-bit the pre-scenario one (the dict gains
    the ``scenario`` and ``completion_rate`` keys).  Returns a plain-JSON
    dict — executor-, cache-, and sidecar-friendly.
    """
    from repro.scenario import GraphSpec, Scenario, scenario_summary

    return scenario_summary(
        Scenario(
            graph=GraphSpec.make("chain", int(s), int(layers)),
            channel=_channel_spec(channel),
            trials=trials,
            seed=seed,
            max_rounds=max_rounds,
        )
    )


def broadcast_rounds_point(
    graph,
    seed: int,
    trials: int = 1,
    source: int = 0,
    channel=None,
    max_rounds: int | None = None,
    engine: str = "auto",
    memory_budget: int | None = None,
) -> dict[str, Any]:
    """Batched Decay broadcast rounds on an arbitrary ``graph``.

    ``graph`` may be a :class:`~repro.scenario.GraphSpec` / spec string —
    the scenario-routed form — or an already-built
    :class:`~repro.graphs.graph.Graph`, which rides along as a (picklable,
    digest-addressable) parameter; used by ``repro schedule`` to average
    its randomized comparison over executor-scheduled repetitions.
    """
    import numpy as np

    from repro.graphs.graph import Graph
    from repro.scenario import GraphSpec, Scenario, scenario_summary

    if not isinstance(graph, Graph):
        gspec = (
            graph
            if isinstance(graph, GraphSpec)
            else GraphSpec.from_string(graph)
        )
        return scenario_summary(
            Scenario(
                graph=gspec,
                channel=_channel_spec(channel),
                trials=trials,
                seed=seed,
                source=source,
                max_rounds=max_rounds,
                engine=engine,
                memory_budget=memory_budget,
            )
        )
    from repro.radio import DecayProtocol, run_broadcast_batch

    batch = run_broadcast_batch(
        graph,
        DecayProtocol(),
        trials=trials,
        source=source,
        seed=seed,
        max_rounds=max_rounds,
        channel=channel() if channel is not None else None,
        engine=engine,
        memory_budget=memory_budget,
    )
    rounds = [int(r) for r in batch.rounds]
    return {
        "n": graph.n,
        "trials": trials,
        "rounds": rounds,
        "completed": [bool(c) for c in batch.completed],
        "mean_rounds": float(np.mean(rounds)),
    }
