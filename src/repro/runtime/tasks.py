"""Picklable, cache-friendly task functions for runtime-scheduled sweeps.

``ParallelExecutor`` pickles the task function and its kwargs into worker
processes, and the result store content-addresses both — so sweep
evaluators that want parallelism or caching must be module-level functions
taking plain-data parameters and returning plain-data results.  This module
collects the ones the CLI and benches schedule; library code with richer
signatures (protocol factories, channel objects) stays where it is and is
wrapped here.

Channel selection travels as a :class:`repro.radio.ChannelSpec` — a frozen
dataclass, hence both picklable and content-addressable — instead of a
closure.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro._util import spawn_seeds

__all__ = ["chain_broadcast_point", "broadcast_rounds_point"]


def chain_broadcast_point(
    s: int,
    layers: int,
    seed: int,
    trials: int = 1,
    channel=None,
    max_rounds: int | None = None,
) -> dict[str, Any]:
    """One (``s``, ``layers``) grid point: ``trials`` batched Decay
    broadcasts on a fresh Section 5 chain.

    ``seed`` (the sweep-derived per-task seed) splits into the protocol
    master seed and the chain-construction seed, so every task is a pure
    function of its arguments.  ``channel`` is an optional zero-argument
    channel factory, canonically a :class:`repro.radio.ChannelSpec`.
    Returns a plain-JSON dict — executor-, cache-, and sidecar-friendly.
    """
    from repro.radio import DecayProtocol
    from repro.radio.lower_bound import measure_chain_broadcast_batch

    proto_seed, chain_seed = spawn_seeds(seed, 2)
    m = measure_chain_broadcast_batch(
        s,
        layers,
        DecayProtocol(),
        trials=trials,
        rng=proto_seed,
        chain_rng=chain_seed,
        max_rounds=max_rounds,
        channel=channel() if channel is not None else None,
    )
    rounds = [int(r) for r in m.rounds]
    return {
        "s": s,
        "layers": layers,
        "n": m.n,
        "diameter": m.diameter_claim,
        "km_bound": float(m.km_bound),
        "trials": trials,
        "rounds": rounds,
        "completed": [bool(c) for c in m.completed],
        "mean_rounds": float(np.mean(rounds)),
    }


def broadcast_rounds_point(
    graph,
    seed: int,
    trials: int = 1,
    source: int = 0,
    channel=None,
    max_rounds: int | None = None,
) -> dict[str, Any]:
    """Batched Decay broadcast rounds on an arbitrary ``graph``.

    The graph rides along as a (picklable, digest-addressable) parameter;
    used by ``repro schedule`` to average its randomized comparison over
    executor-scheduled repetitions.
    """
    from repro.radio import DecayProtocol, run_broadcast_batch

    batch = run_broadcast_batch(
        graph,
        DecayProtocol(),
        trials=trials,
        source=source,
        rng=seed,
        max_rounds=max_rounds,
        channel=channel() if channel is not None else None,
    )
    rounds = [int(r) for r in batch.rounds]
    return {
        "n": graph.n,
        "trials": trials,
        "rounds": rounds,
        "completed": [bool(c) for c in batch.completed],
        "mean_rounds": float(np.mean(rounds)),
    }
