"""Executor layer: serial and process-parallel task scheduling.

One interface, two implementations: :class:`SerialExecutor` evaluates tasks
inline, :class:`ParallelExecutor` farms them across a
:class:`concurrent.futures.ProcessPoolExecutor`.  A "task" is a
module-level callable plus keyword arguments (parallel execution pickles
both), and every task carries its own derived seed — the repo's seeding
discipline — so the executors are interchangeable: scheduling order may
differ, but results are bit-for-bit identical and always returned in
submission order.

:func:`execute_sweep` is the orchestration entry point
``repro.analysis.run_sweep`` delegates to when an ``executor`` or ``cache``
is requested: it builds the task ledger (one task per repetition in ``fn``
mode, one per grid point in ``batch_fn`` mode), replays completed tasks
from the content-addressed store, schedules the rest, and persists each
result as it lands — which is what makes interrupted runs resumable.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import as_completed
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.obs.tracing import TraceRecorder, active_recorder, recording

__all__ = [
    "Executor",
    "ParallelExecutor",
    "SerialExecutor",
    "as_executor",
    "default_jobs",
    "execute_sweep",
    "plan_sweep",
]


def default_jobs(fallback: int | None = None) -> int:
    """Worker count when none is given — the single ``REPRO_JOBS`` parser.

    ``REPRO_JOBS`` wins when set; otherwise ``fallback`` (the CLI and the
    benches default to 1 so parallelism is always opt-in), and with no
    fallback the available CPU budget.
    """
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer worker count, got {env!r}"
            ) from None
    if fallback is not None:
        return max(1, int(fallback))
    if hasattr(os, "sched_getaffinity"):
        return max(1, len(os.sched_getaffinity(0)))
    return max(1, os.cpu_count() or 1)  # pragma: no cover - non-Linux


def _invoke(fn: Callable, kwargs: dict) -> Any:
    """Module-level trampoline so worker processes can unpickle the call."""
    return fn(**kwargs)


def _fn_label(fn: Callable) -> str:
    return getattr(fn, "__qualname__", repr(fn))


def _invoke_obs(fn: Callable, kwargs: dict, traced: bool) -> tuple:
    """Observing trampoline: ``(result, wall_seconds, events)``.

    When the submitting process is recording a trace, each worker builds a
    private recorder, runs the task under a ``task`` span (so in-task
    instrumentation like cache spans lands somewhere), and ships its
    events back with the result — the parent merges them at join.
    """
    start = time.perf_counter()
    if not traced:
        return fn(**kwargs), time.perf_counter() - start, None
    rec = TraceRecorder()
    with recording(recorder=rec):
        with rec.span("task", fn=_fn_label(fn)):
            result = fn(**kwargs)
    return result, time.perf_counter() - start, rec.events


class Executor:
    """Interface: schedule ``fn(**kwargs)`` calls, results in call order."""

    jobs: int = 1

    def imap(
        self, fn: Callable, calls: Sequence[Mapping[str, Any]]
    ) -> Iterator[tuple[int, Any]]:
        """Yield ``(call_index, result)`` pairs in *completion* order."""
        raise NotImplementedError

    def imap_timed(
        self, fn: Callable, calls: Sequence[Mapping[str, Any]]
    ) -> Iterator[tuple[int, Any, float]]:
        """Like :meth:`imap` but with per-call compute wall seconds.

        The base fallback cannot time inside a foreign executor, so it
        reports ``nan`` (callers treat ``nan`` walls as unmeasured); both
        built-in executors override it with real clocks.
        """
        for i, result in self.imap(fn, calls):
            yield i, result, float("nan")

    def map(self, fn: Callable, calls: Sequence[Mapping[str, Any]]) -> list:
        """Results of every call, in submission order."""
        out: list[Any] = [None] * len(calls)
        for i, result in self.imap(fn, calls):
            out[i] = result
        return out


class SerialExecutor(Executor):
    """Inline evaluation — the reference schedule every other executor must
    reproduce bit for bit."""

    jobs = 1

    def imap(self, fn, calls):
        for i, result, _ in self.imap_timed(fn, calls):
            yield i, result

    def imap_timed(self, fn, calls):
        rec = active_recorder()
        for i, kwargs in enumerate(calls):
            start = time.perf_counter()
            if rec is not None:
                with rec.span("task", fn=_fn_label(fn)):
                    result = fn(**kwargs)
            else:
                result = fn(**kwargs)
            yield i, result, time.perf_counter() - start


class ParallelExecutor(Executor):
    """Process-pool evaluation of independent tasks.

    ``fn`` and every kwarg must be picklable (module-level functions, plain
    data, dataclass specs).  Worker failures propagate to the caller as the
    original exception; remaining futures are cancelled.
    """

    def __init__(self, jobs: int | None = None):
        jobs = default_jobs() if jobs is None else int(jobs)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def imap(self, fn, calls):
        for i, result, _ in self.imap_timed(fn, calls):
            yield i, result

    def imap_timed(self, fn, calls):
        calls = list(calls)
        if self.jobs == 1 or len(calls) <= 1:
            yield from SerialExecutor().imap_timed(fn, calls)
            return
        rec = active_recorder()
        with _ProcessPool(max_workers=min(self.jobs, len(calls))) as pool:
            futures = {
                pool.submit(_invoke_obs, fn, dict(kwargs), rec is not None): i
                for i, kwargs in enumerate(calls)
            }
            try:
                for future in as_completed(futures):
                    result, seconds, events = future.result()
                    if rec is not None and events:
                        rec.extend(events)
                    yield futures[future], result, seconds
            except BaseException:
                for future in futures:
                    future.cancel()
                raise


def as_executor(executor: "Executor | int | None") -> Executor:
    """Coerce ``None`` / a job count / an executor into an :class:`Executor`."""
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, int):
        return SerialExecutor() if executor <= 1 else ParallelExecutor(executor)
    if isinstance(executor, Executor):
        return executor
    raise TypeError(
        f"executor must be None, an int job count, or an Executor; "
        f"got {type(executor).__name__}"
    )


def plan_sweep(
    space: Mapping[str, Sequence],
    fn: Callable | None = None,
    seed=None,
    repetitions: int = 1,
    batch_fn: Callable | None = None,
    static_params: Mapping[str, Any] | None = None,
    store=None,
):
    """The :class:`~repro.runtime.manifest.SweepManifest` a ``run_sweep``
    call with these arguments would execute, without evaluating anything.

    Mirrors ``run_sweep``'s seed derivation exactly, so the planned task
    keys are the ones the run will hit — which is only possible from a
    *reusable* ``seed`` (an int or ``None``); a stateful Generator would
    be consumed by the plan and derive different seeds in the run, so it
    is rejected.  ``store`` (a :class:`~repro.runtime.store.ResultStore` or cache-root
    path) supplies the key salt; ``None`` uses the default salt.
    """
    import numpy as np

    from repro._util import as_rng, spawn_seeds
    from repro.analysis.sweep import sweep_grid
    from repro.runtime.manifest import build_manifest
    from repro.runtime.store import code_salt

    if (fn is None) == (batch_fn is None):
        raise ValueError("provide exactly one of fn and batch_fn")
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "plan_sweep needs a reusable seed (an int or None): a "
            "Generator would be consumed by planning, so the subsequent "
            "run_sweep call could never match the planned task keys"
        )
    store = as_store(store) if store is not None else None
    grid = list(sweep_grid(space))
    seeds = spawn_seeds(as_rng(seed), len(grid) * repetitions)
    return build_manifest(
        fn if fn is not None else batch_fn,
        space,
        seeds,
        repetitions,
        static_params,
        store.salt if store is not None else code_salt(),
        "fn" if fn is not None else "batch",
    )


def as_store(cache):
    """Coerce a cache argument (store instance or root path) to a store."""
    from repro.runtime.store import ResultStore

    if isinstance(cache, ResultStore):
        return cache
    return ResultStore(cache)


def execute_sweep(
    *,
    space: Mapping[str, Sequence],
    grid: list[dict[str, Any]],
    seeds: list[int],
    fn: Callable | None,
    batch_fn: Callable | None,
    repetitions: int,
    static: Mapping[str, Any],
    executor,
    cache,
) -> list:
    """Run a sweep's task ledger through an executor with optional caching.

    The workhorse behind ``run_sweep(executor=..., cache=...)``; returns the
    same grid-major ``SweepPoint`` list as the inline path.  With a cache,
    the manifest is saved before evaluation and every task result is
    persisted as it completes, so a killed run loses at most in-flight
    tasks.
    """
    from repro.analysis.sweep import SweepPoint
    from repro.runtime.manifest import build_manifest

    evaluator = fn if fn is not None else batch_fn
    mode = "fn" if fn is not None else "batch"
    exec_ = as_executor(executor)
    store = as_store(cache) if cache is not None else None

    # The task ledger, in schedule (grid-major) order.
    calls: list[dict[str, Any]] = []
    task_seeds: list[list[int]] = []
    for i, params in enumerate(grid):
        point_seeds = seeds[i * repetitions : (i + 1) * repetitions]
        if mode == "batch":
            calls.append({**params, **static, "seeds": list(point_seeds)})
            task_seeds.append(list(point_seeds))
        else:
            for seed in point_seeds:
                calls.append({**params, **static, "seed": seed})
                task_seeds.append([seed])

    results: list[Any] = [None] * len(calls)
    done = [False] * len(calls)
    keys: list[str] | None = None
    walls: list = [None] * len(calls)
    manifest = None
    if store is not None:
        from repro.runtime.manifest import SweepManifest

        manifest = build_manifest(
            evaluator, space, seeds, repetitions, static, store.salt, mode
        )
        # A prior run of this exact sweep may have recorded per-task wall
        # times; recovering them lets replays credit the compute they skip.
        try:
            prior = SweepManifest.load(store, manifest.sweep_id)
            if prior.walls is not None and len(prior.walls) == len(calls):
                walls = list(prior.walls)
        except (OSError, ValueError, KeyError):
            pass
        manifest = manifest.with_walls(walls)
        manifest.save(store)
        keys = manifest.keys
        for t, key in enumerate(keys):
            try:
                results[t] = store.get(key)
                done[t] = True
                if walls[t]:
                    store.record_time_saved(walls[t])
            except KeyError:
                pass

    pending = [t for t in range(len(calls)) if not done[t]]
    per_task = repetitions if mode == "batch" else 1
    for j, result, seconds in exec_.imap_timed(
        evaluator, [calls[t] for t in pending]
    ):
        t = pending[j]
        if mode == "batch":
            result = list(result)
        if mode == "batch" and len(result) != per_task:
            raise ValueError(
                f"batch_fn returned {len(result)} results for "
                f"{per_task} seeds at point {grid[t]}"
            )
        results[t] = result
        done[t] = True
        if not math.isnan(seconds):
            walls[t] = seconds
        if store is not None and keys is not None:
            store.put(keys[t], result)
    if store is not None and manifest is not None and pending:
        manifest.with_walls(walls).save(store)

    out: list[SweepPoint] = []
    for t, (result, seed_list) in enumerate(zip(results, task_seeds)):
        point = grid[t // repetitions] if mode == "fn" else grid[t]
        if mode == "batch":
            if len(result) != per_task:  # a stale/foreign cache entry
                raise ValueError(
                    f"cached batch entry for point {point} holds "
                    f"{len(result)} results for {per_task} seeds"
                )
            for seed, res in zip(seed_list, result):
                out.append(SweepPoint(params=dict(point), seed=seed, result=res))
        else:
            out.append(
                SweepPoint(params=dict(point), seed=seed_list[0], result=result)
            )
    return out
