"""Content-addressed result store for the experiment runtime.

Every runtime task — one grid point (or one repetition) of a sweep, one
bench measurement — is addressed by a stable hash of *what would be
computed*: the task function's qualified name, its parameters, its derived
seed, and a code-version salt.  Because the repo's seeding discipline makes
every task a pure function of exactly those inputs, the hash is a true
content address: re-running a sweep looks each task up before computing it,
so warm reruns are pure cache replays and interrupted runs resume where
they stopped (see :mod:`repro.runtime.manifest`).

Payloads persist under ``results/cache/`` as one JSON document per task;
numpy arrays inside a result are split out into an ``.npz`` sidecar so
dtypes and shapes survive the round trip bit for bit.  Corrupted entries
(truncated JSON, missing sidecar, undecodable payload) are discarded and
treated as misses — the cache can always be rebuilt by recomputing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import importlib.metadata
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np

from repro.obs.metrics import METRICS
from repro.obs.tracing import active_recorder

__all__ = [
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "ResultStore",
    "canonical_dumps",
    "code_salt",
    "expansion_key",
    "scenario_key",
    "task_key",
    "write_json_payload",
]

#: Default cache root, relative to the invoking process's working directory
#: (the CLI's ``--cache-dir`` and :class:`ResultStore`'s ``root`` override it).
DEFAULT_CACHE_DIR = os.path.join("results", "cache")

_KIND = "__kind__"

#: Key-schema revision, mixed into the salt alongside the package version.
#: Bumped whenever how keys are derived changes — ``k2``: scenario-canonical
#: keys (spec-equal runs share an address regardless of producing helper).
_KEY_SCHEMA = "k3"


def code_salt() -> str:
    """The code-version salt mixed into every task key.

    Bumping the package version or the key-schema revision (or setting
    ``REPRO_CACHE_SALT``) retires every cached result at once — the blunt
    but safe answer to "did the code that produced this payload change?".
    """
    env = os.environ.get("REPRO_CACHE_SALT")
    if env:
        return env
    try:
        version = importlib.metadata.version("wireless-expanders-repro")
    except importlib.metadata.PackageNotFoundError:  # pragma: no cover
        version = "unversioned"
    return f"{version}+{_KEY_SCHEMA}"


def _encode(obj: Any, arrays: list[np.ndarray] | None, inline: bool) -> Any:
    """Lower ``obj`` to a JSON-able tree.

    Three modes share this walker:

    * ``arrays`` a list — arrays are appended to it and referenced by index
      (the ``.npz`` persistence mode, lossless);
    * ``inline=True`` — arrays/scalars become plain lists/numbers (the
      human-readable sidecar mode, lossy on dtype);
    * otherwise — arrays are replaced by a digest of their bytes (the
      key-hashing mode, where only identity matters).
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, np.ndarray):
        if inline:
            return obj.tolist()
        if arrays is not None:
            arrays.append(obj)
            return {_KIND: "ndarray", "ref": len(arrays) - 1}
        data = np.ascontiguousarray(obj)
        return {
            _KIND: "ndarray",
            "sha256": hashlib.sha256(data.tobytes()).hexdigest(),
            "dtype": str(data.dtype),
            "shape": list(data.shape),
        }
    if isinstance(obj, np.generic):
        if inline:
            return obj.item()
        return {_KIND: "npscalar", "dtype": obj.dtype.str, "value": obj.item()}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _encode(getattr(obj, f.name), arrays, inline)
            for f in dataclasses.fields(obj)
        }
        if inline:
            return fields
        return {
            _KIND: "dataclass",
            "type": f"{type(obj).__module__}:{type(obj).__qualname__}",
            "fields": fields,
        }
    if isinstance(obj, tuple):
        items = [_encode(v, arrays, inline) for v in obj]
        return items if inline else {_KIND: "tuple", "items": items}
    if isinstance(obj, list):
        return [_encode(v, arrays, inline) for v in obj]
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj) and _KIND not in obj:
            return {k: _encode(v, arrays, inline) for k, v in obj.items()}
        return {
            _KIND: "dict",
            "items": [
                [_encode(k, arrays, inline), _encode(v, arrays, inline)]
                for k, v in obj.items()
            ],
        }
    raise TypeError(
        f"cannot persist {type(obj).__name__} in the result store; supported "
        "payloads are JSON scalars, lists/tuples/dicts, numpy arrays and "
        "scalars, and dataclasses of those"
    )


def _decode(obj: Any, arrays: list[np.ndarray]) -> Any:
    """Invert the ``.npz`` persistence mode of :func:`_encode`."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [_decode(v, arrays) for v in obj]
    kind = obj.get(_KIND)
    if kind is None:
        return {k: _decode(v, arrays) for k, v in obj.items()}
    if kind == "ndarray":
        return arrays[obj["ref"]]
    if kind == "npscalar":
        return np.dtype(obj["dtype"]).type(obj["value"])
    if kind == "tuple":
        return tuple(_decode(v, arrays) for v in obj["items"])
    if kind == "dict":
        return {_decode(k, arrays): _decode(v, arrays) for k, v in obj["items"]}
    if kind == "dataclass":
        module, _, qualname = obj["type"].partition(":")
        target: Any = importlib.import_module(module)
        for part in qualname.split("."):
            target = getattr(target, part)
        return target(**{k: _decode(v, arrays) for k, v in obj["fields"].items()})
    raise ValueError(f"unknown payload marker {kind!r}")


def canonical_dumps(obj: Any) -> str:
    """Deterministic JSON rendering of ``obj`` for key hashing.

    Dict insertion order does not matter (keys are sorted) and numpy arrays
    contribute a digest of their raw bytes, so structurally equal inputs
    always hash alike.
    """
    return json.dumps(
        _encode(obj, arrays=None, inline=False),
        sort_keys=True,
        separators=(",", ":"),
    )


def _fn_name(fn: Callable | str) -> str:
    if isinstance(fn, str):
        name = fn
    else:
        name = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"
    if "<lambda>" in name:
        raise ValueError(
            f"task function {name!r} has no stable import path; content "
            "addressing needs a named function (several lambdas in one "
            "scope would share an address)"
        )
    return name


def task_key(
    fn: Callable | str,
    params: Any,
    seed: int | Iterable[int],
    salt: str | None = None,
) -> str:
    """The content address of one task: sha256 over (function qualname,
    canonical params, seed(s), code salt)."""
    if not isinstance(seed, int):
        seed = [int(s) for s in seed]
    identity = {
        "fn": _fn_name(fn),
        "params": params,
        "seed": seed,
        "salt": code_salt() if salt is None else str(salt),
    }
    return hashlib.sha256(canonical_dumps(identity).encode()).hexdigest()


def scenario_key(scenario, view: str = "result", salt: str | None = None) -> str:
    """The content address of one scenario evaluation.

    Unlike :func:`task_key`, the identity is the scenario's *canonical
    dict* (its ``to_dict`` form, which already carries the seed) plus the
    result ``view`` — no function qualname — so spec-equal runs hit the
    same entry regardless of which helper produced them
    (``Scenario.run``, ``ScenarioSweep``, the CLI, or a legacy shim).

    ``view`` distinguishes payload shapes of the same spec: ``"result"``
    (the full :class:`~repro.radio.broadcast.BatchBroadcastResult`) and
    ``"summary"`` (the plain-dict table row).
    """
    canonical = scenario.to_dict() if hasattr(scenario, "to_dict") else scenario
    if not isinstance(canonical, dict):
        raise TypeError(
            f"scenario_key needs a Scenario (or its canonical dict); "
            f"got {type(scenario).__name__}"
        )
    identity = {
        "scenario": canonical,
        "view": str(view),
        "salt": code_salt() if salt is None else str(salt),
    }
    return hashlib.sha256(canonical_dumps(identity).encode()).hexdigest()


def expansion_key(graph, expansion, seed: int, salt: str | None = None) -> str:
    """The content address of one wireless-expansion measurement.

    Identity is the canonical ``(graph spec, expansion spec, seed)``
    triple under the ``"expansion"`` view — the measurement analogue of
    :func:`scenario_key`, so spec-equal estimates share one entry whether
    they came from ``repro expansion``, a sweep, or the E17 bench.
    ``graph`` / ``expansion`` may be spec objects (``to_dict`` is taken)
    or already-canonical dicts.
    """
    canonical = {
        "graph": graph.to_dict() if hasattr(graph, "to_dict") else graph,
        "expansion": (
            expansion.to_dict() if hasattr(expansion, "to_dict") else expansion
        ),
        "seed": int(seed),
    }
    return scenario_key(canonical, view="expansion", salt=salt)


def _atomic_write_bytes(path: str, data: bytes) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def write_json_payload(path: str, payload: Any) -> str:
    """Write ``payload`` as human-readable JSON (arrays inlined as lists).

    The shared machine-readable emitter: every bench writes its ``.json``
    sidecar through this, and the store uses the same atomic-replace
    discipline for its own documents.
    """
    text = json.dumps(
        _encode(payload, arrays=None, inline=True), indent=2, sort_keys=True
    )
    _atomic_write_bytes(path, (text + "\n").encode())
    return path


@dataclass(frozen=True)
class CacheStats:
    """One ``repro cache stats`` snapshot.

    The first four fields describe the on-disk state; the defaulted tail
    carries the producing :class:`ResultStore` instance's *live* counters
    (this process's lookups and their wall time) — zero on a cold snapshot.
    """

    root: str
    entries: int
    manifests: int
    bytes: int
    hits: int = 0
    misses: int = 0
    get_seconds: float = 0.0
    put_seconds: float = 0.0
    time_saved_seconds: float = 0.0


class ResultStore:
    """Content-addressed persistence under one cache root.

    ``hits`` / ``misses`` count this instance's lookups (a warm replay of a
    sweep is exactly ``hits == tasks, misses == 0`` — the invariant CI's
    runtime-smoke step asserts).  ``get_seconds`` / ``put_seconds``
    accumulate lookup/persist wall time, and ``time_saved`` the recorded
    compute time of tasks a sweep replayed instead of re-running; all are
    mirrored into the process metrics registry (``repro cache stats``) and,
    when a trace recording is active, emitted as ``cache.get`` /
    ``cache.put`` spans with hit/miss counters.
    """

    def __init__(self, root: str | os.PathLike | None = None, salt: str | None = None):
        self.root = os.path.abspath(os.fspath(root) if root is not None else DEFAULT_CACHE_DIR)
        self.salt = code_salt() if salt is None else str(salt)
        self.hits = 0
        self.misses = 0
        self.get_seconds = 0.0
        self.put_seconds = 0.0
        self.time_saved = 0.0

    @property
    def objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    @property
    def manifests_dir(self) -> str:
        return os.path.join(self.root, "manifests")

    def key(self, fn: Callable | str, params: Any, seed: int | Iterable[int]) -> str:
        """Task key under this store's salt."""
        return task_key(fn, params, seed, self.salt)

    def scenario_key(self, scenario, view: str = "result") -> str:
        """Scenario key under this store's salt (see :func:`scenario_key`)."""
        return scenario_key(scenario, view, self.salt)

    def expansion_key(self, graph, expansion, seed: int) -> str:
        """Expansion-measurement key under this store's salt (see
        :func:`expansion_key`)."""
        return expansion_key(graph, expansion, seed, self.salt)

    def _paths(self, key: str) -> tuple[str, str]:
        shard = os.path.join(self.objects_dir, key[:2])
        return os.path.join(shard, key + ".json"), os.path.join(shard, key + ".npz")

    def _load(self, key: str) -> Any:
        """Decode entry ``key`` or raise ``KeyError`` (no counter updates).

        Any failure past "file not found" means a corrupted entry; it is
        deleted so the caller recomputes instead of tripping on it forever.
        """
        json_path, npz_path = self._paths(key)
        try:
            with open(json_path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:  # entry absent: a plain miss
            raise KeyError(key) from None
        except Exception:
            self.discard(key)
            raise KeyError(key) from None
        try:
            if payload.get("key") != key:
                raise ValueError("payload/key mismatch")
            arrays: list[np.ndarray] = []
            if payload.get("arrays"):
                with np.load(npz_path) as znp:
                    arrays = [znp[f"arr{i}"] for i in range(payload["arrays"])]
            return _decode(payload["value"], arrays)
        except Exception:
            # Anything past a parsed JSON document — key mismatch, missing
            # or unreadable sidecar, undecodable payload — is a corrupted
            # entry: drop it so recomputation heals the store.
            self.discard(key)
            raise KeyError(key) from None

    def contains(self, key: str) -> bool:
        """Whether ``key`` holds a well-formed entry, without decoding it.

        Parses the JSON header and checks the ``.npz`` sidecar exists when
        arrays are referenced — cheap enough for manifest progress scans
        over large payloads (the full decode happens once, in :meth:`get`).
        Corruption counts as absent and is discarded; the hit/miss
        counters are untouched.
        """
        json_path, npz_path = self._paths(key)
        try:
            with open(json_path, encoding="utf-8") as fh:
                payload = json.load(fh)
            if payload.get("key") != key:
                raise ValueError("payload/key mismatch")
            if payload.get("arrays") and not os.path.isfile(npz_path):
                raise ValueError("missing npz sidecar")
            return True
        except FileNotFoundError:
            return False
        except Exception:
            self.discard(key)
            return False

    def get(self, key: str) -> Any:
        """Return the cached value for ``key`` or raise ``KeyError``."""
        rec = active_recorder()
        start = time.perf_counter()
        try:
            value = self._load(key)
        except KeyError:
            elapsed = time.perf_counter() - start
            self.misses += 1
            self.get_seconds += elapsed
            METRICS.incr("cache.misses")
            METRICS.incr("cache.get_seconds", elapsed)
            if rec is not None:
                rec.counter("cache.miss")
            raise
        elapsed = time.perf_counter() - start
        self.hits += 1
        self.get_seconds += elapsed
        METRICS.incr("cache.hits")
        METRICS.incr("cache.get_seconds", elapsed)
        if rec is not None:
            rec.counter("cache.hit")
            rec.record(
                {
                    "kind": "span",
                    "name": "cache.get",
                    "path": "cache.get",
                    "start": start,
                    "duration": elapsed,
                    "pid": os.getpid(),
                }
            )
        return value

    def record_time_saved(self, seconds: float) -> None:
        """Credit ``seconds`` of compute a cache replay avoided (sweeps
        call this with the manifest's recorded per-task wall times)."""
        self.time_saved += float(seconds)
        METRICS.incr("cache.time_saved_seconds", float(seconds))

    def put(self, key: str, value: Any, meta: dict | None = None) -> str:
        """Persist ``value`` under ``key``; returns the JSON path.

        The ``.npz`` sidecar (if any) lands before the JSON document, so a
        crash mid-put never leaves a JSON entry pointing at missing arrays.
        """
        rec = active_recorder()
        start = time.perf_counter()
        arrays: list[np.ndarray] = []
        encoded = _encode(value, arrays=arrays, inline=False)
        json_path, npz_path = self._paths(key)
        if arrays:
            os.makedirs(os.path.dirname(npz_path), exist_ok=True)
            # The suffix must end in ".npz" or np.savez appends one, writing
            # past the temp name and breaking the atomic replace.
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(npz_path), suffix=".tmp.npz"
            )
            os.close(fd)
            try:
                np.savez(tmp, **{f"arr{i}": a for i, a in enumerate(arrays)})
                os.replace(tmp, npz_path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        payload = {"key": key, "salt": self.salt, "arrays": len(arrays), "value": encoded}
        if meta:
            payload["meta"] = _encode(meta, arrays=None, inline=True)
        _atomic_write_bytes(
            json_path,
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(),
        )
        elapsed = time.perf_counter() - start
        self.put_seconds += elapsed
        METRICS.incr("cache.put_seconds", elapsed)
        if rec is not None:
            rec.record(
                {
                    "kind": "span",
                    "name": "cache.put",
                    "path": "cache.put",
                    "start": start,
                    "duration": elapsed,
                    "pid": os.getpid(),
                }
            )
        return json_path

    def discard(self, key: str) -> bool:
        """Remove entry ``key`` (returns whether anything existed)."""
        removed = False
        for path in self._paths(key):
            if os.path.exists(path):
                os.unlink(path)
                removed = True
        return removed

    def drop(self, keys: Iterable[str]) -> int:
        """Remove a batch of entries; returns how many existed."""
        return sum(1 for k in keys if self.discard(k))

    def stats(self) -> CacheStats:
        """Entry/manifest counts and total on-disk bytes under the root."""
        entries = 0
        total = 0
        if os.path.isdir(self.objects_dir):
            for dirpath, _, files in os.walk(self.objects_dir):
                for name in files:
                    total += os.path.getsize(os.path.join(dirpath, name))
                    if name.endswith(".json"):
                        entries += 1
        manifests = 0
        if os.path.isdir(self.manifests_dir):
            for name in os.listdir(self.manifests_dir):
                if name.endswith(".json"):
                    manifests += 1
                    total += os.path.getsize(os.path.join(self.manifests_dir, name))
        return CacheStats(
            root=self.root,
            entries=entries,
            manifests=manifests,
            bytes=total,
            hits=self.hits,
            misses=self.misses,
            get_seconds=self.get_seconds,
            put_seconds=self.put_seconds,
            time_saved_seconds=self.time_saved,
        )

    def clear(self) -> CacheStats:
        """Delete every cached entry and manifest; returns what was removed."""
        removed = self.stats()
        for sub in (self.objects_dir, self.manifests_dir):
            if os.path.isdir(sub):
                shutil.rmtree(sub)
        return removed

    def sweep_tmp(self, max_age_seconds: float = 3600.0) -> int:
        """Remove temp files orphaned by writers killed mid-write.

        ``put`` is crash-safe by construction: payloads are written under
        a private ``mkstemp`` name and atomically ``os.replace``d into
        their content address (npz sidecar first, JSON document last), so
        a reader can never observe a partial entry no matter when a
        writer dies.  What a kill *can* leak is the temp file itself.
        This sweeps ``*.tmp*`` files older than ``max_age_seconds`` —
        the age guard keeps in-flight writes of live concurrent writers
        untouched (pass ``0`` to remove all).  Returns the count removed.
        """
        removed = 0
        cutoff = time.time() - max_age_seconds
        if os.path.isdir(self.objects_dir):
            for dirpath, _, files in os.walk(self.objects_dir):
                for name in files:
                    if ".tmp" not in name:
                        continue
                    path = os.path.join(dirpath, name)
                    try:
                        if os.path.getmtime(path) <= cutoff:
                            os.unlink(path)
                            removed += 1
                    except OSError:
                        continue  # raced with its writer; leave it alone
        if removed:
            METRICS.incr("cache.tmp_swept", removed)
        return removed
