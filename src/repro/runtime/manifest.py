"""Sweep manifests: the resume ledger of the experiment runtime.

A manifest pins everything a sweep run decided up front — grid order, the
full derived seed list, one content-addressed task key per schedulable unit
— as a JSON document under ``<cache>/manifests/<sweep_id>.json``.  Because
seeds are recorded explicitly, resuming does not re-derive randomness: an
interrupted run (or the same ``run_sweep`` call issued again) rebuilds the
identical manifest, checks each task key against the store, and computes
only what is missing.  Parallel, resumed, and serial runs therefore return
bit-for-bit identical :class:`~repro.analysis.sweep.SweepPoint` lists.

Task granularity follows the evaluator: looped ``fn`` sweeps get one task
per (grid point, repetition); batched ``batch_fn`` sweeps get one task per
grid point carrying all of that point's repetition seeds.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.runtime.store import ResultStore, canonical_dumps, task_key

__all__ = ["SweepManifest", "build_manifest"]


@dataclass(frozen=True)
class SweepManifest:
    """The persisted identity and task ledger of one sweep.

    Attributes
    ----------
    fn:
        Qualified name of the evaluator.
    mode:
        ``"fn"`` (one task per repetition) or ``"batch"`` (one task per
        grid point).
    space, repetitions, static:
        The sweep definition (``static`` is the JSON-able rendering of
        ``static_params`` — it participates in task keys because it changes
        results).
    seeds:
        The flat derived seed list, grid-major (``len(grid) * repetitions``).
    keys:
        One content address per task, in schedule order.
    salt:
        The store salt the keys were computed under.
    walls:
        Optional per-task compute wall times (seconds, schedule order;
        ``None`` entries are unmeasured).  Recorded after a run so a
        resumed sweep can report the time its cache replays saved.  Not
        part of the sweep identity: ``sweep_id`` ignores it, so a manifest
        with walls overwrites its wall-less predecessor in place.
    """

    fn: str
    mode: str
    space: dict[str, list]
    repetitions: int
    static: Any
    seeds: list[int]
    keys: list[str]
    salt: str
    walls: list | None = None

    @property
    def sweep_id(self) -> str:
        """Stable short id of the sweep definition (not of its results)."""
        identity = canonical_dumps(
            {
                "fn": self.fn,
                "mode": self.mode,
                "space": self.space,
                "repetitions": self.repetitions,
                "static": self.static,
                "seeds": self.seeds,
                "salt": self.salt,
            }
        )
        return hashlib.sha256(identity.encode()).hexdigest()[:16]

    @property
    def task_count(self) -> int:
        return len(self.keys)

    def pending(self, store: ResultStore) -> list[int]:
        """Indices of tasks whose results are not (decodably) in ``store``."""
        return [i for i, key in enumerate(self.keys) if not store.contains(key)]

    def progress(self, store: ResultStore) -> tuple[int, int]:
        """``(completed, total)`` task counts against ``store``."""
        return self.task_count - len(self.pending(store)), self.task_count

    def to_payload(self) -> dict:
        payload = {
            "sweep_id": self.sweep_id,
            "fn": self.fn,
            "mode": self.mode,
            "space": self.space,
            "repetitions": self.repetitions,
            "static": self.static,
            "seeds": self.seeds,
            "keys": self.keys,
            "salt": self.salt,
        }
        if self.walls is not None:
            payload["walls"] = self.walls
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SweepManifest":
        return cls(
            fn=payload["fn"],
            mode=payload["mode"],
            space={k: list(v) for k, v in payload["space"].items()},
            repetitions=int(payload["repetitions"]),
            static=payload["static"],
            seeds=[int(s) for s in payload["seeds"]],
            keys=list(payload["keys"]),
            salt=payload["salt"],
            # Absent in manifests written before wall recording existed.
            walls=payload.get("walls"),
        )

    def with_walls(self, walls: Sequence[float | None]) -> "SweepManifest":
        """This manifest with per-task wall times attached (same
        ``sweep_id`` — walls are bookkeeping, not identity)."""
        walls = list(walls)
        if len(walls) != len(self.keys):
            raise ValueError(
                f"walls list has {len(walls)} entries for "
                f"{len(self.keys)} tasks"
            )
        return dataclasses.replace(self, walls=walls)

    def path_in(self, store: ResultStore) -> str:
        return os.path.join(store.manifests_dir, self.sweep_id + ".json")

    def save(self, store: ResultStore) -> str:
        """Persist under the store's manifest directory; returns the path.

        The payload is already pure JSON (``static`` is canonicalized at
        build time), so it round-trips to an identical ``sweep_id``.
        """
        from repro.runtime.store import _atomic_write_bytes

        path = self.path_in(store)
        _atomic_write_bytes(
            path, (json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n").encode()
        )
        return path

    @classmethod
    def load(cls, store: ResultStore, sweep_id: str) -> "SweepManifest":
        path = os.path.join(store.manifests_dir, sweep_id + ".json")
        with open(path, encoding="utf-8") as fh:
            return cls.from_payload(json.load(fh))

    @classmethod
    def list_ids(cls, store: ResultStore) -> list[str]:
        """Sweep ids with a manifest on disk, sorted."""
        if not os.path.isdir(store.manifests_dir):
            return []
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(store.manifests_dir)
            if name.endswith(".json")
        )


def _encodable_static(static: Mapping[str, Any] | None, fn_name: str) -> Any:
    """``static_params`` canonicalized to a pure-JSON tree for task keys and
    manifest persistence, with a targeted error when they cannot be
    (factories/closures have no stable content address)."""
    static = dict(static) if static else {}
    try:
        return json.loads(canonical_dumps(static))
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"static_params for cached sweep over {fn_name} are not "
            f"content-addressable: {exc}. Pass plain data or dataclass "
            "specs (e.g. repro.radio.ChannelSpec) instead of closures."
        ) from None


def build_manifest(
    fn,
    space: Mapping[str, Sequence],
    seeds: Sequence[int],
    repetitions: int,
    static_params: Mapping[str, Any] | None,
    salt: str,
    mode: str,
) -> SweepManifest:
    """Derive the task ledger for one sweep definition.

    ``seeds`` is the flat grid-major seed list ``run_sweep`` derived; the
    manifest freezes it so resume never depends on generator state.
    """
    from repro.analysis.sweep import sweep_grid
    from repro.runtime.store import _fn_name

    if mode not in ("fn", "batch"):
        raise ValueError(f"mode must be 'fn' or 'batch', got {mode!r}")
    fn_name = _fn_name(fn)
    static = _encodable_static(static_params, fn_name)
    grid = list(sweep_grid(space))
    if len(seeds) != len(grid) * repetitions:
        raise ValueError(
            f"seed list has {len(seeds)} entries for {len(grid)} grid points "
            f"x {repetitions} repetitions"
        )
    keys: list[str] = []
    for i, params in enumerate(grid):
        point_seeds = seeds[i * repetitions : (i + 1) * repetitions]
        identity = {"params": params, "static": static}
        if mode == "batch":
            keys.append(task_key(fn_name, identity, point_seeds, salt))
        else:
            keys.extend(
                task_key(fn_name, identity, seed, salt) for seed in point_seeds
            )
    return SweepManifest(
        fn=fn_name,
        mode=mode,
        space={k: list(v) for k, v in space.items()},
        repetitions=repetitions,
        static=static,
        seeds=[int(s) for s in seeds],
        keys=keys,
        salt=salt,
    )
