"""repro.runtime — parallel experiment execution, caching, and resume.

The execution layer under every sweep and bench:

* :mod:`repro.runtime.executor` — :class:`SerialExecutor` and the
  process-pool :class:`ParallelExecutor` behind one interface; per-task
  derived seeds make their results bit-for-bit identical.
* :mod:`repro.runtime.store` — the content-addressed :class:`ResultStore`
  (JSON + ``.npz`` payloads under ``results/cache/``) keyed by
  (function, params, seed, code salt).
* :mod:`repro.runtime.manifest` — :class:`SweepManifest`, the persisted
  task ledger that makes interrupted sweeps resumable.
* :mod:`repro.runtime.tasks` — picklable task functions the CLI and
  benches schedule.

Quickstart::

    from repro.analysis import run_sweep
    from repro.runtime import ParallelExecutor, ResultStore
    from repro.runtime.tasks import chain_broadcast_point

    points = run_sweep(
        {"s": [4, 8], "layers": [2, 4]},
        chain_broadcast_point,
        seed=0,
        repetitions=4,
        static_params={"trials": 16},
        executor=ParallelExecutor(4),      # farm grid points across cores
        cache=ResultStore("results/cache"),  # warm reruns replay instantly
    )

Scenario-first equivalent (the canonical task payload is the pickled
spec itself)::

    from repro.scenario import Scenario

    Scenario.from_string("chain(8, 4) | decay | classic | trials=64").run(
        executor=ParallelExecutor(4), cache=ResultStore("results/cache")
    )
"""

from repro.runtime.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    as_executor,
    default_jobs,
    plan_sweep,
)
from repro.runtime.manifest import SweepManifest, build_manifest
from repro.runtime.store import (
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultStore,
    canonical_dumps,
    code_salt,
    expansion_key,
    scenario_key,
    task_key,
    write_json_payload,
)

__all__ = [
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "Executor",
    "ParallelExecutor",
    "ResultStore",
    "SerialExecutor",
    "SweepManifest",
    "as_executor",
    "build_manifest",
    "canonical_dumps",
    "code_salt",
    "default_jobs",
    "expansion_key",
    "plan_sweep",
    "scenario_key",
    "task_key",
    "write_json_payload",
]
