"""Pluggable channel & fault models for the radio simulation engine.

The paper's results live in the classic no-collision-detection radio model
(Section 1.1): a silent processor receives iff **exactly one** neighbour
transmits, and collisions are indistinguishable from silence.  The
expansion machinery, however, is model-agnostic, and robustness of
expander topologies under faults and jamming is what makes them attractive
in practice — so the engine's reception semantics are factored into a
:class:`ChannelModel` strategy that :meth:`repro.radio.network.RadioNetwork.step`
delegates to.

Concrete models:

* :class:`ClassicCollision` — the paper's model, bit-for-bit identical to
  the pre-channel engine (the default everywhere).
* :class:`CollisionDetection` — same reception rule, but receivers can
  distinguish silence from collision; the collision bit is published as
  per-round *feedback* that protocols may exploit (see
  :class:`repro.radio.protocols.CollisionBackoffProtocol`).
* :class:`ErasureChannel` — each successfully received message is
  independently dropped with probability ``p`` (lossy links).
* :class:`AdversarialJamming` — deterministic round-indexed faults from a
  :class:`FaultSchedule`: jammed-vertex windows (a jammed vertex hears
  only noise), node crashes (a crashed vertex neither transmits nor
  receives from its crash round on), and edge up/down dynamics.

Batching contract
-----------------
``deliver`` accepts an ``(n,)`` transmit mask (one trial) or an ``(n, T)``
matrix (``T`` trials advanced together) and returns a received mask of the
same shape.  Stateful channels prepare per-trial state in :meth:`reset`
(one generator per trial, mirroring the protocol hooks) and drop completed
trials in :meth:`select_trials` when the engine compacts its working set.

RNG discipline
--------------
Randomized channels follow the engine's counter-based discipline
(:func:`repro._util.counter_coins`): :meth:`reset` derives one 64-bit key
per trial from that trial's generator — *after* the protocol has derived
its own keys, since the engine resets the protocol first — and each
round's erasure coins are a pure hash of ``(key, round, node)``.  A batch
of ``T`` trials therefore reproduces, bit for bit, the streams of ``T``
standalone single-trial runs seeded with the same children, and
``ErasureChannel(p=0)`` is bit-for-bit identical to
:class:`ClassicCollision`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro._util import counter_coins, derive_keys

__all__ = [
    "CHANNELS",
    "AdversarialJamming",
    "ChannelModel",
    "ChannelSpec",
    "ClassicCollision",
    "CollisionDetection",
    "ErasureChannel",
    "FaultSchedule",
    "make_channel",
    "parse_fault_spec",
]


class ChannelModel(ABC):
    """Reception semantics for one synchronous radio round.

    Subclasses implement :meth:`deliver`; the remaining hooks default to
    stateless no-ops so that pure-function channels stay one method long.
    """

    #: Registry name (used by the CLI and experiment tables).
    name: str = "abstract"

    #: Whether :meth:`deliver_words` implements this channel's semantics on
    #: packed uint64 trial words.  Channels that need per-trial feedback or
    #: per-round structure rewrites (collision detection, jamming) leave
    #: this ``False`` and the engine falls back to the dense path.
    supports_bitset: bool = False

    #: Per-round feedback published to protocols (``None`` when the
    #: channel provides no feedback beyond reception, as in the classic
    #: model).  Channels that do provide it (collision detection) store a
    #: bool mask of the same shape as the transmit mask after each
    #: :meth:`deliver` call.
    feedback: np.ndarray | None = None

    def reset(self, network, rngs) -> None:
        """Prepare per-run state for ``len(rngs)`` trials.

        Called by the engine after the protocol's own reset, with the same
        per-trial generators — a stateful channel draws its keys from the
        streams the protocol has already advanced, keeping batched and
        standalone runs aligned.
        """

    def select_trials(self, keep: np.ndarray) -> None:
        """Drop per-trial state for trials compacted out of the batch."""

    def effective_transmitters(
        self, round_index: int, transmitting: np.ndarray
    ) -> np.ndarray:
        """Filter the transmit mask before energy is spent.

        Fault channels override this to silence crashed processors; the
        engine counts transmissions *after* this filter, so dead nodes do
        not accrue energy cost.
        """
        return transmitting

    def coverage_targets(self, network) -> np.ndarray | None:
        """Vertices a broadcast must inform to count as complete.

        ``None`` means all of them (every non-faulty channel).  Crash
        faults return a mask excluding crashed processors — they can never
        receive, so requiring them would turn every faulty run into a
        round-cap timeout.
        """
        return None

    @abstractmethod
    def deliver(
        self, round_index: int, transmitting: np.ndarray, network
    ) -> np.ndarray:
        """Map a transmit mask to the received mask for this round.

        ``transmitting`` is a bool ``(n,)`` vector or ``(n, T)`` matrix;
        the result has the same shape.  Column ``t`` of a batched call
        must equal what a standalone trial ``t`` would receive.
        """

    def deliver_words(
        self, round_index: int, transmit_words: np.ndarray, network
    ) -> np.ndarray:
        """Packed-word face of :meth:`deliver` for the bitset engine.

        ``transmit_words`` is an ``(n, W)`` uint64 matrix with trial ``t``
        in bit ``t % 64`` of word column ``t // 64``; the result has the
        same layout and must agree bit for bit with :meth:`deliver` on the
        unpacked matrix.  Only implemented when :attr:`supports_bitset`.
        """
        raise NotImplementedError(
            f"channel {self.name!r} does not support the bitset engine"
        )


class ClassicCollision(ChannelModel):
    """Section 1.1 semantics: receive iff silent with exactly one
    transmitting neighbour; collisions are indistinguishable from silence.

    This is the engine's default and is bit-for-bit identical to the
    pre-channel ``RadioNetwork.step``.
    """

    name = "classic"
    supports_bitset = True

    def deliver(
        self, round_index: int, transmitting: np.ndarray, network
    ) -> np.ndarray:
        counts = network.transmit_counts(transmitting)
        return (counts == 1) & ~transmitting

    def deliver_words(
        self, round_index: int, transmit_words: np.ndarray, network
    ) -> np.ndarray:
        return network.exactly_one_words(transmit_words) & ~transmit_words


class CollisionDetection(ChannelModel):
    """Classic reception plus a collision-detection bit.

    Reception is unchanged, so any feedback-blind protocol behaves exactly
    as under :class:`ClassicCollision`; additionally, every silent
    processor with two or more transmitting neighbours learns it stood in
    a collision.  That bit is published via :attr:`feedback` after each
    round and forwarded to the protocol's ``channel_feedback`` hooks.
    """

    name = "collision-detection"

    def deliver(
        self, round_index: int, transmitting: np.ndarray, network
    ) -> np.ndarray:
        counts = network.transmit_counts(transmitting)
        silent = ~transmitting
        self.feedback = (counts >= 2) & silent
        return (counts == 1) & silent


class ErasureChannel(ChannelModel):
    """Classic reception, then each delivered message is independently
    dropped with probability ``p``.

    Erasure coins are counter-based (pure hash of ``(trial key, round,
    node)``), so batched and standalone runs agree bit for bit, and
    ``p = 0`` reproduces :class:`ClassicCollision` exactly.
    """

    name = "erasure"
    supports_bitset = True

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"erasure probability must lie in [0, 1], got {p}")
        self.p = float(p)
        self._keys: np.ndarray | None = None

    def reset(self, network, rngs) -> None:
        self._keys = derive_keys(rngs)

    def select_trials(self, keep: np.ndarray) -> None:
        if self._keys is not None:
            self._keys = self._keys[keep]

    def deliver(
        self, round_index: int, transmitting: np.ndarray, network
    ) -> np.ndarray:
        if self._keys is None:
            raise RuntimeError(
                "ErasureChannel must be reset with per-trial generators "
                "before stepping (the broadcast engine does this; direct "
                "users call channel.reset(network, [rng]))"
            )
        received = (network.transmit_counts(transmitting) == 1) & ~transmitting
        trials = 1 if transmitting.ndim == 1 else transmitting.shape[1]
        if self._keys.shape[0] != trials:
            raise ValueError(
                f"channel was reset for {self._keys.shape[0]} trials but "
                f"stepped with {trials}"
            )
        # Coins are always drawn host-side (the counter RNG is pure numpy)
        # and transferred onto the network's backend — a torch run consumes
        # bit-identical per-trial streams to the numpy run.
        dropped = counter_coins(self._keys, round_index, transmitting.shape[0], self.p)
        if transmitting.ndim == 1:
            dropped = dropped[:, 0]
        return received & ~network.backend.asarray(dropped)

    def deliver_words(
        self, round_index: int, transmit_words: np.ndarray, network
    ) -> np.ndarray:
        from repro.radio.bitset import packed_counter_coins, word_count

        if self._keys is None:
            raise RuntimeError(
                "ErasureChannel must be reset with per-trial generators "
                "before stepping (the broadcast engine does this; direct "
                "users call channel.reset(network, [rng]))"
            )
        if word_count(self._keys.shape[0]) != transmit_words.shape[1]:
            raise ValueError(
                f"channel was reset for {self._keys.shape[0]} trials but "
                f"stepped with {transmit_words.shape[1]} word columns"
            )
        received = network.exactly_one_words(transmit_words) & ~transmit_words
        # Erasure coins only matter where something was received — restrict
        # the hash to those rows (identical bits, less work).
        rows = np.flatnonzero(received.any(axis=1))
        if rows.size:
            dropped = packed_counter_coins(
                self._keys, round_index, transmit_words.shape[0], self.p,
                rows=rows,
            )
            received &= ~dropped
        return received


@dataclass(frozen=True)
class FaultSchedule:
    """Deterministic round-indexed fault plan for :class:`AdversarialJamming`.

    Attributes
    ----------
    jam_windows:
        ``(first_round, last_round, vertices)`` triples — each listed
        vertex hears only noise during rounds ``first..last`` inclusive.
    crashes:
        ``(round, vertices)`` pairs — each vertex neither transmits nor
        receives from ``round`` on.
    edge_events:
        ``(round, up, edges)`` triples — the listed edges go up
        (``up=True``) or down at the start of ``round`` and stay that way
        until a later event flips them.
    """

    jam_windows: tuple[tuple[int, int, tuple[int, ...]], ...] = ()
    crashes: tuple[tuple[int, tuple[int, ...]], ...] = ()
    edge_events: tuple[tuple[int, bool, tuple[tuple[int, int], ...]], ...] = field(
        default_factory=tuple
    )

    def jammed_mask(self, round_index: int, n: int) -> np.ndarray:
        """Bool mask of vertices jammed in ``round_index``."""
        mask = np.zeros(n, dtype=bool)
        for first, last, verts in self.jam_windows:
            if first <= round_index <= last:
                mask[list(verts)] = True
        return mask

    def crashed_mask(self, round_index: int, n: int) -> np.ndarray:
        """Bool mask of vertices crashed at or before ``round_index``."""
        mask = np.zeros(n, dtype=bool)
        for at, verts in self.crashes:
            if at <= round_index:
                mask[list(verts)] = True
        return mask

    def ever_crashed_mask(self, n: int) -> np.ndarray:
        """Bool mask of vertices that crash at any point of the schedule."""
        mask = np.zeros(n, dtype=bool)
        for _, verts in self.crashes:
            mask[list(verts)] = True
        return mask

    def validate(self, n: int) -> None:
        """Reject vertex/edge ids outside ``0..n-1`` (negative ids would
        silently wrap via Python indexing) and malformed windows."""

        def check_vertex(v: int, what: str) -> None:
            if not 0 <= v < n:
                raise ValueError(
                    f"fault schedule {what} vertex {v} out of range for an "
                    f"{n}-vertex network"
                )

        for first, last, verts in self.jam_windows:
            if first < 0 or last < first:
                raise ValueError(f"bad jam window rounds {first}-{last}")
            for v in verts:
                check_vertex(v, "jam")
        for at, verts in self.crashes:
            if at < 0:
                raise ValueError(f"bad crash round {at}")
            for v in verts:
                check_vertex(v, "crash")
        for at, _, edges in self.edge_events:
            if at < 0:
                raise ValueError(f"bad edge-event round {at}")
            for u, v in edges:
                check_vertex(u, "edge")
                check_vertex(v, "edge")
                if u == v:
                    raise ValueError(f"edge event on self-loop {u}-{v}")

    @property
    def is_empty(self) -> bool:
        """True when the schedule contains no faults at all."""
        return not (self.jam_windows or self.crashes or self.edge_events)


def parse_fault_spec(text: str) -> FaultSchedule:
    """Parse the CLI's compact ``--faults`` grammar into a schedule.

    Semicolon-separated segments, each ``kind@rounds:targets``:

    * ``jam@A-B:v,v,...`` — jam the vertices during rounds ``A..B``
      (``jam@A:...`` jams a single round);
    * ``crash@A:v,v,...`` — crash the vertices at round ``A``;
    * ``down@A:u-v,u-v,...`` / ``up@A:u-v,...`` — edge down/up events.

    Example: ``"jam@0-9:0,1,2;crash@5:7;down@3:0-1,2-3"``.
    """
    jams: list[tuple[int, int, tuple[int, ...]]] = []
    crashes: list[tuple[int, tuple[int, ...]]] = []
    events: list[tuple[int, bool, tuple[tuple[int, int], ...]]] = []
    for segment in text.split(";"):
        segment = segment.strip()
        if not segment:
            continue
        try:
            head, targets = segment.split(":", 1)
            kind, rounds = head.split("@", 1)
        except ValueError:
            raise ValueError(
                f"bad fault segment {segment!r} (expected kind@rounds:targets)"
            ) from None
        kind = kind.strip().lower()
        if kind == "jam":
            first, sep, last = rounds.partition("-")
            lo = int(first)
            hi = int(last) if sep else lo
            if hi < lo:
                raise ValueError(f"empty jam window in {segment!r}")
            verts = tuple(int(v) for v in targets.split(",") if v.strip())
            jams.append((lo, hi, verts))
        elif kind == "crash":
            verts = tuple(int(v) for v in targets.split(",") if v.strip())
            crashes.append((int(rounds), verts))
        elif kind in ("down", "up"):
            edges = []
            for pair in targets.split(","):
                if not pair.strip():
                    continue
                u, _, v = pair.partition("-")
                edges.append((int(u), int(v)))
            events.append((int(rounds), kind == "up", tuple(edges)))
        else:
            raise ValueError(
                f"unknown fault kind {kind!r} (expected jam/crash/down/up)"
            )
    return FaultSchedule(
        jam_windows=tuple(jams),
        crashes=tuple(crashes),
        edge_events=tuple(sorted(events, key=lambda e: e[0])),
    )


class AdversarialJamming(ChannelModel):
    """Classic reception under a deterministic :class:`FaultSchedule`.

    Per round: edge events up to the round are applied to a private copy
    of the adjacency structure, crashed processors are muted on both
    sides, and jammed or crashed processors receive nothing.  Faults are
    shared across all trials of a batch — the adversary is a fixed
    worst-case environment, not a random one — so every trial of a batch
    experiences the same fault pattern, exactly as ``T`` standalone runs
    would.
    """

    name = "jamming"

    def __init__(self, schedule: FaultSchedule | str) -> None:
        if isinstance(schedule, str):
            schedule = parse_fault_spec(schedule)
        self.schedule = schedule
        self._adj = None
        self._adj_csr = None
        self._events_applied = 0
        # Single-entry per-round mask cache: the engine queries the same
        # round from effective_transmitters and deliver back to back.
        self._mask_round = -1
        self._masks = None
        # Fault masks are built host-side and transferred through the
        # network's backend; until reset runs the host backend stands in.
        from repro.backend import HOST

        self._backend = HOST

    def reset(self, network, rngs) -> None:
        self.schedule.validate(network.n)
        self._backend = network.backend
        self._adj = None
        self._adj_csr = None
        self._events_applied = 0
        self._mask_round = -1
        self._masks = None

    def _round_masks(self, round_index: int, n: int):
        """``(crashed, deaf)`` bool masks for this round, cached."""
        if round_index != self._mask_round or self._masks is None:
            crashed = self.schedule.crashed_mask(round_index, n)
            deaf = self.schedule.jammed_mask(round_index, n) | crashed
            self._mask_round = round_index
            self._masks = (crashed, deaf)
        return self._masks

    def coverage_targets(self, network) -> np.ndarray | None:
        if not self.schedule.crashes:
            return None
        return ~self.schedule.ever_crashed_mask(network.n)

    def effective_transmitters(
        self, round_index: int, transmitting: np.ndarray
    ) -> np.ndarray:
        crashed, _ = self._round_masks(round_index, transmitting.shape[0])
        if not crashed.any():
            return transmitting
        crashed = self._backend.asarray(crashed)
        if transmitting.ndim == 2:
            crashed = crashed[:, None]
        return transmitting & ~crashed

    def _current_adjacency(self, round_index: int, network):
        """The adjacency structure with all edge events ≤ round applied."""
        events = self.schedule.edge_events
        if not events:
            return None  # caller uses the network's cached kernel
        pending = [e for e in sorted(events) if e[0] <= round_index]
        if self._adj is None or len(pending) < self._events_applied:
            # First use, or a non-monotone round query: rebuild from base.
            # int32, not network.count_dtype — `up` events can push a degree
            # past the bound the base graph sized the narrow dtype for.
            self._adj = network.graph.adjacency.astype(np.int32).tolil()
            self._adj_csr = None
            self._events_applied = 0
        if len(pending) > self._events_applied:
            for at, up, edges in pending[self._events_applied :]:
                value = 1 if up else 0
                for u, v in edges:
                    self._adj[u, v] = value
                    self._adj[v, u] = value
            self._events_applied = len(pending)
            self._adj_csr = None
        if self._adj_csr is None:
            self._adj_csr = self._adj.tocsr()
        return self._adj_csr

    def deliver(
        self, round_index: int, transmitting: np.ndarray, network
    ) -> np.ndarray:
        n = transmitting.shape[0]
        bk = network.backend
        # Idempotent re-filter so direct network.step callers get crash
        # semantics too (the engine has already applied it).
        transmitting = self.effective_transmitters(round_index, transmitting)
        adj = self._current_adjacency(round_index, network)
        if adj is None:
            counts = network.transmit_counts(transmitting)
        elif bk.is_host:
            counts = adj @ transmitting.astype(np.int32)
        else:
            # Edge events rewrite a private host scipy structure; the
            # product runs host-side and the counts transfer back.
            counts = bk.asarray(adj @ bk.to_numpy(transmitting).astype(np.int32))
        received = (counts == 1) & ~transmitting
        _, deaf = self._round_masks(round_index, n)
        if deaf.any():
            if bk.is_host:
                received[deaf] = False
            else:
                deaf_b = bk.asarray(deaf)
                if received.ndim == 2:
                    deaf_b = deaf_b[:, None]
                received = received & ~deaf_b
        return received


#: CLI/registry channel names mapped to short descriptions.
CHANNELS: dict[str, str] = {
    "classic": "Section 1.1 no-collision-detection model (the default)",
    "collision-detection": "classic reception + per-round collision feedback",
    "erasure": "classic reception, deliveries dropped i.i.d. with prob. p",
    "jamming": "classic reception under a deterministic fault schedule",
}


def make_channel(
    name: str,
    erasure_p: float = 0.1,
    faults: FaultSchedule | str | None = None,
) -> ChannelModel:
    """Build a channel by registry name (the CLI's ``--channel`` hook).

    ``erasure_p`` feeds the erasure channel; ``faults`` (a schedule or a
    :func:`parse_fault_spec` string) feeds jamming.  ``cd`` is accepted as
    shorthand for ``collision-detection``.
    """
    key = name.strip().lower()
    if key == "cd":
        key = "collision-detection"
    if key == "classic":
        return ClassicCollision()
    if key == "collision-detection":
        return CollisionDetection()
    if key == "erasure":
        return ErasureChannel(erasure_p)
    if key == "jamming":
        return AdversarialJamming(faults if faults is not None else FaultSchedule())
    raise ValueError(
        f"unknown channel {name!r}; known channels: {', '.join(sorted(CHANNELS))}"
    )


@dataclass(frozen=True)
class ChannelSpec:
    """A picklable, content-addressable channel *factory*.

    Channels hold per-run state, so anything scheduling runs (the CLI, the
    runtime executor) passes a factory rather than an instance.  Closures
    cannot cross process boundaries or enter cache keys; this frozen
    dataclass can do both — calling it builds a fresh channel via
    :func:`make_channel`.  ``faults`` stays in its
    :func:`parse_fault_spec` string form for the same reason.

    ``ChannelSpec`` speaks the declarative spec interface shared with
    :class:`repro.scenario.GraphSpec` / :class:`repro.scenario.ProtocolSpec`:
    a compact string form (:meth:`from_string` / :meth:`describe`) and a
    lossless canonical-dict form (:meth:`to_dict` / :meth:`from_dict`) —
    the dict is what scenario cache keys hash, so it carries only the
    parameters the named channel actually consumes (``erasure_p`` on a
    classic channel cannot perturb the key)::

        ChannelSpec.from_string("erasure(0.05)")          # loss model
        ChannelSpec.from_string('jamming("jam@0-9:0,1")')  # fault schedule
        ChannelSpec.from_string("cd").describe()  # 'collision-detection'
    """

    name: str = "classic"
    erasure_p: float = 0.1
    faults: str | None = None

    #: Spec-interface discriminator (mirrors GraphSpec/ProtocolSpec).
    kind = "channel"

    def __call__(self) -> ChannelModel:
        return make_channel(self.name, erasure_p=self.erasure_p, faults=self.faults)

    # Alias so all spec classes share one verb for "make the live object".
    build = __call__

    @staticmethod
    def _canonical_name(name: str) -> str:
        key = name.strip().lower()
        if key == "cd":
            key = "collision-detection"
        if key not in CHANNELS:
            raise ValueError(
                f"unknown channel {name!r}; known channels: "
                f"{', '.join(sorted(CHANNELS))} (cd = collision-detection)"
            )
        return key

    @classmethod
    def from_string(cls, text: str) -> "ChannelSpec":
        """Parse the compact form: ``classic``, ``cd``, ``erasure(0.05)``,
        ``jamming("jam@0-9:0,1;crash@5:7")``."""
        from repro._util import parse_call

        name, args, kwargs = parse_call(text)
        name = cls._canonical_name(name)
        if name == "erasure":
            if len(args) > 1 or set(kwargs) - {"p"}:
                raise ValueError(f"erasure takes one probability, got {text!r}")
            p = args[0] if args else kwargs.get("p", 0.1)
            return cls(name=name, erasure_p=float(p))
        if name == "jamming":
            if len(args) > 1 or set(kwargs) - {"faults"}:
                raise ValueError(f"jamming takes one fault spec, got {text!r}")
            faults = args[0] if args else kwargs.get("faults")
            if faults is not None:
                parse_fault_spec(faults)  # validate the grammar eagerly
            return cls(name=name, faults=faults)
        if args or kwargs:
            raise ValueError(f"channel {name!r} takes no arguments, got {text!r}")
        return cls(name=name)

    def describe(self) -> str:
        """The canonical string form (``from_string(describe())`` is the
        identity on canonical specs)."""
        from repro._util import format_call

        name = self._canonical_name(self.name)
        if name == "erasure":
            return format_call(name, (self.erasure_p,))
        if name == "jamming" and self.faults:
            return format_call(name, (self.faults,))
        return name

    def to_dict(self) -> dict:
        """Canonical plain-data form — only the parameters the named
        channel consumes, so spec-equal channels always encode alike."""
        name = self._canonical_name(self.name)
        out: dict = {"name": name}
        if name == "erasure":
            out["erasure_p"] = float(self.erasure_p)
        if name == "jamming" and self.faults:
            out["faults"] = self.faults
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ChannelSpec":
        """Inverse of :meth:`to_dict`."""
        extra = set(data) - {"name", "erasure_p", "faults"}
        if extra:
            raise ValueError(f"unknown channel-spec fields {sorted(extra)}")
        return cls(
            name=cls._canonical_name(data.get("name", "classic")),
            erasure_p=float(data.get("erasure_p", 0.1)),
            faults=data.get("faults"),
        )
