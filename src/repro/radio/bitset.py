"""Packed-bitset kernels for the memory-lean broadcast engine.

The dense batch engine carries trial state as ``(n, T)`` bool matrices and
pays one sparse ``(n, T)`` integer product per round.  At datacenter scale
(``n = 10^5 .. 10^6``) that working set — and the scipy cast behind it —
dominates memory.  This module provides the word-packed alternative: trial
``t`` lives in bit ``t % 64`` of word column ``t // 64``, so transmit /
informed / received state is an ``(n, ceil(T/64))`` uint64 matrix, 8× the
trial density of a bool matrix, and reception is computed by *gathering
neighbour words over CSR* — no per-neighbour integer count matrix is ever
materialized.

Exactly-one detection uses the classic ``x & (x - 1)`` saturating-
accumulator trick in vectorized form: fold neighbour words into ``once``
(seen at least once) and ``twice`` (seen at least twice) via
``twice |= once & w; once |= w``; exactly-one is ``once & ~twice``.  The
fold iterates *degree slots* — slot ``k`` gathers the ``k``-th neighbour
of every vertex whose degree exceeds ``k`` (precomputed by
:meth:`repro.graphs.graph.CSRAdjacency.gather_plan`) — so the kernel runs
``max_degree`` vectorized gathers, not ``n`` Python loops.

Per-trial column counts (informed sizes, transmission energy) come from a
vectorized 64×64 bit transpose plus :func:`repro._util.popcount_u64`
(:func:`word_column_counts`), keeping per-round transients at ``O(n·W)``
words instead of an ``(n, T)`` unpack.

All functions are pure and layout-stable: ``pack_bool_matrix`` /
``unpack_words`` round-trip bit for bit on any platform (packing goes
through little-endian bytes explicitly).
"""

from __future__ import annotations

import math

import numpy as np

from repro._util import ceil_div, popcount_u64
from repro._util.dtypes import WORD_BITS, WORD_DTYPE
from repro._util.rng import _GOLDEN, _MURMUR_A, _MURMUR_B, _node_hashes, _splitmix

__all__ = [
    "TransmissionTally",
    "any_neighbor_words",
    "any_neighbor_words_at",
    "exactly_one_words",
    "full_mask_words",
    "neighbor_fold_words",
    "pack_bool_matrix",
    "packed_counter_coins",
    "scatter_neighbor_words",
    "unpack_words",
    "word_column_counts",
    "word_count",
]


def word_count(trials: int) -> int:
    """Words needed for ``trials`` trial bits: ``ceil(trials / 64)``
    (the :data:`repro._util.dtypes.WORD_BITS` layout)."""
    return ceil_div(int(trials), WORD_BITS)


def full_mask_words(trials: int) -> np.ndarray:
    """``(W,)`` uint64 with exactly the first ``trials`` bits set."""
    if trials < 0:
        raise ValueError(f"trials must be non-negative, got {trials}")
    w = word_count(trials)
    mask = np.full(w, WORD_DTYPE(0xFFFFFFFFFFFFFFFF), dtype=WORD_DTYPE)
    rem = trials % WORD_BITS
    if w and rem:
        mask[-1] = WORD_DTYPE((1 << rem) - 1)
    return mask


def pack_bool_matrix(mat: np.ndarray) -> np.ndarray:
    """Pack an ``(n, T)`` bool matrix into ``(n, ceil(T/64))`` uint64 words.

    Bit ``t % 64`` of word ``[v, t // 64]`` is ``mat[v, t]``; tail bits
    beyond ``T`` are zero.
    """
    mat = np.ascontiguousarray(mat, dtype=bool)
    if mat.ndim != 2:
        raise ValueError("expected an (n, T) bool matrix")
    n, trials = mat.shape
    w = word_count(trials)
    packed = np.packbits(mat, axis=1, bitorder="little")
    if packed.shape[1] != w * 8:
        packed = np.concatenate(
            [packed, np.zeros((n, w * 8 - packed.shape[1]), dtype=np.uint8)],
            axis=1,
        )
    # Little-endian byte view → native uint64 (no copy on LE platforms).
    return np.ascontiguousarray(packed).view("<u8").astype(np.uint64, copy=False)


def unpack_words(words: np.ndarray, trials: int) -> np.ndarray:
    """Inverse of :func:`pack_bool_matrix`: ``(n, W)`` words → ``(n, trials)``
    bool."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError("expected an (n, W) uint64 word matrix")
    n, w = words.shape
    if trials > w * 64:
        raise ValueError(f"cannot unpack {trials} trials from {w} words")
    as_bytes = words.astype("<u8", copy=False).view(np.uint8).reshape(n, w * 8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, :trials].astype(bool)


# Hacker's Delight bit-matrix transpose, vectorized over leading axes: at
# step j the mask selects the bit positions i with (i & j) == 0, and word
# pairs (k, k+j) with (k & j) == 0 swap their off-diagonal j-blocks.
_TRANSPOSE_STEPS = [
    (np.uint64(_j), np.uint64(sum(1 << i for i in range(64) if not (i & _j))))
    for _j in (32, 16, 8, 4, 2, 1)
]


def _transpose64(blocks: np.ndarray) -> None:
    """In-place bit-transpose of each trailing 64-word block.

    ``blocks[..., i]`` holds row ``i`` of a 64×64 bit matrix; afterwards
    ``blocks[..., t]`` holds column ``t`` of the original.  ``blocks``
    must be contiguous: the word pairs ``(k, k + j)`` with ``(k & j) == 0``
    are addressed as reshape *views* ``(..., 64/(2j), 2, j)``, so the
    swaps run in place with no index arrays and no gather copies.
    """
    lead = blocks.shape[:-1]
    for j, mask in _TRANSPOSE_STEPS:
        step = int(j)
        v = blocks.reshape(lead + (64 // (2 * step), 2, step))
        a = v[..., 0, :]
        b = v[..., 1, :]
        # LSB-first mirror of the textbook (MSB-first) swap: exchange
        # (word k, bit i+j) with (word k+j, bit i) for (i & j) == 0.
        t = ((a >> j) ^ b) & mask
        a ^= t << j
        b ^= t


#: ``_BYTE_BIT_COUNTS[b, i]`` is bit ``i`` of byte value ``b`` — one
#: 256×8 table turns a byte-value histogram into per-bit set counts.
_BYTE_BIT_COUNTS = ((np.arange(256, dtype=np.int64)[:, None] >> np.arange(8)) & 1)

#: Row threshold above which the byte-histogram path beats the bit
#: transpose (histogram cost is O(n) per byte column with no padding or
#: transpose shuffles; below this the 256-bin bincounts dominate).
_BINCOUNT_MIN_ROWS = 2048


def word_column_counts(words: np.ndarray) -> np.ndarray:
    """Per-trial-bit set counts of an ``(n, W)`` word matrix.

    Returns a ``(64 * W,)`` int64 vector: entry ``64*w + t`` is the number
    of rows whose word ``w`` has bit ``t`` set — i.e. the per-trial column
    sum, without ever unpacking an ``(n, T)`` bool matrix.  Small inputs
    run a vectorized 64×64 bit transpose over ``ceil(n/64)`` row blocks
    followed by one :func:`repro._util.popcount_u64` pass; large inputs
    histogram each little-endian byte column and contract the histogram
    against the byte→bit table (same counts, no padding or transpose).
    """
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError("expected an (n, W) uint64 word matrix")
    n, w = words.shape
    if n == 0 or w == 0:
        return np.zeros(64 * w, dtype=np.int64)
    if n >= _BINCOUNT_MIN_ROWS:
        as_bytes = np.ascontiguousarray(
            words.astype("<u8", copy=False)
        ).view(np.uint8).reshape(n, w * 8)
        counts = np.empty((w * 8, 8), dtype=np.int64)
        for j in range(w * 8):
            counts[j] = np.bincount(as_bytes[:, j], minlength=256) @ _BYTE_BIT_COUNTS
        return counts.reshape(w * 64)
    blocks = ceil_div(n, 64)
    padded = np.zeros((blocks * 64, w), dtype=np.uint64)
    padded[:n] = words
    # arr[b, w, i] = word w of row 64b+i; transpose turns bit t into the
    # per-trial word whose bit i marks row 64b+i.
    arr = np.ascontiguousarray(padded.reshape(blocks, 64, w).transpose(0, 2, 1))
    _transpose64(arr)
    counts = popcount_u64(arr).sum(axis=0, dtype=np.int64)  # (w, 64)
    return counts.reshape(w * 64)


#: Node rows per murmur-finalizer chunk: the chunk's uint32 lattice and
#: its shift/multiply temporaries stay L2-resident across the six passes.
_COIN_ROW_BLOCK = 1024

#: Node rows per packbits super-block (a multiple of the hash chunk):
#: comparisons land in one reused bool buffer and the byte-packing /
#: word-store dispatch overhead is paid once per super-block, not once
#: per cache chunk.
_COIN_PACK_BLOCK = 8192


def packed_counter_coins(
    keys: np.ndarray,
    round_index: int,
    n: int,
    p: float,
    rows: np.ndarray | None = None,
    active: np.ndarray | None = None,
) -> np.ndarray:
    """Counter-based Bernoulli coins, packed: ``(n, ceil(T/64))`` words.

    Bit ``t`` of row ``v`` equals
    ``counter_coins(keys[t:t+1], round_index, n, p)[v]`` exactly — the
    packed face of the engine's counter-randomness discipline.  Rows are
    consumed in small chunks so no ``(n, T)`` transient is ever
    materialized.

    ``rows`` (int node ids) and ``active`` (bool ``(T,)`` trial mask)
    restrict which bits are computed; the rest stay zero.  Callers use
    them when the skipped bits are masked away anyway (only informed nodes
    transmit, completed trials are frozen) — the computed bits are
    unchanged, the hash being a pure function of ``(key, round, node)``.

    Implementation is the fused face of
    :func:`repro._util.rng.counter_coin_blocks`: the same murmur
    finalizer runs over L2-sized row chunks (sharing the private mixing
    primitives of :mod:`repro._util.rng` — drift between the two would
    break the dense/bitset bit-identity), comparisons land in a reused
    bool buffer, and byte-packing is amortized over
    :data:`_COIN_PACK_BLOCK`-row super-blocks.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    trials = keys.shape[0]
    w = word_count(trials)
    out = np.zeros((n, w), dtype=np.uint64)
    threshold = math.ceil(p * 2.0**32)
    if threshold <= 0 or n == 0 or trials == 0:
        return out
    cols = None
    act_keys = keys
    if active is not None:
        active = np.asarray(active, dtype=bool)
        if active.shape != (trials,):
            raise ValueError(
                f"active mask has shape {active.shape} for {trials} trials"
            )
        if active.all():
            active = None
        else:
            cols = np.flatnonzero(active)
            act_keys = keys[cols]
            if cols.size == 0:
                return out
    if rows is not None:
        rows = np.asarray(rows)
        if rows.size == n:
            rows = None  # full node set: slices beat gathers
        elif rows.size == 0:
            return out
    count = n if rows is None else rows.size
    # Inactive trials' bit columns stay zero: comparisons only ever write
    # the active columns of the reused buffer.
    coins = np.zeros((min(_COIN_PACK_BLOCK, count), trials), dtype=bool)
    sure = threshold >= 2**32
    if sure:
        if cols is None:
            coins[:] = True
        else:
            coins[:, cols] = True
    else:
        thr = np.uint32(threshold)
        nh = _node_hashes(n)
        if rows is not None:
            nh = nh[rows]
        with np.errstate(over="ignore"):
            ctr = np.full(1, round_index + 1, dtype=np.uint64) * _GOLDEN
            kr = (_splitmix(act_keys + ctr) >> np.uint64(32)).astype(np.uint32)
        hbuf = np.empty(
            (min(_COIN_ROW_BLOCK, count), kr.shape[0]), dtype=np.uint32
        )
    for ps in range(0, count, _COIN_PACK_BLOCK):
        pm = min(_COIN_PACK_BLOCK, count - ps)
        if not sure:
            # Murmur passes wrap silently on arrays, so no errstate is
            # needed in the hot loop (matching counter_coin_blocks).
            for s in range(ps, ps + pm, _COIN_ROW_BLOCK):
                hi = min(s + _COIN_ROW_BLOCK, ps + pm)
                z = np.bitwise_xor(nh[s:hi], kr[None, :], out=hbuf[: hi - s])
                z ^= z >> np.uint32(16)
                z *= _MURMUR_A
                z ^= z >> np.uint32(13)
                z *= _MURMUR_B
                z ^= z >> np.uint32(16)
                if cols is None:
                    np.less(z, thr, out=coins[s - ps : hi - ps])
                else:
                    coins[s - ps : hi - ps, cols] = z < thr
        # Inlined pack_bool_matrix: the buffer is C-contiguous bool, so
        # the validation/copy branches would only add per-block overhead.
        # Same bit layout (little-endian bytes → uint64 words).
        pb = np.packbits(coins[:pm], axis=1, bitorder="little")
        if pb.shape[1] != w * 8:
            padded = np.zeros((pm, w * 8), dtype=np.uint8)
            padded[:, : pb.shape[1]] = pb
            pb = padded
        packed = pb.view("<u8")
        if rows is None:
            out[ps : ps + pm] = packed
        else:
            out[rows[ps : ps + pm]] = packed
    return out


class TransmissionTally:
    """Bit-sliced per-(node, trial) tallies over packed transmit rounds.

    Summing transmission energy per trial needs, per round, the column
    popcounts of the ``(n, W)`` transmit words — but only their *total*
    over the run is reported, so the per-round 64×64 transpose is wasted
    work.  This tally instead accumulates each round's words into binary
    counter planes (``planes[i]`` holds bit ``i`` of every ``(node,
    trial)`` cell's round count) with a vectorized ripple-carry add —
    three word ops per touched plane, and amortized O(1) planes touched
    per round since plane ``i`` only carries every ``2^i`` rounds.  The
    transpose/popcount reduction runs once per :meth:`drain` (every few
    dozen rounds, and at the end) over ``log2`` many planes instead of
    once per round.
    """

    def __init__(self) -> None:
        self._planes: list[np.ndarray] = []

    def add(self, words: np.ndarray) -> None:
        """Ripple-carry ``words`` (an ``(n, W)`` 0/1-bit layer) into the
        counter planes.  ``words`` itself is never mutated."""
        carry = words
        for plane in self._planes:
            nxt = plane & carry
            plane ^= carry
            carry = nxt
            if not carry.any():
                return
        if carry.any():
            self._planes.append(carry.copy() if carry is words else carry)

    def drain(self, trials: int) -> np.ndarray | None:
        """Per-trial totals accrued since the last drain (``(trials,)``
        int64), resetting the planes; ``None`` if nothing accrued."""
        if not self._planes:
            return None
        total = word_column_counts(self._planes[0])[:trials]
        for i, plane in enumerate(self._planes[1:], start=1):
            total = total + (word_column_counts(plane)[:trials] << np.int64(i))
        self._planes.clear()
        return total


def exactly_one_words(csr, transmit_words: np.ndarray) -> np.ndarray:
    """Per-vertex words marking trials with *exactly one* transmitting
    neighbour.

    ``csr`` is a :class:`repro.graphs.graph.CSRAdjacency`;
    ``transmit_words`` is the packed ``(n, W)`` transmit state.  Folds
    neighbour words through the ``once``/``twice`` saturating accumulators
    over the CSR gather plan — the bitset engine's reception kernel.
    """
    transmit_words = np.asarray(transmit_words, dtype=np.uint64)
    n, w = transmit_words.shape
    if n != csr.n:
        raise ValueError(f"word matrix has {n} rows for an {csr.n}-vertex graph")
    plan = csr.gather_plan()
    if plan[0] == "regular":
        slots = plan[1]
        if w == 1:
            # Single-word batches (T ≤ 64) fold flat 1-D gathers — the
            # fancy-indexing fast path, ~2× the 2-D column gathers.
            flat = np.ascontiguousarray(transmit_words[:, 0])
            once = np.zeros(n, dtype=np.uint64)
            twice = np.zeros(n, dtype=np.uint64)
            buf = np.empty(n, dtype=np.uint64)
            tmp = np.empty(n, dtype=np.uint64)
            for k in range(slots.shape[0]):
                # take(out=, mode="clip") skips the allocation and bounds
                # branch of fancy indexing (plan indices are always valid,
                # so clip semantics never engage), and the explicit out=
                # accumulator ops keep the fold allocation-free.
                nbr_words = np.take(flat, slots[k], out=buf, mode="clip")
                np.bitwise_and(once, nbr_words, out=tmp)
                np.bitwise_or(twice, tmp, out=twice)
                np.bitwise_or(once, nbr_words, out=once)
            np.invert(twice, out=twice)
            np.bitwise_and(once, twice, out=twice)
            return twice[:, None]
        once = np.zeros((n, w), dtype=np.uint64)
        twice = np.zeros((n, w), dtype=np.uint64)
        buf = np.empty((n, w), dtype=np.uint64)
        tmp = np.empty((n, w), dtype=np.uint64)
        for k in range(slots.shape[0]):
            nbr_words = np.take(transmit_words, slots[k], axis=0, out=buf, mode="clip")
            np.bitwise_and(once, nbr_words, out=tmp)
            np.bitwise_or(twice, tmp, out=twice)
            np.bitwise_or(once, nbr_words, out=once)
    else:
        once = np.zeros((n, w), dtype=np.uint64)
        twice = np.zeros((n, w), dtype=np.uint64)
        _, order, starts, slot_counts = plan
        indices = csr.indices
        for k, m in enumerate(slot_counts):
            rows = order[:m]
            nbr = indices[starts[:m] + np.int64(k)]
            nbr_words = transmit_words[nbr]
            seen = once[rows]
            twice[rows] |= seen & nbr_words
            once[rows] = seen | nbr_words
    return once & ~twice


def neighbor_fold_words(
    csr, transmit_words: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """The ``(once, twice)`` saturating accumulators of the exactly-one
    fold, returned unreduced.

    Same gather plan and fold as :func:`exactly_one_words`, but both
    ``(n, W)`` planes come back: bit ``t`` of ``once[v]`` marks ≥ 1
    transmitting neighbour, of ``twice[v]`` ≥ 2 — so exactly-one is
    ``once & ~twice`` and the collision-victim mask is ``twice & ~tw``.
    Telemetry uses this to get reception *and* collision structure from
    one fold (the engine re-derives exactly-one from the pair, so the
    channel's own fold is skipped on telemetry rounds).
    """
    transmit_words = np.asarray(transmit_words, dtype=np.uint64)
    n, w = transmit_words.shape
    if n != csr.n:
        raise ValueError(f"word matrix has {n} rows for an {csr.n}-vertex graph")
    plan = csr.gather_plan()
    if plan[0] == "regular":
        slots = plan[1]
        if w == 1:
            flat = np.ascontiguousarray(transmit_words[:, 0])
            once = np.zeros(n, dtype=np.uint64)
            twice = np.zeros(n, dtype=np.uint64)
            buf = np.empty(n, dtype=np.uint64)
            tmp = np.empty(n, dtype=np.uint64)
            for k in range(slots.shape[0]):
                nbr_words = np.take(flat, slots[k], out=buf, mode="clip")
                np.bitwise_and(once, nbr_words, out=tmp)
                np.bitwise_or(twice, tmp, out=twice)
                np.bitwise_or(once, nbr_words, out=once)
            return once[:, None], twice[:, None]
        once = np.zeros((n, w), dtype=np.uint64)
        twice = np.zeros((n, w), dtype=np.uint64)
        buf = np.empty((n, w), dtype=np.uint64)
        tmp = np.empty((n, w), dtype=np.uint64)
        for k in range(slots.shape[0]):
            nbr_words = np.take(
                transmit_words, slots[k], axis=0, out=buf, mode="clip"
            )
            np.bitwise_and(once, nbr_words, out=tmp)
            np.bitwise_or(twice, tmp, out=twice)
            np.bitwise_or(once, nbr_words, out=once)
        return once, twice
    once = np.zeros((n, w), dtype=np.uint64)
    twice = np.zeros((n, w), dtype=np.uint64)
    _, order, starts, slot_counts = plan
    indices = csr.indices
    for k, m in enumerate(slot_counts):
        rows = order[:m]
        nbr = indices[starts[:m] + np.int64(k)]
        nbr_words = transmit_words[nbr]
        seen = once[rows]
        twice[rows] |= seen & nbr_words
        once[rows] = seen | nbr_words
    return once, twice


def any_neighbor_words(csr, words: np.ndarray) -> np.ndarray:
    """Per-vertex OR over neighbour words: bit ``t`` of row ``v`` is set
    iff some neighbour of ``v`` has bit ``t`` set in ``words``.

    The packed face of ``(A @ x) > 0`` — a single OR-only fold over the
    CSR gather plan, one accumulator instead of the exactly-one pair.
    Telemetry uses it on the *received* words: a transmitter with no
    receiving neighbour is a wasted transmission.
    """
    words = np.asarray(words, dtype=np.uint64)
    n, w = words.shape
    if n != csr.n:
        raise ValueError(f"word matrix has {n} rows for an {csr.n}-vertex graph")
    plan = csr.gather_plan()
    if plan[0] == "regular":
        slots = plan[1]
        if w == 1:
            flat = np.ascontiguousarray(words[:, 0])
            acc = np.zeros(n, dtype=np.uint64)
            buf = np.empty(n, dtype=np.uint64)
            for k in range(slots.shape[0]):
                nbr_words = np.take(flat, slots[k], out=buf, mode="clip")
                np.bitwise_or(acc, nbr_words, out=acc)
            return acc[:, None]
        acc = np.zeros((n, w), dtype=np.uint64)
        buf = np.empty((n, w), dtype=np.uint64)
        for k in range(slots.shape[0]):
            nbr_words = np.take(words, slots[k], axis=0, out=buf, mode="clip")
            np.bitwise_or(acc, nbr_words, out=acc)
        return acc
    acc = np.zeros((n, w), dtype=np.uint64)
    _, order, starts, slot_counts = plan
    indices = csr.indices
    for k, m in enumerate(slot_counts):
        rows = order[:m]
        nbr = indices[starts[:m] + np.int64(k)]
        acc[rows] |= words[nbr]
    return acc


def any_neighbor_words_at(csr, words: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """:func:`any_neighbor_words` evaluated only at the given rows.

    Returns the ``(len(rows), W)`` restriction of the neighbour OR — the
    telemetry fast path: wasted transmissions only need the fold at
    transmitter rows, and decay keeps those sparse in most rounds, so the
    gather touches ``d * len(rows)`` edges instead of all ``d * n``.
    Exact by construction (the restriction of the same fold), so callers
    may mix it freely with the full fold without changing any count.
    """
    words = np.asarray(words, dtype=np.uint64)
    rows = np.asarray(rows, dtype=np.intp)
    n, w = words.shape
    if n != csr.n:
        raise ValueError(f"word matrix has {n} rows for an {csr.n}-vertex graph")
    if rows.size == 0:
        return np.zeros((0, w), dtype=np.uint64)
    plan = csr.gather_plan()
    if plan[0] != "regular":
        # Irregular degree plans (chains, C⁺) only arise at small n where
        # the full fold is already cheap — restrict its output instead.
        return any_neighbor_words(csr, words)[rows]
    slots = plan[1][:, rows]
    return _or_reduce_slots(words, slots)


def _or_reduce_slots(words: np.ndarray, slots: np.ndarray) -> np.ndarray:
    """OR-fold ``words`` over a ``(d, m)`` neighbour-id matrix."""
    w = words.shape[1]
    if slots.shape[0] == 0:
        return np.zeros((slots.shape[1], w), dtype=np.uint64)
    if w == 1:
        flat = np.ascontiguousarray(words[:, 0])
        acc = flat[slots[0]]
        buf = np.empty_like(acc)
        for k in range(1, slots.shape[0]):
            np.take(flat, slots[k], out=buf, mode="clip")
            np.bitwise_or(acc, buf, out=acc)
        return acc[:, None]
    acc = words[slots[0]]
    buf = np.empty_like(acc)
    for k in range(1, slots.shape[0]):
        np.take(words, slots[k], axis=0, out=buf, mode="clip")
        np.bitwise_or(acc, buf, out=acc)
    return acc


def scatter_neighbor_words(csr, words: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Push-side :func:`any_neighbor_words`: OR each listed row's word
    into all of that row's neighbours.

    ``rows`` must cover every nonzero row of ``words`` — then the result
    equals ``any_neighbor_words(csr, words)`` exactly (zero rows push
    nothing, and adjacency is symmetric, so pushing from the nonzero rows
    is the whole fold).  The scatter touches ``d * len(rows)`` edges, so
    it wins when the nonzero rows are scarce — the blast rounds, where
    nearly everyone transmits and nearly nobody receives.
    """
    words = np.asarray(words, dtype=np.uint64)
    rows = np.asarray(rows, dtype=np.intp)
    n, w = words.shape
    if n != csr.n:
        raise ValueError(f"word matrix has {n} rows for an {csr.n}-vertex graph")
    acc = np.zeros((n, w), dtype=np.uint64)
    if rows.size == 0:
        return acc
    plan = csr.gather_plan()
    if plan[0] != "regular":
        return any_neighbor_words(csr, words)
    nbrs = plan[1][:, rows]
    if w == 1:
        flat = acc[:, 0]
        np.bitwise_or.at(flat, nbrs.ravel(), np.broadcast_to(
            words[rows, 0], nbrs.shape
        ).ravel())
        return acc
    np.bitwise_or.at(acc, nbrs.reshape(-1), np.broadcast_to(
        words[rows], nbrs.shape + (w,)
    ).reshape(-1, w))
    return acc
