"""Fixed-probability (slotted-ALOHA-style) broadcast protocol.

Every informed processor transmits independently with a fixed probability
``p`` each round.  This is the degenerate single-scale special case of
Decay: it works when the frontier's neighbourhood degrees all sit near
``1/p`` and collapses when they don't — which is exactly what the Lemma 4.2
scale analysis predicts, making ALOHA the natural ablation baseline for the
Decay/sampling machinery (experiment E12).
"""

from __future__ import annotations

import numpy as np

from repro.radio.network import RadioNetwork
from repro.radio.protocols import BroadcastProtocol

__all__ = ["AlohaProtocol"]


class AlohaProtocol(BroadcastProtocol):
    """Transmit with fixed probability ``p`` while informed."""

    def __init__(self, p: float = 0.5) -> None:
        if not 0 < p <= 1:
            raise ValueError(f"p must lie in (0, 1], got {p}")
        self.p = p
        self.name = f"aloha[p={p:g}]"

    def transmitters(
        self, round_index: int, informed: np.ndarray, network: RadioNetwork
    ) -> np.ndarray:
        draw = self._rng.random(network.n) < self.p
        return draw & informed
