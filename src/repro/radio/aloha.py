"""Fixed-probability (slotted-ALOHA-style) broadcast protocol.

Every informed processor transmits independently with a fixed probability
``p`` each round.  This is the degenerate single-scale special case of
Decay: it works when the frontier's neighbourhood degrees all sit near
``1/p`` and collapses when they don't — which is exactly what the Lemma 4.2
scale analysis predicts, making ALOHA the natural ablation baseline for the
Decay/sampling machinery (experiment E12).

The coin flips come from :class:`~repro.radio.protocols.CounterCoinProtocol`,
so the batched execution path vectorizes across trials while reproducing
per-trial standalone streams bit for bit.
"""

from __future__ import annotations

from repro.radio.protocols import CounterCoinProtocol

__all__ = ["AlohaProtocol"]


class AlohaProtocol(CounterCoinProtocol):
    """Transmit with fixed probability ``p`` while informed."""

    def __init__(self, p: float = 0.5) -> None:
        if not 0 < p <= 1:
            raise ValueError(f"p must lie in (0, 1], got {p}")
        self.p = p
        self.name = f"aloha[p={p:g}]"

    def transmission_probability(self, round_index: int) -> float:
        return self.p
