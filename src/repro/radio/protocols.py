"""Broadcast protocol interface and the classic baselines.

A protocol decides, per round, which *informed* processors transmit.  Two
knowledge models appear in the experiments:

* **distributed** protocols (:class:`FloodingProtocol`,
  :class:`RoundRobinProtocol`, :class:`DecayProtocol`) use only a node's own
  informed state, its id, the round number and global constants (``n``) —
  the model under which the Section 5 lower bound holds;
* **centralized** protocols (:class:`~repro.radio.spokesman_broadcast.SpokesmanBroadcastProtocol`)
  are scheduling genies with full topology knowledge — they *upper-bound*
  what any distributed protocol could do, which is exactly the role the
  wireless-expansion positive results play.

Batched execution
-----------------
Every protocol also exposes a trial-vectorized face: :meth:`reset_batch`
prepares ``T`` independent per-trial streams and
:meth:`~BroadcastProtocol.transmitters_batch` maps an ``(n, T)`` informed
matrix to an ``(n, T)`` transmit matrix.  The base class provides a default
adapter that clones the protocol once per trial and loops the legacy
column-wise :meth:`~BroadcastProtocol.transmitters` — so third-party
protocols keep working unmodified, with exactly the semantics of ``T``
standalone runs.  The built-in baselines override both hooks with native
``(n, T)`` array code (counter-based randomness, no per-trial Python on the
hot path) that reproduces the per-trial streams bit for bit.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod

import numpy as np

from repro._util import (
    as_rng,
    ceil_log2,
    counter_coins,
    counter_uniforms,
    derive_keys,
)
from repro.radio.network import RadioNetwork

__all__ = [
    "BroadcastProtocol",
    "CollisionBackoffProtocol",
    "CounterCoinProtocol",
    "DecayProtocol",
    "FloodingProtocol",
    "RoundRobinProtocol",
]

_LEGACY_HOOKS = ("reset", "transmitters", "channel_feedback")
_BATCH_HOOKS = (
    "reset_batch",
    "transmitters_batch",
    "select_trials",
    "channel_feedback_batch",
)


def legacy_hooks_specialized(protocol: "BroadcastProtocol") -> bool:
    """True when ``protocol``'s class customizes the legacy single-run hooks
    more deeply than its batch hooks.

    A subclass of a vectorized built-in that overrides only ``transmitters``
    or ``reset`` would be silently ignored by the inherited vectorized
    ``transmitters_batch`` — so the engine routes such protocols through the
    per-trial clone adapter instead, which drives exactly the overridden
    legacy hooks.
    """
    mro = type(protocol).__mro__

    def depth(name: str) -> int:
        for i, cls in enumerate(mro):
            if name in cls.__dict__:
                return i
        return len(mro)

    return min(map(depth, _LEGACY_HOOKS)) < min(map(depth, _BATCH_HOOKS))


class BroadcastProtocol(ABC):
    """Transmission-scheduling policy for single-message broadcast."""

    #: Human-readable protocol name (used in experiment tables).
    name: str = "abstract"

    #: Whether :meth:`transmitters_words` natively implements this protocol
    #: on packed uint64 trial words.  Protocols without a native word face
    #: still run under the bitset engine through a pack/unpack adapter.
    words_native: bool = False

    def reset(self, network: RadioNetwork, source: int, rng) -> None:
        """Prepare per-run state.  Default: store the rng."""
        self._rng = as_rng(rng)

    @abstractmethod
    def transmitters(
        self, round_index: int, informed: np.ndarray, network: RadioNetwork
    ) -> np.ndarray:
        """Bool mask of processors transmitting in this round.

        The runner intersects the result with ``informed`` — a protocol can
        never transmit a message a node does not hold.
        """

    # ------------------------------------------------------------------
    # Batched (trial-vectorized) interface
    # ------------------------------------------------------------------
    def reset_batch(self, network: RadioNetwork, source: int, rngs) -> None:
        """Prepare per-run state for ``len(rngs)`` independent trials.

        Default adapter: deep-copy this protocol once per trial and reset
        each clone with its own generator, so any legacy protocol runs under
        the batch engine with the exact semantics (state *and* random
        stream) of ``len(rngs)`` standalone runs.  A single-trial batch
        (the :func:`~repro.radio.broadcast.run_broadcast` path) skips the
        clone and drives this instance directly, preserving the classic
        contract that a run's state lands on the protocol object itself.
        Vectorized protocols override this to derive whatever shared state
        they need instead.
        """
        if len(rngs) == 1:
            self._batch_clones = [self]
            self.reset(network, source, rngs[0])
            return
        template = copy.copy(self)
        template.__dict__.pop("_batch_clones", None)
        self._batch_clones = [copy.deepcopy(template) for _ in rngs]
        for clone, gen in zip(self._batch_clones, rngs):
            clone.reset(network, source, gen)

    def transmitters_batch(
        self, round_index: int, informed: np.ndarray, network: RadioNetwork
    ) -> np.ndarray:
        """``(n, T)`` bool transmit matrix for ``T`` trials in this round.

        Column ``t`` must equal what trial ``t``'s standalone run would
        transmit given ``informed[:, t]``.  Default adapter: loop the
        per-trial clones over the legacy :meth:`transmitters`.
        """
        return np.stack(
            [
                clone.transmitters(round_index, informed[:, t], network)
                for t, clone in enumerate(self._batch_clones)
            ],
            axis=1,
        )

    def transmitters_words(
        self,
        round_index: int,
        informed_words: np.ndarray,
        network: RadioNetwork,
        rows: np.ndarray | None = None,
        active: np.ndarray | None = None,
    ) -> np.ndarray:
        """``(n, W)`` packed transmit words for the bitset engine.

        Bit ``t % 64`` of word column ``t // 64`` must equal column ``t``
        of :meth:`transmitters_batch` on the unpacked informed matrix —
        except where the engine masks anyway: ``rows`` (int node ids) and
        ``active`` (bool ``(T,)`` trial mask) are the engine's guarantee
        that bits outside ``rows × active`` will be ANDed away (only
        informed nodes transmit; completed trials are frozen), so a
        protocol may leave them zero and skip the work.  Only called when
        :attr:`words_native`; the engine routes other protocols through a
        pack/unpack adapter instead.
        """
        raise NotImplementedError(
            f"protocol {self.name!r} has no native packed-word face"
        )

    def select_trials(self, keep: np.ndarray) -> None:
        """Drop per-trial batch state for trials not in ``keep``.

        The engine compacts completed trials out of the working set;
        ``keep`` is a bool mask over the *current* trial columns.  The
        default adapter narrows its clone list; vectorized protocols
        override to subset their own per-trial state (a protocol with no
        per-trial state can ignore this — the default is a safe no-op
        when no clones exist).
        """
        clones = getattr(self, "_batch_clones", None)
        if clones is not None:
            self._batch_clones = [
                clone for clone, k in zip(clones, keep) if k
            ]

    # ------------------------------------------------------------------
    # Channel feedback (collision detection and richer models)
    # ------------------------------------------------------------------
    def channel_feedback(
        self, round_index: int, feedback: np.ndarray, network: RadioNetwork
    ) -> None:
        """Per-round channel feedback for one trial (default: ignored).

        Under a feedback-providing channel (e.g.
        :class:`~repro.radio.channel.CollisionDetection`) the runner calls
        this after every round with the channel's ``(n,)`` feedback mask —
        the extra bit the classic model withholds.  Feedback-blind
        protocols inherit this no-op and behave identically under classic
        and collision-detection channels.
        """

    def channel_feedback_batch(
        self, round_index: int, feedback: np.ndarray, network: RadioNetwork
    ) -> None:
        """Per-round channel feedback for a whole batch.

        ``feedback`` is the channel's ``(n, T)`` mask.  Default adapter:
        forward column ``t`` to clone ``t``'s :meth:`channel_feedback`
        (a no-op when there are no clones — i.e. for vectorized protocols
        that do not override this hook).
        """
        clones = getattr(self, "_batch_clones", None)
        if clones is None:
            return
        for t, clone in enumerate(clones):
            clone.channel_feedback(round_index, feedback[:, t], network)


class FloodingProtocol(BroadcastProtocol):
    """Everyone who knows the message shouts every round.

    On the ``C⁺`` example this deadlocks after round one (all collisions) —
    the paper's opening observation.
    """

    name = "flooding"
    words_native = True

    def transmitters(
        self, round_index: int, informed: np.ndarray, network: RadioNetwork
    ) -> np.ndarray:
        return informed.copy()

    def reset_batch(self, network: RadioNetwork, source: int, rngs) -> None:
        pass

    def transmitters_batch(
        self, round_index: int, informed: np.ndarray, network: RadioNetwork
    ) -> np.ndarray:
        return informed.copy()

    def transmitters_words(
        self,
        round_index: int,
        informed_words: np.ndarray,
        network: RadioNetwork,
        rows: np.ndarray | None = None,
        active: np.ndarray | None = None,
    ) -> np.ndarray:
        return informed_words.copy()


class RoundRobinProtocol(BroadcastProtocol):
    """Processor ``v`` transmits iff ``v ≡ round (mod n)``.

    Collision-free and deterministic, hence it always completes, but needs
    ``Θ(n)`` rounds per hop — the slow-but-safe baseline.
    """

    name = "round-robin"
    words_native = True

    def transmitters(
        self, round_index: int, informed: np.ndarray, network: RadioNetwork
    ) -> np.ndarray:
        mask = np.zeros(network.n, dtype=bool)
        mask[round_index % network.n] = True
        return mask & informed

    def reset_batch(self, network: RadioNetwork, source: int, rngs) -> None:
        pass

    def transmitters_batch(
        self, round_index: int, informed: np.ndarray, network: RadioNetwork
    ) -> np.ndarray:
        mask = np.zeros_like(informed)
        mask[round_index % network.n, :] = True
        return mask & informed

    def transmitters_words(
        self,
        round_index: int,
        informed_words: np.ndarray,
        network: RadioNetwork,
        rows: np.ndarray | None = None,
        active: np.ndarray | None = None,
    ) -> np.ndarray:
        mask = np.zeros_like(informed_words)
        v = round_index % network.n
        mask[v, :] = informed_words[v, :]
        return mask


class CounterCoinProtocol(BroadcastProtocol):
    """Base for protocols whose transmitters are independent Bernoulli
    coins with some per-round probability.

    Randomness is counter-based: :meth:`reset` derives one 64-bit key from
    the run's generator and each round's coin flips are
    ``counter_coins(key, round, node, p)`` — a pure function, so the
    batched path evaluates all trials' flips in one ``(n, T)`` array op
    while agreeing bit for bit with per-trial standalone runs.  Subclasses
    implement :meth:`transmission_probability`.
    """

    words_native = True

    def reset(self, network: RadioNetwork, source: int, rng) -> None:
        super().reset(network, source, rng)
        self._keys = derive_keys([self._rng])

    def reset_batch(self, network: RadioNetwork, source: int, rngs) -> None:
        self._keys = derive_keys(rngs)

    def select_trials(self, keep: np.ndarray) -> None:
        self._keys = self._keys[keep]

    @abstractmethod
    def transmission_probability(self, round_index: int) -> float:
        """Probability with which each informed node transmits this round."""

    def _draw(self, round_index: int, informed: np.ndarray) -> np.ndarray:
        coins = counter_coins(
            self._keys,
            round_index,
            informed.shape[0],
            self.transmission_probability(round_index),
        )
        if informed.ndim == 1:
            coins = coins[:, 0]
        return coins & informed

    def transmitters(
        self, round_index: int, informed: np.ndarray, network: RadioNetwork
    ) -> np.ndarray:
        return self._draw(round_index, informed)

    def transmitters_batch(
        self, round_index: int, informed: np.ndarray, network: RadioNetwork
    ) -> np.ndarray:
        return self._draw(round_index, informed)

    def transmitters_words(
        self,
        round_index: int,
        informed_words: np.ndarray,
        network: RadioNetwork,
        rows: np.ndarray | None = None,
        active: np.ndarray | None = None,
    ) -> np.ndarray:
        from repro.radio.bitset import packed_counter_coins

        if rows is None:
            # Only informed nodes can transmit — skip the hash elsewhere.
            rows = np.flatnonzero(informed_words.any(axis=1))
        coins = packed_counter_coins(
            self._keys,
            round_index,
            informed_words.shape[0],
            self.transmission_probability(round_index),
            rows=rows,
            active=active,
        )
        coins &= informed_words
        return coins


class DecayProtocol(CounterCoinProtocol):
    """The Bar-Yehuda–Goldreich–Itai Decay protocol [5].

    Time is divided into phases of ``k = ⌈log₂ n⌉ + 1`` rounds; in round
    ``i`` of each phase (``i = 0..k−1``) every informed processor transmits
    independently with probability ``2^{-i}``.  Whatever the local collision
    picture, a node with an informed neighbour receives within ``O(log n)``
    phases w.h.p. — the classical mechanism the paper's Lemma 4.2 sampling
    argument mirrors.
    """

    name = "decay"

    def __init__(self, phase_length: int | None = None) -> None:
        self.phase_length = phase_length

    def _resolve_phase_length(self, network: RadioNetwork) -> int:
        return (
            self.phase_length
            if self.phase_length is not None
            else ceil_log2(max(2, network.n)) + 1
        )

    def reset(self, network: RadioNetwork, source: int, rng) -> None:
        super().reset(network, source, rng)
        self._k = self._resolve_phase_length(network)

    def reset_batch(self, network: RadioNetwork, source: int, rngs) -> None:
        super().reset_batch(network, source, rngs)
        self._k = self._resolve_phase_length(network)

    def transmission_probability(self, round_index: int) -> float:
        return 2.0 ** (-(round_index % self._k))


class CollisionBackoffProtocol(BroadcastProtocol):
    """Congestion-sensing backoff that exploits collision-detection feedback.

    Decay probes every scale blindly because the classic channel gives no
    feedback.  Under :class:`~repro.radio.channel.CollisionDetection` each
    processor learns, per round it stays silent, whether it stood in a
    collision — a local congestion estimate.  Every processor keeps a
    backoff level ``ℓ_v`` (transmit probability ``2^{-ℓ_v}`` while
    informed) updated AIMD-style each round:

    * it transmitted → raise the level (self-throttle; a transmitter gets
      no feedback, so it pessimistically assumes contention),
    * silent and heard a collision → raise the level (congested
      neighbourhood),
    * silent and heard no collision → lower the level (quiet channel,
      speed back up).

    In quiet neighbourhoods levels fall to zero (every free round is
    used); in congested ones they climb until the contention resolves —
    the adaptive rate Decay sweeps blindly.  Under a feedback-less channel
    the hooks never fire, levels stay at zero, and the protocol
    degenerates to flooding — the feedback bit *is* the mechanism.

    Transmission coins follow the counter-based discipline: one uniform
    per ``(trial key, round, node)`` compared against the per-node
    probability, so batched and standalone runs agree bit for bit (levels
    evolve identically because feedback is a pure function of the
    transmit history).
    """

    name = "collision-backoff"

    def __init__(self, max_level: int | None = None) -> None:
        self.max_level = max_level

    def _resolve_max_level(self, network: RadioNetwork) -> int:
        return (
            self.max_level
            if self.max_level is not None
            else ceil_log2(max(2, network.n)) + 1
        )

    def reset(self, network: RadioNetwork, source: int, rng) -> None:
        super().reset(network, source, rng)
        self._keys = derive_keys([self._rng])
        self._levels = np.zeros((network.n, 1), dtype=np.int16)
        self._last_mask = np.zeros((network.n, 1), dtype=bool)
        self._cap = self._resolve_max_level(network)

    def reset_batch(self, network: RadioNetwork, source: int, rngs) -> None:
        self._keys = derive_keys(rngs)
        self._levels = np.zeros((network.n, len(rngs)), dtype=np.int16)
        self._last_mask = np.zeros((network.n, len(rngs)), dtype=bool)
        self._cap = self._resolve_max_level(network)

    def select_trials(self, keep: np.ndarray) -> None:
        self._keys = self._keys[keep]
        self._levels = self._levels[:, keep]
        self._last_mask = self._last_mask[:, keep]

    def _draw(self, round_index: int, informed: np.ndarray) -> np.ndarray:
        uniforms = counter_uniforms(self._keys, round_index, informed.shape[0])
        coins = uniforms < np.ldexp(1.0, -self._levels)
        if informed.ndim == 1:
            mask = coins[:, 0] & informed
            self._last_mask = mask[:, None]
        else:
            mask = coins & informed
            self._last_mask = mask
        return mask

    def transmitters(
        self, round_index: int, informed: np.ndarray, network: RadioNetwork
    ) -> np.ndarray:
        return self._draw(round_index, informed)

    def transmitters_batch(
        self, round_index: int, informed: np.ndarray, network: RadioNetwork
    ) -> np.ndarray:
        return self._draw(round_index, informed)

    def _apply_feedback(self, collided: np.ndarray) -> None:
        raised = np.minimum(self._levels + 1, self._cap)
        eased = np.maximum(self._levels - 1, 0)
        self._levels = np.where(
            collided | self._last_mask, raised, eased
        ).astype(np.int16)

    def channel_feedback(
        self, round_index: int, feedback: np.ndarray, network: RadioNetwork
    ) -> None:
        self._apply_feedback(feedback[:, None])

    def channel_feedback_batch(
        self, round_index: int, feedback: np.ndarray, network: RadioNetwork
    ) -> None:
        self._apply_feedback(feedback)
