"""Broadcast protocol interface and the classic baselines.

A protocol decides, per round, which *informed* processors transmit.  Two
knowledge models appear in the experiments:

* **distributed** protocols (:class:`FloodingProtocol`,
  :class:`RoundRobinProtocol`, :class:`DecayProtocol`) use only a node's own
  informed state, its id, the round number and global constants (``n``) —
  the model under which the Section 5 lower bound holds;
* **centralized** protocols (:class:`~repro.radio.spokesman_broadcast.SpokesmanBroadcastProtocol`)
  are scheduling genies with full topology knowledge — they *upper-bound*
  what any distributed protocol could do, which is exactly the role the
  wireless-expansion positive results play.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro._util import as_rng, ceil_log2
from repro.radio.network import RadioNetwork

__all__ = [
    "BroadcastProtocol",
    "DecayProtocol",
    "FloodingProtocol",
    "RoundRobinProtocol",
]


class BroadcastProtocol(ABC):
    """Transmission-scheduling policy for single-message broadcast."""

    #: Human-readable protocol name (used in experiment tables).
    name: str = "abstract"

    def reset(self, network: RadioNetwork, source: int, rng) -> None:
        """Prepare per-run state.  Default: store the rng."""
        self._rng = as_rng(rng)

    @abstractmethod
    def transmitters(
        self, round_index: int, informed: np.ndarray, network: RadioNetwork
    ) -> np.ndarray:
        """Bool mask of processors transmitting in this round.

        The runner intersects the result with ``informed`` — a protocol can
        never transmit a message a node does not hold.
        """


class FloodingProtocol(BroadcastProtocol):
    """Everyone who knows the message shouts every round.

    On the ``C⁺`` example this deadlocks after round one (all collisions) —
    the paper's opening observation.
    """

    name = "flooding"

    def transmitters(
        self, round_index: int, informed: np.ndarray, network: RadioNetwork
    ) -> np.ndarray:
        return informed.copy()


class RoundRobinProtocol(BroadcastProtocol):
    """Processor ``v`` transmits iff ``v ≡ round (mod n)``.

    Collision-free and deterministic, hence it always completes, but needs
    ``Θ(n)`` rounds per hop — the slow-but-safe baseline.
    """

    name = "round-robin"

    def transmitters(
        self, round_index: int, informed: np.ndarray, network: RadioNetwork
    ) -> np.ndarray:
        mask = np.zeros(network.n, dtype=bool)
        mask[round_index % network.n] = True
        return mask & informed


class DecayProtocol(BroadcastProtocol):
    """The Bar-Yehuda–Goldreich–Itai Decay protocol [5].

    Time is divided into phases of ``k = ⌈log₂ n⌉ + 1`` rounds; in round
    ``i`` of each phase (``i = 0..k−1``) every informed processor transmits
    independently with probability ``2^{-i}``.  Whatever the local collision
    picture, a node with an informed neighbour receives within ``O(log n)``
    phases w.h.p. — the classical mechanism the paper's Lemma 4.2 sampling
    argument mirrors.
    """

    name = "decay"

    def __init__(self, phase_length: int | None = None) -> None:
        self.phase_length = phase_length

    def reset(self, network: RadioNetwork, source: int, rng) -> None:
        super().reset(network, source, rng)
        self._k = (
            self.phase_length
            if self.phase_length is not None
            else ceil_log2(max(2, network.n)) + 1
        )

    def transmitters(
        self, round_index: int, informed: np.ndarray, network: RadioNetwork
    ) -> np.ndarray:
        i = round_index % self._k
        draw = self._rng.random(network.n) < 2.0 ** (-i)
        return draw & informed
