"""Detailed broadcast tracing: who transmitted, who collided, who heard.

The plain runner (:mod:`repro.radio.broadcast`) records only progress; the
collision *structure* is what the paper is about, so the traced runner also
counts, per round:

* transmitters,
* successful receptions (exactly one transmitting neighbour),
* collision victims (silent processors with ≥ 2 transmitting neighbours —
  the vertices wireless expansion is designed to rescue),
* wasted transmissions (transmitters none of whose silent neighbours heard
  anything from them... approximated as transmitters with zero unique
  receivers).

Experiments use these to show *why* flooding dies on ``C⁺`` (100% of the
frontier collides) while the spokesman schedule keeps the collision rate
near zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng
from repro.graphs.graph import Graph
from repro.radio.broadcast import _default_max_rounds
from repro.radio.channel import ChannelModel, ClassicCollision
from repro.radio.network import RadioNetwork
from repro.radio.protocols import BroadcastProtocol

__all__ = ["DetailedTrace", "RoundRecord", "run_broadcast_traced"]


@dataclass(frozen=True)
class RoundRecord:
    """Collision accounting for one round."""

    round_index: int
    transmitters: int
    receptions: int
    newly_informed: int
    collision_victims: int

    @property
    def collision_rate(self) -> float:
        """Fraction of contacted silent processors that collided
        (``victims / (victims + receptions)``; 0 when nobody was contacted)."""
        contacted = self.collision_victims + self.receptions
        return self.collision_victims / contacted if contacted else 0.0


@dataclass(frozen=True)
class DetailedTrace:
    """A full traced broadcast execution."""

    completed: bool
    rounds: tuple[RoundRecord, ...]
    first_informed_round: np.ndarray

    @property
    def total_transmissions(self) -> int:
        """Energy: total (node, round) transmissions."""
        return sum(r.transmitters for r in self.rounds)

    @property
    def total_collision_victims(self) -> int:
        """Total collision events over the run."""
        return sum(r.collision_victims for r in self.rounds)

    @property
    def mean_collision_rate(self) -> float:
        """Average per-round collision rate over rounds with contact."""
        rates = [
            r.collision_rate
            for r in self.rounds
            if (r.collision_victims + r.receptions) > 0
        ]
        return float(np.mean(rates)) if rates else 0.0


def run_broadcast_traced(
    graph: Graph,
    protocol: BroadcastProtocol,
    source: int = 0,
    max_rounds: int | None = None,
    seed=None,
    channel: ChannelModel | None = None,
) -> DetailedTrace:
    """Like :func:`repro.radio.broadcast.run_broadcast` but with per-round
    collision accounting.

    ``channel`` selects the reception model; collision-victim counts are
    always computed against the *base* adjacency (the classic collision
    picture), so lossy channels show as receptions < contacts.
    """
    if not 0 <= source < graph.n:
        raise ValueError(f"source {source} out of range")
    network = RadioNetwork(graph, channel=channel)
    gen = as_rng(seed)
    protocol.reset(network, source, gen)
    network.channel.reset(network, [gen])
    if max_rounds is None:
        max_rounds = _default_max_rounds(graph.n)

    informed = np.zeros(graph.n, dtype=bool)
    informed[source] = True
    first_round = np.full(graph.n, -1, dtype=np.int64)
    first_round[source] = 0
    records: list[RoundRecord] = []

    round_index = 0
    while round_index < max_rounds and not informed.all():
        mask = protocol.transmitters(round_index, informed, network) & informed
        mask = network.channel.effective_transmitters(round_index, mask)
        counts = graph.adjacency @ mask.astype(np.int32)
        if type(network.channel) is ClassicCollision:
            # Classic reception is a pure function of the counts already
            # computed for collision accounting — skip the second product.
            received = (counts == 1) & ~mask
        else:
            received = network.step(mask, round_index)
            feedback = network.channel.feedback
            if feedback is not None:
                protocol.channel_feedback(round_index, feedback, network)
        victims = (counts >= 2) & ~mask
        fresh = received & ~informed
        round_index += 1
        informed |= fresh
        first_round[fresh] = round_index
        records.append(
            RoundRecord(
                round_index=round_index,
                transmitters=int(mask.sum()),
                receptions=int(received.sum()),
                newly_informed=int(fresh.sum()),
                collision_victims=int(victims.sum()),
            )
        )

    return DetailedTrace(
        completed=bool(informed.all()),
        rounds=tuple(records),
        first_informed_round=first_round,
    )
