"""Detailed broadcast tracing: who transmitted, who collided, who heard.

The plain runner (:mod:`repro.radio.broadcast`) records only progress; the
collision *structure* is what the paper is about, so the traced runner also
counts, per round:

* transmitters,
* successful receptions (exactly one transmitting neighbour, surviving the
  active channel),
* collision victims (silent processors with ≥ 2 transmitting neighbours —
  the vertices wireless expansion is designed to rescue),
* wasted transmissions (transmitters none of whose neighbours received
  this round — a receiver hears its unique transmitting neighbour, so a
  transmitter with no receiving neighbour delivered to nobody).

Experiments use these to show *why* flooding dies on ``C⁺`` (100% of the
frontier collides) while the spokesman schedule keeps the collision rate
near zero.

This module is a thin ``T = 1`` view over the batched telemetry path:
:func:`run_broadcast_traced` runs ``run_broadcast_batch(..., trials=1,
telemetry=True)`` and unpacks the :class:`~repro.obs.telemetry.RoundTelemetry`
column — so the serial tracer, the batch engines, and ``repro trace`` all
report the same numbers by construction.  Semantics preserved from the
legacy serial loop: collision victims are always counted against the
*base* adjacency (lossy channels show as receptions < contacts), and
channel feedback still reaches ``protocol.channel_feedback``.  One
deliberate alignment: completion now follows the channel's coverage
targets (crash-fault channels no longer wait for dead processors), the
same rule every other runner uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng
from repro.graphs.graph import Graph
from repro.obs.telemetry import RoundTelemetry
from repro.radio.broadcast import run_broadcast_batch
from repro.radio.channel import ChannelModel
from repro.radio.protocols import BroadcastProtocol

__all__ = ["DetailedTrace", "RoundRecord", "run_broadcast_traced"]


@dataclass(frozen=True)
class RoundRecord:
    """Collision accounting for one round."""

    round_index: int
    transmitters: int
    receptions: int
    newly_informed: int
    collision_victims: int
    # Transmitters with zero receiving neighbours this round (defaulted so
    # pre-existing positional construction keeps working).
    wasted_transmissions: int = 0

    @property
    def collision_rate(self) -> float:
        """Fraction of contacted silent processors that collided
        (``victims / (victims + receptions)``; 0 when nobody was contacted)."""
        contacted = self.collision_victims + self.receptions
        return self.collision_victims / contacted if contacted else 0.0

    @property
    def wasted_rate(self) -> float:
        """Fraction of this round's transmissions that reached nobody
        (0 when nobody transmitted)."""
        return (
            self.wasted_transmissions / self.transmitters
            if self.transmitters
            else 0.0
        )


@dataclass(frozen=True)
class DetailedTrace:
    """A full traced broadcast execution."""

    completed: bool
    rounds: tuple[RoundRecord, ...]
    first_informed_round: np.ndarray

    @property
    def total_transmissions(self) -> int:
        """Energy: total (node, round) transmissions."""
        return sum(r.transmitters for r in self.rounds)

    @property
    def total_collision_victims(self) -> int:
        """Total collision events over the run."""
        return sum(r.collision_victims for r in self.rounds)

    @property
    def total_wasted_transmissions(self) -> int:
        """Total transmissions that delivered to nobody."""
        return sum(r.wasted_transmissions for r in self.rounds)

    @property
    def mean_collision_rate(self) -> float:
        """Average per-round collision rate over rounds with contact."""
        rates = [
            r.collision_rate
            for r in self.rounds
            if (r.collision_victims + r.receptions) > 0
        ]
        return float(np.mean(rates)) if rates else 0.0


def run_broadcast_traced(
    graph: Graph,
    protocol: BroadcastProtocol,
    source: int = 0,
    max_rounds: int | None = None,
    seed=None,
    channel: ChannelModel | None = None,
) -> DetailedTrace:
    """Like :func:`repro.radio.broadcast.run_broadcast` but with per-round
    collision accounting.

    ``channel`` selects the reception model; collision-victim counts are
    always computed against the *base* adjacency (the classic collision
    picture), so lossy channels show as receptions < contacts.  Wasted
    transmissions count transmitters with no receiving neighbour.

    Implemented as the ``T = 1`` column of the batched telemetry engine —
    seeded like :func:`~repro.radio.broadcast.run_broadcast`, so the trace
    describes exactly the execution the plain runner would produce.
    """
    if not 0 <= source < graph.n:
        raise ValueError(f"source {source} out of range")
    batch = run_broadcast_batch(
        graph,
        protocol,
        trials=1,
        source=source,
        max_rounds=max_rounds,
        trial_rngs=[as_rng(seed)],
        channel=channel,
        telemetry=True,
    )
    tel = RoundTelemetry.from_batch(batch)
    records = tuple(
        RoundRecord(
            round_index=r + 1,
            transmitters=int(tel.transmitters[r, 0]),
            receptions=int(tel.receptions[r, 0]),
            newly_informed=int(tel.newly_informed[r, 0]),
            collision_victims=int(tel.collision_victims[r, 0]),
            wasted_transmissions=int(tel.wasted_transmissions[r, 0]),
        )
        for r in range(tel.rounds)
    )
    return DetailedTrace(
        completed=bool(batch.completed[0]),
        rounds=records,
        first_informed_round=batch.first_informed_round[:, 0].copy(),
    )
