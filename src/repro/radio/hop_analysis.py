"""Per-hop timing statistics for the Section 5 concentration argument.

The proof of the ``Ω(D·log(n/D))`` bound treats the portal-to-portal times
``R_1, …, R_{D/2}`` as i.i.d. random variables, each ``Ω(log(n/D))`` with
constant probability, and applies a Chernoff bound to get the
high-probability statement.  This module measures the empirical ``R_i``
distribution over repeated runs so the experiments can check both
ingredients: the per-hop location (mean ≈ ``Θ(log 2s)``) and the
concentration of the sum (relative spread shrinking with the number of
hops, as independence predicts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng, spawn_seeds
from repro.radio.lower_bound import measure_chain_broadcast
from repro.radio.protocols import BroadcastProtocol

__all__ = ["HopTimeStudy", "hop_time_study"]


@dataclass(frozen=True)
class HopTimeStudy:
    """Empirical hop-time distribution over repeated chain broadcasts.

    Attributes
    ----------
    s, num_layers:
        Chain parameters.
    hop_times:
        ``(repetitions, num_layers)`` array of per-hop round counts
        ``R_i`` (time between consecutive portal arrivals).
    totals:
        Per-repetition total rounds to the last portal (``Σ_i R_i``).
    """

    s: int
    num_layers: int
    hop_times: np.ndarray
    totals: np.ndarray

    @property
    def hop_mean(self) -> float:
        """Mean hop cost — the proof's ``Ω(log(n/D))`` location."""
        return float(self.hop_times.mean())

    @property
    def hop_std(self) -> float:
        """Across-hops-and-runs standard deviation."""
        return float(self.hop_times.std(ddof=1))

    @property
    def total_relative_spread(self) -> float:
        """``std/mean`` of the total — shrinks as hops accumulate if the
        ``R_i`` concentrate (the Chernoff mechanism)."""
        return float(self.totals.std(ddof=1) / self.totals.mean())

    def hop_autocorrelation(self) -> float:
        """Lag-1 correlation between consecutive hops within a run.

        Near zero if the ``R_i`` behave independently, as the proof
        assumes (portals are fresh uniform choices per layer).
        """
        a = self.hop_times[:, :-1].ravel()
        b = self.hop_times[:, 1:].ravel()
        if a.size < 2 or a.std() == 0 or b.std() == 0:
            return 0.0
        return float(np.corrcoef(a, b)[0, 1])


def hop_time_study(
    s: int,
    num_layers: int,
    protocol_factory,
    repetitions: int = 10,
    rng=None,
) -> HopTimeStudy:
    """Run ``repetitions`` chain broadcasts and collect hop times.

    ``protocol_factory`` builds a fresh protocol per run (protocols hold
    per-run state).  Each repetition uses an independent chain (fresh
    portal choices) and an independent protocol stream, matching the
    proof's probability space.
    """
    if repetitions < 2:
        raise ValueError("need at least 2 repetitions for spread statistics")
    seeds = spawn_seeds(as_rng(rng), 2 * repetitions)
    hops = np.zeros((repetitions, num_layers), dtype=np.int64)
    totals = np.zeros(repetitions, dtype=np.int64)
    for rep in range(repetitions):
        protocol: BroadcastProtocol = protocol_factory()
        m = measure_chain_broadcast(
            s,
            num_layers,
            protocol,
            rng=seeds[2 * rep],
            chain_rng=seeds[2 * rep + 1],
        )
        if not m.completed:
            raise RuntimeError(
                f"broadcast did not complete (rep {rep}); raise max_rounds"
            )
        hops[rep] = m.per_hop_rounds
        totals[rep] = int(m.portal_rounds[-1])
    return HopTimeStudy(
        s=s, num_layers=num_layers, hop_times=hops, totals=totals
    )
