"""Per-hop timing statistics for the Section 5 concentration argument.

The proof of the ``Ω(D·log(n/D))`` bound treats the portal-to-portal times
``R_1, …, R_{D/2}`` as i.i.d. random variables, each ``Ω(log(n/D))`` with
constant probability, and applies a Chernoff bound to get the
high-probability statement.  This module measures the empirical ``R_i``
distribution over repeated runs so the experiments can check both
ingredients: the per-hop location (mean ≈ ``Θ(log 2s)``) and the
concentration of the sum (relative spread shrinking with the number of
hops, as independence predicts).

Repetitions run through the batched broadcast engine: with the default
``trials_per_chain=1`` every repetition owns an independent chain (fresh
portal choices — the proof's full probability space); raising
``trials_per_chain`` amortizes the simulation across protocol trials that
share a chain, trading a little portal diversity for an
order-of-magnitude throughput win on large studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng, spawn_seeds
from repro.radio.lower_bound import measure_chain_broadcast_batch

__all__ = ["HopTimeStudy", "hop_time_study"]


@dataclass(frozen=True)
class HopTimeStudy:
    """Empirical hop-time distribution over repeated chain broadcasts.

    Attributes
    ----------
    s, num_layers:
        Chain parameters.
    hop_times:
        ``(repetitions, num_layers)`` array of per-hop round counts
        ``R_i`` (time between consecutive portal arrivals).
    totals:
        Per-repetition total rounds to the last portal (``Σ_i R_i``).
    """

    s: int
    num_layers: int
    hop_times: np.ndarray
    totals: np.ndarray

    @property
    def hop_mean(self) -> float:
        """Mean hop cost — the proof's ``Ω(log(n/D))`` location."""
        return float(self.hop_times.mean())

    @property
    def hop_std(self) -> float:
        """Across-hops-and-runs standard deviation."""
        return float(self.hop_times.std(ddof=1))

    @property
    def total_relative_spread(self) -> float:
        """``std/mean`` of the total — shrinks as hops accumulate if the
        ``R_i`` concentrate (the Chernoff mechanism)."""
        return float(self.totals.std(ddof=1) / self.totals.mean())

    def hop_autocorrelation(self) -> float:
        """Lag-1 correlation between consecutive hops within a run.

        Near zero if the ``R_i`` behave independently, as the proof
        assumes (portals are fresh uniform choices per layer).
        """
        a = self.hop_times[:, :-1].ravel()
        b = self.hop_times[:, 1:].ravel()
        if a.size < 2 or a.std() == 0 or b.std() == 0:
            return 0.0
        return float(np.corrcoef(a, b)[0, 1])


def _measure_chain(
    s: int,
    num_layers: int,
    protocol_factory,
    trials: int,
    seed: int,
    chain_seed: int,
    channel,
    max_rounds: int | None = None,
):
    """One chain's batched measurement — module-level (and hence picklable)
    so the runtime executor can schedule chains across worker processes."""
    return measure_chain_broadcast_batch(
        s,
        num_layers,
        protocol_factory(),
        trials=trials,
        seed=seed,
        chain_seed=chain_seed,
        channel=channel() if channel is not None else None,
        max_rounds=max_rounds,
    )


def hop_time_study(
    s: int | None = None,
    num_layers: int | None = None,
    protocol_factory=None,
    repetitions: int = 10,
    seed=None,
    trials_per_chain: int | None = None,
    channel=None,
    executor=None,
    scenario=None,
    max_rounds: int | None = None,
) -> HopTimeStudy:
    """Run ``repetitions`` chain broadcasts and collect hop times.

    The spec-first form takes a ``scenario`` whose graph is the ``chain``
    family — its ``s``/``layers`` arguments, protocol, channel, seed, and
    ``max_rounds`` configure the study, and its ``trials`` field sets the
    default ``trials_per_chain`` (a ``source`` field is rejected: the
    study always broadcasts from the chain root)::

        hop_time_study(
            scenario=Scenario.from_string("chain(8, 6) | decay | erasure(0.1)"),
            repetitions=40,
        )

    The positional form (``s``, ``num_layers``, ``protocol_factory`` — a
    fresh-protocol callable, since protocols hold per-run state) remains
    for direct engine users.  Repetitions are grouped into
    ``repetitions / trials_per_chain`` chains; each chain gets fresh portal
    choices and each of its trials an independent protocol stream, all
    advanced together by the batched engine.  The default
    ``trials_per_chain=1`` matches the proof's probability space exactly
    (every repetition an independent chain).  ``channel`` (a
    :class:`~repro.radio.ChannelSpec` or other zero-argument factory)
    selects the reception model per chain.

    ``executor`` (a :class:`repro.runtime.Executor` or int job count)
    schedules chains across worker processes; every chain owns derived
    seeds, so the assembled study is bit-for-bit identical to the serial
    run.  Parallel execution needs picklable factories — a protocol class
    and e.g. :class:`repro.radio.ChannelSpec` rather than closures.
    """
    if scenario is not None:
        if s is not None or num_layers is not None or protocol_factory is not None:
            raise TypeError(
                "hop_time_study() takes either a scenario or the positional "
                "(s, num_layers, protocol_factory) form, not both"
            )
        if scenario.graph.family != "chain" or len(scenario.graph.args) < 2:
            raise ValueError(
                "hop_time_study needs a chain-family scenario, e.g. "
                "'chain(8, 6) | decay | classic'; got "
                f"{scenario.graph.describe()!r}"
            )
        if scenario.workload.to_dict() != {"name": "broadcast"}:
            # A bare source= canonicalizes into broadcast(source=...), so
            # this one check rejects both spellings and every other task.
            raise ValueError(
                "hop_time_study always broadcasts from the chain root; "
                "drop the scenario's source=/workload field"
            )
        s, num_layers = (int(a) for a in scenario.graph.args[:2])
        protocol_factory = scenario.protocol.build
        if channel is None:
            channel = scenario.channel
        if seed is None:
            seed = scenario.seed
        if trials_per_chain is None:
            trials_per_chain = scenario.trials
        if max_rounds is None:
            max_rounds = scenario.max_rounds
    if s is None or num_layers is None or protocol_factory is None:
        raise TypeError(
            "hop_time_study() needs s, num_layers, and protocol_factory "
            "(or a chain-family scenario)"
        )
    if trials_per_chain is None:
        trials_per_chain = 1
    if repetitions < 2:
        raise ValueError("need at least 2 repetitions for spread statistics")
    if trials_per_chain < 1:
        raise ValueError("trials_per_chain must be >= 1")
    if repetitions % trials_per_chain:
        raise ValueError(
            f"repetitions ({repetitions}) must be a multiple of "
            f"trials_per_chain ({trials_per_chain})"
        )
    chains = repetitions // trials_per_chain
    seeds = spawn_seeds(as_rng(seed), 2 * chains)
    calls = [
        dict(
            s=s,
            num_layers=num_layers,
            protocol_factory=protocol_factory,
            trials=trials_per_chain,
            seed=seeds[2 * c],
            chain_seed=seeds[2 * c + 1],
            channel=channel,
            max_rounds=max_rounds,
        )
        for c in range(chains)
    ]
    hops = np.zeros((repetitions, num_layers), dtype=np.int64)
    totals = np.zeros(repetitions, dtype=np.int64)
    if executor is None:
        measured = ((c, _measure_chain(**kw)) for c, kw in enumerate(calls))
    else:
        from repro.runtime import as_executor

        measured = as_executor(executor).imap(_measure_chain, calls)
    for c, m in measured:
        if not m.completed.all():
            raise RuntimeError(
                f"broadcast did not complete (chain {c}); raise max_rounds"
            )
        lo = c * trials_per_chain
        hi = lo + trials_per_chain
        hops[lo:hi] = m.per_hop_rounds.T
        totals[lo:hi] = m.portal_rounds[-1]
    return HopTimeStudy(
        s=s, num_layers=num_layers, hop_times=hops, totals=totals
    )
