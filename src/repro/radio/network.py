"""Synchronous collision-model radio network (the paper's Section 1.1 model).

A radio network is an undirected multihop network of processors operating in
synchronous rounds.  Per round each processor either transmits or stays
silent; a processor *receives* a message iff it stays silent and **exactly
one** of its neighbours transmits.  Collisions (≥ 2 transmitting neighbours)
are indistinguishable from silence — receivers get nothing and no feedback.

The round step is one sparse mat-vec: ``counts = A @ transmit``;
``received = (counts == 1) & ~transmit`` — so simulating a round of an
``n``-vertex network costs ``O(m)`` regardless of protocol complexity.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph

__all__ = ["RadioNetwork"]


class RadioNetwork:
    """Wraps a :class:`~repro.graphs.graph.Graph` with radio semantics."""

    __slots__ = ("graph",)

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    @property
    def n(self) -> int:
        """Number of processors."""
        return self.graph.n

    def step(self, transmitting: np.ndarray) -> np.ndarray:
        """One synchronous round.

        Parameters
        ----------
        transmitting:
            Bool mask of processors that transmit this round.

        Returns
        -------
        numpy.ndarray
            Bool mask of processors that *receive* the message this round:
            silent processors with exactly one transmitting neighbour.
        """
        transmitting = np.asarray(transmitting)
        if transmitting.dtype != bool or transmitting.shape != (self.n,):
            raise ValueError(
                f"transmitting must be a bool mask of length {self.n}"
            )
        counts = self.graph.adjacency @ transmitting.astype(np.int32)
        return (counts == 1) & ~transmitting

    def step_naive(self, transmitting: np.ndarray) -> np.ndarray:
        """Pure-Python reference of :meth:`step` (used by property tests)."""
        transmitting = np.asarray(transmitting, dtype=bool)
        out = np.zeros(self.n, dtype=bool)
        for v in range(self.n):
            if transmitting[v]:
                continue
            hits = sum(1 for u in self.graph.neighbors(v) if transmitting[u])
            out[v] = hits == 1
        return out
