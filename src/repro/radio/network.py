"""Synchronous radio network with pluggable channel semantics.

A radio network is an undirected multihop network of processors operating in
synchronous rounds.  Per round each processor either transmits or stays
silent; what a silent processor *hears* is decided by the network's
:class:`~repro.radio.channel.ChannelModel`.  The default,
:class:`~repro.radio.channel.ClassicCollision`, is the paper's Section 1.1
model: a processor receives iff it stays silent and **exactly one** of its
neighbours transmits — collisions (≥ 2 transmitting neighbours) are
indistinguishable from silence.  Other channels add collision-detection
feedback, i.i.d. erasures, or adversarial jamming/crash/link faults (see
:mod:`repro.radio.channel`).

The classic round step is one sparse mat-vec: ``counts = A @ transmit``;
``received = (counts == 1) & ~transmit`` — so simulating a round of an
``n``-vertex network costs ``O(m)`` regardless of protocol complexity.

The step also accepts an ``(n, T)`` transmit *matrix*: column ``t`` is an
independent trial, and one sparse mat-mat product advances all ``T`` trials
at once.  This is the kernel the batched broadcast engine
(:func:`repro.radio.broadcast.run_broadcast_batch`) builds on — amortizing
the Python and sparse-indexing overhead across trials is where the
order-of-magnitude multi-trial speedup comes from.
"""

from __future__ import annotations

from repro._util import count_dtype_for_degree
from repro.backend import HOST, resolve_backend
from repro.graphs.graph import Graph
from repro.radio.channel import ChannelModel, ClassicCollision

# Host namespace via the backend shim (results and packed-word state are
# host-resident by contract); backend-active work goes through
# ``self.backend`` instead.
np = HOST.xp

__all__ = ["RadioNetwork"]


class RadioNetwork:
    """Wraps a :class:`~repro.graphs.graph.Graph` with radio semantics.

    ``channel`` selects the reception model; ``None`` means the paper's
    classic collision model.  Stateful channels (erasure, jamming) must be
    reset with per-trial generators before stepping — the broadcast engine
    does this automatically.

    ``backend`` selects the array backend the dense kernels run on
    (:mod:`repro.backend`): an :class:`~repro.backend.ArrayBackend`, a
    name, or ``None`` for host numpy — the bit-for-bit default.
    """

    __slots__ = (
        "graph",
        "channel",
        "backend",
        "_adj_cast",
        "_value_op",
        "_count_dtype",
        "_tc_key",
        "_tc_val",
        "_eow_key",
        "_eow_val",
    )

    def __init__(
        self,
        graph: Graph,
        channel: ChannelModel | None = None,
        backend=None,
    ) -> None:
        self.graph = graph
        self.channel = channel if channel is not None else ClassicCollision()
        self.backend = resolve_backend(backend)
        # Identity-keyed single-entry caches: when telemetry computes the
        # round's counts / exactly-one fold first, the channel's own call
        # with the *same* transmit object reuses it instead of re-running
        # the sparse kernel.  Keying on object identity is exact — any
        # channel that filters transmitters (jamming crashes) builds a new
        # array and correctly misses.
        self._tc_key = None
        self._tc_val = None
        self._eow_key = None
        self._eow_val = None
        # Neighbour counts are bounded by the max degree, so the sparse
        # product can run in the narrowest safe integer type — int8 is
        # several times faster than int32 on wide trial batches.
        self._count_dtype = count_dtype_for_degree(graph.max_degree)
        # Built lazily on the first dense step: bitset-engine runs gather
        # over the graph's plain-numpy CSR and never materialize scipy.
        self._adj_cast = None
        self._value_op = None

    @property
    def n(self) -> int:
        """Number of processors."""
        return self.graph.n

    @property
    def count_dtype(self) -> type:
        """Narrowest integer dtype that holds this graph's neighbour counts
        (channels doing their own sparse products should use it too)."""
        return self._count_dtype

    def transmit_counts(self, transmitting: np.ndarray) -> np.ndarray:
        """Transmitting-neighbour counts — the shared sparse kernel every
        channel's reception rule is built from."""
        if self._tc_key is transmitting:
            return self._tc_val
        if self._adj_cast is None:
            self._adj_cast = self.backend.adjacency_operator(
                self.graph, self._count_dtype
            )
        return self.backend.neighbor_counts(self._adj_cast, transmitting)

    def value_counts(self, values: np.ndarray) -> np.ndarray:
        """Exact delivered-value product ``A @ values`` — the kernel the
        value workloads (aggregate, pipeline) fold each round.  Runs on
        this network's backend; on host numpy it is literally
        ``graph.adjacency @ values`` (scipy int32 @ int64 upcasts to
        int64, exactly as the folds always computed it)."""
        if self._value_op is None:
            self._value_op = self.backend.value_operator(self.graph)
        return self.backend.value_matmul(self._value_op, values)

    def prime_transmit_counts(
        self, transmitting: np.ndarray, counts: np.ndarray
    ) -> None:
        """Cache ``counts`` for the next :meth:`transmit_counts` call made
        with this exact ``transmitting`` object (telemetry shares its fold
        with the channel).  Callers must not mutate either array while the
        entry is live; each prime replaces the previous one."""
        self._tc_key = transmitting
        self._tc_val = counts

    def exactly_one_words(self, transmit_words: np.ndarray) -> np.ndarray:
        """Packed-word sibling of ``transmit_counts(...) == 1``: per-vertex
        words marking trials with exactly one transmitting neighbour,
        gathered over the graph's CSR (no scipy, no count matrix)."""
        if self._eow_key is transmit_words:
            return self._eow_val
        from repro.radio.bitset import exactly_one_words

        return exactly_one_words(self.graph.csr, transmit_words)

    def prime_exactly_one_words(
        self, transmit_words: np.ndarray, exactly_one: np.ndarray
    ) -> None:
        """Packed sibling of :meth:`prime_transmit_counts`: cache the
        exactly-one words derived from this exact ``transmit_words``
        object."""
        self._eow_key = transmit_words
        self._eow_val = exactly_one

    def step(self, transmitting: np.ndarray, round_index: int = 0) -> np.ndarray:
        """One synchronous round, for one trial or a whole batch.

        Parameters
        ----------
        transmitting:
            Bool mask of processors that transmit this round — either an
            ``(n,)`` vector (one trial) or an ``(n, T)`` matrix whose
            columns are ``T`` independent trials advanced together by a
            single sparse product.
        round_index:
            The current round number; round-indexed channels (erasure
            coins, fault schedules) condition on it.  Irrelevant under the
            classic model, hence optional.

        Returns
        -------
        numpy.ndarray
            Bool mask (same shape as the input) of processors that
            *receive* the message this round, as decided by the active
            channel model.
        """
        transmitting = self.backend.asarray(transmitting)
        if (
            not self.backend.is_bool(transmitting)
            or transmitting.ndim not in (1, 2)
            or transmitting.shape[0] != self.n
        ):
            raise ValueError(
                f"transmitting must be a bool (n,) mask or (n, T) matrix "
                f"with n = {self.n}"
            )
        return self.channel.deliver(round_index, transmitting, self)

    def step_words(
        self, transmit_words: np.ndarray, round_index: int = 0
    ) -> np.ndarray:
        """Packed-bitset sibling of :meth:`step`.

        ``transmit_words`` is an ``(n, W)`` uint64 matrix holding 64 trial
        bits per word column (trial ``t`` in bit ``t % 64`` of column
        ``t // 64``); the returned received words have the same layout.
        Requires a channel with
        :attr:`~repro.radio.channel.ChannelModel.supports_bitset`.
        """
        transmit_words = np.asarray(transmit_words)
        if (
            transmit_words.dtype != np.uint64
            or transmit_words.ndim != 2
            or transmit_words.shape[0] != self.n
        ):
            raise ValueError(
                f"transmit_words must be a uint64 (n, W) matrix with n = {self.n}"
            )
        return self.channel.deliver_words(round_index, transmit_words, self)

    def step_naive(self, transmitting: np.ndarray) -> np.ndarray:
        """Pure-Python reference of the *classic* :meth:`step` (used by
        property tests; channel models are tested against it at p=0)."""
        transmitting = np.asarray(transmitting, dtype=bool)
        out = np.zeros(self.n, dtype=bool)
        for v in range(self.n):
            if transmitting[v]:
                continue
            hits = sum(1 for u in self.graph.neighbors(v) if transmitting[u])
            out[v] = hits == 1
        return out
