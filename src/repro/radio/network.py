"""Synchronous collision-model radio network (the paper's Section 1.1 model).

A radio network is an undirected multihop network of processors operating in
synchronous rounds.  Per round each processor either transmits or stays
silent; a processor *receives* a message iff it stays silent and **exactly
one** of its neighbours transmits.  Collisions (≥ 2 transmitting neighbours)
are indistinguishable from silence — receivers get nothing and no feedback.

The round step is one sparse mat-vec: ``counts = A @ transmit``;
``received = (counts == 1) & ~transmit`` — so simulating a round of an
``n``-vertex network costs ``O(m)`` regardless of protocol complexity.

The step also accepts an ``(n, T)`` transmit *matrix*: column ``t`` is an
independent trial, and one sparse mat-mat product advances all ``T`` trials
at once.  This is the kernel the batched broadcast engine
(:func:`repro.radio.broadcast.run_broadcast_batch`) builds on — amortizing
the Python and sparse-indexing overhead across trials is where the
order-of-magnitude multi-trial speedup comes from.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph

__all__ = ["RadioNetwork"]


class RadioNetwork:
    """Wraps a :class:`~repro.graphs.graph.Graph` with radio semantics."""

    __slots__ = ("graph", "_adj_cast", "_count_dtype")

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        # Neighbour counts are bounded by the max degree, so the sparse
        # product can run in the narrowest safe integer type — int8 is
        # several times faster than int32 on wide trial batches.
        if graph.max_degree < 2**7:
            self._count_dtype = np.int8
        elif graph.max_degree < 2**15:
            self._count_dtype = np.int16
        else:
            self._count_dtype = np.int32
        self._adj_cast = graph.adjacency.astype(self._count_dtype, copy=False)

    @property
    def n(self) -> int:
        """Number of processors."""
        return self.graph.n

    def step(self, transmitting: np.ndarray) -> np.ndarray:
        """One synchronous round, for one trial or a whole batch.

        Parameters
        ----------
        transmitting:
            Bool mask of processors that transmit this round — either an
            ``(n,)`` vector (one trial) or an ``(n, T)`` matrix whose
            columns are ``T`` independent trials advanced together by a
            single sparse product.

        Returns
        -------
        numpy.ndarray
            Bool mask (same shape as the input) of processors that
            *receive* the message this round: silent processors with
            exactly one transmitting neighbour.
        """
        transmitting = np.asarray(transmitting)
        if (
            transmitting.dtype != bool
            or transmitting.ndim not in (1, 2)
            or transmitting.shape[0] != self.n
        ):
            raise ValueError(
                f"transmitting must be a bool (n,) mask or (n, T) matrix "
                f"with n = {self.n}"
            )
        counts = self._adj_cast @ transmitting.astype(self._count_dtype)
        return (counts == 1) & ~transmitting

    def step_naive(self, transmitting: np.ndarray) -> np.ndarray:
        """Pure-Python reference of :meth:`step` (used by property tests)."""
        transmitting = np.asarray(transmitting, dtype=bool)
        out = np.zeros(self.n, dtype=bool)
        for v in range(self.n):
            if transmitting[v]:
                continue
            hits = sum(1 for u in self.graph.neighbors(v) if transmitting[u])
            out[v] = hits == 1
        return out
